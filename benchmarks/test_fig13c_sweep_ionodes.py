"""Figure 13(c) — the scheme's extra energy reduction over the
history-based policy as the number of I/O nodes varies.

Paper shape: the benefit exists at every node count and generally grows
with more I/O nodes (more nodes = more signature diversity to group by),
though the increments are modest because history-based already improves
with node count.
"""

from repro.experiments import fig13c

from conftest import run_once, sweep_apps


def test_fig13c_sweep_ionodes(benchmark, runner):
    apps = sweep_apps()
    result = run_once(
        benchmark, lambda: fig13c(runner, values=(2, 4, 8, 16), apps=apps)
    )
    print("\n" + result.text)
    benefits = result.data
    # The scheme helps at the default shape and at larger node counts.
    assert benefits[8] > 0
    assert benefits[16] > 0
    # More nodes beat the smallest configuration.
    assert max(benefits[8], benefits[16]) > benefits[2]
