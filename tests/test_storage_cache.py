"""Tests for the per-I/O-node storage cache."""

import pytest

from repro.storage import StorageCache

KB = 1024


def make_cache(capacity_blocks=4, block_size=64 * KB):
    return StorageCache(capacity_blocks * block_size, block_size)


class TestValidation:
    def test_negative_capacity(self):
        with pytest.raises(ValueError):
            StorageCache(-1, 64)

    def test_zero_block_size(self):
        with pytest.raises(ValueError):
            StorageCache(1024, 0)


class TestBlockAddressing:
    def test_block_of(self):
        c = make_cache()
        assert c.block_of(0) == 0
        assert c.block_of(64 * KB) == 1
        assert c.block_of(64 * KB - 1) == 0

    def test_blocks_of_range(self):
        c = make_cache()
        assert c.blocks_of(0, 64 * KB) == [0]
        assert c.blocks_of(10, 64 * KB) == [0, 1]
        assert c.blocks_of(64 * KB, 128 * KB) == [1, 2]

    def test_blocks_of_empty(self):
        c = make_cache()
        assert c.blocks_of(100, 0) == []


class TestLRU:
    def test_miss_then_hit(self):
        c = make_cache()
        assert not c.lookup(7)
        c.insert(7)
        assert c.lookup(7)
        assert c.stats.hits == 1
        assert c.stats.misses == 1

    def test_capacity_evicts_lru(self):
        c = make_cache(capacity_blocks=2)
        c.insert(1)
        c.insert(2)
        c.insert(3)  # evicts 1
        assert not c.contains(1)
        assert c.contains(2)
        assert c.contains(3)
        assert c.stats.evictions == 1

    def test_lookup_refreshes_recency(self):
        c = make_cache(capacity_blocks=2)
        c.insert(1)
        c.insert(2)
        c.lookup(1)      # 1 becomes MRU
        c.insert(3)      # evicts 2
        assert c.contains(1)
        assert not c.contains(2)

    def test_contains_does_not_touch_stats_or_order(self):
        c = make_cache(capacity_blocks=2)
        c.insert(1)
        c.insert(2)
        c.contains(1)
        c.insert(3)  # still evicts 1: contains() didn't refresh
        assert not c.contains(1)
        assert c.stats.accesses == 0

    def test_never_exceeds_capacity(self):
        c = make_cache(capacity_blocks=3)
        for b in range(20):
            c.insert(b)
        assert len(c) == 3

    def test_sequential_scan_larger_than_cache_always_misses(self):
        """The LRU scan-thrash behaviour madbench2 relies on."""
        c = make_cache(capacity_blocks=4)
        n = 8
        for b in range(n):
            c.lookup(b)
            c.insert(b)
        hits_before = c.stats.hits
        for b in range(n):  # re-scan in the same order
            c.lookup(b)
            c.insert(b)
        assert c.stats.hits == hits_before  # zero hits on the re-scan


class TestDirty:
    def test_dirty_eviction_reported_for_flush(self):
        c = make_cache(capacity_blocks=1)
        assert c.insert(1, dirty=True) == []
        flush = c.insert(2)
        assert flush == [1]
        assert c.stats.dirty_evictions == 1

    def test_clean_eviction_not_flushed(self):
        c = make_cache(capacity_blocks=1)
        c.insert(1, dirty=False)
        assert c.insert(2) == []

    def test_reinsert_keeps_dirty_bit(self):
        c = make_cache()
        c.insert(1, dirty=True)
        c.insert(1, dirty=False)  # re-touch must not lose dirtiness
        assert c.dirty_blocks() == [1]

    def test_mark_clean(self):
        c = make_cache()
        c.insert(1, dirty=True)
        c.mark_clean(1)
        assert c.dirty_blocks() == []

    def test_invalidate_reports_dirtiness(self):
        c = make_cache()
        c.insert(1, dirty=True)
        c.insert(2, dirty=False)
        assert c.invalidate(1) is True
        assert c.invalidate(2) is False
        assert c.invalidate(99) is False

    def test_dirty_blocks_lru_order(self):
        c = make_cache()
        c.insert(3, dirty=True)
        c.insert(1, dirty=True)
        c.insert(2, dirty=False)
        assert c.dirty_blocks() == [3, 1]

    def test_zero_capacity_cache_flushes_dirty_immediately(self):
        c = StorageCache(0, 64 * KB)
        assert c.insert(5, dirty=True) == [5]
        assert c.insert(6, dirty=False) == []

    def test_hit_rate(self):
        c = make_cache()
        c.insert(1)
        c.lookup(1)
        c.lookup(2)
        assert c.stats.hit_rate == pytest.approx(0.5)


class TestStatsAccounting:
    """Every insert/evict/invalidate path must keep the identity
    ``insertions == evictions + invalidations + resident blocks``."""

    @staticmethod
    def check_identity(c):
        assert c.stats.insertions == (
            c.stats.evictions + c.stats.invalidations + len(c)
        )

    def test_zero_capacity_insert_is_counted(self):
        """Regression: the pass-through path of a zero-capacity cache used
        to skip the insertion counter entirely, so stats-based hit/traffic
        reports saw no traffic at all."""
        c = StorageCache(0, 64 * KB)
        c.insert(5, dirty=False)
        c.insert(6, dirty=True)
        assert c.stats.insertions == 2
        assert c.stats.evictions == 2
        assert c.stats.dirty_evictions == 1
        self.check_identity(c)

    def test_invalidate_is_counted(self):
        """Regression: invalidate() used to drop blocks without counting,
        leaving insertions > evictions + resident blocks."""
        c = make_cache(capacity_blocks=4)
        c.insert(1, dirty=True)
        c.insert(2)
        assert c.invalidate(1) is True
        assert c.stats.invalidations == 1
        self.check_identity(c)

    def test_invalidate_missing_block_not_counted(self):
        c = make_cache()
        assert c.invalidate(42) is False
        assert c.stats.invalidations == 0

    def test_reinsert_does_not_double_count(self):
        c = make_cache(capacity_blocks=4)
        c.insert(1)
        c.insert(1, dirty=True)  # re-touch, not a new insertion
        assert c.stats.insertions == 1
        self.check_identity(c)

    def test_identity_holds_under_churn(self):
        c = make_cache(capacity_blocks=3)
        for b in range(20):
            c.insert(b, dirty=(b % 2 == 0))
            if b % 5 == 0:
                c.invalidate(b)
            self.check_identity(c)
