"""Analytic hybrid kernel — closed-form affine phases over a calendar DES.

The dependence oracle (:mod:`repro.ir.dependence`) can prove, for affine
programs, which slot ranges of each client perform no I/O at all.  During
such a *compute phase* the client's only simulated activity is a chain of
per-slot ``Timeout`` events whose times are a chain of float additions —
a timeline that can be solved in closed form.  This kernel advertises
``supports_phase_collapse``; eligible clients then replace each phase's
per-slot events with a single :class:`~repro.sim.events.ComputePhase`
carrying the *identical chained sum* as an absolute target time, replay
the per-slot bookkeeping with the identical arithmetic, and the kernel
delivers the jump through ``schedule_at_exact`` — bit-identical to the
full DES by construction.

Everything that is not a provable compute phase — I/O slots, scheme-on
runs (scheduler threads observe the local clocks mid-phase), fault
windows (the injector perturbs timing), non-affine programs, and every
phase boundary — runs as full discrete-event simulation on the inherited
calendar queue.  Eligibility is decided by the session, not here: the
kernel only advertises the capability and counts what was collapsed.

The disk side of a collapsed phase needs no special handling — drives
receive no new requests from a phase-collapsed client, and their policy
machinery (spin-down timers, ramp steps) runs on ordinary DES events
either way — but the closed-form *bounds* on what a disk can spend during
a phase window are exported here (straight from the pure functions in
:mod:`repro.disk.power`) so tests can certify collapsed windows
independently of the DES.
"""

from __future__ import annotations

from typing import Optional

from ..obs.base import Observability
from .calendar import CalendarSimulator
from .events import ComputePhase

__all__ = ["AnalyticSimulator", "phase_energy_bounds"]


def phase_energy_bounds(
    spec, can_spin_down: bool, can_ramp: bool, duration: float
) -> tuple[float, float]:
    """Certified [lo, hi] joules one drive can spend in a request-free
    window of ``duration`` seconds.

    Reuses the pure bound functions of :mod:`repro.disk.power`: with no
    requests arriving the drive can at worst sit at the rest-power
    ceiling plus one burst transient (a spin-up/ramp completing inside
    the window), and at best sit at the global power floor throughout.
    """
    from ..disk.power import burst_power_ceiling, power_bounds, rest_power_ceiling

    if duration < 0:
        raise ValueError(f"window duration must be >= 0: {duration}")
    floor, _ = power_bounds(spec, can_spin_down, can_ramp)
    rest_ceiling = rest_power_ceiling(spec, can_spin_down, can_ramp)
    burst_ceiling = burst_power_ceiling(spec, can_spin_down, can_ramp)
    burst_window = min(duration, spec.spin_up_time)
    hi = rest_ceiling * (duration - burst_window) + burst_ceiling * burst_window
    return floor * duration, hi


class AnalyticSimulator(CalendarSimulator):
    """Calendar-queue kernel that accepts collapsed affine phases."""

    kernel_name = "analytic"
    supports_phase_collapse = True

    __slots__ = ("phases_collapsed", "slots_collapsed")

    def __init__(
        self, obs: Optional[Observability] = None, width: float = 0.05
    ) -> None:
        super().__init__(obs=obs, width=width)
        #: Number of ComputePhase jumps executed.
        self.phases_collapsed = 0
        #: Compute slots those jumps covered (each would have cost the
        #: DES up to one Timeout event; the events/sec accounting uses
        #: this to compare kernels on equal work).
        self.slots_collapsed = 0

    def _note_phase(self, phase: ComputePhase) -> None:
        self.phases_collapsed += 1
        self.slots_collapsed += phase.n_slots

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AnalyticSimulator(now={self.now:.6f}, "
            f"pending={self.pending_events}, "
            f"collapsed={self.slots_collapsed} slots "
            f"in {self.phases_collapsed} phases)"
        )
