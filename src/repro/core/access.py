"""The scheduler's unit of work: one data access with its slack window.

A :class:`DataAccess` corresponds to one dynamic read I/O call (the
framework prefetches reads; writes stay at their program points and only
act as slack producers).  It carries the paper's per-access inputs: begin
and end of the slack window (``a.b``/``a.e``), the signature ``a.g``, the
owning process (``a.id``) and — for the extended algorithm — the length in
slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["DataAccess"]


@dataclass
class DataAccess:
    """One schedulable read access."""

    aid: int                      # stable identity
    process: int                  # a.id — issuing process
    original_slot: int            # i_r: where the program consumes the data
    begin: int                    # a.b: earliest legal slot
    end: int                      # a.e: latest legal slot
    signature: int                # a.g: I/O-node bitmask
    length: int = 1               # slots the access occupies (extended alg.)
    nbytes: int = 0               # total payload
    file: str = ""                # provenance (for the runtime table)
    block: int = 0
    blocks: int = 1
    producer: Optional[tuple[int, int]] = None  # (slot, process) of last write

    # Filled in by a scheduler:
    scheduled_slot: Optional[int] = None

    def __post_init__(self) -> None:
        if self.begin > self.end:
            raise ValueError(
                f"access {self.aid}: empty slack window [{self.begin}, {self.end}]"
            )
        if self.length < 1:
            raise ValueError(f"access {self.aid}: length must be >= 1")
        if self.signature == 0:
            raise ValueError(f"access {self.aid}: empty signature")

    @property
    def slack_length(self) -> int:
        """Window size in slots (a.e − a.b + 1) — the sort key of the
        scheduling algorithms (shortest slack first)."""
        return self.end - self.begin + 1

    @property
    def is_scheduled(self) -> bool:
        return self.scheduled_slot is not None

    @property
    def is_early_prefetch(self) -> bool:
        """True when the chosen slot precedes the consuming iteration —
        i.e. the runtime scheduler must actually prefetch and buffer it."""
        return (
            self.scheduled_slot is not None
            and self.scheduled_slot < self.original_slot
        )

    def occupied_slots(self) -> range:
        """Slots [t, t+length) this access occupies once scheduled."""
        if self.scheduled_slot is None:
            raise ValueError(f"access {self.aid} is not scheduled")
        return range(self.scheduled_slot, self.scheduled_slot + self.length)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        sched = f"@{self.scheduled_slot}" if self.is_scheduled else "unscheduled"
        return (
            f"DataAccess(a{self.aid}, p{self.process}, "
            f"[{self.begin},{self.end}], len={self.length}, {sched})"
        )
