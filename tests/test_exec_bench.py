"""Tests for the ``repro bench`` record trajectory and profiling helpers.

The expensive paths (full ``run_bench`` with kernel shootout) are
exercised through the CLI smoke test; here we pin the pure record
plumbing: picking the latest prior record, the warn-and-seed behavior on
an empty trajectory, delta reporting, and the cProfile table shape.
"""

import io
import json

from repro.exec import RunPoint, compare_with_previous, profile_grid
from repro.exec.bench import latest_bench_record, write_bench_record
from repro.experiments import ExperimentConfig

SMALL = ExperimentConfig(n_clients=8, n_ionodes=4, workload_scale=0.05)


def fake_record(**overrides):
    record = {
        "kind": "repro-bench",
        "serial_seconds": 2.0,
        "parallel_seconds": 1.0,
        "warm_seconds": 0.01,
        "events_per_sec": 100000.0,
    }
    record.update(overrides)
    return record


class TestLatestBenchRecord:
    def test_empty_dir_is_none(self, tmp_path):
        assert latest_bench_record(tmp_path) is None
        assert latest_bench_record(tmp_path / "missing") is None

    def test_picks_newest_by_timestamp_name(self, tmp_path):
        for stamp in ("20260101T000000", "20260301T000000", "20260201T000000"):
            (tmp_path / f"BENCH_{stamp}.json").write_text("{}")
        latest = latest_bench_record(tmp_path)
        assert latest is not None
        assert latest.name == "BENCH_20260301T000000.json"

    def test_exclude_skips_the_record_just_written(self, tmp_path):
        older = tmp_path / "BENCH_20260101T000000.json"
        newer = tmp_path / "BENCH_20260301T000000.json"
        older.write_text("{}")
        newer.write_text("{}")
        assert latest_bench_record(tmp_path, exclude=newer) == older
        assert latest_bench_record(tmp_path, exclude=older) == newer

    def test_exclude_only_record_is_none(self, tmp_path):
        only = tmp_path / "BENCH_20260101T000000.json"
        only.write_text("{}")
        assert latest_bench_record(tmp_path, exclude=only) is None


class TestCompareWithPrevious:
    def test_empty_trajectory_warns_and_seeds(self, tmp_path):
        """No prior record must never crash the bench — it warns and the
        fresh record becomes the baseline."""
        err = io.StringIO()
        outcome = compare_with_previous(fake_record(), tmp_path, out=err)
        assert outcome is None
        assert "seeds the trajectory" in err.getvalue()

    def test_unreadable_prior_warns_not_raises(self, tmp_path):
        (tmp_path / "BENCH_20260101T000000.json").write_text("not json{")
        err = io.StringIO()
        outcome = compare_with_previous(fake_record(), tmp_path, out=err)
        assert outcome is None
        assert "warning" in err.getvalue()

    def test_deltas_against_prior(self, tmp_path):
        prior = tmp_path / "BENCH_20260101T000000.json"
        prior.write_text(json.dumps(fake_record(
            serial_seconds=4.0, events_per_sec=50000.0,
        )))
        err = io.StringIO()
        outcome = compare_with_previous(fake_record(), tmp_path, out=err)
        assert outcome is not None
        assert outcome["previous"] == prior.name
        deltas = outcome["deltas"]
        assert deltas["serial_seconds"] == -0.5     # 4.0s -> 2.0s
        assert deltas["events_per_sec"] == 1.0      # 50k -> 100k
        text = err.getvalue()
        assert prior.name in text
        assert "serial_seconds: 4 -> 2" in text

    def test_skips_metrics_absent_from_either_side(self, tmp_path):
        prior = tmp_path / "BENCH_20260101T000000.json"
        prior.write_text(json.dumps({"kind": "repro-bench",
                                     "serial_seconds": 4.0}))
        outcome = compare_with_previous(
            fake_record(), tmp_path, out=io.StringIO()
        )
        assert outcome is not None
        assert "events_per_sec" not in outcome["deltas"]
        assert "serial_seconds" in outcome["deltas"]


class TestWriteBenchRecord:
    def test_round_trips_and_names_by_timestamp(self, tmp_path):
        path = write_bench_record(
            fake_record(created="2026-01-01T00:00:00"), tmp_path
        )
        assert path.name.startswith("BENCH_")
        assert json.loads(path.read_text())["kind"] == "repro-bench"


class TestProfileGrid:
    def test_profile_table_per_point(self):
        points = [RunPoint("sar", "simple", False, SMALL)]
        blocks = profile_grid(points, top=5)
        assert len(blocks) == 1
        label, table = blocks[0]
        assert label == "sar/simple/plain"
        # A real pstats table sorted by tottime.
        assert "tottime" in table
        assert "function calls" in table
