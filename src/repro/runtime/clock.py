"""Per-process local time coordination (§III).

Application processes on different client nodes "do not execute in a
lock-step fashion", so before prefetching a block written by another
process, a scheduler thread checks the *local time* (current iteration) of
the producer's scheduler thread.  :class:`LocalClocks` holds one iteration
counter per process and lets waiters block until a process passes a given
slot.
"""

from __future__ import annotations

from ..sim.engine import Simulator
from ..sim.events import Signal

__all__ = ["LocalClocks"]


class LocalClocks:
    """Shared slot counters with condition-style waiting."""

    def __init__(self, sim: Simulator, n_processes: int):
        if n_processes < 1:
            raise ValueError("need at least one process")
        self.sim = sim
        self._times = [-1] * n_processes  # -1: not started
        self._advanced = [
            Signal(f"clock.p{p}", restartable=True) for p in range(n_processes)
        ]

    def time_of(self, process: int) -> int:
        """Last slot ``process`` has started executing (-1 before start)."""
        return self._times[process]

    def advance(self, process: int, slot: int) -> None:
        """Move a process's local time forward to ``slot``."""
        if slot < self._times[process]:
            raise ValueError(
                f"process {process} local time cannot go backwards "
                f"({self._times[process]} -> {slot})"
            )
        if slot == self._times[process]:
            return
        self._times[process] = slot
        signal = self._advanced[process]
        self.sim.fire(signal)
        signal.reset()

    def wait_until(self, process: int, slot: int):
        """Generator: yields until ``process``'s local time reaches
        ``slot``.  Use as ``yield from clocks.wait_until(q, s)`` inside a
        simulation process."""
        while self._times[process] < slot:
            yield self._advanced[process]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LocalClocks({self._times})"
