"""Disk operating states and helpers.

States are plain strings (cheap, readable in traces) but the canonical set
lives here so policies, the drive model and the metrics layer agree.  A
multi-speed disk encodes its RPM level in the state name, e.g. ``idle@7200``.
"""

from __future__ import annotations

__all__ = [
    "ACTIVE_READ",
    "ACTIVE_WRITE",
    "SEEK",
    "IDLE",
    "STANDBY",
    "SPIN_UP",
    "SPIN_DOWN",
    "RPM_CHANGE",
    "idle_at",
    "active_at",
    "seek_at",
    "parse_rpm",
    "is_idle_family",
    "is_low_power",
    "is_serving",
]

ACTIVE_READ = "active_read"
ACTIVE_WRITE = "active_write"
SEEK = "seek"
IDLE = "idle"
STANDBY = "standby"
SPIN_UP = "spin_up"
SPIN_DOWN = "spin_down"
RPM_CHANGE = "rpm_change"


def idle_at(rpm: int) -> str:
    """Idle state label for a multi-speed disk spinning at ``rpm``."""
    return f"{IDLE}@{rpm}"


def active_at(rpm: int, write: bool = False) -> str:
    """Active R/W state label at ``rpm``."""
    base = ACTIVE_WRITE if write else ACTIVE_READ
    return f"{base}@{rpm}"


def seek_at(rpm: int) -> str:
    """Seek state label at ``rpm``."""
    return f"{SEEK}@{rpm}"


def parse_rpm(state: str, default: int) -> int:
    """Extract the RPM suffix from a state label, or ``default``."""
    if "@" in state:
        return int(state.rsplit("@", 1)[1])
    return default


def base_state(state: str) -> str:
    """Strip any ``@rpm`` suffix."""
    return state.split("@", 1)[0]


def is_idle_family(state: str) -> bool:
    """True for every state in which the disk is not serving a request.

    This is the paper's notion of an *idle period*: the stretch between the
    completion of one request and the arrival of the next, regardless of
    which low-power mode the disk traverses meanwhile.
    """
    return base_state(state) in {IDLE, STANDBY, SPIN_UP, SPIN_DOWN, RPM_CHANGE}


def is_low_power(state: str) -> bool:
    """True when the disk is in a reduced-power condition."""
    return base_state(state) in {STANDBY, SPIN_DOWN}


def is_serving(state: str) -> bool:
    """True when the disk is actively seeking or transferring."""
    return base_state(state) in {ACTIVE_READ, ACTIVE_WRITE, SEEK}
