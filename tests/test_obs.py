"""Tests for the observability layer (repro.obs)."""

import io
import json

import pytest

from repro.obs import (
    NULL_OBS,
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    JsonlTracer,
    MetricsRegistry,
    NullTracer,
    Observability,
    merge_snapshots,
    read_snapshot,
    read_trace,
    write_snapshot,
)


class TestInstruments:
    def test_counter_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_gauge_set_and_max_update(self):
        g = Gauge("x")
        g.set(3.0)
        g.max_update(1.0)
        assert g.value == 3.0
        g.max_update(7.0)
        assert g.value == 7.0

    def test_histogram_buckets_inclusive_upper_bound(self):
        h = Histogram("x", (1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 10.0, 11.0):
            h.observe(v)
        # <=1, <=10, overflow
        assert h.counts == [2, 2, 1]
        assert h.count == 5
        assert h.mean == pytest.approx(27.5 / 5)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("x", ())
        with pytest.raises(ValueError):
            Histogram("x", (2.0, 1.0))

    def test_histogram_cumulative_fractions(self):
        h = Histogram("x", (1.0, 2.0))
        for v in (0.5, 1.5, 3.0, 4.0):
            h.observe(v)
        assert h.cumulative_fractions() == [0.25, 0.5]


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_histogram_bounds_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", (1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("h", (1.0, 3.0))

    def test_snapshot_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h", (1.0,)).observe(0.5)
        path = tmp_path / "snap.json"
        write_snapshot(reg.snapshot(), path)
        snap = read_snapshot(path)
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["counts"] == [1, 0]

    def test_read_snapshot_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 999}')
        with pytest.raises(ValueError):
            read_snapshot(path)


class TestMerge:
    def _snap(self, c, g, h_counts, h_total, h_count):
        return {
            "schema": 1,
            "counters": {"c": c},
            "gauges": {"g": g},
            "histograms": {
                "h": {
                    "bounds": [1.0, 2.0],
                    "counts": h_counts,
                    "total": h_total,
                    "count": h_count,
                }
            },
        }

    def test_counters_add_gauges_max_histograms_add(self):
        a = self._snap(2, 5.0, [1, 0, 0], 0.5, 1)
        b = self._snap(3, 4.0, [0, 1, 1], 4.5, 2)
        merged = merge_snapshots([a, b])
        assert merged["counters"]["c"] == 5
        assert merged["gauges"]["g"] == 5.0
        assert merged["histograms"]["h"]["counts"] == [1, 1, 1]
        assert merged["histograms"]["h"]["count"] == 3
        assert merged["merged_runs"] == 2

    def test_merge_is_order_independent(self):
        snaps = [
            self._snap(i, float(i), [i, 0, 1], float(i), i + 1)
            for i in range(5)
        ]
        forward = merge_snapshots(snaps)
        backward = merge_snapshots(reversed(snaps))
        assert forward == backward

    def test_merge_rejects_bounds_mismatch(self):
        a = self._snap(1, 1.0, [1, 0, 0], 0.5, 1)
        b = self._snap(1, 1.0, [1, 0, 0], 0.5, 1)
        b["histograms"]["h"]["bounds"] = [9.0, 99.0]
        with pytest.raises(ValueError):
            merge_snapshots([a, b])

    def test_merge_rejects_foreign_schema(self):
        with pytest.raises(ValueError):
            merge_snapshots([{"schema": 999}])

    def test_merged_runs_accumulates_through_remerge(self):
        a = merge_snapshots([self._snap(1, 1.0, [1, 0, 0], 0.5, 1)] * 2)
        b = self._snap(1, 1.0, [1, 0, 0], 0.5, 1)
        assert merge_snapshots([a, b])["merged_runs"] == 3


class _FakeClock:
    def __init__(self):
        self.now = 0.0


class TestJsonlTracer:
    def test_records_phases_context_and_clock(self):
        buf = io.StringIO()
        clock = _FakeClock()
        tracer = JsonlTracer(buf)
        tracer.bind_clock(clock)
        tracer.set_context(run="w/p")
        tracer.begin("io.read", rid=1)
        clock.now = 2.5
        tracer.end("io.read", rid=1)
        tracer.event("access.consumed", aid=7)
        tracer.flush()
        records = [json.loads(l) for l in buf.getvalue().splitlines()]
        assert [r["ph"] for r in records] == ["B", "E", "I"]
        assert records[0] == {
            "t": 0.0, "ph": "B", "ev": "io.read", "run": "w/p", "rid": 1,
        }
        assert records[1]["t"] == 2.5
        assert all(r["run"] == "w/p" for r in records)
        assert tracer.records_written == 3

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTracer(path) as tracer:
            tracer.event("a", x=1)
            tracer.event("b")
        records = list(read_trace(path))
        assert [r["ev"] for r in records] == ["a", "b"]
        assert records[0]["x"] == 1

    def test_detail_defaults_off(self):
        assert JsonlTracer(io.StringIO()).detail is False
        assert JsonlTracer(io.StringIO(), detail=True).detail is True

    def test_records_buffer_until_flush(self):
        buf = io.StringIO()
        tracer = JsonlTracer(buf)
        tracer.event("a")
        assert buf.getvalue() == ""  # chunk-buffered
        tracer.flush()
        assert json.loads(buf.getvalue())["ev"] == "a"

    def test_string_fields_are_escaped(self):
        buf = io.StringIO()
        tracer = JsonlTracer(buf)
        tracer.set_context(run='we"ird\\label')
        tracer.event("a", note="tab\there")
        tracer.flush()
        record = json.loads(buf.getvalue())
        assert record["run"] == 'we"ird\\label'
        assert record["note"] == "tab\there"

    def test_write_after_close_is_noop(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = JsonlTracer(path)
        tracer.event("a")
        tracer.close()
        tracer.event("b")
        assert len(list(read_trace(path))) == 1


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NullTracer.enabled is False
        assert NullTracer.detail is False
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.detail is False
        # Every method is a safe no-op.
        NULL_TRACER.bind_clock(object())
        NULL_TRACER.set_context(run="x")
        NULL_TRACER.begin("a")
        NULL_TRACER.end("a")
        NULL_TRACER.event("a")
        NULL_TRACER.flush()
        NULL_TRACER.close()

    def test_observability_defaults_to_null(self):
        obs = Observability()
        assert obs.tracer is NULL_TRACER
        assert obs.metrics is None
        assert not obs.enabled
        assert not NULL_OBS.enabled

    def test_observability_enabled_by_either_channel(self):
        assert Observability(metrics=MetricsRegistry()).enabled
        assert Observability(tracer=JsonlTracer(io.StringIO())).enabled


class TestReportRendering:
    def test_render_groups_and_filters(self):
        from repro.obs.report import render_snapshot, render_snapshot_json

        reg = MetricsRegistry()
        reg.counter("drive.d0.requests").inc(4)
        reg.gauge("buffer.peak_used_blocks").set(9)
        reg.histogram("net.link0.queue_delay_s", (0.1,)).observe(0.05)
        snap = reg.snapshot()
        text = render_snapshot(snap)
        assert "[drive]" in text and "[buffer]" in text
        assert "drive.d0.requests" in text
        filtered = render_snapshot(snap, pattern="buffer.*")
        assert "drive.d0.requests" not in filtered
        as_json = json.loads(
            render_snapshot_json(snap, pattern="drive.*")
        )
        assert as_json["counters"] == {"drive.d0.requests": 4}
        assert as_json["gauges"] == {}
