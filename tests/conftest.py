"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.disk import DiskRequest, DiskSpec, Drive
from repro.sim import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture(autouse=True)
def _hermetic_result_cache(tmp_path, monkeypatch):
    """Point the CLI's default result cache at a per-test directory so
    tests never read (or leave behind) a shared ``.repro-cache``."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


def fast_spec(**overrides) -> DiskSpec:
    """A disk spec with transitions shrunk so policy tests run in short
    simulated horizons.  Power numbers stay at Table II values."""
    defaults = dict(
        name="fast-test-disk",
        spin_up_time=2.0,
        spin_down_time=1.0,
        rpm_change_time_per_step=0.25,
    )
    defaults.update(overrides)
    return DiskSpec(**defaults)


def multispeed_fast_spec(**overrides) -> DiskSpec:
    overrides.setdefault("min_rpm", 3_600)
    return fast_spec(**overrides)


def make_drive(sim: Simulator, spec: DiskSpec | None = None, **kwargs) -> Drive:
    return Drive(sim, spec or fast_spec(), name="test-disk", **kwargs)


def submit_read(
    sim: Simulator, drive: Drive, at: float, lba: int = 0, nbytes: int = 64 * 1024
) -> DiskRequest:
    """Schedule one read submission at an absolute time."""
    req = DiskRequest(lba=lba, nbytes=nbytes)
    sim.schedule_at(at, drive.submit, req)
    return req


def drain(sim: Simulator, drive: Drive) -> None:
    """Run to quiescence and finalize the drive's timeline."""
    sim.run()
    drive.finalize()
    if drive.policy is not None:
        drive.policy.on_simulation_end(sim.now)
