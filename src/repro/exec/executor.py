"""Parallel experiment execution engine.

:class:`ExperimentExecutor` fans a grid of :class:`RunPoint`\\ s out over a
``ProcessPoolExecutor`` and merges the results with an optional
content-addressed :class:`~repro.exec.cache.ResultCache`:

1. every point is first resolved against the cache in the parent (a hit
   costs one JSON read, no simulation, no worker dispatch);
2. the misses are simulated — in-process for ``jobs <= 1``, otherwise on
   the pool, where each worker keeps one process-global
   :class:`~repro.experiments.runner.Runner` so traces and compilations
   are built once per *worker*, not once per run;
3. fresh results are written back to the cache (atomic, content-addressed,
   so concurrent writers are safe).

The simulation kernel is deterministic (seeded tie-breaks, ordered event
heap), so a parallel sweep returns bit-identical metrics to a serial one;
``tests/test_exec_executor.py`` locks that in.

Scheme runs are gated by the static verifier (PR 1) before simulation:
a worker whose schedule has error diagnostics raises
:class:`VerifyFailure`, which the parent re-raises immediately after
canceling the remaining queue — a clear top-level error, not a hung pool.
"""

from __future__ import annotations

from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..experiments.config import ExperimentConfig
from ..experiments.runner import Runner, RunResult
from .cache import ResultCache

__all__ = ["RunPoint", "VerifyFailure", "ExecStats", "ExperimentExecutor"]


@dataclass(frozen=True)
class RunPoint:
    """One cell of the experiment grid."""

    workload: str
    policy: str
    scheme: bool
    config: ExperimentConfig

    def label(self) -> str:
        tag = "scheme" if self.scheme else "plain"
        return f"{self.workload}/{self.policy}/{tag}"


class VerifyFailure(RuntimeError):
    """Static schedule verification failed for a grid point.

    Carries only strings so it pickles cleanly across the process pool.
    """

    def __init__(self, label: str, report_text: str):
        super().__init__(
            f"schedule verification failed for {label}:\n{report_text}"
        )
        self.label = label
        self.report_text = report_text

    def __reduce__(self):
        return (VerifyFailure, (self.label, self.report_text))


def execute_point(
    runner: Runner, point: RunPoint, verify: bool = True
) -> RunResult:
    """Verify (scheme runs) then simulate one grid point on ``runner``."""
    cfg = point.config
    if verify and point.scheme:
        from ..analysis import RuntimeModel, verify_schedule

        compiled = runner.compilation(point.workload, cfg)
        report = verify_schedule(
            compiled.trace,
            compiled.book,
            runtime=RuntimeModel.from_session_config(cfg.session_config()),
            granularity=cfg.granularity,
            include_lint=False,
        )
        if report.has_errors:
            raise VerifyFailure(
                point.label(), report.render_text(title=point.label())
            )
    return runner.run(
        point.workload, point.policy, point.scheme, config=cfg
    )


# ----------------------------------------------------------------------
# Worker side.  One Runner per worker process: traces and compilations are
# memoized across every point the worker serves (the memo keys include the
# relevant config fields, so sweep points share their workload trace).
# ----------------------------------------------------------------------
_WORKER_RUNNER: Optional[Runner] = None


def _worker_run(point: RunPoint, verify: bool) -> RunResult:
    global _WORKER_RUNNER
    if _WORKER_RUNNER is None:
        _WORKER_RUNNER = Runner(point.config)
    return execute_point(_WORKER_RUNNER, point, verify=verify)


@dataclass
class ExecStats:
    """What one :meth:`ExperimentExecutor.run_points` call actually did."""

    points: int = 0
    cache_hits: int = 0
    simulated: int = 0

    def merged(self, other: "ExecStats") -> "ExecStats":
        return ExecStats(
            points=self.points + other.points,
            cache_hits=self.cache_hits + other.cache_hits,
            simulated=self.simulated + other.simulated,
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "points": self.points,
            "cache_hits": self.cache_hits,
            "simulated": self.simulated,
        }


class ExperimentExecutor:
    """Cache-aware, optionally parallel driver for a grid of run points."""

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        verify: bool = True,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1: {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.verify = verify
        self.stats = ExecStats()

    # ------------------------------------------------------------------
    def run_points(
        self, points: Iterable[RunPoint]
    ) -> dict[RunPoint, RunResult]:
        """Resolve every point (cache, then simulate); returns point→result.

        Duplicate points are resolved once.  Results are deterministic and
        independent of ``jobs``.
        """
        unique: list[RunPoint] = []
        seen: set[RunPoint] = set()
        for point in points:
            if point not in seen:
                seen.add(point)
                unique.append(point)

        results: dict[RunPoint, RunResult] = {}
        misses: list[RunPoint] = []
        for point in unique:
            cached = None
            if self.cache is not None:
                cached = self.cache.lookup(
                    point.config, point.workload, point.policy, point.scheme
                )
            if cached is not None:
                results[point] = cached
                self.stats.cache_hits += 1
            else:
                misses.append(point)
        self.stats.points += len(unique)

        if misses:
            if self.jobs <= 1 or len(misses) == 1:
                self._run_serial(misses, results)
            else:
                self._run_parallel(misses, results)
            if self.cache is not None:
                for point in misses:
                    self.cache.store(
                        point.config,
                        point.workload,
                        point.policy,
                        point.scheme,
                        results[point],
                    )
            self.stats.simulated += len(misses)
        return results

    def _run_serial(
        self, misses: Sequence[RunPoint], results: dict[RunPoint, RunResult]
    ) -> None:
        runner = Runner(misses[0].config)
        for point in misses:
            results[point] = execute_point(runner, point, verify=self.verify)

    def _run_parallel(
        self, misses: Sequence[RunPoint], results: dict[RunPoint, RunResult]
    ) -> None:
        pool = ProcessPoolExecutor(max_workers=min(self.jobs, len(misses)))
        try:
            futures = {
                pool.submit(_worker_run, point, self.verify): point
                for point in misses
            }
            done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
            error = next(
                (f.exception() for f in done if f.exception() is not None),
                None,
            )
            if error is not None:
                for future in not_done:
                    future.cancel()
                pool.shutdown(wait=False, cancel_futures=True)
                raise error
            for future, point in futures.items():
                results[point] = future.result()
        except BaseException:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        pool.shutdown()

    # ------------------------------------------------------------------
    def warm_runner(
        self, runner: Runner, points: Iterable[RunPoint]
    ) -> dict[RunPoint, RunResult]:
        """Resolve ``points`` and seed them into ``runner``'s memo table.

        Figure drivers then find every grid cell already materialized and
        never fall back to in-process simulation.
        """
        results = self.run_points(points)
        for point, result in results.items():
            runner.seed_result(
                point.workload, point.policy, point.scheme, point.config,
                result,
            )
        return results
