"""Behavioural tests of the five power policies (plus the oracle).

Each test drives a scripted request pattern against one policy on a
shrunken-transition disk spec and asserts the decisions the paper ascribes
to that policy.
"""

import pytest

from repro.disk import states as st
from repro.power import (
    HistoryBasedMultiSpeed,
    NoPowerManagement,
    OracleSpinDown,
    PredictionSpinDown,
    SimpleSpinDown,
    StaggeredMultiSpeed,
    make_policy,
    speed_for_idle,
)

from conftest import drain, fast_spec, make_drive, multispeed_fast_spec, submit_read


class TestFactory:
    def test_all_names_resolve(self):
        for name in ("default", "simple", "prediction", "history", "staggered"):
            assert make_policy(name).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_policy("nope")

    def test_kwargs_forwarded(self):
        policy = make_policy("simple", timeout=3.5)
        assert policy.timeout == 3.5

    def test_unbound_policy_has_no_sim(self):
        with pytest.raises(RuntimeError):
            _ = SimpleSpinDown().sim


class TestNoPowerManagement:
    def test_never_spins_down(self, sim):
        drive = make_drive(sim)
        drive.attach_policy(NoPowerManagement())
        submit_read(sim, drive, 0.0)
        submit_read(sim, drive, 100.0)
        drain(sim, drive)
        assert drive.stats.spin_downs == 0
        assert drive.timeline.time_in_state(st.STANDBY) == 0


class TestSimpleSpinDown:
    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            SimpleSpinDown(timeout=-1)

    def test_spins_down_after_timeout(self, sim):
        drive = make_drive(sim)
        drive.attach_policy(SimpleSpinDown(timeout=1.0))
        submit_read(sim, drive, 0.0)
        submit_read(sim, drive, 50.0)
        drain(sim, drive)
        assert drive.stats.spin_downs >= 1
        assert drive.timeline.time_in_state(st.STANDBY) > 0

    def test_short_gap_does_not_trigger(self, sim):
        drive = make_drive(sim)
        drive.attach_policy(SimpleSpinDown(timeout=5.0))
        submit_read(sim, drive, 0.0)
        second = submit_read(sim, drive, 2.0)
        drain(sim, drive)
        # The inter-request gap was below the timeout: the second request
        # found an awake disk.  (The trailing idle after it legitimately
        # spins the disk down once.)
        assert second.response_time < 1.0
        assert drive.stats.spin_downs == 1

    def test_request_pays_spin_up_latency(self, sim):
        spec = fast_spec(spin_up_time=4.0)
        drive = make_drive(sim, spec)
        drive.attach_policy(SimpleSpinDown(timeout=0.5))
        submit_read(sim, drive, 0.0)
        late = submit_read(sim, drive, 30.0)
        drain(sim, drive)
        assert late.response_time >= 4.0


class TestPredictionSpinDown:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PredictionSpinDown(breakeven_margin=0)
        with pytest.raises(ValueError):
            PredictionSpinDown(min_observe=-1)
        with pytest.raises(ValueError):
            PredictionSpinDown(fallback_factor=-1)

    def _gap_train(self, sim, drive, gaps):
        t = 0.0
        for gap in gaps:
            submit_read(sim, drive, t)
            t += gap
        submit_read(sim, drive, t)

    def test_spins_down_immediately_once_history_predicts_long(self, sim):
        spec = fast_spec()  # breakeven well under 100s
        drive = make_drive(sim, spec)
        policy = PredictionSpinDown(fallback_factor=0)
        drive.attach_policy(policy)
        # A run of equal 100s gaps: gap 1 observed, gaps 2+ predicted.
        self._gap_train(sim, drive, [100.0] * 4)
        drain(sim, drive)
        assert policy.spin_down_decisions >= 2
        assert drive.timeline.time_in_state(st.STANDBY) > 0

    def test_never_fires_on_short_gap_history(self, sim):
        drive = make_drive(sim)
        policy = PredictionSpinDown(fallback_factor=0)
        drive.attach_policy(policy)
        self._gap_train(sim, drive, [2.0] * 10)
        drain(sim, drive)
        assert policy.spin_down_decisions == 0

    def test_proactive_wake_hides_latency(self, sim):
        spec = fast_spec(spin_up_time=4.0, spin_down_time=1.0)
        drive = make_drive(sim, spec)
        policy = PredictionSpinDown(fallback_factor=0)
        drive.attach_policy(policy)
        gaps = [100.0] * 5
        t = 0.0
        reqs = []
        for gap in gaps:
            reqs.append(submit_read(sim, drive, t))
            t += gap
        reqs.append(submit_read(sim, drive, t))
        drain(sim, drive)
        # After warm-up, requests land on an already-awake disk.
        assert reqs[-1].response_time < 1.0

    def test_fallback_catches_unpredicted_long_gap(self, sim):
        spec = fast_spec()
        drive = make_drive(sim, spec)
        policy = PredictionSpinDown(fallback_factor=0.5)
        drive.attach_policy(policy)
        # Short-gap history, then one enormous gap.
        self._gap_train(sim, drive, [1.0] * 5 + [400.0])
        drain(sim, drive)
        assert policy.fallback_spin_downs == 1

    def test_micro_gaps_not_observed(self, sim):
        drive = make_drive(sim)
        policy = PredictionSpinDown(min_observe=0.5, fallback_factor=0)
        drive.attach_policy(policy)
        self._gap_train(sim, drive, [0.2] * 5 + [50.0])
        drain(sim, drive)
        # The 0.2s gaps are filtered; only the 50s gap and the trailing
        # simulation-end idle qualify as observations.
        assert policy.predictor.observations == 2
        assert policy.predictor.recent[0] == pytest.approx(50.0, abs=0.1)


class TestHistoryBasedMultiSpeed:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            HistoryBasedMultiSpeed(utilization_bound=0)
        with pytest.raises(ValueError):
            HistoryBasedMultiSpeed(utilization_bound=1.5)
        with pytest.raises(ValueError):
            HistoryBasedMultiSpeed(min_observe=-1)
        with pytest.raises(ValueError):
            HistoryBasedMultiSpeed(escalate_after=-1)
        with pytest.raises(ValueError):
            HistoryBasedMultiSpeed(decision_delay=-1)

    def test_dives_on_predicted_long_gaps(self, sim):
        spec = multispeed_fast_spec()
        drive = make_drive(sim, spec)
        policy = HistoryBasedMultiSpeed()
        drive.attach_policy(policy)
        t = 0.0
        for _ in range(5):
            submit_read(sim, drive, t)
            t += 60.0
        submit_read(sim, drive, t)
        drain(sim, drive)
        assert min(policy.speed_choices) < spec.max_rpm
        assert drive.timeline.time_in_state(st.idle_at(spec.min_rpm)) > 0

    def test_stays_at_max_for_tiny_gaps(self, sim):
        spec = multispeed_fast_spec()
        drive = make_drive(sim, spec)
        policy = HistoryBasedMultiSpeed(escalate_after=0)
        drive.attach_policy(policy)
        t = 0.0
        for _ in range(10):
            submit_read(sim, drive, t)
            t += 0.4
        drain(sim, drive)
        assert drive.stats.rpm_steps == 0

    def test_escalation_rescues_unpredicted_gap(self, sim):
        spec = multispeed_fast_spec()
        drive = make_drive(sim, spec)
        policy = HistoryBasedMultiSpeed(escalate_after=1.0)
        drive.attach_policy(policy)
        # History of sub-step gaps, then a giant one.
        t = 0.0
        for _ in range(6):
            submit_read(sim, drive, t)
            t += 0.4
        submit_read(sim, drive, t + 300.0)
        drain(sim, drive)
        assert policy.escalations >= 1
        assert drive.current_rpm < spec.max_rpm or drive.stats.rpm_steps > 0

    def test_returns_to_max_on_arrival(self, sim):
        spec = multispeed_fast_spec()
        drive = make_drive(sim, spec)
        drive.attach_policy(HistoryBasedMultiSpeed())
        t = 0.0
        for _ in range(4):
            submit_read(sim, drive, t)
            t += 30.0
        drain(sim, drive)
        assert drive.target_rpm in (spec.max_rpm, drive.current_rpm)


class TestSpeedForIdle:
    def test_zero_idle_gives_max(self):
        spec = multispeed_fast_spec()
        assert speed_for_idle(spec, 0.0) == spec.max_rpm

    def test_long_idle_gives_min(self):
        spec = multispeed_fast_spec()
        assert speed_for_idle(spec, 10_000.0) == spec.min_rpm

    def test_monotone_in_idle_length(self):
        spec = multispeed_fast_spec()
        speeds = [speed_for_idle(spec, x) for x in (0.5, 2, 5, 20, 100)]
        assert speeds == sorted(speeds, reverse=True)

    def test_round_trip_fits_bound(self):
        spec = multispeed_fast_spec()
        idle = 10.0
        bound = 0.5
        rpm = speed_for_idle(spec, idle, bound)
        round_trip = 2 * spec.rpm_change_time(spec.max_rpm, rpm)
        assert round_trip <= idle * bound

    def test_exact_threshold_takes_the_lower_speed(self):
        """Pin the boundary: when ``2·ramp == idle·bound`` *exactly*,
        the ``<=`` comparison admits the level — the policy drops speed
        rather than staying at full RPM.  With power-of-two operands
        both sides are float-exact, so this is deterministic, and a
        future rewrite to ``<`` (or a rearrangement that divides instead
        of multiplying) would flip it.
        """
        spec = multispeed_fast_spec()
        level = spec.rpm_levels[1]  # one step below max
        ramp = spec.rpm_change_time(spec.max_rpm, level)
        bound = 0.5
        predicted = 4.0 * ramp  # 2·ramp == predicted·bound exactly
        assert 2.0 * ramp == predicted * bound
        assert speed_for_idle(spec, predicted, bound) == level

    def test_just_below_threshold_stays_at_max(self):
        spec = multispeed_fast_spec()
        level = spec.rpm_levels[1]
        ramp = spec.rpm_change_time(spec.max_rpm, level)
        predicted = 4.0 * ramp
        import math
        assert (
            speed_for_idle(spec, math.nextafter(predicted, 0.0), 0.5)
            == spec.max_rpm
        )

    @pytest.mark.parametrize("level_index", [1, 2, 3])
    def test_exact_threshold_deterministic_per_level(self, level_index):
        """At each level's exact threshold the chosen speed is that
        level itself: it qualifies, and every slower level's round trip
        strictly exceeds the budget."""
        spec = multispeed_fast_spec()
        level = spec.rpm_levels[level_index]
        ramp = spec.rpm_change_time(spec.max_rpm, level)
        predicted = 4.0 * ramp
        for _ in range(3):  # no hidden state: identical calls agree
            assert speed_for_idle(spec, predicted, 0.5) == level


class TestStaggered:
    def test_negative_dwell_rejected(self):
        with pytest.raises(ValueError):
            StaggeredMultiSpeed(step_timeout=-1)

    def test_walks_down_ladder_during_long_idle(self, sim):
        spec = multispeed_fast_spec()
        drive = make_drive(sim, spec)
        drive.attach_policy(StaggeredMultiSpeed(step_timeout=0.5))
        submit_read(sim, drive, 0.0)
        submit_read(sim, drive, 60.0)
        drain(sim, drive)
        assert drive.timeline.time_in_state(st.idle_at(spec.min_rpm)) > 0

    def test_sub_dwell_gaps_never_trigger(self, sim):
        spec = multispeed_fast_spec()
        drive = make_drive(sim, spec)
        drive.attach_policy(StaggeredMultiSpeed(step_timeout=2.0))
        t = 0.0
        for _ in range(8):
            submit_read(sim, drive, t)
            t += 1.0
        # Check before the trailing idle outlives the dwell.
        sim.run(until=t + 0.5)
        assert drive.stats.rpm_steps == 0
        drive.finalize()

    def test_arrival_retargets_max(self, sim):
        spec = multispeed_fast_spec()
        drive = make_drive(sim, spec)
        drive.attach_policy(StaggeredMultiSpeed(step_timeout=0.5))
        submit_read(sim, drive, 0.0)
        submit_read(sim, drive, 30.0)
        # Right after the arrival the policy targets the fastest speed
        # (Figure 3(b): "the disk is transitioned back to the fastest
        # speed" when the next request comes).
        sim.run(until=30.05)
        assert drive.target_rpm == spec.max_rpm
        sim.run()
        drive.finalize()

    def test_staggered_descends_gradually(self, sim):
        """Intermediate speeds appear in the timeline (Fig. 3(b))."""
        spec = multispeed_fast_spec()
        drive = make_drive(sim, spec)
        drive.attach_policy(StaggeredMultiSpeed(step_timeout=1.0))
        submit_read(sim, drive, 0.0)
        submit_read(sim, drive, 40.0)
        drain(sim, drive)
        states = {iv.state for iv in drive.timeline.intervals()}
        intermediate = [
            st.idle_at(r) for r in spec.rpm_levels[1:-1]
        ]
        assert sum(1 for s in intermediate if s in states) >= 3


class TestOracle:
    def test_oracle_spins_down_only_when_profitable(self, sim):
        spec = fast_spec()
        drive = make_drive(sim, spec)
        be = spec.breakeven_idle_seconds()
        # Idle starts at ~t0 (after first request) and at ~t1.
        knowledge = [(0.03, be * 3), (be * 3 + 0.06, 1.0)]
        policy = OracleSpinDown(knowledge)
        drive.attach_policy(policy)
        submit_read(sim, drive, 0.0)
        submit_read(sim, drive, be * 3)
        submit_read(sim, drive, be * 3 + 1.0)
        drain(sim, drive)
        assert policy.correct_decisions == 1
        assert drive.stats.spin_downs == 1

    def test_oracle_hides_latency(self, sim):
        spec = fast_spec(spin_up_time=4.0, spin_down_time=1.0)
        drive = make_drive(sim, spec)
        be = spec.breakeven_idle_seconds()
        gap = be * 3
        policy = OracleSpinDown([(0.03, gap)])
        drive.attach_policy(policy)
        submit_read(sim, drive, 0.0)
        late = submit_read(sim, drive, gap)
        drain(sim, drive)
        assert late.response_time < 1.0

    def test_oracle_with_no_knowledge_does_nothing(self, sim):
        drive = make_drive(sim)
        policy = OracleSpinDown([])
        drive.attach_policy(policy)
        submit_read(sim, drive, 0.0)
        submit_read(sim, drive, 500.0)
        drain(sim, drive)
        assert drive.stats.spin_downs == 0
        assert policy.unmatched_idles >= 1

    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            OracleSpinDown([], tolerance=0)
