"""MPI-IO-like access layer between client nodes and the parallel FS.

:class:`MPIIO` is the facade the application processes and scheduler
threads call.  Every call maps a (file, block-run) to striped per-node
extents, moves the request and data over the network links, and drives the
I/O node read/write paths.  Calls return a :class:`~repro.sim.events.Signal`
that fires on completion, so simulation processes just ``yield`` them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..net.network import Network
from ..sim.engine import Simulator
from ..sim.events import Signal
from ..storage.filesystem import ParallelFileSystem
from ..storage.striping import StripedFile

__all__ = ["IOStats", "MPIIO"]

#: Size of an I/O request message (header, offsets) on the wire.
REQUEST_MESSAGE_BYTES = 256


@dataclass
class IOStats:
    """Counters over every MPI-IO level call."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    total_read_latency: float = 0.0

    @property
    def mean_read_latency(self) -> float:
        return self.total_read_latency / self.reads if self.reads else 0.0


class MPIIO:
    """The I/O middleware: striping + network + I/O node interaction."""

    def __init__(
        self,
        sim: Simulator,
        pfs: ParallelFileSystem,
        network: Network,
        block_bytes: dict[str, int],
    ):
        """``block_bytes`` maps program file names to their block size (the
        unit the program's block indices address)."""
        self.sim = sim
        self.pfs = pfs
        self.network = network
        self.block_bytes = dict(block_bytes)
        self.stats = IOStats()
        self._tracer = sim.obs.tracer
        self._rids = itertools.count()

    # ------------------------------------------------------------------
    def _extents(self, file: StripedFile, block: int, blocks: int, name: str):
        bb = self.block_bytes[name]
        offset = block * bb
        size = blocks * bb
        return self.pfs.map_access(file, offset, size)

    def signature(self, name: str, block: int, blocks: int = 1) -> int:
        """Access signature for a block run (compiler view)."""
        file = self.pfs.file(name)
        bb = self.block_bytes[name]
        return self.pfs.signature(file, block * bb, blocks * bb)

    # ------------------------------------------------------------------
    def read(self, name: str, block: int, blocks: int = 1) -> Signal:
        """MPI_File_read of a contiguous block run.

        Per touched node: request message out → node read (cache/disk) →
        data back.  The returned signal fires when the *last* node's data
        has arrived.
        """
        file = self.pfs.file(name)
        extents = self._extents(file, block, blocks, name)
        done = Signal(f"read.{name}.{block}")
        issued_at = self.sim.now
        self.stats.reads += 1
        self.stats.bytes_read += sum(e.size for e in extents)
        pending = {"n": len(extents)}

        tracer = self._tracer
        rid = -1
        if tracer.detail:
            rid = next(self._rids)
            tracer.begin(
                "io.read",
                rid=rid,
                file=name,
                block=block,
                blocks=blocks,
                nodes=len(extents),
            )

        def finish() -> None:
            self.stats.total_read_latency += self.sim.now - issued_at
            if tracer.detail:
                tracer.end("io.read", rid=rid, latency=self.sim.now - issued_at)
            self.sim.fire(done)

        if not extents:
            self.sim.schedule(0.0, finish)
            return done

        for ext in extents:
            node = self.pfs.nodes[ext.node]

            def after_node_read(ext=ext) -> None:
                self.network.from_node(ext.node, ext.size, one_done)

            def after_request(ext=ext, after=after_node_read) -> None:
                self.pfs.nodes[ext.node].read(ext.node_offset, ext.size, after)

            def one_done() -> None:
                pending["n"] -= 1
                if pending["n"] == 0:
                    finish()

            self.network.to_node(ext.node, REQUEST_MESSAGE_BYTES, after_request)
        return done

    def write(self, name: str, block: int, blocks: int = 1) -> Signal:
        """MPI_File_write of a contiguous block run.

        Data moves to each node, lands in its write-back cache (fast), and
        a small ack returns.  Destage to disk happens asynchronously inside
        the I/O node.
        """
        file = self.pfs.file(name)
        extents = self._extents(file, block, blocks, name)
        done = Signal(f"write.{name}.{block}")
        self.stats.writes += 1
        self.stats.bytes_written += sum(e.size for e in extents)
        pending = {"n": len(extents)}

        tracer = self._tracer
        rid = -1
        if tracer.detail:
            rid = next(self._rids)
            tracer.begin(
                "io.write",
                rid=rid,
                file=name,
                block=block,
                blocks=blocks,
                nodes=len(extents),
            )

        def one_done() -> None:
            pending["n"] -= 1
            if pending["n"] == 0:
                if tracer.detail:
                    tracer.end("io.write", rid=rid)
                self.sim.fire(done)

        if not extents:
            def finish_empty() -> None:
                if tracer.detail:
                    tracer.end("io.write", rid=rid)
                self.sim.fire(done)

            self.sim.schedule(0.0, finish_empty)
            return done

        for ext in extents:
            def after_node_write(ext=ext) -> None:
                self.network.from_node(ext.node, REQUEST_MESSAGE_BYTES, one_done)

            def after_data(ext=ext, after=after_node_write) -> None:
                self.pfs.nodes[ext.node].write(ext.node_offset, ext.size, after)

            self.network.to_node(ext.node, ext.size, after_data)
        return done
