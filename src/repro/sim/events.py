"""Event primitives for the discrete-event simulation kernel.

The kernel is deliberately small: a scheduled :class:`Event` is a callback
bound to a simulation time, and a :class:`Signal` is a one-shot waitable
condition that simulation processes (generators) can block on.  This is the
minimal vocabulary needed to co-simulate client processes, runtime scheduler
threads, network transfers and disk service loops.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

__all__ = ["Event", "Timeout", "ComputePhase", "Signal", "AllOf", "AnyOf"]

_event_ids = itertools.count()


class Event:
    """A callback scheduled at an absolute simulation time.

    Instances are created by :meth:`repro.sim.engine.Simulator.schedule`;
    user code normally only keeps them around to :meth:`cancel` them.

    The owning simulator stores events inside ``(time, seq, Event)`` heap
    entries, so ordering is resolved by C-level tuple comparison on the
    ``(time, seq)`` prefix and :meth:`__lt__` stays off the hot path (it is
    kept for explicit comparisons in user code and tests).
    """

    __slots__ = ("time", "seq", "callback", "args", "canceled", "sim")

    def __init__(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple,
        sim: Optional[Any] = None,
    ):
        self.time = time
        self.seq = next(_event_ids)
        self.callback = callback
        self.args = args
        self.canceled = False
        self.sim = sim

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent).

        Canceling notifies the owning simulator so its live-event counter
        stays exact and stale heap entries can be compacted lazily.
        """
        if not self.canceled:
            self.canceled = True
            if self.sim is not None:
                self.sim._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        status = "canceled" if self.canceled else "pending"
        return f"Event(t={self.time:.6f}, {status}, cb={self.callback!r})"


class Timeout:
    """Yielded by a process generator to sleep for ``delay`` seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        self.delay = delay

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timeout({self.delay})"


class ComputePhase:
    """Yielded by a process to jump to a precomputed *absolute* time.

    The analytic fast path collapses a run of ``n_slots`` I/O-free compute
    slots into one event.  The target time is computed by the client with
    exactly the chained additions the per-slot path would have performed
    (``t = t + cost`` per slot), so it must be delivered verbatim: going
    through :class:`Timeout` would re-derive it as ``now + (t - now)``,
    which is *not* ``t`` in floating point.  Kernels honour it via
    ``schedule_at_exact``.
    """

    __slots__ = ("resume_at", "n_slots")

    def __init__(self, resume_at: float, n_slots: int = 1):
        if n_slots < 1:
            raise ValueError(f"phase must cover at least one slot: {n_slots}")
        self.resume_at = resume_at
        self.n_slots = n_slots

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ComputePhase(resume_at={self.resume_at}, slots={self.n_slots})"


_NO_WAITERS: tuple = ()


class Signal:
    """A one-shot waitable condition carrying an optional value.

    Processes yield a Signal to block until some other actor calls
    :meth:`fire`.  Multiple processes may wait on the same signal; all are
    resumed (in wait order) when it fires.  Firing twice is an error unless
    the signal was constructed with ``restartable=True``, in which case
    :meth:`reset` re-arms it.

    The waiter list is allocated lazily: most signals (per-slot clock
    advances, uncontended completions) fire with no waiter ever attached,
    so eagerly building a list per signal is pure allocator pressure on
    the hot path.
    """

    __slots__ = ("name", "fired", "value", "_waiters", "restartable")

    def __init__(self, name: str = "", restartable: bool = False):
        self.name = name
        self.fired = False
        self.value: Any = None
        self.restartable = restartable
        self._waiters: Optional[list[Callable[[Any], None]]] = None

    def add_waiter(self, resume: Callable[[Any], None]) -> None:
        """Register a resume callback (kernel use)."""
        waiters = self._waiters
        if waiters is None:
            self._waiters = [resume]
        else:
            waiters.append(resume)

    def fire(self, value: Any = None) -> "list[Callable[[Any], None]] | tuple":
        """Mark the signal fired and return the callbacks to resume.

        The engine (not the caller) invokes the returned callbacks so that
        resumption happens under the simulation clock.
        """
        if self.fired and not self.restartable:
            raise RuntimeError(f"signal {self.name!r} fired twice")
        self.fired = True
        self.value = value
        waiters = self._waiters
        if waiters is None:
            return _NO_WAITERS
        self._waiters = None
        return waiters

    def reset(self) -> None:
        """Re-arm a restartable signal."""
        if not self.restartable:
            raise RuntimeError(f"signal {self.name!r} is not restartable")
        self.fired = False
        self.value = None

    @property
    def waiter_count(self) -> int:
        waiters = self._waiters
        return 0 if waiters is None else len(waiters)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self.fired else f"pending({self.waiter_count} waiters)"
        return f"Signal({self.name!r}, {state})"


class AllOf:
    """Yielded by a process to wait until *all* given signals have fired."""

    __slots__ = ("signals",)

    def __init__(self, signals: list[Signal]):
        self.signals = list(signals)


class AnyOf:
    """Yielded by a process to wait until *any* of the given signals fires.

    The process resumes with the first fired signal as value.
    """

    __slots__ = ("signals",)

    def __init__(self, signals: list[Signal]):
        self.signals = list(signals)
        if not self.signals:
            raise ValueError("AnyOf requires at least one signal")


class ProcessExit(Exception):
    """Raised inside a process generator to terminate it early."""

    def __init__(self, value: Optional[Any] = None):
        super().__init__(value)
        self.value = value
