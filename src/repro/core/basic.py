"""The basic data access scheduling algorithm (§IV-B1, Figure 11).

All accesses have length 1.  Accesses are processed in non-decreasing slack
length (shortest — most constrained — first).  For each access, every slot
in its window is examined; slots already holding another access from the
same process are unavailable; each available slot *t* gets a reuse factor

    R_t = Σ_{k ∈ [−δ, δ]}  σ_{|k|} / d_{t+k}

with σ_{|k|} = 1 − |k|/(δ+1) and d_{t+k} the signature distance between
the access and the group-active signature G_{t+k} of already-scheduled
accesses.  The slot with the highest reuse factor wins (ties broken
randomly, seeded); the group-active signature at the winner is updated.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .access import DataAccess
from .signature import inverse_distance

__all__ = ["BasicScheduler", "ScheduleState"]


@dataclass
class ScheduleState:
    """Mutable occupancy state shared by the schedulers.

    * ``group``: slot → group active signature G_t (OR of the signatures of
      every *unit* access occupying that slot);
    * ``occupied``: process → set of occupied slots (one access per process
      per slot);
    * ``node_load``: slot → per-node scheduled-access counts (θ variant).
    """

    n_nodes: int
    group: dict[int, int] = field(default_factory=dict)
    occupied: dict[int, set[int]] = field(default_factory=dict)
    node_load: dict[int, list[int]] = field(default_factory=dict)

    def group_at(self, slot: int) -> int:
        return self.group.get(slot, 0)

    def is_available(self, access: DataAccess, slot: int) -> bool:
        """A slot is available when none of the slots the access would
        occupy already holds an access from the same process."""
        taken = self.occupied.get(access.process)
        if not taken:
            return True
        return all(s not in taken for s in range(slot, slot + access.length))

    def commit(self, access: DataAccess, slot: int) -> None:
        """Record the placement of ``access`` at ``slot``."""
        access.scheduled_slot = slot
        taken = self.occupied.setdefault(access.process, set())
        for s in range(slot, slot + access.length):
            taken.add(s)
            self.group[s] = self.group.get(s, 0) | access.signature
            loads = self.node_load.setdefault(s, [0] * self.n_nodes)
            for node in range(self.n_nodes):
                if access.signature >> node & 1:
                    loads[node] += 1

    def load_at(self, slot: int) -> list[int]:
        return self.node_load.get(slot, [0] * self.n_nodes)


class BasicScheduler:
    """Figure 11's algorithm: unit-length accesses, max-reuse placement."""

    def __init__(
        self,
        n_nodes: int,
        delta: int = 20,
        seed: int = 0,
        tie_break: str = "random",
        order: str = "shortest",
        weight_shape: str = "linear",
    ):
        """``delta`` is the vertical reuse range δ (Table II default 20);
        ``tie_break`` is ``"random"`` (the paper), ``"first"``
        (deterministic, Figure 11's pseudo-code) or ``"latest"``.

        ``order`` selects the processing order — ``"shortest"`` slack
        first (the paper's §IV-B1 rationale), ``"longest"``, or
        ``"program"`` (by access id) — exposed for the ordering ablation.
        ``weight_shape`` selects the σ assignment: ``"linear"`` is the
        paper's Eq. 3 decay; ``"uniform"`` weighs the whole vertical range
        equally (the paper notes "there are many different ways to assign
        these weights") — exposed for the weight ablation.
        """
        if n_nodes < 1:
            raise ValueError(f"need at least one I/O node: {n_nodes}")
        if delta < 0:
            raise ValueError(f"delta must be non-negative: {delta}")
        if tie_break not in ("random", "first", "latest"):
            raise ValueError(f"unknown tie_break {tie_break!r}")
        if order not in ("shortest", "longest", "program"):
            raise ValueError(f"unknown order {order!r}")
        if weight_shape not in ("linear", "uniform"):
            raise ValueError(f"unknown weight_shape {weight_shape!r}")
        self.n_nodes = n_nodes
        self.delta = delta
        self.tie_break = tie_break
        self.order = order
        self.weight_shape = weight_shape
        self._rng = random.Random(seed)
        # σ_{|k|} for |k| = 0..δ (Eq. 3), or flat for the ablation.
        if weight_shape == "uniform":
            self._weights = [1.0] * (delta + 1)
        else:
            self._weights = [1.0 - k / (delta + 1) for k in range(delta + 1)]

    def _ordered(self, accesses: list[DataAccess]) -> list[DataAccess]:
        """Processing order; stable on (process, aid) for replayability."""
        if self.order == "longest":
            return sorted(
                accesses, key=lambda a: (-a.slack_length, a.process, a.aid)
            )
        if self.order == "program":
            return sorted(accesses, key=lambda a: a.aid)
        return sorted(
            accesses, key=lambda a: (a.slack_length, a.process, a.aid)
        )

    # ------------------------------------------------------------------
    def reuse_factor(
        self, access: DataAccess, slot: int, state: ScheduleState
    ) -> float:
        """R_t for placing ``access`` at ``slot`` under ``state``."""
        total = 0.0
        g = access.signature
        for k in range(-self.delta, self.delta + 1):
            group = state.group_at(slot + k)
            total += self._weights[abs(k)] * inverse_distance(
                g, group, self.n_nodes
            )
        return total

    def _candidate_slots(self, access: DataAccess, state: ScheduleState) -> list[int]:
        return [
            t
            for t in range(access.begin, access.end + 1)
            if state.is_available(access, t)
        ]

    # ------------------------------------------------------------------
    # Vectorized scoring
    # ------------------------------------------------------------------
    def _kernel(self, length: int) -> np.ndarray:
        """The σ-weight kernel for an access of ``length`` slots: a flat
        top of weight 1 across the access's own span with the decaying
        tails on both sides.  ``length=1`` reduces to the basic σ_|k|."""
        tail = self._weights[1:][::-1]  # σ_δ … σ_1
        top = [1.0] * length
        return np.array(tail + top + list(reversed(tail)), dtype=float)

    def _score_window(
        self, access: DataAccess, state: ScheduleState, first: int, last_start: int
    ) -> np.ndarray:
        """Reuse factors for every start slot in ``[first, last_start]``.

        Equivalent to calling :meth:`reuse_factor` per slot (the test
        suite asserts exact agreement) but computed as one convolution of
        the per-slot inverse distances with the σ kernel.
        """
        g = access.signature
        length = access.length  # flat-top width: slots t .. t+length-1
        lo = first - self.delta
        hi = last_start + length - 1 + self.delta
        group = state.group
        n = self.n_nodes
        inv = np.empty(hi - lo + 1, dtype=float)
        for i, s in enumerate(range(lo, hi + 1)):
            inv[i] = inverse_distance(g, group.get(s, 0), n)
        kernel = self._kernel(length)
        return np.convolve(inv, kernel, mode="valid")

    def _choose(self, scored: list[tuple[int, float]]) -> int:
        """Pick the best-scoring slot, applying the tie-break rule.

        ``random`` is the paper's stated rule; ``first`` matches Figure
        11's pseudo-code; ``latest`` prefers the slot nearest the consuming
        iteration, which keeps tie-broken seeds at their program-order
        positions instead of sprinkling them across long quiet regions
        (random seeding fragments exactly the idle periods the framework
        exists to create — see the tie-break ablation benchmark).
        """
        best_score = max(score for _t, score in scored)
        winners = [t for t, score in scored if score == best_score]
        if len(winners) == 1 or self.tie_break == "first":
            return winners[0]
        if self.tie_break == "latest":
            return winners[-1]
        return self._rng.choice(winners)

    def _first_last(self, access: DataAccess) -> tuple[int, int]:
        """Start-slot range the access may legally occupy."""
        return access.begin, access.end

    def scored_candidates(
        self, access: DataAccess, state: ScheduleState
    ) -> list[tuple[int, float]]:
        """(slot, reuse factor) for every available slot, via one
        vectorized scoring pass."""
        candidates = self._candidate_slots(access, state)
        if not candidates:
            return []
        first, last_start = self._first_last(access)
        scores = self._score_window(access, state, first, last_start)
        return [(t, float(scores[t - first])) for t in candidates]

    def place(
        self, access: DataAccess, state: ScheduleState
    ) -> Optional[int]:
        """Choose and commit a slot for one access.  Returns the slot, or
        None when every slot in the window is occupied (the access then
        stays at its original point)."""
        scored = self.scored_candidates(access, state)
        if not scored:
            access.scheduled_slot = access.original_slot
            return None
        slot = self._choose(scored)
        state.commit(access, slot)
        return slot

    # ------------------------------------------------------------------
    def schedule(self, accesses: list[DataAccess]) -> ScheduleState:
        """Run the full algorithm over ``accesses`` (mutates their
        ``scheduled_slot``) and return the final occupancy state."""
        state = ScheduleState(n_nodes=self.n_nodes)
        for access in self._ordered(accesses):
            self.place(access, state)
        return state
