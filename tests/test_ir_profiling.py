"""Tests for the profiling executor (trace_program)."""

import pytest

from repro.ir import (
    Compute,
    FileDecl,
    Loop,
    Program,
    Read,
    Write,
    trace_program,
    var,
)


def program(n_processes=2, phases=4):
    files = {
        "in": FileDecl("in", n_processes * phases, 1024),
        "out": FileDecl("out", n_processes * phases, 1024),
    }
    body = [
        Loop("i", 0, phases - 1, body=[
            Read("in", var("p") * phases + var("i")),
            Compute(0.5),
            Write("out", var("p") * phases + var("i")),
            Compute(0.25),
        ]),
    ]
    return Program("t", n_processes, files, body)


class TestSlotSemantics:
    def test_slots_count_compute_steps(self):
        trace = trace_program(program(n_processes=1, phases=4))
        assert trace.processes[0].n_slots == 8  # 2 computes x 4 phases

    def test_io_lands_in_current_slot(self):
        trace = trace_program(program(n_processes=1, phases=2))
        ios = trace.processes[0].ios
        # Read of phase 0 at slot 0; write of phase 0 after 1 compute -> slot 1.
        assert (ios[0].is_write, ios[0].slot) == (False, 0)
        assert (ios[1].is_write, ios[1].slot) == (True, 1)
        # Phase 1 starts at slot 2.
        assert ios[2].slot == 2

    def test_slot_costs_sum_to_total_compute(self):
        trace = trace_program(program(n_processes=1, phases=4))
        assert trace.processes[0].total_compute == pytest.approx(4 * 0.75)

    def test_granularity_merges_slots(self):
        fine = trace_program(program(n_processes=1, phases=4), granularity=1)
        coarse = trace_program(program(n_processes=1, phases=4), granularity=2)
        assert coarse.processes[0].n_slots == fine.processes[0].n_slots // 2
        assert coarse.processes[0].total_compute == pytest.approx(
            fine.processes[0].total_compute
        )

    def test_granularity_rescales_io_slots(self):
        coarse = trace_program(program(n_processes=1, phases=4), granularity=2)
        ios = coarse.processes[0].ios
        # Phase 0 read (step 0) and write (step 1) now share slot 0.
        assert ios[0].slot == 0
        assert ios[1].slot == 0

    def test_bad_granularity(self):
        with pytest.raises(ValueError):
            trace_program(program(), granularity=0)

    def test_trailing_io_gets_a_slot(self):
        files = {"f": FileDecl("f", 4, 1024)}
        prog = Program("t", 1, files, [Compute(1.0), Write("f", 0)])
        trace = trace_program(prog)
        assert trace.processes[0].n_slots == 2
        assert trace.processes[0].ios[0].slot == 1


class TestPerProcess:
    def test_every_process_traced(self):
        trace = trace_program(program(n_processes=3))
        assert [p.process for p in trace.processes] == [0, 1, 2]

    def test_p_binding_differs(self):
        trace = trace_program(program(n_processes=2, phases=2))
        blocks0 = [io.block for io in trace.processes[0].ios if not io.is_write]
        blocks1 = [io.block for io in trace.processes[1].ios if not io.is_write]
        assert blocks0 == [0, 1]
        assert blocks1 == [2, 3]

    def test_n_slots_is_global_max(self):
        files = {"f": FileDecl("f", 8, 1024)}
        body = [Loop("i", 0, var("p"), body=[Compute(1.0)])]
        prog = Program("skew", 3, files, body)
        trace = trace_program(prog)
        assert trace.n_slots == 3  # process 2 runs 3 steps


class TestTables:
    def test_all_ios_sorted(self):
        trace = trace_program(program(n_processes=2))
        ios = trace.all_ios()
        keys = [(io.slot, io.process, io.seq) for io in ios]
        assert keys == sorted(keys)

    def test_reads_writes_partition(self):
        trace = trace_program(program(n_processes=2, phases=3))
        assert len(trace.reads()) == 6
        assert len(trace.writes()) == 6

    def test_last_writer_table_sorted_per_block(self):
        files = {"f": FileDecl("f", 2, 1024)}
        body = [Loop("i", 0, 3, body=[Write("f", 0), Compute(1.0)])]
        prog = Program("w", 1, files, body)
        table = trace_program(prog).last_writer_table()
        slots = [s for s, _p in table[("f", 0)]]
        assert slots == sorted(slots)
        assert len(slots) == 4

    def test_multiblock_io_registers_every_block(self):
        files = {"f": FileDecl("f", 8, 1024)}
        prog = Program("m", 1, files, [Write("f", 2, blocks=3)])
        table = trace_program(prog).last_writer_table()
        assert set(table) == {("f", 2), ("f", 3), ("f", 4)}

    def test_block_keys(self):
        trace = trace_program(
            Program("m", 1, {"f": FileDecl("f", 8, 1024)},
                    [Read("f", 1, blocks=2)])
        )
        io = trace.processes[0].ios[0]
        assert list(io.block_keys()) == [("f", 1), ("f", 2)]
