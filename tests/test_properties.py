"""Property-based tests (hypothesis) on core data structures and the
paper's algorithmic invariants."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    DataAccess,
    SlackOptions,
    determine_slacks,
    difference,
    distance,
    group_signature,
    inverse_distance,
    make_scheduler,
    signature_bits,
    signature_from_nodes,
    similarity,
)
from repro.ir import var
from repro.sim import StateTimeline
from repro.storage import StorageCache, StripedFile, StripeMap

KB = 1024

signatures = st.integers(min_value=1, max_value=(1 << 8) - 1)
envs = st.fixed_dictionaries(
    {"i": st.integers(-50, 50), "j": st.integers(-50, 50),
     "p": st.integers(0, 31)}
)


def affine_exprs():
    return st.builds(
        lambda ci, cj, cp, c: var("i") * ci + var("j") * cj + var("p") * cp + c,
        st.integers(-5, 5), st.integers(-5, 5), st.integers(-5, 5),
        st.integers(-100, 100),
    )


class TestAffineProperties:
    @given(affine_exprs(), affine_exprs(), envs)
    def test_addition_homomorphic(self, a, b, env):
        assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)

    @given(affine_exprs(), st.integers(-7, 7), envs)
    def test_scaling_homomorphic(self, a, k, env):
        assert (a * k).evaluate(env) == k * a.evaluate(env)

    @given(affine_exprs(), envs)
    def test_subtraction_is_inverse(self, a, env):
        assert (a - a).evaluate(env) == 0

    @given(affine_exprs(), affine_exprs())
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(affine_exprs(), st.integers(-50, 50), envs)
    def test_substitute_then_evaluate(self, a, value, env):
        partial = a.substitute({"i": value})
        full_env = dict(env)
        full_env["i"] = value
        assert partial.evaluate(env) == a.evaluate(full_env)


class TestSignatureProperties:
    @given(signatures, signatures)
    def test_distance_symmetric(self, g1, g2):
        assert distance(g1, g2, 8) == distance(g2, g1, 8)

    @given(signatures)
    def test_self_distance_minimal(self, g):
        # distance(g, g) = n - |g|: the more nodes shared, the smaller.
        assert distance(g, g, 8) == 8 - g.bit_count()

    @given(signatures, signatures)
    def test_distance_bounds(self, g1, g2):
        d = distance(g1, g2, 8)
        assert 0 <= d <= 16

    @given(signatures, signatures)
    def test_similarity_plus_difference_consistent(self, g1, g2):
        # |g1| + |g2| = 2*similarity + difference.
        assert g1.bit_count() + g2.bit_count() == (
            2 * similarity(g1, g2) + difference(g1, g2)
        )

    @given(signatures, signatures)
    def test_inverse_distance_positive(self, g1, g2):
        assert inverse_distance(g1, g2, 8) > 0

    @given(st.lists(signatures, max_size=6))
    def test_group_signature_superset(self, sigs):
        g = group_signature(sigs)
        for s in sigs:
            assert g & s == s

    @given(st.sets(st.integers(0, 15), max_size=16))
    def test_nodes_roundtrip(self, nodes):
        sig = signature_from_nodes(nodes, 16)
        bits = signature_bits(sig, 16)
        assert {i for i, b in enumerate(bits) if b} == nodes


class TestStripeMapProperties:
    @given(
        st.integers(1, 16),                   # nodes
        st.integers(0, 7),                    # start node (mod later)
        st.integers(0, 4 * 1024 * KB),        # offset
        st.integers(0, 1024 * KB),            # size
    )
    @settings(max_examples=60)
    def test_extents_partition_request(self, n_nodes, start, offset, size):
        smap = StripeMap(64 * KB, n_nodes)
        f = StripedFile("f", 8 * 1024 * KB, start_node=start % n_nodes)
        assume(offset + size <= f.size)
        exts = smap.map_extent(f, offset, size)
        assert sum(e.size for e in exts) == size
        assert all(0 <= e.node < n_nodes for e in exts)

    @given(st.integers(1, 16), st.integers(0, 63))
    def test_round_robin_complete(self, n_nodes, stripe):
        smap = StripeMap(64 * KB, n_nodes)
        f = StripedFile("f", 8 * 1024 * KB, start_node=0)
        node = smap.node_of_stripe(f, stripe)
        assert node == stripe % n_nodes

    @given(st.integers(1, 8), st.integers(0, 1024 * KB), st.integers(1, 512 * KB))
    @settings(max_examples=60)
    def test_signature_covers_exactly_touched_nodes(self, n_nodes, offset, size):
        smap = StripeMap(64 * KB, n_nodes)
        f = StripedFile("f", 4 * 1024 * KB, start_node=0)
        assume(offset + size <= f.size)
        sig = smap.signature(f, offset, size)
        nodes = {e.node for e in smap.map_extent(f, offset, size)}
        assert sig == sum(1 << n for n in nodes)


class TestCacheProperties:
    @given(
        st.integers(1, 8),
        st.lists(st.tuples(st.integers(0, 30), st.booleans()), max_size=60),
    )
    def test_capacity_never_exceeded(self, capacity, ops):
        cache = StorageCache(capacity * 64 * KB, 64 * KB)
        for block, dirty in ops:
            cache.insert(block, dirty)
            assert len(cache) <= capacity

    @given(st.lists(st.tuples(st.integers(0, 30), st.booleans()), max_size=60))
    def test_dirty_blocks_never_lost(self, ops):
        """Every dirtied block is either still dirty in the cache, was
        returned for flushing on eviction, or was explicitly cleaned."""
        cache = StorageCache(4 * 64 * KB, 64 * KB)
        flushed = set()
        for block, dirty in ops:
            flushed.update(cache.insert(block, dirty))
        dirty_now = set(cache.dirty_blocks())
        for block, dirty in ops:
            if dirty:
                assert (
                    block in dirty_now
                    or block in flushed
                    or cache.contains(block) is False
                )

    @given(st.lists(st.integers(0, 10), min_size=1, max_size=40))
    def test_hit_iff_recently_inserted(self, blocks):
        cache = StorageCache(100 * 64 * KB, 64 * KB)  # never evicts here
        seen = set()
        for block in blocks:
            assert cache.lookup(block) == (block in seen)
            cache.insert(block)
            seen.add(block)


class TestTimelineProperties:
    @given(st.lists(st.tuples(st.floats(0.001, 10.0), st.sampled_from(
        ["a", "b", "c"])), max_size=30))
    def test_durations_partition_horizon(self, steps):
        tl = StateTimeline("x", "a")
        now = 0.0
        for dt, state in steps:
            now += dt
            tl.transition(now, state)
        tl.finalize(now + 1.0)
        total = sum(iv.duration for iv in tl.intervals())
        assert total == pytest.approx(now + 1.0)

    @given(st.lists(st.tuples(st.floats(0.001, 10.0), st.sampled_from(
        ["a", "b"])), max_size=30))
    def test_merged_periods_within_horizon_and_disjoint(self, steps):
        tl = StateTimeline("x", "a")
        now = 0.0
        for dt, state in steps:
            now += dt
            tl.transition(now, state)
        tl.finalize(now + 1.0)
        merged = tl.merged_periods(lambda s: s == "a")
        for i, iv in enumerate(merged):
            assert 0 <= iv.start < iv.end <= now + 1.0
            if i:
                assert iv.start >= merged[i - 1].end


def scheduled_accesses(draw):
    n = draw(st.integers(1, 20))
    accesses = []
    for aid in range(n):
        begin = draw(st.integers(0, 20))
        end = begin + draw(st.integers(0, 15))
        accesses.append(
            DataAccess(
                aid=aid,
                process=draw(st.integers(0, 3)),
                original_slot=end,
                begin=begin,
                end=end,
                signature=draw(signatures),
                length=draw(st.integers(1, 3)),
            )
        )
    return accesses


class TestSchedulerProperties:
    @given(st.composite(scheduled_accesses)())
    @settings(max_examples=40, deadline=None)
    def test_invariants_hold_for_any_input(self, accesses):
        sched = make_scheduler(8, delta=4, theta=3, seed=0)
        state = sched.schedule(accesses)
        per_process_slots: dict[int, set] = {}
        for a in accesses:
            # 1. Everything gets a decision.
            assert a.scheduled_slot is not None
            # 2. Start never precedes the window.
            assert a.scheduled_slot >= a.begin or (
                a.scheduled_slot == a.original_slot
            )
            # 3. One access per process per slot among committed accesses.
        committed = [
            a for a in accesses
            if any(
                state.group_at(s) & a.signature == a.signature
                for s in a.occupied_slots()
            )
        ]
        for a in committed:
            slots = per_process_slots.setdefault(a.process, set())
            overlap = slots.intersection(a.occupied_slots())
            # Overlaps may only come from fallback (unscheduled) accesses;
            # committed ones never collide.
            if not overlap:
                slots.update(a.occupied_slots())

    @given(st.composite(scheduled_accesses)())
    @settings(max_examples=30, deadline=None)
    def test_group_signatures_cover_commits(self, accesses):
        sched = make_scheduler(8, delta=3, theta=None, seed=1)
        state = sched.schedule(accesses)
        # Rebuild expected group signatures from non-fallback placements.
        expected: dict[int, int] = {}
        occupied: dict[int, set] = {}
        ordered = sorted(accesses, key=lambda a: (a.slack_length, a.process, a.aid))
        for a in ordered:
            span = list(a.occupied_slots())
            taken = occupied.setdefault(a.process, set())
            # A committed placement always starts inside the legal start
            # range; a fallback stays at the original slot (which may lie
            # outside it) and claims no state.
            last_start = max(a.begin, a.end - a.length + 1)
            if not a.begin <= a.scheduled_slot <= last_start:
                continue
            if any(s in taken for s in span):
                continue  # fallback access, never committed
            for s in span:
                taken.add(s)
                expected[s] = expected.get(s, 0) | a.signature
        for slot, sig in expected.items():
            assert state.group_at(slot) == sig


class TestSlackProperties:
    @given(
        st.integers(1, 4),     # processes
        st.integers(2, 8),     # phases
        st.integers(1, 30),    # max_slack
    )
    @settings(max_examples=30, deadline=None)
    def test_windows_always_contain_a_legal_slot(self, procs, phases, max_slack):
        from repro.ir import Compute, FileDecl, Loop, Program, Read, Write
        from repro.ir import trace_program, var

        files = {"f": FileDecl("f", procs * phases * 2, 64 * KB)}
        p, i = var("p"), var("i")
        prog = Program("prop", procs, files, [
            Loop("i", 0, phases - 1, body=[
                Write("f", p * phases + i),
                Compute(1.0),
                Read("f", p * phases + i),
                Compute(1.0),
            ]),
        ])
        trace = trace_program(prog)
        smap = StripeMap(64 * KB, 4)
        sfiles = {"f": StripedFile("f", files["f"].size_bytes)}
        accesses = determine_slacks(
            trace, smap, sfiles, SlackOptions(max_slack=max_slack)
        )
        for a in accesses:
            assert a.begin <= a.end
            assert a.end - a.begin <= max(max_slack, 1)
            if a.producer is not None:
                assert a.begin >= a.producer[0] + 1
