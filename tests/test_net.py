"""Tests for the interconnect model."""

import random

import pytest

from repro.net import Link, Network
from repro.obs.metrics import Histogram


class TestLink:
    def test_transfer_time_formula(self, sim):
        link = Link(sim, latency=0.001, bandwidth_bps=1e9)
        assert link.transfer_time(1e9) == pytest.approx(1.001)

    def test_transfer_completes_after_latency_and_service(self, sim):
        link = Link(sim, latency=0.5, bandwidth_bps=1000.0)
        done = []
        link.transfer(1000, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(1.5)]

    def test_fifo_serialization(self, sim):
        link = Link(sim, latency=0.0, bandwidth_bps=1000.0)
        done = []
        link.transfer(1000, lambda: done.append(("a", sim.now)))
        link.transfer(1000, lambda: done.append(("b", sim.now)))
        sim.run()
        assert done == [("a", pytest.approx(1.0)), ("b", pytest.approx(2.0))]

    def test_queue_delay_tracked(self, sim):
        link = Link(sim, latency=0.0, bandwidth_bps=1000.0)
        link.transfer(1000, lambda: None)
        link.transfer(1000, lambda: None)
        sim.run()
        assert link.stats.total_queue_delay == pytest.approx(1.0)

    def test_idle_link_has_no_queue_delay(self, sim):
        link = Link(sim, latency=0.0, bandwidth_bps=1000.0)
        link.transfer(500, lambda: None)
        sim.run()
        link.transfer(500, lambda: None)
        sim.run()
        assert link.stats.total_queue_delay == 0.0

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            Link(sim, latency=-1, bandwidth_bps=1e9)
        with pytest.raises(ValueError):
            Link(sim, latency=0, bandwidth_bps=0)
        link = Link(sim, latency=0, bandwidth_bps=1e9)
        with pytest.raises(ValueError):
            link.transfer(-1, lambda: None)


class TestQueueDelayAccounting:
    """Property: under any contention schedule, ``total_queue_delay`` is
    exactly the sum over transfers of (service start − arrival)."""

    def _random_schedule(self, seed, n=200):
        rng = random.Random(seed)
        arrivals, t = [], 0.0
        for _ in range(n):
            t += rng.expovariate(1.0 / 0.0008)
            arrivals.append((t, rng.randrange(1, 200_000)))
        return arrivals

    @pytest.mark.parametrize("seed", [7, 99, 2024])
    def test_total_queue_delay_matches_fifo_replay(self, sim, seed):
        link = Link(sim, latency=0.002, bandwidth_bps=1e6)
        schedule = self._random_schedule(seed)
        for at, nbytes in schedule:
            sim.schedule_at(at, link.transfer, nbytes, lambda: None)
        sim.run()
        # Replay the FIFO service discipline analytically: the link is
        # held for the service time only (latency pipelines).
        free_at, expected = 0.0, []
        for arrival, nbytes in schedule:
            start = max(arrival, free_at)
            expected.append(start - arrival)
            free_at = start + nbytes / link.bandwidth_bps
        assert link.stats.transfers == len(schedule)
        assert link.stats.total_queue_delay == pytest.approx(
            sum(expected), abs=1e-12
        )

    def test_delay_histogram_observes_every_transfer(self, sim):
        link = Link(sim, latency=0.0, bandwidth_bps=1000.0)
        link.delay_hist = Histogram("queue_delay", (0.5, 1.5, 2.5))
        for _ in range(3):
            link.transfer(1000, lambda: None)
        sim.run()
        # Delays are 0, 1 and 2 seconds: one per bucket.
        assert link.delay_hist.count == 3
        assert link.delay_hist.counts == [1, 1, 1, 0]
        assert link.delay_hist.total == pytest.approx(3.0)


class TestNetwork:
    def test_per_node_links_independent(self, sim):
        net = Network(sim, 2, latency=0.0, bandwidth_bps=1000.0)
        done = []
        net.to_node(0, 1000, lambda: done.append(("n0", sim.now)))
        net.to_node(1, 1000, lambda: done.append(("n1", sim.now)))
        sim.run()
        # Both finish at t=1: no cross-node serialization.
        assert done[0][1] == pytest.approx(1.0)
        assert done[1][1] == pytest.approx(1.0)

    def test_stats_aggregate(self, sim):
        net = Network(sim, 2, latency=0.0, bandwidth_bps=1e6)
        net.to_node(0, 100, lambda: None)
        net.from_node(1, 200, lambda: None)
        sim.run()
        assert net.stats.transfers == 2
        assert net.stats.bytes_moved == 300
