"""Tests for local-time coordination between processes."""

import pytest

from repro.runtime import LocalClocks


class TestClocks:
    def test_initial_time_is_minus_one(self, sim):
        clocks = LocalClocks(sim, 2)
        assert clocks.time_of(0) == -1

    def test_advance(self, sim):
        clocks = LocalClocks(sim, 2)
        clocks.advance(0, 3)
        assert clocks.time_of(0) == 3
        assert clocks.time_of(1) == -1

    def test_backwards_rejected(self, sim):
        clocks = LocalClocks(sim, 1)
        clocks.advance(0, 5)
        with pytest.raises(ValueError):
            clocks.advance(0, 4)

    def test_same_slot_advance_is_noop(self, sim):
        clocks = LocalClocks(sim, 1)
        clocks.advance(0, 5)
        clocks.advance(0, 5)
        assert clocks.time_of(0) == 5

    def test_needs_a_process(self, sim):
        with pytest.raises(ValueError):
            LocalClocks(sim, 0)

    def test_wait_until_blocks_then_resumes(self, sim):
        clocks = LocalClocks(sim, 2)
        resumed = []

        def waiter():
            yield from clocks.wait_until(1, 3)
            resumed.append(sim.now)

        sim.process(waiter())
        sim.schedule(1.0, clocks.advance, 1, 1)
        sim.schedule(2.0, clocks.advance, 1, 3)
        sim.run()
        assert resumed == [2.0]

    def test_wait_until_already_satisfied(self, sim):
        clocks = LocalClocks(sim, 1)
        clocks.advance(0, 10)
        resumed = []

        def waiter():
            yield from clocks.wait_until(0, 3)
            resumed.append(sim.now)

        sim.process(waiter())
        sim.run()
        assert resumed == [0.0]

    def test_multiple_waiters_on_one_process(self, sim):
        clocks = LocalClocks(sim, 1)
        resumed = []

        def waiter(slot):
            yield from clocks.wait_until(0, slot)
            resumed.append(slot)

        sim.process(waiter(2))
        sim.process(waiter(4))
        sim.schedule(1.0, clocks.advance, 0, 2)
        sim.schedule(2.0, clocks.advance, 0, 4)
        sim.run()
        assert resumed == [2, 4]
