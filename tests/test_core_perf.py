"""Tests for the θ-constrained scheduler (§IV-B3)."""

import pytest

from repro.core import (
    BasicScheduler,
    DataAccess,
    ExtendedScheduler,
    ThetaConstrainedScheduler,
    make_scheduler,
    mean_excess,
)
from repro.core.basic import ScheduleState
from repro.core.signature import signature_from_nodes


def access(aid, process, begin, end, sig, length=1, original=None):
    return DataAccess(
        aid=aid,
        process=process,
        original_slot=end if original is None else original,
        begin=begin,
        end=end,
        signature=sig,
        length=length,
    )


class TestValidation:
    def test_theta_must_be_positive(self):
        with pytest.raises(ValueError):
            ThetaConstrainedScheduler(BasicScheduler(4), theta=0)

    def test_properties_delegate(self):
        sched = ThetaConstrainedScheduler(BasicScheduler(8, delta=5), theta=2)
        assert sched.n_nodes == 8
        assert sched.delta == 5


class TestConstraint:
    def test_theta_limits_per_node_per_slot(self):
        base = BasicScheduler(4, delta=2, seed=0)
        sched = ThetaConstrainedScheduler(base, theta=2)
        sig = signature_from_nodes([0], 4)
        accesses = [access(i, i, 5, 5, sig) for i in range(2)]
        # Two accesses fill node 0 at slot 5; a third must go elsewhere.
        state = ScheduleState(n_nodes=4)
        for a in accesses:
            sched.place(a, state)
        third = access(9, 9, 3, 7, sig)
        slot = sched.place(third, state)
        assert slot != 5

    def test_overload_when_no_slot_satisfies(self):
        base = BasicScheduler(4, delta=2, seed=0)
        sched = ThetaConstrainedScheduler(base, theta=1)
        sig = signature_from_nodes([0], 4)
        state = ScheduleState(n_nodes=4)
        sched.place(access(0, 0, 3, 3, sig), state)
        # Window is only slot 3, already at θ: E_t fallback places anyway.
        late = access(1, 1, 3, 3, sig)
        assert sched.place(late, state) == 3
        assert state.load_at(3)[0] == 2

    def test_mean_excess_zero_when_under_theta(self):
        state = ScheduleState(n_nodes=4)
        a = access(0, 0, 0, 5, signature_from_nodes([1], 4))
        assert mean_excess(a, 2, state, theta=2) == 0.0

    def test_mean_excess_counts_overloaded_nodes(self):
        state = ScheduleState(n_nodes=4)
        sig = signature_from_nodes([0, 1], 4)
        for i in range(2):
            state.commit(access(i, i, 0, 5, sig), 2)
        probe = access(9, 9, 0, 5, sig)
        # Placing at slot 2 pushes both nodes to 3 against θ=2: excess 1.
        assert mean_excess(probe, 2, state, theta=2) == pytest.approx(1.0)

    def test_multislot_access_checks_every_covered_slot(self):
        base = ExtendedScheduler(4, delta=2, seed=0)
        sched = ThetaConstrainedScheduler(base, theta=1)
        sig = signature_from_nodes([2], 4)
        state = ScheduleState(n_nodes=4)
        state.commit(access(0, 0, 0, 9, sig), 4)  # node 2 full at slot 4
        probe = access(1, 1, 2, 9, sig, length=3)
        slot = sched.place(probe, state)
        # Any start in {2, 3, 4} would cover slot 4.
        assert slot == 5

    def test_paper_figure10_t5_eligible_with_theta2(self):
        """§IV-B3's check: with the Table I signatures on 4 nodes, slot
        t5 satisfies θ=2 for A2 at every iteration t5..t7."""
        base = ExtendedScheduler(4, delta=2, seed=0)
        sched = ThetaConstrainedScheduler(base, theta=2)
        state = ScheduleState(n_nodes=4)
        sigs = {1: 0b0110, 3: 0b0100, 4: 0b1000, 5: 0b1001}
        state.commit(access(1, 1, 1, 14, sigs[1], length=12), 1)
        state.commit(access(3, 3, 1, 14, sigs[3], length=4), 2)
        state.commit(access(4, 4, 1, 14, sigs[4], length=6), 3)
        state.commit(access(5, 5, 1, 14, sigs[5], length=6), 7)
        a2 = access(2, 2, 3, 11, 0b0010, length=3)
        assert sched._satisfies_theta(a2, 5, state)


class TestFactory:
    def test_make_scheduler_default_stack(self):
        sched = make_scheduler(8)
        assert isinstance(sched, ThetaConstrainedScheduler)
        assert isinstance(sched.base, ExtendedScheduler)

    def test_theta_none_returns_bare(self):
        sched = make_scheduler(8, theta=None)
        assert isinstance(sched, ExtendedScheduler)

    def test_extended_false(self):
        sched = make_scheduler(8, theta=None, extended=False)
        assert type(sched) is BasicScheduler

    def test_schedule_respects_windows_end_to_end(self):
        sched = make_scheduler(8, delta=4, theta=2, seed=1)
        accesses = [
            access(i, i % 4, 2, 18, signature_from_nodes([i % 8], 8),
                   length=1 + i % 3)
            for i in range(16)
        ]
        sched.schedule(accesses)
        for a in accesses:
            assert a.scheduled_slot >= a.begin

    def test_theta_spreads_compared_to_unconstrained(self):
        sig = signature_from_nodes([0, 1], 8)

        def max_load(theta):
            sched = make_scheduler(8, delta=4, theta=theta, seed=0)
            accesses = [access(i, i, 0, 20, sig) for i in range(12)]
            state = sched.schedule(accesses)
            return max(
                max(state.load_at(s)) for s in range(21)
            )

        assert max_load(2) <= 2
        assert max_load(None) > 2
