"""Unit tests for the fault-injection subsystem (repro.faults).

Plan validation and JSON round-tripping, named seeded streams, the
per-component fault states, and the drive/buffer recovery paths.  The
end-to-end degraded runs live in test_faults_integration.py.
"""

import pytest

from repro.disk import DiskRequest
from repro.faults import (
    DriveFaultState,
    FaultCounters,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    LinkFaultState,
    load_plan,
    plan_from_dict,
    plan_to_dict,
    save_plan,
    stream_rng,
)

from conftest import drain, make_drive, submit_read

KB = 1024


def transient(target="*", time=0.0, duration=100.0, probability=1.0):
    return FaultEvent(
        kind="disk.transient_errors", target=target, time=time,
        duration=duration, probability=probability,
    )


def bad_sectors(target="*", time=0.0, lba_start=0, lba_end=64 * KB):
    return FaultEvent(
        kind="disk.bad_sectors", target=target, time=time,
        lba_start=lba_start, lba_end=lba_end,
    )


class TestPlanValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(kind="disk.melt", target="*")

    def test_empty_target(self):
        with pytest.raises(ValueError, match="empty target"):
            FaultEvent(kind="disk.fail", target="")

    def test_negative_time(self):
        with pytest.raises(ValueError, match="negative time"):
            FaultEvent(kind="disk.fail", target="*", time=-1.0)

    def test_windowed_kinds_need_duration(self):
        with pytest.raises(ValueError, match="duration"):
            FaultEvent(
                kind="node.straggle", target="0", factor=2.0, duration=0.0
            )

    def test_probability_range(self):
        with pytest.raises(ValueError, match="probability"):
            transient(probability=0.0)
        with pytest.raises(ValueError, match="probability"):
            transient(probability=1.5)

    def test_bad_sector_extent(self):
        with pytest.raises(ValueError, match="bad extent"):
            bad_sectors(lba_start=10, lba_end=10)

    def test_spinup_count(self):
        with pytest.raises(ValueError, match="count"):
            FaultEvent(kind="disk.spinup_fail", target="*", count=0)

    def test_straggle_factor(self):
        with pytest.raises(ValueError, match="factor"):
            FaultEvent(
                kind="node.straggle", target="0", duration=1.0, factor=1.0
            )

    def test_latency_positive(self):
        with pytest.raises(ValueError, match="extra_latency"):
            FaultEvent(kind="net.latency", target="0", duration=1.0)

    def test_plan_rejects_non_events(self):
        with pytest.raises(TypeError):
            FaultPlan(events=("not an event",))

    def test_plan_knob_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(read_retry_limit=0)
        with pytest.raises(ValueError):
            FaultPlan(fetch_timeout=0.0)
        with pytest.raises(ValueError):
            FaultPlan(fetch_retries=-1)

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan(events=(FaultEvent(kind="disk.fail", target="*"),))


class TestPlanSerialization:
    def plan(self):
        return FaultPlan(
            events=(
                transient("node0.disk0", probability=0.25),
                bad_sectors("node1.disk0"),
                FaultEvent(kind="disk.fail", target="node0.disk1", time=3.0),
                FaultEvent(
                    kind="net.loss", target="0", duration=5.0,
                    probability=0.5,
                ),
            ),
            seed=7,
            fetch_timeout=2.5,
        )

    def test_dict_round_trip(self):
        plan = self.plan()
        assert plan_from_dict(plan_to_dict(plan)) == plan

    def test_file_round_trip(self, tmp_path):
        plan = self.plan()
        path = save_plan(plan, tmp_path / "plan.json")
        assert load_plan(path) == plan

    def test_unknown_plan_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fault plan field"):
            plan_from_dict({"sneed": 3})

    def test_unknown_event_field_rejected(self):
        with pytest.raises(ValueError, match="unknown field"):
            plan_from_dict(
                {"events": [{"kind": "disk.fail", "target": "*",
                             "severity": 11}]}
            )

    def test_fetch_timeout_none_round_trips(self, tmp_path):
        plan = FaultPlan(fetch_timeout=None)
        path = save_plan(plan, tmp_path / "plan.json")
        assert load_plan(path).fetch_timeout is None

    def test_to_key_distinguishes_plans(self):
        base = self.plan()
        assert base.to_key() == self.plan().to_key()
        assert base.to_key() != FaultPlan().to_key()
        reseeded = FaultPlan(events=base.events, seed=base.seed + 1)
        assert base.to_key() != reseeded.to_key()

    def test_to_key_is_hashable_primitives(self):
        # The key participates in memo dicts and JSON cache digests.
        import json
        key = self.plan().to_key()
        hash(key)
        json.dumps(key)


class TestStreams:
    def test_same_name_same_sequence(self):
        a = [stream_rng(1, "drive:x").random() for _ in range(5)]
        b = [stream_rng(1, "drive:x").random() for _ in range(5)]
        assert a == b

    def test_streams_are_independent(self):
        assert stream_rng(1, "drive:x").random() != \
            stream_rng(1, "drive:y").random()
        assert stream_rng(1, "drive:x").random() != \
            stream_rng(2, "drive:x").random()


class TestInjector:
    def test_untargeted_components_get_none(self):
        plan = FaultPlan(events=(transient("node0.disk0"),))
        injector = FaultInjector(plan)
        assert injector.drive_state("node0.disk0") is not None
        assert injector.drive_state("node1.disk0") is None
        assert injector.link_state(0) is None

    def test_wildcard_targets_every_drive(self):
        injector = FaultInjector(FaultPlan(events=(transient("*"),)))
        assert injector.drive_state("node0.disk0") is not None
        assert injector.drive_state("node7.disk3") is not None

    def test_node_target_aliases(self):
        # "node0" and "0" address the same link.
        for target in ("node0", "0"):
            plan = FaultPlan(events=(
                FaultEvent(kind="node.straggle", target=target,
                           duration=1.0, factor=2.0),
            ))
            injector = FaultInjector(plan)
            assert injector.link_state(0) is not None
            assert injector.link_state(1) is None

    def test_injected_tally(self):
        plan = FaultPlan(events=(transient(), transient(), bad_sectors()))
        injector = FaultInjector(plan)
        assert injector.injected == {
            "disk.transient_errors": 2,
            "disk.bad_sectors": 1,
        }


class TestDriveFaultState:
    def make(self, events, **plan_kwargs):
        counters = FaultCounters()
        plan = FaultPlan(events=tuple(events), **plan_kwargs)
        return DriveFaultState("d", list(events), plan, counters), counters

    def test_bad_extent_fails_deterministically(self):
        fs, counters = self.make([bad_sectors(lba_end=4 * KB)])
        assert fs.read_attempt_faulty(1.0, 0, KB, retries_so_far=0)
        assert not fs.read_attempt_faulty(1.0, 8 * KB, KB, 0)
        assert counters.disk_read_errors == 1

    def test_retry_limit_terminates_reads(self):
        fs, _ = self.make([bad_sectors()], read_retry_limit=2)
        assert fs.read_attempt_faulty(0.0, 0, KB, retries_so_far=0)
        assert fs.read_attempt_faulty(0.0, 0, KB, retries_so_far=1)
        # At the limit the read is served from the spare reserve.
        assert not fs.read_attempt_faulty(0.0, 0, KB, retries_so_far=2)

    def test_recovery_remaps_extent(self):
        fs, counters = self.make([bad_sectors(lba_end=4 * KB)])
        assert fs.read_attempt_faulty(0.0, 0, KB, 0)
        fs.read_recovered(0.0, 0, KB, retries=1)
        assert counters.disk_sector_remaps == 1
        assert counters.retry_counts == [1]
        # The remapped extent no longer faults.
        assert not fs.read_attempt_faulty(1.0, 0, KB, 0)

    def test_transient_window_gates_by_time(self):
        fs, _ = self.make([transient(time=10.0, duration=5.0)])
        assert not fs.read_attempt_faulty(9.0, 0, KB, 0)
        assert fs.read_attempt_faulty(12.0, 0, KB, 0)  # p = 1.0
        assert not fs.read_attempt_faulty(15.0, 0, KB, 0)

    def test_transient_draws_are_reproducible(self):
        events = [transient(probability=0.5, duration=1000.0)]
        outcomes = []
        for _ in range(2):
            fs, _ = self.make(events)
            outcomes.append(
                [fs.read_attempt_faulty(1.0, 0, KB, 0) for _ in range(32)]
            )
        assert outcomes[0] == outcomes[1]
        assert True in outcomes[0] and False in outcomes[0]

    def test_dead_from(self):
        fs, _ = self.make(
            [FaultEvent(kind="disk.fail", target="d", time=5.0)]
        )
        assert fs.can_die
        assert not fs.is_dead(4.9)
        assert fs.is_dead(5.0)

    def test_spinup_failures_consumed_and_backoff(self):
        fs, counters = self.make(
            [FaultEvent(kind="disk.spinup_fail", target="d", count=2)],
            spinup_retry_base=0.5,
        )
        assert fs.spinup_should_fail(1.0)
        assert fs.spinup_should_fail(2.0)
        assert not fs.spinup_should_fail(3.0)  # budget exhausted
        assert counters.disk_failed_spinups == 2
        assert fs.spinup_retry_delay(0) == 0.5
        assert fs.spinup_retry_delay(1) == 1.0
        assert counters.disk_spinup_retries == 2


class TestLinkFaultState:
    def make(self, events, **plan_kwargs):
        counters = FaultCounters()
        plan = FaultPlan(events=tuple(events), **plan_kwargs)
        return LinkFaultState(0, list(events), plan, counters), counters

    def test_crash_holds_transfer_until_window_end(self):
        lf, counters = self.make([
            FaultEvent(kind="node.crash", target="0", time=1.0,
                       duration=4.0),
        ])
        start, service, latency = lf.perturb(2.0, 0.1, 0.05)
        assert start == 5.0
        assert (service, latency) == (0.1, 0.05)
        assert counters.net_crash_held == 1
        # Outside the window: untouched.
        assert lf.perturb(6.0, 0.1, 0.05) == (6.0, 0.1, 0.05)

    def test_straggle_inflates_service(self):
        lf, counters = self.make([
            FaultEvent(kind="node.straggle", target="0", duration=10.0,
                       factor=3.0),
        ])
        _, service, _ = lf.perturb(1.0, 0.2, 0.0)
        assert service == pytest.approx(0.6)
        assert counters.net_straggled == 1

    def test_loss_retransmits_deterministic(self):
        events = [FaultEvent(kind="net.loss", target="0", duration=100.0,
                             probability=0.5)]
        runs = []
        for _ in range(2):
            lf, counters = self.make(events, retransmit_delay=0.01)
            runs.append(
                [lf.perturb(1.0, 0.1, 0.0)[1] for _ in range(32)]
            )
        assert runs[0] == runs[1]
        assert any(s > 0.1 for s in runs[0])

    def test_latency_spike(self):
        lf, counters = self.make([
            FaultEvent(kind="net.latency", target="0", duration=10.0,
                       extra_latency=0.5),
        ])
        _, _, latency = lf.perturb(1.0, 0.1, 0.05)
        assert latency == pytest.approx(0.55)
        assert counters.net_latency_spiked == 1


class TestDriveIntegration:
    """Faulted reads through a real simulated Drive."""

    def drive_with_faults(self, sim, events, **plan_kwargs):
        plan = FaultPlan(events=tuple(events), **plan_kwargs)
        counters = FaultCounters()
        fs = DriveFaultState("test-disk", list(events), plan, counters)
        return make_drive(sim, faults=fs), counters

    def test_bad_sector_read_retries_then_recovers(self, sim):
        drive, counters = self.drive_with_faults(
            sim, [bad_sectors(lba_end=64 * KB)],
            read_retry_limit=3, read_retry_penalty=0.015,
        )
        req = submit_read(sim, drive, at=0.0, lba=0)
        clean = submit_read(sim, drive, at=50.0, lba=128 * KB)
        drain(sim, drive)
        assert req.retries == 3
        assert req.end_time > 0
        assert counters.disk_reads_recovered == 1
        assert counters.disk_sector_remaps == 1
        assert clean.retries == 0

    def test_remapped_extent_reads_clean_afterwards(self, sim):
        drive, counters = self.drive_with_faults(
            sim, [bad_sectors(lba_end=64 * KB)]
        )
        first = submit_read(sim, drive, at=0.0, lba=0)
        second = submit_read(sim, drive, at=50.0, lba=0)
        drain(sim, drive)
        assert first.retries > 0
        assert second.retries == 0
        assert counters.disk_sector_remaps == 1

    def test_writes_never_fault(self, sim):
        drive, counters = self.drive_with_faults(
            sim, [bad_sectors(lba_end=64 * KB)]
        )
        req = DiskRequest(lba=0, nbytes=64 * KB, is_write=True)
        sim.schedule_at(0.0, drive.submit, req)
        drain(sim, drive)
        assert req.retries == 0
        assert counters.disk_read_errors == 0

    def test_spinup_failure_retries_with_backoff(self, sim):
        drive, counters = self.drive_with_faults(
            sim,
            [FaultEvent(kind="disk.spinup_fail", target="test-disk",
                        count=2)],
            spinup_retry_base=0.5,
        )
        sim.run(until=0.1)
        assert drive.spin_down()
        sim.run(until=5.0)  # fully in standby
        req = submit_read(sim, drive, at=5.0)
        drain(sim, drive)
        assert counters.disk_failed_spinups == 2
        assert counters.disk_spinup_retries == 2
        assert drive.stats.spin_ups >= 2
        assert req.end_time > 0  # the read still completed

    def test_fault_free_drive_untouched(self, sim):
        drive = make_drive(sim)
        assert drive.fault_state is None
        assert not drive.is_dead
        req = submit_read(sim, drive, at=0.0)
        drain(sim, drive)
        assert req.retries == 0


class TestBufferReclaim:
    def buffer(self, sim):
        from repro.runtime.buffer import GlobalBuffer
        return GlobalBuffer(sim, capacity_blocks=4)

    def test_reclaim_requires_abandoned_in_flight(self, sim):
        buf = self.buffer(sim)
        assert not buf.reclaim(0)  # unknown access
        buf.begin_fetch(0, blocks=2)
        assert not buf.reclaim(0)  # still FETCHING, nothing to reclaim
        buf.abandon(0)
        assert buf.reclaim(0)
        assert buf.reclaimed == 1
        assert buf.abandoned_in_flight == 0

    def test_reclaimed_entry_completes_as_data(self, sim):
        buf = self.buffer(sim)
        entry = buf.begin_fetch(0, blocks=2)
        buf.abandon(0)
        buf.reclaim(0)
        buf.complete_fetch(0)
        from repro.runtime.buffer import EntryState
        assert entry.state is EntryState.READY
        buf.consume(0)
        assert buf.used_blocks == 0
        assert buf.hits == 1

    def test_ready_entry_cannot_be_reclaimed(self, sim):
        buf = self.buffer(sim)
        buf.begin_fetch(0, blocks=1)
        buf.complete_fetch(0)
        assert not buf.reclaim(0)
