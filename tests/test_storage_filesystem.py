"""Tests for the parallel file system facade."""

import pytest

from repro.storage import ParallelFileSystem

from conftest import fast_spec

KB = 1024
MB = 1024 * KB


def make_pfs(sim, n_nodes=4, cache_mb=1):
    return ParallelFileSystem.build(
        sim,
        n_nodes=n_nodes,
        stripe_size=64 * KB,
        disk_spec=fast_spec(),
        cache_bytes=cache_mb * MB,
    )


class TestFileRegistry:
    def test_create_and_lookup(self, sim):
        pfs = make_pfs(sim)
        f = pfs.create_file("data", 10 * MB)
        assert pfs.file("data") is f

    def test_create_idempotent(self, sim):
        pfs = make_pfs(sim)
        a = pfs.create_file("data", 10 * MB)
        b = pfs.create_file("data", 10 * MB)
        assert a is b

    def test_size_conflict_rejected(self, sim):
        pfs = make_pfs(sim)
        pfs.create_file("data", 10 * MB)
        with pytest.raises(ValueError):
            pfs.create_file("data", 20 * MB)

    def test_unknown_file_raises(self, sim):
        pfs = make_pfs(sim)
        with pytest.raises(KeyError):
            pfs.file("ghost")

    def test_files_get_disjoint_node_local_regions(self, sim):
        pfs = make_pfs(sim)
        a = pfs.create_file("a", 1 * MB)
        b = pfs.create_file("b", 1 * MB)
        assert b.base_row >= a.base_row + a.rows(64 * KB, 4)
        # First stripes of the two files never overlap on any node.
        ea = pfs.map_access(a, 0, 64 * KB)[0]
        eb = pfs.map_access(b, 0, 64 * KB)[0]
        if ea.node == eb.node:
            assert ea.node_offset != eb.node_offset

    def test_build_validates_node_count(self, sim):
        pfs = make_pfs(sim, n_nodes=4)
        assert len(pfs.nodes) == 4
        assert len(pfs.all_drives()) == 4


class TestAccess:
    def test_read_completion_fires_once(self, sim):
        pfs = make_pfs(sim)
        f = pfs.create_file("data", 10 * MB)
        done = []
        pfs.access(f, 0, 256 * KB, False, lambda: done.append(sim.now))
        sim.run()
        assert len(done) == 1

    def test_write_completion_fires(self, sim):
        pfs = make_pfs(sim)
        f = pfs.create_file("data", 10 * MB)
        done = []
        pfs.access(f, 0, 128 * KB, True, lambda: done.append(sim.now))
        sim.run()
        assert len(done) == 1

    def test_zero_byte_access_completes(self, sim):
        pfs = make_pfs(sim)
        f = pfs.create_file("data", 10 * MB)
        done = []
        pfs.access(f, 0, 0, False, lambda: done.append(True))
        sim.run()
        assert done == [True]

    def test_read_touches_expected_nodes(self, sim):
        pfs = make_pfs(sim)
        f = pfs.create_file("data", 10 * MB, start_node=0)
        pfs.access(f, 0, 256 * KB, False, lambda: None)
        sim.run()
        touched = [n.node_id for n in pfs.nodes if n.stats.reads > 0]
        assert touched == [0, 1, 2, 3]

    def test_signature_exposed(self, sim):
        pfs = make_pfs(sim)
        f = pfs.create_file("data", 10 * MB, start_node=1)
        assert pfs.signature(f, 0, 64 * KB) == 1 << 1


class TestAccounting:
    def test_finalize_flushes_and_closes(self, sim):
        pfs = make_pfs(sim)
        f = pfs.create_file("data", 10 * MB)
        pfs.access(f, 0, 128 * KB, True, lambda: None)
        sim.run(until=0.1)  # before destage
        pfs.finalize(sim.now)
        sim.run()
        assert all(
            node.cache.dirty_blocks() == [] for node in pfs.nodes
        )

    def test_total_energy_positive(self, sim):
        pfs = make_pfs(sim)
        f = pfs.create_file("data", 10 * MB)
        pfs.access(f, 0, 64 * KB, False, lambda: None)
        sim.run()
        pfs.finalize(sim.now)
        assert pfs.total_energy() > 0

    def test_idle_periods_pooled(self, sim):
        pfs = make_pfs(sim)
        f = pfs.create_file("data", 10 * MB)
        pfs.access(f, 0, 256 * KB, False, lambda: None)
        sim.schedule(5.0, pfs.access, f, 0, 256 * KB, False, lambda: None)
        sim.run()
        pfs.finalize(sim.now)
        assert len(pfs.idle_periods()) >= 4
