"""Tests for the extended (multi-slot-length) algorithm (§IV-B2)."""

import pytest

from repro.core import BasicScheduler, DataAccess, ExtendedScheduler
from repro.core.basic import ScheduleState
from repro.core.signature import signature_from_nodes


def access(aid, process, begin, end, sig, length=1, original=None):
    return DataAccess(
        aid=aid,
        process=process,
        original_slot=end if original is None else original,
        begin=begin,
        end=end,
        signature=sig,
        length=length,
    )


class TestEquivalenceWithBasic:
    def test_unit_length_reuse_factor_matches_basic(self):
        basic = BasicScheduler(8, delta=4, seed=0)
        extended = ExtendedScheduler(8, delta=4, seed=0)
        state = ScheduleState(n_nodes=8)
        state.group.update({3: 0b0011, 4: 0b1100, 6: 0b0110})
        a = access(0, 0, 0, 10, 0b0101)
        for slot in range(0, 11):
            assert extended.reuse_factor(a, slot, state) == pytest.approx(
                basic.reuse_factor(a, slot, state)
            )

    def test_unit_length_schedule_identical(self):
        def run(cls):
            sched = cls(8, delta=3, seed=9)
            accesses = [
                access(i, i % 3, 0, 14, signature_from_nodes([i % 8], 8))
                for i in range(15)
            ]
            sched.schedule(accesses)
            return [a.scheduled_slot for a in accesses]

        assert run(BasicScheduler) == run(ExtendedScheduler)


class TestPaperFigure10:
    """The worked example of §IV-B2: five accesses on 4 I/O nodes.

    A1 (len 12) at t1, A3 (len 4) at t2, A4 (len 6) at t3, A5 (len 6)
    at t7; A2 (len 3) is being placed with slack t3..t11.  Signatures
    from Table I (node 0 first): g1=0110, g2=0100, g3=0010, g4=0001,
    g5=1001 read as bit vectors [η0η1η2η3].
    """

    G = {
        1: 0b0110,  # η=[0,1,1,0]: nodes 1, 2
        2: 0b0010,  # η=[0,1,0,0]: node 1
        3: 0b0100,  # η=[0,0,1,0]: node 2
        4: 0b1000,  # η=[0,0,0,1]: node 3
        5: 0b1001,  # η=[1,0,0,1]: nodes 0, 3
    }

    def make_state(self):
        state = ScheduleState(n_nodes=4)
        placed = [
            (1, self.G[1], 12, 1),   # A1 @ t1, len 12
            (3, self.G[3], 4, 2),    # A3 @ t2, len 4
            (4, self.G[4], 6, 3),    # A4 @ t3, len 6
            (5, self.G[5], 6, 7),    # A5 @ t7, len 6
        ]
        for aid, sig, length, slot in placed:
            a = access(aid, aid, 1, 14, sig, length=length)
            state.commit(a, slot)
        return state

    def test_group_signatures_from_unit_decomposition(self):
        state = self.make_state()
        # Paper: G5 = g1|g3|g4 and G6 = g1|g4 (A3 occupies t2..t5).
        assert state.group_at(5) == self.G[1] | self.G[3] | self.G[4]
        assert state.group_at(6) == self.G[1] | self.G[4]

    def test_vertical_range_weights(self):
        """A2 (len 3) at t5 with δ=2: weight 1 on t5..t7, 0.7-class on
        t4/t8, 0.4-class on t3/t9 — i.e. range [t−δ, t+l−1+δ]."""
        sched = ExtendedScheduler(4, delta=2, seed=0)
        state = self.make_state()
        a2 = access(2, 0, 3, 11, self.G[2], length=3)
        sigma1 = 1 - 1 / 3
        sigma2 = 1 - 2 / 3

        def inv(slot):
            from repro.core.signature import inverse_distance
            return inverse_distance(self.G[2], state.group_at(slot), 4)

        expected = (
            inv(5) + inv(6) + inv(7)
            + sigma1 * (inv(4) + inv(8))
            + sigma2 * (inv(3) + inv(9))
        )
        assert sched.reuse_factor(a2, 5, state) == pytest.approx(expected)

    def test_vectorized_matches_scalar_for_lengths(self):
        sched = ExtendedScheduler(4, delta=2, seed=0)
        state = self.make_state()
        a2 = access(2, 0, 3, 11, self.G[2], length=3)
        for slot, score in sched.scored_candidates(a2, state):
            assert score == pytest.approx(sched.reuse_factor(a2, slot, state))


class TestFitting:
    def test_access_must_fit_inside_window(self):
        sched = ExtendedScheduler(4, delta=2, seed=0)
        state = ScheduleState(n_nodes=4)
        a = access(0, 0, 2, 8, 0b1, length=4)
        slots = sched._candidate_slots(a, state)
        # Latest legal start is 5 (occupying 5..8).
        assert max(slots) == 5
        assert min(slots) == 2

    def test_window_shorter_than_access_overhangs_from_start(self):
        sched = ExtendedScheduler(4, delta=2, seed=0)
        state = ScheduleState(n_nodes=4)
        a = access(0, 0, 3, 4, 0b1, length=5)
        assert sched._candidate_slots(a, state) == [3]

    def test_occupied_run_blocks_candidates(self):
        sched = ExtendedScheduler(4, delta=2, seed=0)
        state = ScheduleState(n_nodes=4)
        state.commit(access(9, 0, 0, 9, 0b1, length=3), 4)  # occupies 4..6
        a = access(0, 0, 0, 9, 0b1, length=2)
        slots = sched._candidate_slots(a, state)
        # Starts 3..6 would overlap 4..6.
        assert slots == [0, 1, 2, 7, 8]

    def test_long_accesses_schedule_without_overlap_per_process(self):
        sched = ExtendedScheduler(8, delta=3, seed=4)
        accesses = [
            access(i, 0, 0, 30, signature_from_nodes([i], 8), length=3)
            for i in range(6)
        ]
        sched.schedule(accesses)
        occupied = []
        for a in accesses:
            occupied.extend(a.occupied_slots())
        assert len(occupied) == len(set(occupied))
