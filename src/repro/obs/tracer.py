"""Structured JSONL event tracer with span-style begin/end records.

One record per line, e.g.::

    {"t": 0.1031, "ph": "B", "ev": "io.read", "run": "sar/simple", "rid": 7}
    {"t": 0.1187, "ph": "E", "ev": "io.read", "run": "sar/simple", "rid": 7}
    {"t": 0.1187, "ph": "I", "ev": "access.ready", "aid": 42}

``ph`` follows the Chrome-trace convention: ``B``/``E`` bracket a span,
``I`` marks an instantaneous event.  Span pairing is by ``ev`` plus
whatever correlation id the emitter supplies (``aid`` for access
lifecycle spans, ``rid`` for MPI-IO calls) — the tracer itself stays
stateless so it costs one formatted line per record.

Two capture levels keep the cost proportional to what you asked for:

* **lifecycle** (the default) records the access lifecycle — scheduled,
  fetch span (prefetch issued → data ready), consumed — a few records
  per access.
* **detail** (``detail=True``) additionally records every MPI-IO call
  span, disk request, network transfer, and I/O-node operation: an
  order of magnitude more records, for drilling into a single run.

Instrumented components gate their emit sites on ``tracer.enabled``
(lifecycle events) or ``tracer.detail`` (per-operation events); both are
plain attributes, ``False`` on the null tracer, so a disabled site costs
one attribute load.

Timestamps come from the simulation clock bound via :meth:`bind_clock`
(the :class:`~repro.sim.engine.Simulator` itself — anything with a
``now`` attribute works).  Ambient fields set with :meth:`set_context`
(the run label, for instance) are merged into every record, letting many
runs share one trace file.

Records are hand-formatted (values are only scalars) and buffered in
chunks of :data:`_CHUNK` lines — ``json.dumps`` per record would roughly
triple the cost of a traced run.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Iterator, Optional, TextIO, Union

__all__ = ["JsonlTracer", "read_trace"]

_CHUNK = 1024


class _ZeroClock:
    now = 0.0


# Matches anything a JSON string must escape: control chars, '"', '\'.
_NEEDS_ESCAPE = re.compile(r'[^\x20-\x21\x23-\x5b\x5d-\x7e]').search


def _fmt(value: Any) -> str:
    """JSON-format one scalar field value.

    Floats are written with 9 significant digits, not shortest-repr:
    traces are for reading timelines, and ``%.9g`` is measurably cheaper
    than ``repr`` on the hot path.
    """
    tp = type(value)
    if tp is int:
        return repr(value)
    if tp is float:
        return f"{value:.9g}"
    if tp is str and _NEEDS_ESCAPE(value) is None:
        return f'"{value}"'
    return json.dumps(value)


class JsonlTracer:
    """A tracer that appends one JSON object per record to a file."""

    __slots__ = (
        "_fh",
        "_owns_fh",
        "_clock",
        "_context",
        "_ctx_frag",
        "_buf",
        "records_written",
        "detail",
    )

    enabled = True

    def __init__(
        self, path_or_file: Union[str, Path, TextIO], detail: bool = False
    ):
        if hasattr(path_or_file, "write"):
            self._fh: Optional[TextIO] = path_or_file  # type: ignore[assignment]
            self._owns_fh = False
        else:
            path = Path(path_or_file)
            if path.parent != Path(""):
                path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = path.open("w", encoding="utf-8")
            self._owns_fh = True
        self._clock: Any = _ZeroClock
        self._context: dict[str, Any] = {}
        self._ctx_frag = ""
        self._buf: list[str] = []
        self.records_written = 0
        self.detail = detail

    # ------------------------------------------------------------------
    def bind_clock(self, clock: Any) -> None:
        """Use ``clock.now`` as the timestamp source (a Simulator)."""
        self._clock = clock

    def set_context(self, **fields: Any) -> None:
        """Replace the ambient fields merged into every record."""
        self._context = fields
        self._ctx_frag = "".join(
            f',"{k}":{_fmt(v)}' for k, v in fields.items()
        )

    # ------------------------------------------------------------------
    def _write(self, ph: str, name: str, fields: dict[str, Any]) -> None:
        if self._fh is None:
            return
        line = f'{{"t":{self._clock.now:.9g},"ph":"{ph}","ev":"{name}"{self._ctx_frag}'
        for k, v in fields.items():
            tp = type(v)
            if tp is int:
                line += f',"{k}":{v}'
            else:
                line += f',"{k}":{_fmt(v)}'
        buf = self._buf
        buf.append(line + "}\n")
        self.records_written += 1
        if len(buf) >= _CHUNK:
            self._fh.write("".join(buf))
            buf.clear()

    def event(self, name: str, **fields: Any) -> None:
        """Record an instantaneous event."""
        self._write("I", name, fields)

    def begin(self, name: str, **fields: Any) -> None:
        """Open a span (pair with :meth:`end` on the same ``name`` + id)."""
        self._write("B", name, fields)

    def end(self, name: str, **fields: Any) -> None:
        """Close a span."""
        self._write("E", name, fields)

    # ------------------------------------------------------------------
    def flush(self) -> None:
        if self._fh is not None:
            if self._buf:
                self._fh.write("".join(self._buf))
                self._buf.clear()
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self.flush()
            if self._owns_fh:
                self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlTracer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"JsonlTracer({self.records_written} records)"


def read_trace(path: Union[str, Path]) -> Iterator[dict[str, Any]]:
    """Yield the records of a trace file (skips blank lines)."""
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)
