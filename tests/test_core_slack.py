"""Tests for access slack determination (§IV-A)."""

from repro.core import SlackOptions, determine_slacks
from repro.ir import (
    Compute,
    FileDecl,
    Loop,
    Program,
    Read,
    Write,
    trace_program,
    var,
)
from repro.storage import StripedFile, StripeMap

KB = 1024


def slacks_of(program, **opts):
    trace = trace_program(program)
    smap = StripeMap(64 * KB, 4)
    files = {
        name: StripedFile(name, decl.size_bytes)
        for name, decl in program.files.items()
    }
    return determine_slacks(trace, smap, files, SlackOptions(**opts))


class TestIntraProcessSlack:
    def test_window_spans_write_to_read(self):
        files = {"f": FileDecl("f", 2, 64 * KB)}
        prog = Program("t", 1, files, [
            Write("f", 0),          # slot 0
            Compute(1.0),           # -> slot 1
            Compute(1.0),           # -> slot 2
            Compute(1.0),           # -> slot 3
            Read("f", 0),           # slot 3
        ])
        (access,) = slacks_of(prog)
        assert access.producer == (0, 0)
        assert (access.begin, access.end) == (1, 3)
        assert access.slack_length == 3

    def test_read_without_writer_reaches_back_to_zero(self):
        files = {"f": FileDecl("f", 2, 64 * KB)}
        prog = Program("t", 1, files, [
            Compute(1.0), Compute(1.0), Compute(1.0),
            Read("f", 0),
        ])
        (access,) = slacks_of(prog)
        assert access.producer is None
        assert (access.begin, access.end) == (0, 3)

    def test_max_slack_caps_input_window(self):
        files = {"f": FileDecl("f", 2, 64 * KB)}
        body = [Compute(1.0)] * 10 + [Read("f", 0)]
        prog = Program("t", 1, files, body)
        (access,) = slacks_of(prog, max_slack=4)
        assert (access.begin, access.end) == (6, 10)

    def test_max_slack_caps_produced_window_too(self):
        files = {"f": FileDecl("f", 2, 64 * KB)}
        body = [Write("f", 0)] + [Compute(1.0)] * 10 + [Read("f", 0)]
        prog = Program("t", 1, files, body)
        (access,) = slacks_of(prog, max_slack=3)
        assert (access.begin, access.end) == (7, 10)

    def test_latest_write_wins(self):
        files = {"f": FileDecl("f", 2, 64 * KB)}
        prog = Program("t", 1, files, [
            Write("f", 0), Compute(1.0),
            Write("f", 0), Compute(1.0),
            Compute(1.0), Read("f", 0),
        ])
        (access,) = slacks_of(prog)
        assert access.producer == (1, 0)
        assert access.begin == 2


class TestInterProcessSlack:
    def test_cross_process_producer(self):
        # Process 0 writes block 9 early; process 1 reads it later.
        files = {"f": FileDecl("f", 16, 64 * KB)}
        p = var("p")
        prog = Program("t", 2, files, [
            Write("f", p * 8),                # p0 writes block 0, p1 block 8
            Compute(1.0), Compute(1.0), Compute(1.0),
            Read("f", 8 - p * 8),             # p0 reads block 8, p1 block 0
        ])
        accesses = slacks_of(prog)
        for access in accesses:
            assert access.producer is not None
            producer_slot, producer_proc = access.producer
            assert producer_proc != access.process
            assert access.begin == producer_slot + 1

    def test_negative_slack_clamped_to_one_slot(self):
        """Fig. 6(b): the read precedes the producing write in normalized
        iteration space; the window clamps to [i_w + 1, i_w + 1]."""
        files = {"f": FileDecl("f", 4, 64 * KB)}
        p = var("p")
        prog = Program("t", 2, files, [
            Read("f", 1 - p),          # p0 reads block 1 at slot 0 ...
            Compute(1.0),
            Compute(1.0),
            Write("f", p),             # ... which p1 writes at slot 2.
            Compute(1.0),
        ])
        accesses = slacks_of(prog)
        a0 = next(a for a in accesses if a.process == 0)
        assert a0.producer == (2, 1)
        assert (a0.begin, a0.end) == (3, 3)
        assert a0.slack_length == 1

    def test_same_slot_same_process_write_then_read_ordered_by_program(self):
        files = {"f": FileDecl("f", 2, 64 * KB)}
        prog = Program("t", 1, files, [
            Write("f", 0),
            Read("f", 0),    # same slot, after the write in program order
            Compute(1.0),
        ])
        (access,) = slacks_of(prog)
        # Program order inside the slot sequences them: treated as input-
        # style slack ending at the read's slot.
        assert access.end == 0


class TestLengthsAndSignatures:
    def test_signature_from_striping(self):
        files = {"f": FileDecl("f", 8, 128 * KB)}  # 2 stripes per block
        prog = Program("t", 1, files, [Compute(1.0), Read("f", 0)])
        (access,) = slacks_of(prog)
        assert access.signature.bit_count() == 2

    def test_length_defaults_to_one(self):
        files = {"f": FileDecl("f", 8, 64 * KB)}
        prog = Program("t", 1, files, [Compute(1.0), Read("f", 0, blocks=4)])
        (access,) = slacks_of(prog)
        assert access.length == 1

    def test_length_estimated_when_enabled(self):
        files = {"f": FileDecl("f", 64, 64 * KB)}
        prog = Program("t", 1, files, [Compute(1.0), Read("f", 0, blocks=32)])
        (access,) = slacks_of(prog, estimate_length=True,
                              bytes_per_slot=512 * KB)
        (a,) = [prog]
        (access,) = [access]
        assert access.length == 4  # 2MB over 512KB/slot

    def test_writes_are_not_scheduled(self):
        files = {"f": FileDecl("f", 8, 64 * KB)}
        prog = Program("t", 1, files, [Write("f", 0), Compute(1.0)])
        assert slacks_of(prog) == []

    def test_access_ids_unique_and_ordered(self):
        files = {"f": FileDecl("f", 16, 64 * KB)}
        prog = Program("t", 2, files, [
            Loop("i", 0, 3, body=[
                Read("f", var("p") * 4 + var("i")), Compute(1.0)
            ]),
        ])
        accesses = slacks_of(prog)
        assert [a.aid for a in accesses] == list(range(8))
