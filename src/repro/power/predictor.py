"""Idle-period length prediction.

The paper's *Prediction Based* spin-down and *History Based* multi-speed
policies both assume "successive idle periods exhibit similar behavior as
far as their duration is concerned" (§II).  :class:`IdlePredictor`
implements that assumption as an exponentially weighted moving average over
observed idle lengths, with the degenerate ``history=1`` case reducing to
last-value prediction.
"""

from __future__ import annotations

from collections import deque

__all__ = ["IdlePredictor"]


class IdlePredictor:
    """EWMA / windowed-mean predictor of the next idle period's length."""

    def __init__(self, alpha: float = 0.7, window: int = 8, initial: float = 0.0):
        """``alpha`` weights the newest observation; ``window`` bounds the
        windowed-mean fallback used before the EWMA warms up; ``initial``
        is the prediction before any observation."""
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1]: {alpha}")
        if window < 1:
            raise ValueError(f"window must be >= 1: {window}")
        self.alpha = alpha
        self.window = window
        self._ewma = initial
        self._seen = 0
        self._recent: deque[float] = deque(maxlen=window)

    def observe(self, idle_length: float) -> None:
        """Record a completed idle period of ``idle_length`` seconds."""
        if idle_length < 0:
            raise ValueError(f"negative idle length: {idle_length}")
        self._recent.append(idle_length)
        if self._seen == 0:
            self._ewma = idle_length
        else:
            self._ewma = self.alpha * idle_length + (1 - self.alpha) * self._ewma
        self._seen += 1

    def predict(self) -> float:
        """Predicted length (seconds) of the idle period starting now.

        The EWMA is clamped into ``[min(recent), max(recent)]``: the
        forecast never leaves the envelope of recent evidence.  An
        unclamped full-history EWMA can keep the ghost of a single long
        gap alive for arbitrarily many short observations (or vice
        versa), predicting a value *no recent observation supports* —
        and it would also break the ``predict_upper() >= predict()``
        contract policies rely on for ahead-of-time wake-up timers.
        """
        if not self._recent:
            return self._ewma
        return min(max(self._ewma, min(self._recent)), max(self._recent))

    def predict_upper(self) -> float:
        """Conservative upper estimate: the longest idle period in the
        recent window.  Policies use it for ahead-of-time wake-up timers,
        where underprediction (waking too early) wastes the whole saving
        but overprediction merely exposes the normal wake-on-request
        latency."""
        if not self._recent:
            return self._ewma
        return max(self._recent)

    @property
    def observations(self) -> int:
        return self._seen

    @property
    def recent(self) -> tuple[float, ...]:
        """The last ``window`` observations, oldest first."""
        return tuple(self._recent)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"IdlePredictor(ewma={self._ewma:.4f}, n={self._seen})"
