"""The discrete-event simulation engine and the reference *kernel*.

:class:`Simulator` owns the event queue and the simulation clock.  Actors
are either plain scheduled callbacks (:meth:`Simulator.schedule`) or
cooperative *processes* — Python generators driven by the engine that
yield :class:`~repro.sim.events.Timeout`,
:class:`~repro.sim.events.ComputePhase`, :class:`~repro.sim.events.Signal`,
``AllOf`` or ``AnyOf`` instances to block.

The engine is deterministic: simultaneous events fire in scheduling order.

:class:`Simulator` doubles as the reference implementation of the *kernel
interface* — the contract every interchangeable event kernel satisfies
(see :mod:`repro.sim.kernels` for the registry and the contract's terms).
Alternative kernels (:class:`~repro.sim.calendar.CalendarSimulator`,
:class:`~repro.sim.analytic.AnalyticSimulator`) subclass it and replace
the queue machinery; everything above the queue — process semantics,
signals, cancellation bookkeeping — is shared, which is what makes
bit-identical interchange tractable to prove.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from ..obs.base import NULL_OBS, Observability
from .events import AllOf, AnyOf, ComputePhase, Event, Signal, Timeout

__all__ = ["Simulator", "SimProcess"]


class SimProcess:
    """A generator-based simulation process driven by a :class:`Simulator`.

    The wrapped generator yields blocking primitives; when it returns (or
    raises ``StopIteration``) the process is finished and its ``done`` signal
    fires with the generator's return value.
    """

    __slots__ = ("sim", "gen", "name", "done", "alive")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.done = Signal(name=f"{self.name}.done")
        self.alive = True

    def _step(self, send_value: Any = None) -> None:
        """Advance the generator by one yield (kernel use only)."""
        if not self.alive:
            return
        try:
            yielded = self.gen.send(send_value)
        except StopIteration as stop:
            self.alive = False
            self.sim._fire_signal(self.done, stop.value)
            return
        self._block_on(yielded)

    def _block_on(self, yielded: Any) -> None:
        sim = self.sim
        if isinstance(yielded, Timeout):
            sim.schedule(yielded.delay, self._step, None)
        elif isinstance(yielded, ComputePhase):
            sim.schedule_at_exact(yielded.resume_at, self._step, None)
            sim._note_phase(yielded)
        elif isinstance(yielded, Signal):
            if yielded.fired:
                # Already fired: resume immediately (same timestamp).
                sim.schedule(0.0, self._step, yielded.value)
            else:
                yielded.add_waiter(self._step)
        elif isinstance(yielded, AllOf):
            self._wait_all(yielded.signals)
        elif isinstance(yielded, AnyOf):
            self._wait_any(yielded.signals)
        elif isinstance(yielded, SimProcess):
            self._block_on(yielded.done)
        else:
            raise TypeError(
                f"process {self.name!r} yielded unsupported value {yielded!r}"
            )

    def _wait_all(self, signals: Iterable[Signal]) -> None:
        pending = [s for s in signals if not s.fired]
        if not pending:
            self.sim.schedule(0.0, self._step, None)
            return
        remaining = {"n": len(pending)}

        def one_done(_value: Any) -> None:
            remaining["n"] -= 1
            if remaining["n"] == 0:
                self._step(None)

        for sig in pending:
            sig.add_waiter(one_done)

    def _wait_any(self, signals: list[Signal]) -> None:
        for sig in signals:
            if sig.fired:
                self.sim.schedule(0.0, self._step, sig)
                return
        resumed = {"done": False}

        def first_done(sig: Signal) -> Callable[[Any], None]:
            def resume(_value: Any) -> None:
                if not resumed["done"]:
                    resumed["done"] = True
                    self._step(sig)

            return resume

        for sig in signals:
            sig.add_waiter(first_done(sig))

    def interrupt(self) -> None:
        """Kill the process; its ``done`` signal fires with ``None``."""
        if self.alive:
            self.alive = False
            self.gen.close()
            self.sim._fire_signal(self.done, None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "done"
        return f"SimProcess({self.name!r}, {state})"


class Simulator:
    """Event-heap discrete-event simulator with generator processes.

    The heap stores ``(time, seq, Event)`` tuples so ordering is decided by
    C-level tuple comparison on the unique ``(time, seq)`` prefix.  Canceled
    events stay in the heap (cancel is O(1)) and are skipped on pop; an
    exact live-event counter plus lazy compaction keep
    :attr:`pending_events` O(1) and bound the garbage the heap can carry.

    This class is the **heap kernel** — the reference implementation of
    the kernel interface.  Subclass kernels override the queue surface
    (``schedule``, ``schedule_at_exact``, ``step``, ``run``, ``_peek``,
    ``_note_cancel``, ``pending_events``) and advertise themselves via the
    two class attributes below; everything else is inherited.
    """

    #: Registry name of this kernel implementation.
    kernel_name = "heap"
    #: Whether clients may collapse affine compute phases into single
    #: :class:`~repro.sim.events.ComputePhase` events on this kernel.
    #: Every kernel *executes* ComputePhase correctly; only kernels that
    #: opt in here ask clients to emit them.
    supports_phase_collapse = False

    __slots__ = (
        "now",
        "obs",
        "_heap",
        "_processes",
        "_events_executed",
        "_canceled",
    )

    #: Compact the heap when this many canceled entries have accumulated
    #: *and* they outnumber the live ones (amortized O(1) per cancel).
    _COMPACT_MIN = 64

    def __init__(self, obs: Optional[Observability] = None) -> None:
        self.now: float = 0.0
        #: The session's observability context.  Components cache
        #: ``sim.obs.tracer`` at construction; the default is the shared
        #: null context, so an unobserved simulation stays exactly as
        #: cheap as before the observability layer existed.
        self.obs = obs if obs is not None else NULL_OBS
        self._heap: list[tuple[float, int, Event]] = []
        self._processes: list[SimProcess] = []
        self._events_executed = 0
        self._canceled = 0  # canceled entries still sitting in the heap

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        event = Event(self.now + delay, callback, args, sim=self)
        heapq.heappush(self._heap, (event.time, event.seq, event))
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (same as :meth:`Event.cancel`)."""
        event.cancel()

    def _note_cancel(self) -> None:
        """Bookkeeping hook invoked by :meth:`Event.cancel`."""
        self._canceled += 1
        heap = self._heap
        if (
            self._canceled >= self._COMPACT_MIN
            and self._canceled * 2 > len(heap)
        ):
            self._heap = [entry for entry in heap if not entry[2].canceled]
            heapq.heapify(self._heap)
            self._canceled = 0

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        return self.schedule(time - self.now, callback, *args)

    def schedule_at_exact(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule at absolute ``time`` with **no** float re-derivation.

        :meth:`schedule_at` computes ``now + (time - now)``, which is not
        ``time`` in floating point.  The analytic fast path needs the
        client's chained-sum target delivered bit-exactly, so this
        primitive stores ``time`` verbatim in the event.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past (t={time} < now={self.now})"
            )
        event = Event(time, callback, args, sim=self)
        heapq.heappush(self._heap, (event.time, event.seq, event))
        return event

    def _note_phase(self, phase: ComputePhase) -> None:
        """Bookkeeping hook for collapsed compute phases (no-op here)."""

    def process(self, gen: Generator, name: str = "") -> SimProcess:
        """Register a generator as a simulation process, starting now."""
        proc = SimProcess(self, gen, name=name)
        self._processes.append(proc)
        self.schedule(0.0, proc._step, None)
        return proc

    def fire(self, signal: Signal, value: Any = None) -> None:
        """Fire ``signal`` now, resuming all of its waiters."""
        self._fire_signal(signal, value)

    def _fire_signal(self, signal: Signal, value: Any) -> None:
        for resume in signal.fire(value):
            self.schedule(0.0, resume, value)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.  Returns False when drained."""
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            time, _seq, event = heappop(heap)
            if event.canceled:
                self._canceled -= 1
                continue
            if time < self.now - 1e-12:
                raise RuntimeError("event heap corrupted: time went backwards")
            if time > self.now:
                self.now = time
            self._events_executed += 1
            event.callback(*event.args)
            return True
        return False

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        """Run until the heap drains, ``until`` is reached, or ``max_events``.

        ``until`` advances the clock to exactly that time if the simulation
        drains or passes it, matching the common "measure at horizon" idiom.
        """
        executed = 0
        while True:
            nxt = self._peek()
            if nxt is None:
                break
            if max_events is not None and executed >= max_events:
                return
            if until is not None and nxt.time > until:
                self.now = until
                return
            self.step()
            executed += 1
        if until is not None and self.now < until:
            self.now = until

    def _peek(self) -> Optional[Event]:
        heap = self._heap
        while heap and heap[0][2].canceled:
            heapq.heappop(heap)
            self._canceled -= 1
        return heap[0][2] if heap else None

    @property
    def pending_events(self) -> int:
        """Number of non-canceled events still queued (O(1))."""
        return len(self._heap) - self._canceled

    @property
    def events_executed(self) -> int:
        return self._events_executed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Simulator(now={self.now:.6f}, pending={self.pending_events})"
