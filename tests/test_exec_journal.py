"""Tests for the durable-journal substrate (``repro.exec.journal``).

The :class:`DurableJournal` is the crash-safety primitive under both the
campaign journal and the server's admission WAL, so these tests pin the
durability contract directly: header-once semantics, per-record fsync
appends, and a loader that survives a journal cut off at any byte.
"""

import pytest

from repro.exec.journal import (
    WAL_SCHEMA_VERSION,
    DurableJournal,
    load_wal,
    point_from_doc,
    point_to_doc,
    wal_admit,
    wal_header,
    wal_outcome,
)
from repro.experiments import ExperimentConfig
from repro.faults import FaultEvent, FaultPlan

HEADER = {"kind": "test-journal", "schema": 1}


class TestDurableJournal:
    def test_fresh_file_requires_and_writes_header(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with pytest.raises(ValueError):
            DurableJournal(path)
        with DurableJournal(path, header=HEADER) as journal:
            journal.append({"n": 1})
            journal.append({"n": 2})
        assert DurableJournal.load(path) == [HEADER, {"n": 1}, {"n": 2}]

    def test_reopen_appends_without_second_header(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with DurableJournal(path, header=HEADER) as journal:
            journal.append({"n": 1})
        # Reopening an existing journal never rewrites the header, and
        # needs none supplied.
        with DurableJournal(path) as journal:
            journal.append({"n": 2})
        records = DurableJournal.load(path)
        assert records == [HEADER, {"n": 1}, {"n": 2}]

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "er" / "j.jsonl"
        with DurableJournal(path, header=HEADER):
            pass
        assert path.exists()

    def test_truncated_tail_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with DurableJournal(path, header=HEADER) as journal:
            journal.append({"n": 1})
        # A crash mid-write can only ever leave a partial *final* line.
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"n": 2, "cut off he')
        assert DurableJournal.load(path) == [HEADER, {"n": 1}]

    def test_every_prefix_of_a_journal_loads(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with DurableJournal(path, header=HEADER) as journal:
            for n in range(3):
                journal.append({"n": n})
        raw = path.read_bytes()
        cut_path = tmp_path / "cut.jsonl"
        for cut in range(len(raw) + 1):
            cut_path.write_bytes(raw[:cut])
            records = DurableJournal.load(cut_path)
            # Only complete lines survive, and they survive in order.
            assert records == [HEADER, {"n": 0}, {"n": 1}, {"n": 2}][
                : len(records)
            ]

    def test_append_counter(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with DurableJournal(path, header=HEADER) as journal:
            assert journal.appended == 1  # the header itself
            journal.append({"n": 1})
            assert journal.appended == 2


class TestPointDocRoundTrip:
    def test_plain_point(self):
        config = ExperimentConfig(workload_scale=0.05)
        doc = point_to_doc("sar", "simple", True, config)
        assert point_from_doc(doc) == ("sar", "simple", True, config)

    def test_fault_plan_survives(self):
        plan = FaultPlan(
            events=(
                FaultEvent(
                    kind="disk.transient_errors",
                    target="node0.disk1",
                    time=1.0,
                    duration=2.0,
                    probability=0.5,
                ),
            ),
            seed=7,
        )
        config = ExperimentConfig(workload_scale=0.05, fault_plan=plan)
        doc = point_to_doc("hf", "default", False, config)
        rebuilt = point_from_doc(doc)[3]
        assert rebuilt == config
        assert rebuilt.fault_plan == plan

    def test_doc_is_json_plain(self):
        import json

        config = ExperimentConfig(workload_scale=0.05)
        doc = point_to_doc("sar", "simple", False, config)
        assert json.loads(json.dumps(doc)) == doc


class TestAdmissionWal:
    @staticmethod
    def _admit(journal, job_id, digest="ab" * 32):
        config = ExperimentConfig(workload_scale=0.05)
        journal.append(
            wal_admit(
                job_id,
                "default",
                digest,
                "sar/simple",
                point_to_doc("sar", "simple", False, config),
            )
        )

    def test_unfinished_jobs_are_the_open_admits(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with DurableJournal(path, header=wal_header()) as journal:
            self._admit(journal, "j000001-" + "ab" * 6)
            self._admit(journal, "j000002-" + "cd" * 6, digest="cd" * 32)
            journal.append(
                wal_outcome("j000001-" + "ab" * 6, "ab" * 32, "done")
            )
        header, jobs = load_wal(path)
        assert header["schema"] == WAL_SCHEMA_VERSION
        assert jobs["j000001-" + "ab" * 6].unfinished is False
        assert jobs["j000001-" + "ab" * 6].state == "done"
        open_jobs = [j for j in jobs.values() if j.unfinished]
        assert [j.job_id for j in open_jobs] == ["j000002-" + "cd" * 6]
        assert open_jobs[0].tenant == "default"
        assert open_jobs[0].point_doc["workload"] == "sar"

    def test_outcome_error_recorded(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with DurableJournal(path, header=wal_header()) as journal:
            self._admit(journal, "j000001-" + "ab" * 6)
            journal.append(
                wal_outcome(
                    "j000001-" + "ab" * 6, "ab" * 32, "failed", error="boom"
                )
            )
        _header, jobs = load_wal(path)
        assert jobs["j000001-" + "ab" * 6].state == "failed"

    def test_schema_mismatch_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with DurableJournal(
            path, header={"kind": "admission-wal", "schema": 999}
        ):
            pass
        with pytest.raises(ValueError, match="schema"):
            load_wal(path)

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with DurableJournal(path, header=HEADER):
            pass  # wrong kind of journal entirely
        with pytest.raises(ValueError, match="not an admission WAL"):
            load_wal(path)

    def test_malformed_admit_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with DurableJournal(path, header=wal_header()) as journal:
            journal.append({"kind": "admit", "job": "j1"})  # no tenant etc.
        with pytest.raises(ValueError, match="malformed admit"):
            load_wal(path)

    def test_unknown_kinds_skipped(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with DurableJournal(path, header=wal_header()) as journal:
            journal.append({"kind": "from-the-future", "x": 1})
            self._admit(journal, "j000001-" + "ab" * 6)
        _header, jobs = load_wal(path)
        assert list(jobs) == ["j000001-" + "ab" * 6]

    def test_outcome_for_unknown_job_ignored(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with DurableJournal(path, header=wal_header()) as journal:
            journal.append(wal_outcome("j-ghost", "ab" * 32, "done"))
        _header, jobs = load_wal(path)
        assert jobs == {}
