"""Power accounting for disk drives.

Maps every state label a :class:`~repro.disk.drive.Drive` can enter to a
power draw (watts) according to its :class:`~repro.disk.specs.DiskSpec`,
and integrates a :class:`~repro.sim.trace.StateTimeline` into joules with a
per-state-family breakdown.  This is the "DiskSim augmented with detailed
power models" half of the paper's methodology.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..sim.trace import StateTimeline
from . import states as st
from .specs import DiskSpec

__all__ = ["DiskPowerModel", "EnergyBreakdown"]

RPM_UP = "rpm_up"
RPM_DOWN = "rpm_down"


@dataclass
class EnergyBreakdown:
    """Joules spent per state family for one disk (or summed over disks)."""

    active: float = 0.0
    seek: float = 0.0
    idle: float = 0.0
    standby: float = 0.0
    spin_up: float = 0.0
    spin_down: float = 0.0
    rpm_change: float = 0.0

    @property
    def total(self) -> float:
        """Exact (correctly rounded) sum of the family buckets.

        ``math.fsum`` makes the value independent of summation order, so
        any consumer that ``fsum``\\ s the per-family numbers — in
        whatever order a JSON snapshot hands them back — reproduces this
        total bit for bit.
        """
        return math.fsum(
            (
                self.active,
                self.seek,
                self.idle,
                self.standby,
                self.spin_up,
                self.spin_down,
                self.rpm_change,
            )
        )

    def add(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        """In-place accumulate another breakdown; returns self."""
        self.active += other.active
        self.seek += other.seek
        self.idle += other.idle
        self.standby += other.standby
        self.spin_up += other.spin_up
        self.spin_down += other.spin_down
        self.rpm_change += other.rpm_change
        return self

    def as_dict(self) -> dict[str, float]:
        return {
            "active": self.active,
            "seek": self.seek,
            "idle": self.idle,
            "standby": self.standby,
            "spin_up": self.spin_up,
            "spin_down": self.spin_down,
            "rpm_change": self.rpm_change,
            "total": self.total,
        }


class DiskPowerModel:
    """State-label → watts mapping for one :class:`DiskSpec`."""

    def __init__(self, spec: DiskSpec):
        self.spec = spec

    def power_of(self, state: str) -> float:
        """Instantaneous power draw in ``state``."""
        spec = self.spec
        base = st.base_state(state)
        rpm = st.parse_rpm(state, spec.max_rpm)
        if base == st.IDLE:
            return spec.idle_power_at(rpm)
        if base in (st.ACTIVE_READ, st.ACTIVE_WRITE):
            return spec.active_power_at(rpm)
        if base == st.SEEK:
            return spec.seek_power_at(rpm)
        if base == st.STANDBY:
            return spec.standby_power
        if base == st.SPIN_UP:
            return spec.spin_up_power
        if base == st.SPIN_DOWN:
            return spec.spin_down_power
        if base == RPM_UP:
            # Accelerating one step toward `rpm`.
            return spec.rpm_change_power(rpm - spec.rpm_step, rpm)
        if base == RPM_DOWN:
            # Coasting down through `rpm`.
            return spec.rpm_change_power(rpm + spec.rpm_step, rpm)
        raise ValueError(f"unknown disk state {state!r}")

    def energy(self, timeline: StateTimeline) -> float:
        """Total joules for a finalized timeline."""
        return timeline.integrate(self.power_of)

    def breakdown(self, timeline: StateTimeline) -> EnergyBreakdown:
        """Per-family joules for a finalized timeline."""
        result = EnergyBreakdown()
        for iv in timeline.intervals():
            joules = self.power_of(iv.state) * iv.duration
            base = st.base_state(iv.state)
            if base in (st.ACTIVE_READ, st.ACTIVE_WRITE):
                result.active += joules
            elif base == st.SEEK:
                result.seek += joules
            elif base == st.IDLE:
                result.idle += joules
            elif base == st.STANDBY:
                result.standby += joules
            elif base == st.SPIN_UP:
                result.spin_up += joules
            elif base == st.SPIN_DOWN:
                result.spin_down += joules
            elif base in (RPM_UP, RPM_DOWN):
                result.rpm_change += joules
            else:  # pragma: no cover - guarded by power_of
                raise ValueError(f"unknown disk state {iv.state!r}")
        return result
