"""Discrete-event simulation kernel (AccuSim substitute).

Exports the :class:`Simulator` engine, process/event primitives, and the
:class:`StateTimeline` tracer used for power/idle accounting.
"""

from .engine import SimProcess, Simulator
from .events import AllOf, AnyOf, Event, Signal, Timeout
from .trace import Interval, StateTimeline

__all__ = [
    "Simulator",
    "SimProcess",
    "Event",
    "Timeout",
    "Signal",
    "AllOf",
    "AnyOf",
    "Interval",
    "StateTimeline",
]
