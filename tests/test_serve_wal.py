"""Crash-safety tests for the server's admission WAL.

The contract under test: an admission record is fsynced *before* the 202
leaves the server, so every admission a client ever hears about can be
replayed — ``recover=True`` re-enqueues accepted-but-unfinished jobs
under their original ids, and a warm content-addressed cache turns the
replay into hits (bit-identical results, zero re-simulation).

Crashes are simulated in-process by :func:`_crash`: tear the server down
with no drain and no queue join — the WAL's fsynced lines are all that
survive, which is exactly the SIGKILL situation.
"""

import asyncio
import threading

import pytest

from repro.exec.journal import (
    DurableJournal,
    load_wal,
    point_to_doc,
    wal_admit,
    wal_header,
    wal_outcome,
)
from repro.experiments import ExperimentConfig
from repro.serve import SchedulingServer, ServerConfig
from repro.serve.http import HttpClient
from repro.serve.server import DEFAULT_TENANT, parse_point

TINY = ExperimentConfig(workload_scale=0.05)
SUBMIT_SAR = {"workload": "sar", "policy": "simple", "scheme": False}


def _config(tmp_path, wal, **overrides):
    overrides.setdefault("port", 0)
    overrides.setdefault("cache_root", tmp_path / "cache")
    overrides.setdefault("base_config", TINY)
    return ServerConfig(wal_path=wal, **overrides)


async def _crash(server: SchedulingServer) -> None:
    """Kill a server the unclean way: no drain, no outcome flush."""
    if server._server is not None:
        server._server.close()
        await server._server.wait_closed()
    for task in (
        server._workers
        + list(server._connections)
        + list(server._wal_tasks)
    ):
        task.cancel()
    if server._wal is not None:
        server._wal.close()
        server._wal = None


async def _await_done(client: HttpClient, job_id: str) -> dict:
    for _ in range(40):
        status, _h, body = await client.request(
            "GET", f"/v1/jobs/{job_id}?wait=30"
        )
        assert status == 200
        if body["job"]["state"] in ("done", "failed"):
            return body["job"]
    raise AssertionError(f"job {job_id} never reached a terminal state")


class TestAdmissionDurability:
    def test_admit_record_durable_before_202(self, tmp_path):
        """By the time the 202 is observable, the admit line is on disk
        — even though the job hasn't run (the batch gate is closed)."""
        wal = tmp_path / "wal.jsonl"
        gate = threading.Event()
        holder = {}

        def gated(tenant, points):
            gate.wait(30)
            return holder["server"]._run_batch(tenant, points)

        async def scenario():
            server = SchedulingServer(
                _config(tmp_path, wal), run_batch_fn=gated
            )
            holder["server"] = server
            await server.start()
            client = HttpClient("127.0.0.1", server.port)
            try:
                status, _h, body = await client.request(
                    "POST", "/v1/submit", doc=SUBMIT_SAR
                )
                assert status == 202
                job_id = body["job"]["id"]

                _header, jobs = load_wal(wal)
                assert job_id in jobs
                assert jobs[job_id].unfinished
                assert jobs[job_id].point_doc["workload"] == "sar"

                # An idempotent resubmission coalesces: no second admit.
                status, _h2, body2 = await client.request(
                    "POST", "/v1/submit", doc=SUBMIT_SAR
                )
                assert status == 202
                assert body2["job"]["coalesced"] is True
                assert body2["job"]["id"] == job_id
                _header, jobs = load_wal(wal)
                assert len(jobs) == 1

                gate.set()
                done = await _await_done(client, job_id)
                assert done["state"] == "done"
            finally:
                await client.close()
                await server.stop()

            # A clean stop flushed the outcome: nothing left to replay.
            _header, jobs = load_wal(wal)
            assert jobs[job_id].state == "done"
            assert not any(j.unfinished for j in jobs.values())

        asyncio.run(scenario())

    def test_status_and_metrics_expose_wal(self, tmp_path):
        async def scenario():
            server = SchedulingServer(_config(tmp_path, tmp_path / "w.jsonl"))
            await server.start()
            client = HttpClient("127.0.0.1", server.port)
            try:
                _s, _h, doc = await client.request("GET", "/v1/status")
                assert doc["wal"] is True
                assert doc["chaos"] is False
                _s, _h, snap = await client.request("GET", "/v1/metrics")
                assert snap["counters"]["server.wal.appends"] == 0
                assert snap["counters"]["server.recovery.replayed"] == 0
            finally:
                await client.close()
                await server.stop()

        asyncio.run(scenario())


class TestRecovery:
    def test_sigkill_then_recover_completes_admitted_job(self, tmp_path):
        """The tentpole: admit, crash before the batch runs, restart
        with recover=True — the job comes back under its original id
        and completes."""
        wal = tmp_path / "wal.jsonl"
        gate = threading.Event()

        def stalled(tenant, points):
            gate.wait(30)
            raise RuntimeError("crash window held the batch")

        async def scenario():
            server1 = SchedulingServer(
                _config(tmp_path, wal), run_batch_fn=stalled
            )
            await server1.start()
            client1 = HttpClient("127.0.0.1", server1.port)
            status, _h, body = await client1.request(
                "POST", "/v1/submit", doc=SUBMIT_SAR
            )
            assert status == 202
            job_id = body["job"]["id"]
            await client1.close()
            await _crash(server1)
            gate.set()  # unblock the orphaned batch thread
            for worker in server1._workers:
                try:
                    await worker
                except (asyncio.CancelledError, RuntimeError):
                    pass

            _header, jobs = load_wal(wal)
            assert jobs[job_id].unfinished  # the promise outlived the crash

            server2 = SchedulingServer(
                _config(tmp_path, wal, recover=True)
            )
            await server2.start()
            client2 = HttpClient("127.0.0.1", server2.port)
            try:
                assert (
                    server2.metrics.counter("server.recovery.replayed").value
                    == 1
                )
                done = await _await_done(client2, job_id)
                assert done["state"] == "done"
                assert done["id"] == job_id
                assert done["result"]["energy_joules"] > 0
            finally:
                await client2.close()
                await server2.stop()

            _header, jobs = load_wal(wal)
            assert jobs[job_id].state == "done"

        asyncio.run(scenario())

    def test_recovered_cached_job_is_served_without_resimulation(
        self, tmp_path
    ):
        """Replay against a warm cache: the recovered job completes as a
        hit — bit-identical by construction, zero simulations."""
        async def scenario():
            # Pass 1: compute the point normally, warming the cache.
            server1 = SchedulingServer(_config(tmp_path, None))
            await server1.start()
            client1 = HttpClient("127.0.0.1", server1.port)
            try:
                _s, _h, body = await client1.request(
                    "POST", "/v1/submit", doc=SUBMIT_SAR
                )
                first = await _await_done(client1, body["job"]["id"])
                assert first["state"] == "done"
            finally:
                await client1.close()
                await server1.stop()

            # Hand-craft a WAL claiming that point was admitted but
            # never finished — the post-crash state.
            wal = tmp_path / "crash.jsonl"
            job_id = f"j000009-{first['digest'][:12]}"
            with DurableJournal(wal, header=wal_header()) as journal:
                journal.append(
                    wal_admit(
                        job_id,
                        "default",
                        first["digest"],
                        first["label"],
                        point_to_doc("sar", "simple", False, TINY),
                    )
                )

            server2 = SchedulingServer(_config(tmp_path, wal, recover=True))
            await server2.start()
            client2 = HttpClient("127.0.0.1", server2.port)
            try:
                done = await _await_done(client2, job_id)
                assert done["state"] == "done"
                assert done["result"] == first["result"]  # bit-identical
                _s, _h, snap = await client2.request("GET", "/v1/metrics")
                assert snap["counters"]["server.simulated"] == 0
                assert snap["counters"]["server.cache_hits"] == 1
                assert snap["counters"]["server.recovery.replayed"] == 1
            finally:
                await client2.close()
                await server2.stop()

        asyncio.run(scenario())

    def test_clean_wal_replays_nothing_and_resumes_ids(self, tmp_path):
        wal = tmp_path / "wal.jsonl"

        async def scenario():
            server1 = SchedulingServer(_config(tmp_path, wal))
            await server1.start()
            client1 = HttpClient("127.0.0.1", server1.port)
            try:
                _s, _h, body = await client1.request(
                    "POST", "/v1/submit", doc=SUBMIT_SAR
                )
                first_id = body["job"]["id"]
                await _await_done(client1, first_id)
            finally:
                await client1.close()
                await server1.stop()

            server2 = SchedulingServer(_config(tmp_path, wal, recover=True))
            await server2.start()
            client2 = HttpClient("127.0.0.1", server2.port)
            try:
                replayed = server2.metrics.counter(
                    "server.recovery.replayed"
                ).value
                skipped = server2.metrics.counter(
                    "server.recovery.skipped"
                ).value
                assert (replayed, skipped) == (0, 1)
                # The sequence resumed past the recovered id: no reuse.
                _s, _h, body = await client2.request(
                    "POST",
                    "/v1/submit",
                    doc={"workload": "hf", "policy": "simple"},
                )
                assert body["job"]["id"] > first_id
            finally:
                await client2.close()
                await server2.stop()

        asyncio.run(scenario())

    def test_populated_wal_without_recover_is_refused(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        with DurableJournal(wal, header=wal_header()):
            pass

        async def scenario():
            server = SchedulingServer(_config(tmp_path, wal))
            with pytest.raises(ValueError, match="recover"):
                await server.start()

        asyncio.run(scenario())

    def test_recover_without_wal_path_is_a_config_error(self, tmp_path):
        with pytest.raises(ValueError, match="wal_path"):
            ServerConfig(recover=True)

    def test_wide_job_ids_parse_and_advance_the_sequence(self, tmp_path):
        """Ids past j999999 widen (``j1000000-...``); recovery must
        still parse them or a restart reissues colliding ids."""
        wal = tmp_path / "wal.jsonl"
        digest = "0" * 64
        wide_id = f"j1000000-{digest[:12]}"
        with DurableJournal(wal, header=wal_header()) as journal:
            journal.append(
                wal_admit(
                    wide_id,
                    DEFAULT_TENANT,
                    digest,
                    "sar/simple",
                    point_to_doc("sar", "simple", False, TINY),
                )
            )
            journal.append(wal_outcome(wide_id, digest, "done"))

        async def scenario():
            server = SchedulingServer(_config(tmp_path, wal, recover=True))
            await server.start()
            try:
                assert server._seq == 1000000
                job, _coalesced = await server.submit(
                    DEFAULT_TENANT, parse_point(dict(SUBMIT_SAR), TINY)
                )
                assert job.id.startswith("j1000001-")
            finally:
                await server.stop()

        asyncio.run(scenario())


class _GatedJournal:
    """Journal wrapper whose append blocks on a gate (and can fail), so
    tests can hold a submission inside its WAL-fsync window."""

    def __init__(self, inner: DurableJournal, gate: threading.Event):
        self.inner = inner
        self.gate = gate
        self.fail = False

    def append(self, record):
        if not self.gate.wait(30):
            raise AssertionError("test gate never released")
        if self.fail:
            raise OSError("simulated WAL device failure")
        return self.inner.append(record)

    def close(self):
        self.inner.close()


class TestInFlightAdmissions:
    """The window between _admit and the fsync completing: coalescers,
    drains, and cancellations must all respect the durability promise."""

    def test_coalesced_202_waits_for_primary_fsync(self, tmp_path):
        """A duplicate that coalesces onto an admission whose WAL write
        is still in flight must not return before the record is on
        disk — its 202 carries the same promise as the primary's."""
        wal = tmp_path / "wal.jsonl"

        async def scenario():
            server = SchedulingServer(_config(tmp_path, wal))
            await server.start()
            gate = threading.Event()
            server._wal = _GatedJournal(server._wal, gate)
            point = parse_point(dict(SUBMIT_SAR), TINY)
            try:
                primary = asyncio.create_task(
                    server.submit(DEFAULT_TENANT, point)
                )
                await asyncio.sleep(0.05)  # primary is inside the fsync
                dup = asyncio.create_task(
                    server.submit(DEFAULT_TENANT, point)
                )
                await asyncio.sleep(0.05)
                assert not primary.done()
                assert not dup.done()  # held until the record is durable
                gate.set()
                job, coalesced = await primary
                dup_job, dup_coalesced = await dup
                assert (coalesced, dup_coalesced) == (False, True)
                assert dup_job is job
                _header, jobs = load_wal(wal)
                assert job.id in jobs  # durable before either returned
            finally:
                gate.set()
                await server.stop()

        asyncio.run(scenario())

    def test_wal_failure_fails_coalescers_and_withdraws(self, tmp_path):
        """A failed append withdraws the admission for *everyone*: the
        primary re-raises, coalescers get a 500-shaped error, and the
        reservation plus the phantom _active entry are rolled back."""
        async def scenario():
            server = SchedulingServer(
                _config(tmp_path, tmp_path / "wal.jsonl")
            )
            await server.start()
            gate = threading.Event()
            gated = _GatedJournal(server._wal, gate)
            gated.fail = True
            server._wal = gated
            point = parse_point(dict(SUBMIT_SAR), TINY)
            try:
                primary = asyncio.create_task(
                    server.submit(DEFAULT_TENANT, point)
                )
                await asyncio.sleep(0.05)
                dup = asyncio.create_task(
                    server.submit(DEFAULT_TENANT, point)
                )
                await asyncio.sleep(0.05)
                gate.set()
                with pytest.raises(OSError):
                    await primary
                with pytest.raises(RuntimeError, match="withdrawn"):
                    await dup
                assert server._active == {}
                assert server._pending_enqueues == 0
                assert server._enqueues_idle.is_set()
                # Once the WAL heals, the same point admits fresh.
                gated.fail = False
                job, coalesced = await server.submit(DEFAULT_TENANT, point)
                assert coalesced is False
            finally:
                gate.set()
                await server.stop()

        asyncio.run(scenario())

    def test_drain_waits_for_inflight_admission(self, tmp_path):
        """A submission that passed admission before the drain began but
        is still awaiting its fsync must be processed, not stranded —
        a clean drain leaves a WAL with nothing unfinished."""
        wal = tmp_path / "wal.jsonl"

        async def scenario():
            server = SchedulingServer(_config(tmp_path, wal))
            await server.start()
            gate = threading.Event()
            server._wal = _GatedJournal(server._wal, gate)
            point = parse_point(dict(SUBMIT_SAR), TINY)
            pending = asyncio.create_task(
                server.submit(DEFAULT_TENANT, point)
            )
            await asyncio.sleep(0.05)  # inside the fsync window
            server.request_shutdown()
            await asyncio.sleep(0.05)
            assert not server._stopped.is_set()  # drain is waiting on it
            gate.set()
            job, _coalesced = await pending
            await server.wait_stopped()
            assert job.state == "done"  # processed, not stranded
            _header, jobs = load_wal(wal)
            assert not any(j.unfinished for j in jobs.values())
            await server.stop()

        asyncio.run(scenario())

    def test_cancelled_submit_withdraws_reservation(self, tmp_path):
        """Cancellation mid-append (connection teardown) must roll back
        like a failure: no leaked reservation, no phantom job that
        later duplicates coalesce onto but that never runs."""
        async def scenario():
            server = SchedulingServer(
                _config(tmp_path, tmp_path / "wal.jsonl")
            )
            await server.start()
            gate = threading.Event()
            server._wal = _GatedJournal(server._wal, gate)
            point = parse_point(dict(SUBMIT_SAR), TINY)
            task = asyncio.create_task(server.submit(DEFAULT_TENANT, point))
            await asyncio.sleep(0.05)  # inside the fsync window
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            assert server._active == {}
            assert len(server._jobs) == 0
            assert server._pending_enqueues == 0
            assert server._enqueues_idle.is_set()
            gate.set()  # release the orphaned fsync thread
            await server.stop()

        asyncio.run(scenario())
