"""Scheduling tables — the compiler's output artifact (§III).

The compiler "records this information in a table for each application
process"; the runtime data access scheduler walks its process's table slot
by slot and issues the prefetches.  :class:`ScheduleTable` is that
per-process table; :class:`ScheduleBook` bundles one per process plus the
metadata the runtime needs (slot horizon, access lookup).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .access import DataAccess

__all__ = ["ScheduleTable", "ScheduleBook"]


@dataclass
class ScheduleTable:
    """Slot → scheduled accesses for one process."""

    process: int
    by_slot: dict[int, list[DataAccess]] = field(default_factory=dict)

    def add(self, access: DataAccess) -> None:
        if access.scheduled_slot is None:
            raise ValueError(f"access {access.aid} has no scheduled slot")
        if access.process != self.process:
            raise ValueError(
                f"access {access.aid} belongs to process {access.process}, "
                f"not {self.process}"
            )
        self.by_slot.setdefault(access.scheduled_slot, []).append(access)

    def at(self, slot: int) -> list[DataAccess]:
        return self.by_slot.get(slot, [])

    def slots(self) -> list[int]:
        return sorted(self.by_slot)

    def __iter__(self) -> Iterator[tuple[int, list[DataAccess]]]:
        for slot in self.slots():
            yield slot, self.by_slot[slot]

    def __len__(self) -> int:
        return sum(len(v) for v in self.by_slot.values())


@dataclass
class ScheduleBook:
    """All per-process tables for one compiled program."""

    tables: dict[int, ScheduleTable]
    n_slots: int

    @classmethod
    def from_accesses(
        cls, accesses: list[DataAccess], n_processes: int, n_slots: int
    ) -> "ScheduleBook":
        tables = {p: ScheduleTable(process=p) for p in range(n_processes)}
        for access in accesses:
            if access.scheduled_slot is None:
                raise ValueError(f"access {access.aid} was never scheduled")
            tables[access.process].add(access)
        return cls(tables=tables, n_slots=n_slots)

    def table_for(self, process: int) -> ScheduleTable:
        if process not in self.tables:
            raise KeyError(f"no table for process {process}")
        return self.tables[process]

    def all_accesses(self) -> list[DataAccess]:
        out = [
            a
            for t in self.tables.values()
            for accs in t.by_slot.values()
            for a in accs
        ]
        out.sort(key=lambda a: a.aid)
        return out

    def access_count(self) -> int:
        return sum(len(t) for t in self.tables.values())

    def moved_count(self) -> int:
        """Accesses the compiler actually relocated (prefetches)."""
        return sum(
            1 for a in self.all_accesses() if a.scheduled_slot != a.original_slot
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ScheduleBook({len(self.tables)} processes, "
            f"{self.access_count()} accesses, {self.moved_count()} moved)"
        )
