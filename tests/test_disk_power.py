"""Tests for the disk power model and energy breakdown."""

import pytest

from repro.disk import DiskPowerModel, EnergyBreakdown, TABLE2_DISK
from repro.disk import states as st
from repro.disk.power import RPM_DOWN, RPM_UP
from repro.sim import StateTimeline

from conftest import drain, make_drive, multispeed_fast_spec, submit_read


class TestPowerOf:
    model = DiskPowerModel(TABLE2_DISK)

    def test_table2_mapping(self):
        assert self.model.power_of("idle@12000") == 17.1
        assert self.model.power_of("active_read@12000") == 36.6
        assert self.model.power_of("active_write@12000") == 36.6
        assert self.model.power_of("seek@12000") == 32.1
        assert self.model.power_of(st.STANDBY) == 7.2
        assert self.model.power_of(st.SPIN_UP) == 44.8
        assert self.model.power_of(st.SPIN_DOWN) == 10.0

    def test_reduced_speed_idle(self):
        model = DiskPowerModel(multispeed_fast_spec())
        assert model.power_of("idle@6000") == pytest.approx(17.1 * 0.25)

    def test_rpm_transition_states(self):
        model = DiskPowerModel(multispeed_fast_spec())
        up = model.power_of(f"{RPM_UP}@12000")
        down = model.power_of(f"{RPM_DOWN}@10800")
        assert up > model.power_of("idle@12000")
        assert down < model.power_of("idle@12000")

    def test_unknown_state_raises(self):
        with pytest.raises(ValueError):
            self.model.power_of("warp@9000")

    def test_bare_idle_defaults_to_max_rpm(self):
        assert self.model.power_of(st.IDLE) == 17.1


class TestEnergyIntegration:
    def test_energy_matches_manual_integral(self):
        tl = StateTimeline("d", "idle@12000")
        tl.transition(10.0, "active_read@12000")
        tl.transition(12.0, st.STANDBY)
        tl.finalize(20.0)
        model = DiskPowerModel(TABLE2_DISK)
        expected = 10 * 17.1 + 2 * 36.6 + 8 * 7.2
        assert model.energy(tl) == pytest.approx(expected)

    def test_breakdown_families(self):
        tl = StateTimeline("d", "idle@12000")
        tl.transition(5.0, "seek@12000")
        tl.transition(6.0, "active_write@12000")
        tl.transition(8.0, st.SPIN_DOWN)
        tl.transition(18.0, st.STANDBY)
        tl.transition(20.0, st.SPIN_UP)
        tl.finalize(36.0)
        b = DiskPowerModel(TABLE2_DISK).breakdown(tl)
        assert b.idle == pytest.approx(5 * 17.1)
        assert b.seek == pytest.approx(1 * 32.1)
        assert b.active == pytest.approx(2 * 36.6)
        assert b.spin_down == pytest.approx(10 * 10.0)
        assert b.standby == pytest.approx(2 * 7.2)
        assert b.spin_up == pytest.approx(16 * 44.8)
        assert b.total == pytest.approx(DiskPowerModel(TABLE2_DISK).energy(tl))

    def test_breakdown_add(self):
        a = EnergyBreakdown(active=1.0, idle=2.0)
        b = EnergyBreakdown(active=3.0, standby=4.0)
        a.add(b)
        assert a.active == 4.0
        assert a.idle == 2.0
        assert a.standby == 4.0

    def test_as_dict_includes_total(self):
        d = EnergyBreakdown(idle=5.0).as_dict()
        assert d["total"] == 5.0
        assert set(d) == {
            "active", "seek", "idle", "standby", "spin_up", "spin_down",
            "rpm_change", "total",
        }

    def test_drive_energy_accumulates_service(self, sim):
        drive = make_drive(sim)
        submit_read(sim, drive, 0.0, nbytes=16 * 2**20)
        drain(sim, drive)
        b = drive.energy_breakdown()
        assert b.active > 0
        assert b.seek >= 0
        assert drive.energy() == pytest.approx(b.total)

    def test_multispeed_run_has_rpm_energy(self, sim):
        drive = make_drive(sim, multispeed_fast_spec())
        drive.request_rpm(3_600)
        sim.run(until=30.0)
        drive.finalize()
        b = drive.energy_breakdown()
        assert b.rpm_change > 0
