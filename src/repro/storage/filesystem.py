"""Parallel file system facade (PVFS substitute).

Owns the striped-file registry, the stripe map, and the I/O nodes; turns a
``(file, offset, size)`` access into per-node sub-requests and exposes the
signature computation the compiler needs.  A convenience constructor builds
the whole Table II storage stack (nodes, caches, RAID, drives, policies).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from ..disk.drive import Drive
from ..disk.specs import DiskSpec
from ..power.policy import PowerPolicy
from ..sim.engine import Simulator
from .cache import StorageCache
from .ionode import IONode
from .raid import RaidMap
from .striping import Extent, StripedFile, StripeMap

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.injector import FaultInjector

__all__ = ["ParallelFileSystem"]


class ParallelFileSystem:
    """A striped parallel file system over simulated I/O nodes."""

    def __init__(self, stripe_map: StripeMap, nodes: list[IONode]):
        if len(nodes) != stripe_map.n_nodes:
            raise ValueError(
                f"stripe map expects {stripe_map.n_nodes} nodes, got {len(nodes)}"
            )
        self.stripe_map = stripe_map
        self.nodes = nodes
        self._files: dict[str, StripedFile] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        sim: Simulator,
        n_nodes: int,
        stripe_size: int,
        disk_spec: DiskSpec,
        cache_bytes: int,
        policy_factory: Optional[Callable[[], PowerPolicy]] = None,
        disks_per_node: int = 1,
        raid_level: int = 0,
        prefetch_depth: int = 2,
        destage_delay: float = 0.5,
        faults: Optional["FaultInjector"] = None,
    ) -> "ParallelFileSystem":
        """Assemble the full storage stack.

        ``policy_factory`` produces one fresh power policy per drive
        (spinning down an I/O node means spinning down all of its disks,
        so each drive gets its own instance of the same policy).
        ``faults`` threads per-drive fault state and the shared fault
        counters through the stack; ``None`` keeps every fault-free fast
        path.
        """
        nodes: list[IONode] = []
        for node_id in range(n_nodes):
            drives = []
            for d in range(disks_per_node):
                name = f"node{node_id}.disk{d}"
                drive = Drive(
                    sim,
                    disk_spec,
                    name=name,
                    faults=(
                        faults.drive_state(name)
                        if faults is not None
                        else None
                    ),
                )
                if policy_factory is not None:
                    drive.attach_policy(policy_factory())
                drives.append(drive)
            raid = RaidMap(raid_level, disks_per_node, chunk_size=stripe_size)
            cache = StorageCache(cache_bytes, block_size=stripe_size)
            nodes.append(
                IONode(
                    sim,
                    node_id,
                    drives,
                    cache,
                    raid,
                    prefetch_depth=prefetch_depth,
                    destage_delay=destage_delay,
                    fault_counters=(
                        faults.counters if faults is not None else None
                    ),
                )
            )
        return cls(StripeMap(stripe_size, n_nodes), nodes)

    # ------------------------------------------------------------------
    # File registry
    # ------------------------------------------------------------------
    def create_file(self, name: str, size: int, start_node: int = -1) -> StripedFile:
        """Register a striped file.  Idempotent for identical definitions.

        Files are allocated disjoint node-local regions (sequential stripe
        rows), so blocks of different files never alias in the storage
        caches or on the disks.
        """
        existing = self._files.get(name)
        if existing is not None:
            if existing.size != size:
                raise ValueError(f"file {name!r} already exists with another size")
            return existing
        base_row = sum(
            f.rows(self.stripe_map.stripe_size, self.stripe_map.n_nodes)
            for f in self._files.values()
        )
        file = StripedFile(name, size, start_node, base_row=base_row)
        self._files[name] = file
        return file

    def file(self, name: str) -> StripedFile:
        if name not in self._files:
            raise KeyError(f"unknown file {name!r}")
        return self._files[name]

    @property
    def files(self) -> dict[str, StripedFile]:
        return dict(self._files)

    # ------------------------------------------------------------------
    # Access path
    # ------------------------------------------------------------------
    def map_access(self, file: StripedFile, offset: int, size: int) -> list[Extent]:
        return self.stripe_map.map_extent(file, offset, size)

    def signature(self, file: StripedFile, offset: int, size: int) -> int:
        """Access signature bitmask over the I/O nodes (§IV-B)."""
        return self.stripe_map.signature(file, offset, size)

    def access(
        self,
        file: StripedFile,
        offset: int,
        size: int,
        is_write: bool,
        on_complete: Callable[[], None],
    ) -> None:
        """Issue a striped access; ``on_complete`` fires when every
        per-node sub-request finished."""
        extents = self.map_access(file, offset, size)
        if not extents:
            node = self.nodes[0]
            node.sim.schedule(0.0, on_complete)
            return
        pending = {"n": len(extents)}

        def one_done() -> None:
            pending["n"] -= 1
            if pending["n"] == 0:
                on_complete()

        for ext in extents:
            node = self.nodes[ext.node]
            if is_write:
                node.write(ext.node_offset, ext.size, one_done)
            else:
                node.read(ext.node_offset, ext.size, one_done)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def all_drives(self) -> list[Drive]:
        return [d for node in self.nodes for d in node.drives]

    def finalize(self, now: float) -> None:
        """Flush caches, close timelines, notify policies."""
        for node in self.nodes:
            node.flush_all()
        for drive in self.all_drives():
            drive.finalize()
            if drive.policy is not None:
                drive.policy.on_simulation_end(now)

    def total_energy(self) -> float:
        return sum(d.energy() for d in self.all_drives())

    def idle_periods(self) -> list[float]:
        """Idle-period lengths pooled over all drives (Fig. 12 CDFs)."""
        periods: list[float] = []
        for drive in self.all_drives():
            periods.extend(drive.idle_periods())
        return periods

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ParallelFileSystem({len(self.nodes)} nodes, "
            f"{len(self._files)} files)"
        )
