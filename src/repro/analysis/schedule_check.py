"""Static schedule verifier (codes ``SCHED001``–``SCHED008``).

Checks a compiled :class:`~repro.core.table.ScheduleBook` against its
program trace *without running the simulator*: every relocated access must
stay inside its slack window and the slot horizon, every traced read must
be scheduled exactly once under its own process, and each access's
recorded producer must agree with the dependence oracle — the property the
runtime's producer-wait silently relies on (a stale producer makes the
scheduler thread wait on the wrong process/slot, or not wait at all).

The last-writer oracle is the polyhedral path
(:class:`~repro.ir.dependence.AffineDependenceAnalyzer`) for affine
programs at unit granularity and the profiling path
(:meth:`~repro.ir.profiling.AccessTrace.last_writer_table`) otherwise;
the two agree by construction on affine programs.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from ..core.slack import producer_for
from ..core.table import ScheduleBook
from ..ir.dependence import AffineDependenceAnalyzer
from ..ir.profiling import AccessTrace
from .diagnostics import Diagnostic, Severity, SourceAnchor

__all__ = ["oracle_writer_table", "check_book"]

WriterTable = dict[tuple[str, int], list[tuple[int, int]]]


def oracle_writer_table(trace: AccessTrace, granularity: int = 1) -> WriterTable:
    """The ground-truth ``(file, block) → [(slot, process)]`` writer table.

    Affine programs at unit slot granularity go through the polyhedral
    analyzer (a fresh symbolic enumeration, independent of ``trace``);
    everything else uses the trace itself.  At non-unit granularity the
    analyzer's slot axis would not match the compiled one, so the trace is
    authoritative there.
    """
    if trace.program.is_affine and granularity == 1:
        return AffineDependenceAnalyzer(trace.program).last_writer_table()
    return trace.last_writer_table()


def _expected_producer(
    writer_table: WriterTable,
    file: str,
    block: int,
    blocks: int,
    slot: int,
    process: int,
) -> Optional[tuple[int, int]]:
    """The binding producer over all covered blocks (same resolution as
    the slack pass)."""
    producer: Optional[tuple[int, int]] = None
    for b in range(block, block + blocks):
        cand = producer_for(writer_table.get((file, b)), slot, process)
        if cand is not None and (producer is None or cand > producer):
            producer = cand
    return producer


def check_book(
    trace: AccessTrace,
    book: ScheduleBook,
    writer_table: Optional[WriterTable] = None,
    granularity: int = 1,
) -> list[Diagnostic]:
    """All SCHED* diagnostics for ``book`` against ``trace``.

    ``writer_table`` may be supplied to reuse an oracle across checkers;
    by default it is built via :func:`oracle_writer_table`.
    """
    if writer_table is None:
        writer_table = oracle_writer_table(trace, granularity)
    diagnostics: list[Diagnostic] = []
    horizon = trace.n_slots

    # Ground truth: the multiset of traced reads, keyed by their stable
    # identity (process, consuming slot, file extent).
    expected = Counter(
        (io.process, io.slot, io.file, io.block, io.blocks)
        for io in trace.reads()
    )

    seen_aids: set[int] = set()
    for pid, table in sorted(book.tables.items()):
        for slot, accesses in table:
            for access in accesses:
                anchor = SourceAnchor(
                    process=access.process,
                    slot=access.scheduled_slot,
                    aid=access.aid,
                    file=access.file,
                    block=access.block,
                )

                # SCHED003 — duplicates (skip further checks on the copy
                # so one corruption does not cascade into noise).
                if access.aid in seen_aids:
                    diagnostics.append(Diagnostic(
                        "SCHED003", Severity.ERROR,
                        f"access a{access.aid} is scheduled more than once",
                        anchor,
                    ))
                    continue
                seen_aids.add(access.aid)

                # SCHED005 — table/process mismatch.
                if access.process != pid or table.process != pid:
                    diagnostics.append(Diagnostic(
                        "SCHED005", Severity.ERROR,
                        f"access a{access.aid} of process {access.process} "
                        f"is filed under table {pid}",
                        anchor,
                    ))

                # SCHED008 — phantom (no such traced read).
                key = (access.process, access.original_slot, access.file,
                       access.block, access.blocks)
                if expected[key] > 0:
                    expected[key] -= 1
                else:
                    diagnostics.append(Diagnostic(
                        "SCHED008", Severity.ERROR,
                        f"access a{access.aid} matches no traced read "
                        f"(claimed consumption at slot {access.original_slot})",
                        anchor,
                    ))
                    continue

                scheduled = access.scheduled_slot
                if scheduled is None:
                    # ScheduleTable.add refuses these, but a hand-built
                    # book can hold them; the window checks need a slot.
                    diagnostics.append(Diagnostic(
                        "SCHED004", Severity.ERROR,
                        f"access a{access.aid} has no scheduled slot",
                        anchor,
                    ))
                    continue

                # SCHED001 — outside the access's own slack window.
                if not (access.begin <= scheduled <= access.end):
                    diagnostics.append(Diagnostic(
                        "SCHED001", Severity.ERROR,
                        f"scheduled slot {scheduled} outside slack window "
                        f"[{access.begin}, {access.end}]",
                        anchor,
                    ))

                # SCHED002 — outside the slot horizon (trace's, not the
                # book's own claim, which could be forged alongside).
                if scheduled < 0 or scheduled + access.length > horizon:
                    diagnostics.append(Diagnostic(
                        "SCHED002", Severity.ERROR,
                        f"slots [{scheduled}, {scheduled + access.length}) "
                        f"overrun the horizon of {horizon} slots",
                        anchor,
                    ))

                # SCHED006/SCHED007 — producer agreement and ordering.
                oracle = _expected_producer(
                    writer_table, access.file, access.block, access.blocks,
                    access.original_slot, access.process,
                )
                if access.producer != oracle:
                    diagnostics.append(Diagnostic(
                        "SCHED006", Severity.ERROR,
                        f"recorded producer {access.producer} disagrees with "
                        f"the dependence oracle {oracle}",
                        anchor,
                    ))
                if oracle is not None and scheduled <= oracle[0]:
                    diagnostics.append(Diagnostic(
                        "SCHED007", Severity.ERROR,
                        f"prefetch at slot {scheduled} not after the "
                        f"producing write (slot {oracle[0]} by process "
                        f"{oracle[1]})",
                        anchor,
                    ))

    # SCHED004 — traced reads the book never schedules.
    for (process, slot, file, block, blocks), count in sorted(
        expected.items()
    ):
        if count > 0:
            diagnostics.append(Diagnostic(
                "SCHED004", Severity.ERROR,
                f"{count} read(s) of {file}[{block}:{block + blocks}] at "
                f"slot {slot} have no scheduled access",
                SourceAnchor(process=process, slot=slot, file=file,
                             block=block),
            ))
    return diagnostics
