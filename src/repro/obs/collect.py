"""Populate a :class:`~repro.obs.metrics.MetricsRegistry` from a finished
session.

Almost everything here is derived *after* the run from state the
simulation already keeps — drive timelines, the stats dataclasses every
component carries — so enabling metrics adds no per-event cost.  The two
exceptions (per-link queue-delay histograms, scheduler wait clocks) are
sampled live but gated, see :mod:`repro.obs.base`.

Naming convention (flat, dot-separated, instance id embedded)::

    run.execution_time                 gauge   seconds
    sim.events_executed                counter
    drive.<name>.energy.<family>       gauge   joules ('total' included)
    drive.<name>.residency.<family>    gauge   seconds in [0, horizon]
    drive.<name>.transitions.<family>  counter entries into the family
    drive.<name>.requests              counter (+reads/writes/bytes_*)
    drive.<name>.idle_period_ms        histogram (paper Fig. 12 buckets)
    fleet.idle_period_ms               histogram pooled over drives
    buffer.*                           prefetch buffer counters/gauges
    sched.p<pid>.*                     per-scheduler-thread wait reasons
    cache.node<i>.*                    storage-cache hit/eviction stats
    ionode.node<i>.*                   I/O-node service counters
    net.link<i>.*                      link transfer stats (+ histogram)
    mpiio.*                            middleware-level I/O stats
    client.*                           summed application-side counters
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..metrics.energy import (
    breakdown_until,
    idle_periods_until,
    residency_until,
    transition_counts_until,
)
from ..metrics.idle import PAPER_BUCKETS_MS
from .metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.energy import EnergyAnalysis
    from ..runtime.session import SessionResult

__all__ = [
    "LINK_DELAY_BOUNDS_S",
    "RETRY_BOUNDS",
    "collect_session_metrics",
    "collect_envelope_metrics",
]

#: Bucket bounds (seconds) for per-link queue-delay histograms: 10 µs up
#: to 1 s, roughly half-decade steps.
LINK_DELAY_BOUNDS_S = (
    1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1.0,
)

#: Bucket bounds for the retries-per-recovered-read histogram.
RETRY_BOUNDS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0)


def collect_envelope_metrics(
    registry: MetricsRegistry,
    analysis: "EnergyAnalysis",
    measured_joules: float | None = None,
) -> MetricsRegistry:
    """Distil one static energy analysis into ``registry``; returns it.

    Names follow the session convention (flat, dot-separated, config id
    embedded) so ``repro report`` merges analyzer snapshots with
    simulation snapshots and ``--filter 'analysis.*'`` isolates them::

        analysis.<app>.<policy>.<on|off>.energy.lower_j    gauge  joules
        analysis.<app>.<policy>.<on|off>.energy.upper_j    gauge  joules
        analysis.<app>.<policy>.<on|off>.energy.width_j    gauge  joules
        analysis.<app>.<policy>.<on|off>.energy.relative_width  gauge
        analysis.<app>.<policy>.<on|off>.time.{lower,upper}_s   gauge
        analysis.<app>.<policy>.<on|off>.busy.{lower,upper}_s   gauge
        analysis.<app>.<policy>.<on|off>.occupancy_peak_blocks  gauge
        analysis.<app>.<policy>.<on|off>.widenings         counter
        analysis.<app>.<policy>.<on|off>.diagnostics       counter
        analysis.<app>.<policy>.<on|off>.measured_j        gauge (--check)
        analysis.<app>.<policy>.<on|off>.contained         gauge 0/1

    ``measured_joules`` is the DES cross-validation result when the
    caller ran one (``repro analyze --check``); the bench grid uploads
    ``width_j``/``relative_width`` so envelope tightness is tracked over
    time next to the perf numbers.
    """
    env = analysis.envelope
    prefix = (
        f"analysis.{env.workload}.{env.policy}."
        f"{'on' if env.scheme else 'off'}"
    )
    registry.gauge(f"{prefix}.energy.lower_j").set(env.energy_j.lo)
    registry.gauge(f"{prefix}.energy.upper_j").set(env.energy_j.hi)
    registry.gauge(f"{prefix}.energy.width_j").set(env.width_j)
    registry.gauge(f"{prefix}.energy.relative_width").set(env.relative_width)
    registry.gauge(f"{prefix}.time.lower_s").set(env.time_s.lo)
    registry.gauge(f"{prefix}.time.upper_s").set(env.time_s.hi)
    registry.gauge(f"{prefix}.busy.lower_s").set(env.busy_s.lo)
    registry.gauge(f"{prefix}.busy.upper_s").set(env.busy_s.hi)
    registry.gauge(f"{prefix}.occupancy_peak_blocks").set(
        float(analysis.occupancy_peak_blocks)
    )
    registry.counter(f"{prefix}.widenings").inc(len(env.widened_by))
    registry.counter(f"{prefix}.diagnostics").inc(len(analysis.report))
    if measured_joules is not None:
        registry.gauge(f"{prefix}.measured_j").set(measured_joules)
        registry.gauge(f"{prefix}.contained").set(
            1.0 if env.contains(measured_joules) else 0.0
        )
    return registry


def collect_session_metrics(
    registry: MetricsRegistry, outcome: "SessionResult", horizon: float
) -> MetricsRegistry:
    """Distil one finished run into ``registry``; returns it.

    ``horizon`` is the application execution window — all timeline-derived
    quantities (energy, residency, idle periods) are clipped to it, so the
    snapshot's energy breakdown sums match
    :func:`~repro.metrics.energy.energy_until` exactly.
    """
    registry.gauge("run.execution_time").set(horizon)
    if outcome.sim is not None:
        registry.counter("sim.events_executed").inc(
            outcome.sim.events_executed
        )

    fleet_idle = registry.histogram("fleet.idle_period_ms", PAPER_BUCKETS_MS)
    for drive in outcome.drives:
        prefix = f"drive.{drive.name}"
        for family, joules in breakdown_until(drive, horizon).as_dict().items():
            registry.gauge(f"{prefix}.energy.{family}").set(joules)
        for family, seconds in residency_until(drive, horizon).items():
            registry.gauge(f"{prefix}.residency.{family}").set(seconds)
        for family, n in transition_counts_until(drive, horizon).items():
            registry.counter(f"{prefix}.transitions.{family}").inc(n)

        stats = drive.stats
        registry.counter(f"{prefix}.requests").inc(stats.requests)
        registry.counter(f"{prefix}.reads").inc(stats.reads)
        registry.counter(f"{prefix}.writes").inc(stats.writes)
        registry.counter(f"{prefix}.bytes_read").inc(stats.bytes_read)
        registry.counter(f"{prefix}.bytes_written").inc(stats.bytes_written)
        registry.counter(f"{prefix}.spin_ups").inc(stats.spin_ups)
        registry.counter(f"{prefix}.spin_downs").inc(stats.spin_downs)
        registry.counter(f"{prefix}.aborted_spin_downs").inc(
            stats.aborted_spin_downs
        )
        registry.counter(f"{prefix}.rpm_steps").inc(stats.rpm_steps)
        registry.gauge(f"{prefix}.total_queue_delay").set(
            stats.total_queue_delay
        )
        registry.gauge(f"{prefix}.mean_response_time").set(
            stats.mean_response_time
        )

        hist = registry.histogram(f"{prefix}.idle_period_ms", PAPER_BUCKETS_MS)
        for seconds in idle_periods_until(drive, horizon):
            hist.observe(seconds * 1000.0)
            fleet_idle.observe(seconds * 1000.0)

    buffer = outcome.buffer
    if buffer is not None:
        registry.counter("buffer.prefetches").inc(buffer.total_prefetches)
        registry.counter("buffer.hits").inc(buffer.hits)
        registry.counter("buffer.abandoned").inc(buffer.abandoned)
        registry.counter("buffer.reclaimed").inc(buffer.reclaimed)
        registry.gauge("buffer.peak_used_blocks").set(buffer.peak_used)
        registry.gauge("buffer.capacity_blocks").set(buffer.capacity_blocks)

    for thread in outcome.scheduler_threads:
        prefix = f"sched.p{thread.process_id}"
        stats = thread.stats
        registry.counter(f"{prefix}.prefetches_issued").inc(
            stats.prefetches_issued
        )
        registry.counter(f"{prefix}.prefetches_skipped_late").inc(
            stats.prefetches_skipped_late
        )
        registry.counter(f"{prefix}.producer_waits").inc(stats.producer_waits)
        registry.counter(f"{prefix}.buffer_stalls").inc(stats.buffer_stalls)
        registry.gauge(f"{prefix}.buffer_stall_time").set(
            stats.buffer_stall_time
        )
        registry.gauge(f"{prefix}.producer_wait_time").set(
            stats.producer_wait_time
        )

    for node in outcome.pfs.nodes:
        cprefix = f"cache.node{node.node_id}"
        cstats = node.cache.stats
        registry.counter(f"{cprefix}.hits").inc(cstats.hits)
        registry.counter(f"{cprefix}.misses").inc(cstats.misses)
        registry.counter(f"{cprefix}.insertions").inc(cstats.insertions)
        registry.counter(f"{cprefix}.evictions").inc(cstats.evictions)
        registry.counter(f"{cprefix}.dirty_evictions").inc(
            cstats.dirty_evictions
        )
        registry.counter(f"{cprefix}.invalidations").inc(cstats.invalidations)
        registry.gauge(f"{cprefix}.hit_rate").set(cstats.hit_rate)
        registry.gauge(f"{cprefix}.resident_blocks").set(len(node.cache))

        nprefix = f"ionode.node{node.node_id}"
        nstats = node.stats
        registry.counter(f"{nprefix}.reads").inc(nstats.reads)
        registry.counter(f"{nprefix}.writes").inc(nstats.writes)
        registry.counter(f"{nprefix}.bytes_read").inc(nstats.bytes_read)
        registry.counter(f"{nprefix}.bytes_written").inc(nstats.bytes_written)
        registry.counter(f"{nprefix}.read_hits").inc(nstats.read_hits)
        registry.counter(f"{nprefix}.destages").inc(nstats.destages)

    for i, link in enumerate(outcome.network.links):
        prefix = f"net.link{i}"
        registry.counter(f"{prefix}.transfers").inc(link.stats.transfers)
        registry.counter(f"{prefix}.bytes_moved").inc(link.stats.bytes_moved)
        registry.gauge(f"{prefix}.total_queue_delay").set(
            link.stats.total_queue_delay
        )

    mstats = outcome.mpi_io.stats
    registry.counter("mpiio.reads").inc(mstats.reads)
    registry.counter("mpiio.writes").inc(mstats.writes)
    registry.counter("mpiio.bytes_read").inc(mstats.bytes_read)
    registry.counter("mpiio.bytes_written").inc(mstats.bytes_written)
    registry.gauge("mpiio.total_read_latency").set(mstats.total_read_latency)
    registry.gauge("mpiio.mean_read_latency").set(mstats.mean_read_latency)

    for client in outcome.clients:
        cs = client.stats
        registry.counter("client.reads_from_buffer").inc(cs.reads_from_buffer)
        registry.counter("client.reads_waited_on_prefetch").inc(
            cs.reads_waited_on_prefetch
        )
        registry.counter("client.reads_synchronous").inc(cs.reads_synchronous)
        registry.counter("client.writes_issued").inc(cs.writes_issued)
        registry.gauge("client.io_wait_time").max_update(cs.io_wait_time)
        registry.gauge("client.compute_time").max_update(cs.compute_time)

    faults = getattr(outcome, "faults", None)
    if faults is not None:
        # The fault story (`repro report --filter 'faults.*'`): what was
        # injected and how each recovery path absorbed it.
        for kind in sorted(faults.injected):
            registry.counter(f"faults.injected.{kind}").inc(
                faults.injected[kind]
            )
        fc = faults.counters
        registry.counter("faults.disk.read_errors").inc(fc.disk_read_errors)
        registry.counter("faults.disk.read_retries").inc(
            fc.disk_read_retries
        )
        registry.counter("faults.disk.reads_recovered").inc(
            fc.disk_reads_recovered
        )
        registry.counter("faults.disk.sector_remaps").inc(
            fc.disk_sector_remaps
        )
        registry.counter("faults.disk.failed_spinups").inc(
            fc.disk_failed_spinups
        )
        registry.counter("faults.disk.spinup_retries").inc(
            fc.disk_spinup_retries
        )
        registry.counter("faults.raid.degraded_reads").inc(
            fc.raid_degraded_reads
        )
        registry.counter("faults.raid.reconstructed").inc(
            fc.raid_reconstructed
        )
        registry.counter("faults.raid.failed_over").inc(fc.raid_failed_over)
        registry.counter("faults.raid.degraded_writes").inc(
            fc.raid_degraded_writes
        )
        registry.counter("faults.raid.lost_ops").inc(fc.raid_lost_ops)
        registry.counter("faults.net.retransmits").inc(fc.net_retransmits)
        registry.counter("faults.net.crash_held").inc(fc.net_crash_held)
        registry.counter("faults.net.straggled").inc(fc.net_straggled)
        registry.counter("faults.net.latency_spiked").inc(
            fc.net_latency_spiked
        )
        registry.counter("faults.sched.prefetch_timeouts").inc(
            fc.sched_prefetch_timeouts
        )
        registry.counter("faults.sched.refetches").inc(fc.sched_refetches)
        registry.counter("faults.buffer.reclaimed").inc(fc.buffer_reclaimed)
        retry_hist = registry.histogram(
            "faults.disk.retries_per_recovered_read", RETRY_BOUNDS
        )
        for retries in fc.retry_counts:
            retry_hist.observe(float(retries))

    return registry
