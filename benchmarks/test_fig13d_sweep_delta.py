"""Figure 13(d) — the scheme's extra energy reduction over the
history-based policy as δ (the vertical reuse range) varies.

Paper shape: both very small and very large δ reduce the gains — small δ
wrongly assumes active disks are off (less grouping flexibility), large δ
wrongly assumes sleeping disks are still active — so the curve peaks at a
moderate δ.
"""

from repro.experiments import fig13d

from conftest import run_once, sweep_apps


def test_fig13d_sweep_delta(benchmark, runner):
    apps = sweep_apps()
    values = (5, 20, 80)
    result = run_once(
        benchmark, lambda: fig13d(runner, values=values, apps=apps)
    )
    print("\n" + result.text)
    benefits = result.data
    # The scheme helps at every δ...
    assert all(b > 0 for b in benefits.values())
    # ...and the default δ=20 is at least as good as both extremes
    # are on their weaker side (a peak at moderate δ).
    assert benefits[20] >= min(benefits[5], benefits[80])
