"""Tests for the polyhedral-lite dependence analyzer."""

import pytest

from repro.ir import (
    AffineDependenceAnalyzer,
    Compute,
    FileDecl,
    Loop,
    Program,
    Read,
    Write,
    solve_affine_equal,
    trace_program,
    var,
)


class TestSolveAffineEqual:
    def test_unique_solution(self):
        assert solve_affine_equal(2, 1, 7, 0, 10) == [3]

    def test_no_solution_gcd(self):
        assert solve_affine_equal(2, 0, 7, 0, 10) == []

    def test_out_of_bounds(self):
        assert solve_affine_equal(1, 0, 42, 0, 10) == []

    def test_zero_coefficient_matches_all_or_none(self):
        assert solve_affine_equal(0, 5, 5, 0, 3) == [0, 1, 2, 3]
        assert solve_affine_equal(0, 5, 6, 0, 3) == []

    def test_step_filtering(self):
        # i in {0, 2, 4, ...}: i = 3 is not reachable.
        assert solve_affine_equal(1, 0, 3, 0, 10, step=2) == []
        assert solve_affine_equal(1, 0, 4, 0, 10, step=2) == [4]

    def test_bad_step(self):
        with pytest.raises(ValueError):
            solve_affine_equal(1, 0, 1, 0, 10, step=0)

    def test_negative_coefficient(self):
        assert solve_affine_equal(-2, 10, 4, 0, 10) == [3]


def producer_consumer(n_processes=2, steps=4):
    files = {"d": FileDecl("d", n_processes * steps + n_processes, 1024)}
    p, t = var("p"), var("t")
    body = [
        Loop("t", 0, steps - 1, body=[
            Write("d", t * n_processes + p),
            Compute(1.0),
            Read("d", t * n_processes + p),
            Compute(1.0),
        ]),
    ]
    return Program("pc", n_processes, files, body)


class TestAnalyzer:
    def test_rejects_non_affine(self):
        files = {"f": FileDecl("f", 4, 1024)}
        prog = Program("na", 1, files, [Read("f", lambda env: 0)])
        with pytest.raises(ValueError):
            AffineDependenceAnalyzer(prog)

    def test_agrees_with_profiling_path(self):
        prog = producer_consumer()
        analyzer = AffineDependenceAnalyzer(prog)
        assert analyzer.last_writer_table() == trace_program(prog).last_writer_table()

    def test_last_writer_before(self):
        prog = producer_consumer(n_processes=1, steps=3)
        analyzer = AffineDependenceAnalyzer(prog)
        # Block 1 written at step 1 (slot 2 with two computes per step).
        producer = analyzer.last_writer_before("d", 1, slot=5)
        assert producer == (2, 0)

    def test_no_writer_for_input_block(self):
        prog = producer_consumer(n_processes=1, steps=2)
        analyzer = AffineDependenceAnalyzer(prog)
        assert analyzer.last_writer_before("d", 99, slot=100) is None

    def test_writer_at_or_after_slot_excluded(self):
        prog = producer_consumer(n_processes=1, steps=2)
        analyzer = AffineDependenceAnalyzer(prog)
        # Block 0 is written at slot 0; a reader at slot 0 has no writer
        # strictly before it.
        assert analyzer.last_writer_before("d", 0, slot=0) is None

    def test_writers_of_block_lists_all(self):
        files = {"f": FileDecl("f", 2, 1024)}
        body = [Loop("i", 0, 2, body=[Write("f", 0), Compute(1.0)])]
        prog = Program("w", 1, files, body)
        analyzer = AffineDependenceAnalyzer(prog)
        assert len(analyzer.writers_of_block("f", 0)) == 3

    def test_cross_process_dependence_found(self):
        # Process p writes block p; process p reads block p+1 (its right
        # neighbour's block) one step later.
        files = {"f": FileDecl("f", 4, 1024)}
        p = var("p")
        body = [
            Write("f", p),
            Compute(1.0),
            Read("f", p + 1),
            Compute(1.0),
        ]
        prog = Program("x", 3, files, body)
        analyzer = AffineDependenceAnalyzer(prog)
        producer = analyzer.last_writer_before("f", 1, slot=1)
        assert producer == (0, 1)  # written by process 1 at slot 0
