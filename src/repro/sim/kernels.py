"""Kernel registry — the pluggable event-engine implementations.

A *kernel* is an event queue + clock satisfying the interface
:class:`~repro.sim.engine.Simulator` defines (and reference-implements):

``schedule(delay, cb, *args)``
    relative-time scheduling; events at equal times fire in scheduling
    (``seq``) order.
``schedule_at_exact(time, cb, *args)``
    absolute-time scheduling with no float re-derivation of ``time``.
``step() / run(until, max_events) / _peek()``
    consumption, with the heap kernel's exact ``until``/``max_events``
    semantics.
``cancel / _note_cancel / pending_events``
    O(1) cancel with an exact live counter.
``process / fire / _fire_signal / _note_phase``
    generator-process and signal semantics (shared via inheritance).
``kernel_name / supports_phase_collapse``
    registry identity and the analytic fast-path capability flag.

The contract is behavioural, not structural: every kernel must replay
the reference kernel's event order — and therefore every
:class:`~repro.experiments.runner.RunResult` — *bit-identically*.  The
differential corpus in ``tests/test_kernels_differential.py`` is the
contract's enforcement arm; a new kernel earns its registry entry by
passing it unmodified.

Kernel choice rides in :class:`~repro.experiments.config.ExperimentConfig`
(field ``kernel``), so it participates in ``to_key()`` and every memo and
cache digest — cached results can never silently mix kernels.
"""

from __future__ import annotations

from typing import Optional

from ..obs.base import Observability
from .analytic import AnalyticSimulator
from .calendar import CalendarSimulator
from .engine import Simulator

__all__ = ["KERNELS", "DEFAULT_KERNEL", "kernel_names", "make_kernel"]

#: name -> kernel class, registry order (reference first).
KERNELS: dict[str, type[Simulator]] = {
    "heap": Simulator,
    "calendar": CalendarSimulator,
    "analytic": AnalyticSimulator,
}

DEFAULT_KERNEL = "heap"


def kernel_names() -> tuple[str, ...]:
    """Registered kernel names, registry order."""
    return tuple(KERNELS)


def make_kernel(name: str, obs: Optional[Observability] = None) -> Simulator:
    """Instantiate the named kernel (raises ``ValueError`` on unknown)."""
    cls = KERNELS.get(name)
    if cls is None:
        raise ValueError(
            f"unknown simulation kernel {name!r}; "
            f"available: {', '.join(KERNELS)}"
        )
    return cls(obs=obs)
