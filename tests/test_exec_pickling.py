"""Pickle round-trips for every exception crossing the pool boundary.

Any exception a worker raises travels to the parent through
``concurrent.futures``' pickle channel.  An unpicklable exception
arrives as an opaque ``PicklingError`` that names no point and carries
no message — so every type in :data:`repro.exec.BOUNDARY_ERRORS` (plus
the supervisor's own parent-side errors, which cross the boundary when
a supervised campaign itself runs inside a worker) must survive
``pickle.dumps``/``loads`` with its payload intact.
"""

import pickle

import pytest

from repro.exec import (
    BOUNDARY_ERRORS,
    CampaignFailed,
    PointFailure,
    PointTimeout,
    RunPoint,
    VerifyFailure,
    WorkerFailure,
)
from repro.exec.supervise import _supervised_worker_run
from repro.experiments import ExperimentConfig

SPECIMENS = [
    VerifyFailure(
        "sar/simple/scheme", "E001 prefetch overlaps flush window"
    ),
    WorkerFailure(
        "sar/simple/plain",
        "ZeroDivisionError",
        "division by zero",
        "Traceback (most recent call last):\n  ...\n",
    ),
    PointTimeout("qcd/aggressive/scheme", 1.5, 3),
    CampaignFailed(
        [
            PointFailure(
                label="sar/simple/plain",
                digest="a" * 64,
                outcome="failed",
                error="boom",
                attempts=2,
            ),
            PointFailure(
                label="qcd/simple/scheme",
                digest="b" * 64,
                outcome="timeout",
                error="no result within 1.5s",
                attempts=1,
            ),
        ]
    ),
]


def test_every_boundary_error_has_a_specimen():
    assert set(BOUNDARY_ERRORS) <= {type(s) for s in SPECIMENS}


@pytest.mark.parametrize("exc", SPECIMENS, ids=lambda e: type(e).__name__)
def test_round_trip_preserves_type_message_and_payload(exc):
    clone = pickle.loads(pickle.dumps(exc))
    assert type(clone) is type(exc)
    assert str(clone) == str(exc)
    assert vars(clone) == vars(exc)


def test_worker_failure_flattens_unpicklable_exceptions(monkeypatch):
    """The supervised worker entry point converts arbitrary (possibly
    unpicklable) exceptions into a string-only WorkerFailure."""

    class Unpicklable(RuntimeError):
        def __init__(self):
            super().__init__("cannot cross the pool")
            self.payload = lambda: None  # defeats pickle

    def exploding_run(point, verify, metrics_dir=None):
        raise Unpicklable()

    monkeypatch.setattr(
        "repro.exec.supervise._worker_run", exploding_run
    )
    point = RunPoint(
        "sar", "simple", False, ExperimentConfig(workload_scale=0.05)
    )
    with pytest.raises(WorkerFailure) as info:
        _supervised_worker_run(point, verify=False)
    failure = info.value
    assert failure.kind == "Unpicklable"
    assert failure.label == "sar/simple/plain"
    assert "cannot cross the pool" in failure.message
    assert "Unpicklable" in failure.traceback_text
    with pytest.raises(Exception):  # sanity: the original cannot cross
        pickle.dumps(Unpicklable())

    clone = pickle.loads(pickle.dumps(failure))
    assert vars(clone) == vars(failure)
