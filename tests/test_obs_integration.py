"""End-to-end tests of the observability layer: instrumented runs,
per-worker metrics merging, trace output, and the CLI surface."""

import io
import json
import math

import pytest

from repro.cli import main
from repro.exec import (
    ExperimentExecutor,
    ResultCache,
    RunPoint,
    merge_metrics_dir,
)
from repro.experiments import ExperimentConfig, Runner
from repro.obs import JsonlTracer, MetricsRegistry, Observability, read_trace

TINY = ExperimentConfig(workload_scale=0.05)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestInstrumentedRunner:
    def test_instrumented_result_identical_to_plain(self):
        """Observation must never perturb the simulation: the distilled
        RunResult of an instrumented run equals the uninstrumented one."""
        plain = Runner(TINY).run("sar", "simple", True)
        obs = Observability(
            tracer=JsonlTracer(io.StringIO()), metrics=MetricsRegistry()
        )
        instrumented = Runner(TINY).run_instrumented(
            "sar", "simple", True, obs
        )
        assert instrumented == plain

    def test_collected_energy_matches_run_result_exactly(self):
        obs = Observability(metrics=MetricsRegistry())
        result = Runner(TINY).run_instrumented("sar", "simple", False, obs)
        gauges = obs.metrics.snapshot()["gauges"]
        totals = [
            v for k, v in gauges.items()
            if k.startswith("drive.") and k.endswith(".energy.total")
        ]
        assert totals
        assert math.fsum(totals) == pytest.approx(
            result.energy_joules, rel=1e-12
        )
        # Per-drive identity: family gauges fsum to the total gauge
        # bit-exactly, in whatever order the snapshot hands them back.
        drives = {
            k[len("drive."):k.index(".energy.")]
            for k in gauges if ".energy." in k
        }
        for name in drives:
            prefix = f"drive.{name}.energy."
            families = {
                k[len(prefix):]: v
                for k, v in gauges.items() if k.startswith(prefix)
            }
            total = families.pop("total")
            assert math.fsum(sorted(families.values())) == total

    def _traced_records(self, detail):
        buf = io.StringIO()
        tracer = JsonlTracer(buf, detail=detail)
        obs = Observability(tracer=tracer)
        Runner(TINY).run_instrumented("sar", "simple", True, obs)
        tracer.close()
        return [json.loads(l) for l in buf.getvalue().splitlines()]

    def test_trace_spans_are_balanced(self):
        records = self._traced_records(detail=True)
        assert records
        for ev in ("io.read", "disk.request", "access.fetch"):
            begins = sum(1 for r in records if r["ev"] == ev and r["ph"] == "B")
            ends = sum(1 for r in records if r["ev"] == ev and r["ph"] == "E")
            assert begins == ends > 0, ev
        consumed = [r for r in records if r["ev"] == "access.consumed"]
        scheduled = [r for r in records if r["ev"] == "access.scheduled"]
        assert consumed and scheduled
        # Timestamps are simulation time and non-decreasing.
        times = [r["t"] for r in records]
        assert times == sorted(times)

    def test_lifecycle_level_omits_per_operation_records(self):
        records = self._traced_records(detail=False)
        events = {r["ev"] for r in records}
        assert "access.scheduled" in events
        assert "access.fetch" in events
        assert "access.consumed" in events
        assert "io.read" not in events
        assert "disk.request" not in events
        assert "net.transfer" not in events
        assert not any(e.startswith("ionode.") for e in events)


class TestExecutorObservability:
    POINTS = [
        RunPoint("sar", "simple", False, TINY),
        RunPoint("madbench2", "simple", False, TINY),
    ]

    def test_metrics_dir_gets_one_snapshot_per_point(self, tmp_path):
        executor = ExperimentExecutor(jobs=1, metrics_dir=tmp_path)
        executor.run_points(self.POINTS)
        files = sorted(tmp_path.glob("*.metrics.json"))
        assert len(files) == len(self.POINTS)

    def test_parallel_merge_identical_to_serial(self, tmp_path):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        ExperimentExecutor(jobs=1, metrics_dir=serial_dir).run_points(
            self.POINTS
        )
        ExperimentExecutor(jobs=2, metrics_dir=parallel_dir).run_points(
            self.POINTS
        )
        assert merge_metrics_dir(serial_dir) == merge_metrics_dir(
            parallel_dir
        )

    def test_trace_path_forces_serial_and_writes_all_points(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        executor = ExperimentExecutor(jobs=4, trace_path=trace)
        executor.run_points(self.POINTS)
        labels = {r.get("point") for r in read_trace(trace)}
        assert labels == {p.label() for p in self.POINTS}

    def test_observed_executor_skips_cache_reads(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        point = self.POINTS[0]
        warmup = ExperimentExecutor(jobs=1, cache=cache)
        warmup.run_points([point])
        observed = ExperimentExecutor(
            jobs=1, cache=cache, metrics_dir=tmp_path / "metrics"
        )
        observed.run_points([point])
        # A cache hit would have produced no snapshot; the point must
        # re-simulate.
        assert observed.stats.simulated == 1
        assert observed.stats.cache_hits == 0
        assert list((tmp_path / "metrics").glob("*.metrics.json"))

    def test_unobserved_runs_emit_nothing(self, tmp_path):
        executor = ExperimentExecutor(jobs=1)
        results = executor.run_points([self.POINTS[0]])
        assert not executor.observed
        assert list(results.values())[0].energy_joules > 0


class TestCliObservability:
    def test_run_emits_trace_and_metrics(self, tmp_path):
        trace = tmp_path / "out.jsonl"
        metrics = tmp_path / "out.json"
        code, text = run_cli(
            "run", "--app", "sar", "--policy", "simple", "--scheme",
            "--scale", "0.05", "--no-cache",
            "--trace", str(trace), "--metrics", str(metrics),
        )
        assert code == 0
        assert "energy saving" in text
        records = list(read_trace(trace))
        assert records  # parseable JSONL, one dict per line
        snap = json.loads(metrics.read_text())
        assert snap["merged_runs"] == 1  # only the requested point
        gauges = snap["gauges"]
        drives = {
            k[len("drive."):k.index(".energy.")]
            for k in gauges if ".energy." in k
        }
        assert drives
        for name in drives:
            prefix = f"drive.{name}.energy."
            families = {
                k[len(prefix):]: v
                for k, v in gauges.items() if k.startswith(prefix)
            }
            total = families.pop("total")
            assert math.fsum(sorted(families.values())) == total

    def test_report_renders_tables_and_json(self, tmp_path):
        metrics = tmp_path / "out.json"
        run_cli(
            "run", "--app", "sar", "--scale", "0.05", "--no-cache",
            "--metrics", str(metrics),
        )
        code, text = run_cli("report", str(metrics))
        assert code == 0
        assert "[drive]" in text
        assert "buffer" in text or "[mpiio]" in text
        code, filtered = run_cli(
            "report", str(metrics), "--filter", "mpiio.*"
        )
        assert code == 0
        assert "drive." not in filtered
        code, as_json = run_cli("report", str(metrics), "--json")
        assert code == 0
        assert json.loads(as_json)["schema"] == snap_schema(metrics)

    def test_report_rejects_missing_file(self, tmp_path):
        code, _ = run_cli("report", str(tmp_path / "nope.json"))
        assert code == 2


def snap_schema(path):
    return json.loads(path.read_text())["schema"]


class TestBenchTraceOverhead:
    def test_record_gains_trace_overhead_fields(self, tmp_path):
        from repro.exec import run_bench

        trace = tmp_path / "bench-trace.jsonl"
        record = run_bench(
            config=TINY,
            figures=("fig12a",),
            jobs=1,
            compare_serial=True,
            trace_path=trace,
        )
        assert "traced_seconds" in record
        assert "trace_overhead" in record
        assert trace.exists()
        assert list(read_trace(trace))

    def test_cli_gate_passes_with_generous_budget(self, tmp_path):
        code, text = run_cli(
            "bench", "--figures", "fig12a", "--scale", "0.05",
            "--jobs", "1", "--output-dir", str(tmp_path),
            "--trace", str(tmp_path / "t.jsonl"),
            "--max-trace-overhead", "10.0",
        )
        assert code == 0
        assert "within the" in text

    def test_cli_gate_requires_serial_baseline(self, tmp_path):
        code, _ = run_cli(
            "bench", "--figures", "fig12a", "--no-serial",
            "--output-dir", str(tmp_path),
            "--trace", str(tmp_path / "t.jsonl"),
        )
        assert code == 2
