"""Tests for the mechanical service-time model."""

import pytest

from repro.disk import TABLE2_DISK, lba_to_cylinder, service_components


class TestLbaMapping:
    def test_lba_zero_is_cylinder_zero(self):
        assert lba_to_cylinder(TABLE2_DISK, 0) == 0

    def test_lba_monotone_within_capacity(self):
        quarter = TABLE2_DISK.capacity_bytes // 4
        cyls = [lba_to_cylinder(TABLE2_DISK, i * quarter) for i in range(4)]
        assert cyls == sorted(cyls)

    def test_cylinder_in_range(self):
        c = lba_to_cylinder(TABLE2_DISK, TABLE2_DISK.capacity_bytes - 1)
        assert 0 <= c < TABLE2_DISK.cylinders


class TestServiceComponents:
    def test_components_positive_for_random_access(self):
        parts = service_components(
            TABLE2_DISK, 0, 50 * 2**30, 64 * 1024, 12_000
        )
        assert parts.seek > 0
        assert parts.rotational_latency > 0
        assert parts.transfer > 0
        assert parts.total == pytest.approx(
            parts.seek + parts.rotational_latency + parts.transfer
        )

    def test_sequential_hint_removes_seek(self):
        parts = service_components(
            TABLE2_DISK, 0, 50 * 2**30, 64 * 1024, 12_000, sequential_hint=True
        )
        assert parts.seek == 0.0
        assert parts.rotational_latency == TABLE2_DISK.head_switch_time

    def test_same_cylinder_access_has_no_seek(self):
        head = lba_to_cylinder(TABLE2_DISK, 12345)
        parts = service_components(TABLE2_DISK, head, 12345, 4096, 12_000)
        assert parts.seek == 0.0

    def test_longer_distance_longer_seek(self):
        near = service_components(TABLE2_DISK, 0, 2**30, 4096, 12_000)
        far = service_components(TABLE2_DISK, 0, 90 * 2**30, 4096, 12_000)
        assert far.seek > near.seek

    def test_low_rpm_slows_rotation_and_transfer(self):
        spec = TABLE2_DISK.with_multispeed()
        fast = service_components(spec, 0, 2**30, 2**20, 12_000)
        slow = service_components(spec, 0, 2**30, 2**20, 3_600)
        assert slow.rotational_latency > fast.rotational_latency
        assert slow.transfer > fast.transfer

    def test_transfer_scales_with_size(self):
        small = service_components(TABLE2_DISK, 0, 0, 64 * 1024, 12_000)
        big = service_components(TABLE2_DISK, 0, 0, 64 * 1024 * 16, 12_000)
        assert big.transfer > small.transfer

    def test_zero_bytes_allowed(self):
        parts = service_components(TABLE2_DISK, 0, 0, 0, 12_000)
        assert parts.transfer == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            service_components(TABLE2_DISK, 0, 0, -1, 12_000)

    def test_zero_rpm_rejected(self):
        with pytest.raises(ValueError):
            service_components(TABLE2_DISK, 0, 0, 4096, 0)
