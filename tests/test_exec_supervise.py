"""Tests for the campaign supervisor (:mod:`repro.exec.supervise`).

The headline guarantees: a supervised fault-free campaign is
bit-identical to an unsupervised one; a worker SIGKILL mid-campaign is
recovered (pool respawn + requeue) and the campaign still completes; a
hung point is reclaimed by the watchdog; a repeat pool-killer is
quarantined without taking innocent siblings with it; and the JSONL
journal is valid after any interruption and drives bit-identical resume
through the content-addressed cache.

The scripted stub worker below is module-level on purpose: forked pool
workers pickle callables by qualified name.  Cross-process coordination
goes through marker files under the directory named by the
``REPRO_SUPERVISE_TEST_DIR`` environment variable (inherited at fork).
"""

import json
import os
import signal
import time
from pathlib import Path

import pytest

from repro.exec import (
    CampaignFailed,
    CampaignJournal,
    CampaignReport,
    CampaignSupervisor,
    ExperimentExecutor,
    JOURNAL_SCHEMA_VERSION,
    PointFailure,
    ResultCache,
    RunPoint,
    SupervisorPolicy,
    VerifyFailure,
    backoff_delay,
    load_journal,
    merge_metrics_dir,
    point_digest,
)
from repro.exec.supervise import (
    OUTCOME_CACHED,
    OUTCOME_FAILED,
    OUTCOME_OK,
    OUTCOME_QUARANTINED,
    OUTCOME_TIMEOUT,
)
from repro.experiments import ExperimentConfig
from repro.experiments.runner import RunResult
from repro.metrics.idle import idle_cdf

TINY = ExperimentConfig(workload_scale=0.05)
ENV_DIR = "REPRO_SUPERVISE_TEST_DIR"


def canned_result(point):
    return RunResult(
        workload=point.workload,
        policy=point.policy,
        scheme=point.scheme,
        execution_time=1.25,
        energy_joules=50.0,
        idle_cdf=idle_cdf([]),
        idle_periods=[],
        energy_breakdown={"idle": 1.0},
        buffer_hits=3,
        prefetches=2,
        accesses=7,
    )


def scripted_worker(point, verify, metrics_dir=None):
    """Stub worker whose behaviour keys off ``point.workload``.

    ``ok*``     succeed immediately (and drop a completion marker);
    ``flakyN``  raise for the first N attempts, then succeed;
    ``doomed``  always raise ValueError;
    ``badverify`` raise VerifyFailure (non-retryable by contract);
    ``killonce``/``killer`` SIGKILL their own worker process;
    ``hangonce``/``hang``   sleep far past any watchdog timeout;
    ``interrupt`` wait for okA's marker, then raise KeyboardInterrupt.
    """
    scratch = Path(os.environ[ENV_DIR])
    name = point.workload
    marker = scratch / f"marker-{name}"
    if name.startswith("ok"):
        marker.touch()
    elif name.startswith("flaky"):
        tries = scratch / f"tries-{name}"
        count = int(tries.read_text()) if tries.exists() else 0
        tries.write_text(str(count + 1))
        if count < int(name.removeprefix("flaky")):
            raise ValueError(f"transient failure #{count + 1}")
    elif name == "doomed":
        raise ValueError("permanently broken point")
    elif name == "badverify":
        raise VerifyFailure(point.label(), "synthetic verifier report")
    elif name == "killonce":
        if not marker.exists():
            marker.touch()
            os.kill(os.getpid(), signal.SIGKILL)
    elif name == "killer":
        os.kill(os.getpid(), signal.SIGKILL)
    elif name == "hangonce":
        if not marker.exists():
            marker.touch()
            time.sleep(60.0)
    elif name == "hang":
        time.sleep(60.0)
    elif name == "interrupt":
        deadline = time.monotonic() + 10.0
        while not (scratch / "marker-okA").exists():
            if time.monotonic() > deadline:
                raise RuntimeError("okA never finished")
            time.sleep(0.01)
        time.sleep(0.2)  # let the parent drain okA's future first
        raise KeyboardInterrupt()
    else:
        raise AssertionError(f"unknown scripted workload {name!r}")
    return canned_result(point)


def stub_points(*names, scheme=False):
    return [RunPoint(name, "simple", scheme, TINY) for name in names]


def make_supervisor(jobs=1, policy=None, cache=None, journal=None,
                    metrics_dir=None):
    executor = ExperimentExecutor(
        jobs=jobs, cache=cache, verify=False, metrics_dir=metrics_dir
    )
    return CampaignSupervisor(
        executor, policy=policy, journal=journal, worker_fn=scripted_worker
    )


@pytest.fixture
def scratch(tmp_path, monkeypatch):
    monkeypatch.setenv(ENV_DIR, str(tmp_path))
    return tmp_path


# ----------------------------------------------------------------------
# Policy and backoff
# ----------------------------------------------------------------------
class TestPolicyAndBackoff:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout": 0.0},
            {"timeout": -1.0},
            {"retries": -1},
            {"quarantine_after": 0},
            {"max_pool_breaks": 0},
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SupervisorPolicy(**kwargs)

    def test_backoff_is_deterministic(self):
        a = backoff_delay("d" * 64, 3)
        b = backoff_delay("d" * 64, 3)
        assert a == b

    def test_backoff_zero_before_first_retry(self):
        assert backoff_delay("d" * 64, 0) == 0.0

    def test_backoff_jittered_exponential_within_bounds(self):
        base, cap = 0.1, 1.0
        for attempt in range(1, 8):
            delay = backoff_delay("e" * 64, attempt, base, cap)
            ceiling = min(cap, base * 2.0 ** (attempt - 1))
            assert ceiling / 2 <= delay <= ceiling

    def test_backoff_varies_across_points(self):
        delays = {backoff_delay(d * 64, 1) for d in "abcdef"}
        assert len(delays) > 1


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
class TestJournal:
    def test_new_journal_requires_argv(self, tmp_path):
        with pytest.raises(ValueError):
            CampaignJournal(tmp_path / "j.jsonl")

    def test_round_trip_last_entry_wins(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path, argv=["figure", "fig12c"]) as journal:
            journal.record("a" * 64, "sar/simple/plain", "retried", 1)
            journal.record("a" * 64, "sar/simple/plain", "ok", 1)
            journal.record("b" * 64, "qcd/simple/plain", "cached")
        header, entries = load_journal(path)
        assert header["argv"] == ["figure", "fig12c"]
        assert header["schema"] == JOURNAL_SCHEMA_VERSION
        assert entries["a" * 64]["outcome"] == "ok"
        assert entries["b" * 64]["outcome"] == "cached"

    def test_reopen_appends_without_new_header(self, tmp_path):
        path = tmp_path / "j.jsonl"
        CampaignJournal(path, argv=["run"]).close()
        with CampaignJournal(path) as journal:  # no argv needed
            journal.record("c" * 64, "x/y/plain", "ok")
        lines = path.read_text().strip().splitlines()
        assert sum('"campaign-journal"' in line for line in lines) == 1

    def test_truncated_final_line_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path, argv=["run"]) as journal:
            journal.record("a" * 64, "sar/simple/plain", "ok")
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"digest": "bbbb", "outco')  # simulated SIGKILL
        _header, entries = load_journal(path)
        assert list(entries) == ["a" * 64]

    def test_unknown_outcome_rejected(self, tmp_path):
        with CampaignJournal(tmp_path / "j.jsonl", argv=["run"]) as journal:
            with pytest.raises(ValueError):
                journal.record("a" * 64, "sar/simple/plain", "exploded")

    def test_headerless_file_rejected(self, tmp_path):
        path = tmp_path / "not-a-journal.jsonl"
        path.write_text('{"digest": "aaaa", "outcome": "ok"}\n')
        with pytest.raises(ValueError):
            load_journal(path)

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        record = {"kind": "campaign-journal", "schema": 999, "argv": []}
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ValueError):
            load_journal(path)


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
class TestReport:
    def test_failures_block_schema_stable_when_clean(self):
        block = CampaignReport().failures_block()
        assert block == {
            "count": 0,
            "retries": 0,
            "timeouts": 0,
            "worker_deaths": 0,
            "quarantined": 0,
            "points": [],
        }

    def test_raise_if_failed_carries_every_failure(self):
        report = CampaignReport()
        for n in range(3):
            report.failures.append(
                PointFailure(
                    label=f"w{n}/simple/plain",
                    digest=str(n) * 64,
                    outcome="failed",
                    error=f"boom {n}",
                    attempts=n,
                )
            )
        with pytest.raises(CampaignFailed) as info:
            report.raise_if_failed()
        assert len(info.value.failures) == 3
        for n in range(3):
            assert f"boom {n}" in str(info.value)

    def test_interrupted_report_is_not_ok(self):
        report = CampaignReport()
        assert report.ok
        report.interrupted = True
        assert not report.ok


# ----------------------------------------------------------------------
# Serial supervision (retries, fail-fast vs keep-going)
# ----------------------------------------------------------------------
class TestSerialSupervision:
    def test_flaky_point_retries_to_success(self, scratch):
        policy = SupervisorPolicy(retries=2, backoff_base=0.001)
        supervisor = make_supervisor(policy=policy)
        report = supervisor.run_points(stub_points("flaky2"))
        assert report.ok
        assert report.retries == 2
        assert supervisor.metrics.counter("exec.retries").value == 2
        digest = point_digest(TINY, "flaky2", "simple", False)
        assert report.outcomes[digest] == OUTCOME_OK

    def test_retry_budget_exhausted_fails_fast(self, scratch):
        policy = SupervisorPolicy(retries=1, backoff_base=0.001)
        supervisor = make_supervisor(policy=policy)
        with pytest.raises(ValueError, match="transient failure"):
            supervisor.run_points(stub_points("flaky5"))

    def test_verify_failure_never_retried(self, scratch):
        policy = SupervisorPolicy(retries=5, keep_going=True)
        supervisor = make_supervisor(policy=policy)
        report = supervisor.run_points(stub_points("badverify"))
        assert report.retries == 0
        assert report.failures[0].outcome == OUTCOME_FAILED

    def test_keep_going_collects_all_failures(self, scratch):
        policy = SupervisorPolicy(retries=0, keep_going=True)
        supervisor = make_supervisor(policy=policy)
        report = supervisor.run_points(
            stub_points("doomed", "okG", "badverify")
        )
        assert len(report.failures) == 2
        assert len(report.results) == 1
        assert {f.label.split("/")[0] for f in report.failures} == {
            "doomed",
            "badverify",
        }
        with pytest.raises(CampaignFailed):
            report.raise_if_failed()

    def test_failfast_raise_preserves_completed_siblings(self, scratch,
                                                         tmp_path):
        cache = ResultCache(tmp_path / "cache")
        policy = SupervisorPolicy(retries=0)
        supervisor = make_supervisor(policy=policy, cache=cache)
        with pytest.raises(ValueError):
            supervisor.run_points(stub_points("okH", "doomed"))
        assert cache.lookup(TINY, "okH", "simple", False) is not None

    def test_supervisor_metrics_land_in_metrics_dir(self, scratch, tmp_path):
        metrics_dir = tmp_path / "metrics"
        metrics_dir.mkdir()
        policy = SupervisorPolicy(retries=1, backoff_base=0.001)
        supervisor = make_supervisor(
            policy=policy, metrics_dir=str(metrics_dir)
        )
        supervisor.run_points(stub_points("flaky1"))
        merged = merge_metrics_dir(metrics_dir)
        assert merged["counters"]["exec.retries"] == 1
        assert merged["counters"]["exec.worker_deaths"] == 0


# ----------------------------------------------------------------------
# Journaled outcomes and cache-driven resume
# ----------------------------------------------------------------------
class TestJournaledCampaign:
    def test_outcomes_journaled_and_cached_on_resume(self, scratch,
                                                     tmp_path):
        cache_dir = tmp_path / "cache"
        points = stub_points("okI", "okJ")

        first = make_supervisor(
            cache=ResultCache(cache_dir),
            journal=CampaignJournal(tmp_path / "first.jsonl", argv=["run"]),
        )
        report = first.run_points(points)
        first.journal.close()
        assert report.ok
        _header, entries = load_journal(tmp_path / "first.jsonl")
        assert {e["outcome"] for e in entries.values()} == {OUTCOME_OK}

        second = make_supervisor(
            cache=ResultCache(cache_dir),
            journal=CampaignJournal(tmp_path / "second.jsonl", argv=["run"]),
        )
        resumed = second.run_points(points)
        second.journal.close()
        assert second.executor.stats.simulated == 0
        assert second.executor.stats.cache_hits == 2
        assert set(resumed.outcomes.values()) == {OUTCOME_CACHED}
        assert resumed.results == report.results
        _header, entries = load_journal(tmp_path / "second.jsonl")
        assert {e["outcome"] for e in entries.values()} == {OUTCOME_CACHED}


# ----------------------------------------------------------------------
# Pool supervision: crash recovery, quarantine, watchdog, interrupt
# ----------------------------------------------------------------------
class TestPoolRecovery:
    def test_worker_sigkill_recovered_and_campaign_completes(self, scratch):
        """SIGKILL a child mid-campaign: pool respawns, the point is
        requeued, and every result still arrives."""
        policy = SupervisorPolicy(backoff_base=0.01, max_pool_breaks=6)
        supervisor = make_supervisor(jobs=2, policy=policy)
        report = supervisor.run_points(stub_points("killonce", "okB"))
        assert report.ok
        assert len(report.results) == 2
        assert report.worker_deaths >= 1
        assert (
            supervisor.metrics.counter("exec.worker_deaths").value
            == report.worker_deaths
        )

    def test_repeat_killer_quarantined_innocents_complete(self, scratch):
        """A point that kills every pool it touches is quarantined after
        ``quarantine_after`` attributable deaths; co-scheduled innocent
        siblings are requeued, not blamed, and all complete."""
        policy = SupervisorPolicy(
            backoff_base=0.01,
            quarantine_after=2,
            max_pool_breaks=8,
            keep_going=True,
        )
        supervisor = make_supervisor(jobs=2, policy=policy)
        report = supervisor.run_points(stub_points("killer", "okE", "okF"))
        assert len(report.results) == 2  # both innocents finished
        assert [f.outcome for f in report.failures] == [OUTCOME_QUARANTINED]
        assert report.failures[0].label == "killer/simple/plain"
        assert supervisor.metrics.counter("exec.quarantined").value == 1
        assert report.worker_deaths >= policy.quarantine_after

    def test_watchdog_reclaims_hung_worker_then_retry_succeeds(self,
                                                               scratch):
        policy = SupervisorPolicy(
            timeout=0.5, retries=1, backoff_base=0.01, max_pool_breaks=6
        )
        supervisor = make_supervisor(jobs=2, policy=policy)
        report = supervisor.run_points(stub_points("hangonce", "okC"))
        assert report.ok
        assert len(report.results) == 2
        assert report.timeouts == 1
        assert supervisor.metrics.counter("exec.timeouts").value == 1

    def test_watchdog_terminal_timeout_reported(self, scratch):
        policy = SupervisorPolicy(timeout=0.5, retries=0, keep_going=True)
        supervisor = make_supervisor(jobs=2, policy=policy)
        report = supervisor.run_points(stub_points("hang", "okD"))
        assert len(report.results) == 1
        assert [f.outcome for f in report.failures] == [OUTCOME_TIMEOUT]
        assert "no result within" in report.failures[0].error
        with pytest.raises(CampaignFailed):
            report.raise_if_failed()

    def test_worker_interrupt_leaves_valid_journal_and_checkpoints(
        self, scratch, tmp_path
    ):
        """A KeyboardInterrupt surfacing from the pool aborts the
        campaign but the journal stays loadable and completed siblings
        are already cached — exactly what ``repro resume`` needs."""
        cache = ResultCache(tmp_path / "cache")
        journal = CampaignJournal(tmp_path / "j.jsonl", argv=["run"])
        supervisor = make_supervisor(
            jobs=2,
            policy=SupervisorPolicy(backoff_base=0.01),
            cache=cache,
            journal=journal,
        )
        with pytest.raises(KeyboardInterrupt):
            supervisor.run_points(stub_points("okA", "interrupt"))
        journal.close()
        assert cache.lookup(TINY, "okA", "simple", False) is not None
        _header, entries = load_journal(tmp_path / "j.jsonl")
        ok_digest = point_digest(TINY, "okA", "simple", False)
        assert entries[ok_digest]["outcome"] == OUTCOME_OK


# ----------------------------------------------------------------------
# Determinism: supervision must not perturb real results
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_supervised_campaign_bit_identical_to_plain_executor(self):
        points = [
            RunPoint("sar", "simple", False, TINY),
            RunPoint("madbench2", "simple", False, TINY),
        ]
        plain = ExperimentExecutor(jobs=1).run_points(points)
        supervised = CampaignSupervisor(
            ExperimentExecutor(jobs=2)
        ).run_points(points)
        assert supervised.ok
        assert supervised.results == plain
