"""Access slack determination (§IV-A).

For every dynamic read, the slack is the iteration window between the last
preceding write of the same block (the producer) and the read itself:
``[i_w + 1, i_r]``.  Intra-process and inter-process slacks fall out of the
same table lookup; a *negative* inter-process slack (read iteration before
the producing write, possible after loop parallelization) clamps to the
length-1 window ``[i_w + 1, i_w + 1]``.  Reads of program input (never
written) get slack back to iteration 0, optionally capped by
``max_slack``.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Optional

from ..ir.profiling import AccessTrace
from ..storage.striping import StripedFile, StripeMap
from .access import DataAccess

__all__ = ["SlackOptions", "determine_slacks", "producer_for"]


@dataclass(frozen=True)
class SlackOptions:
    """Knobs of the slack pass.

    ``max_slack`` bounds how far back an input-file read may float
    (``None`` = to iteration 0).  ``estimate_length`` turns on multi-slot
    access lengths for the extended algorithm: an access covering more
    bytes than ``bytes_per_slot`` spans proportionally many slots.
    """

    max_slack: Optional[int] = None
    estimate_length: bool = False
    bytes_per_slot: int = 4 * 1024 * 1024


def _producer_before(
    writers: list[tuple[int, int]], slot: int
) -> Optional[tuple[int, int]]:
    """Latest (slot_w, proc) with slot_w < slot, via binary search."""
    idx = bisect_left(writers, (slot, -1))
    if idx == 0:
        return None
    return writers[idx - 1]


def producer_for(
    writers: Optional[list[tuple[int, int]]], slot: int, process: int
) -> Optional[tuple[int, int]]:
    """The producer of a read at ``(slot, process)``: the last write before
    it, or — when the first write lands at/after the read (negative slack)
    — that write itself.

    Public because the static verifier (:mod:`repro.analysis`) uses the
    same resolution against the dependence oracle's writer table; the two
    must never drift apart.
    """
    if not writers:
        return None
    before = _producer_before(writers, slot)
    if before is not None:
        return before
    # Negative slack: the producing write comes at or after the read's
    # iteration.  The earliest writer is the one the read must wait for.
    first = writers[0]
    if first[1] == process and first[0] == slot:
        # Same process writes and reads in one slot: program order within
        # the slot already sequences them; treat as producer-before.
        return None
    return first


def determine_slacks(
    trace: AccessTrace,
    stripe_map: StripeMap,
    files: dict[str, StripedFile],
    options: SlackOptions = SlackOptions(),
) -> list[DataAccess]:
    """Turn every traced read into a :class:`DataAccess` with its window.

    ``files`` maps program file names to their striped instances (needed
    for signatures).  Accesses come back ordered by (process, seq).
    """
    writer_table = trace.last_writer_table()
    block_bytes = {
        name: decl.block_bytes for name, decl in trace.program.files.items()
    }

    accesses: list[DataAccess] = []
    aid = 0
    for proc_trace in trace.processes:
        for io in proc_trace.ios:
            if io.is_write:
                continue
            file = files[io.file]
            nbytes = io.blocks * block_bytes[io.file]
            offset = io.block * block_bytes[io.file]
            signature = stripe_map.signature(file, offset, nbytes)

            # The binding producer is the latest one over all covered blocks.
            producer: Optional[tuple[int, int]] = None
            for key in io.block_keys():
                cand = producer_for(writer_table.get(key), io.slot, io.process)
                if cand is not None and (producer is None or cand > producer):
                    producer = cand

            if producer is None:
                begin = 0
                if options.max_slack is not None:
                    begin = max(0, io.slot - options.max_slack)
                end = io.slot
            elif producer[0] >= io.slot:
                # Negative slack → clamp to the single slot after the write.
                begin = end = producer[0] + 1
            else:
                begin = producer[0] + 1
                end = io.slot
                if options.max_slack is not None:
                    begin = max(begin, end - options.max_slack)

            length = 1
            if options.estimate_length:
                length = max(1, -(-nbytes // options.bytes_per_slot))

            accesses.append(
                DataAccess(
                    aid=aid,
                    process=io.process,
                    original_slot=io.slot,
                    begin=begin,
                    end=end,
                    signature=signature,
                    length=length,
                    nbytes=nbytes,
                    file=io.file,
                    block=io.block,
                    blocks=io.blocks,
                    producer=producer,
                )
            )
            aid += 1
    return accesses
