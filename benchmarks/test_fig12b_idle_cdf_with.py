"""Figure 12(b) — CDF of disk idle-period lengths with the scheme.

Paper shape: the distribution shifts toward longer periods — the
fraction of short idle periods drops relative to Figure 12(a) (the paper
quotes ≤500 ms coverage dropping from ~90.4% to ~75.7%).
"""

from repro.experiments import APPS, fig12a, fig12b

from conftest import run_once


def test_fig12b_idle_cdf_with(benchmark, runner):
    without = fig12a(runner)
    result = run_once(benchmark, lambda: fig12b(runner))
    print("\n" + result.text)
    for app in APPS:
        fractions = list(result.data[app].values())
        assert fractions == sorted(fractions), f"{app}: CDF not monotone"
    # The scheme's consolidation: averaged over the suite, the share of
    # short idle periods (≤500 ms) decreases.
    avg_without = sum(without.data[a][500] for a in APPS) / len(APPS)
    avg_with = sum(result.data[a][500] for a in APPS) / len(APPS)
    print(f"\n≤500ms share: {avg_without:.1%} -> {avg_with:.1%}")
    assert avg_with < avg_without
