"""Calendar-queue event kernel — bucketed time, amortized O(1) ops.

The engine's event population is strongly clustered in time (per-slot
compute ticks, ~ms disk service chains, sub-ms network hops), which is
the textbook fit for a calendar queue [Brown 1988]: hash each event into
a time bucket of width *w*, keep future buckets unsorted (insert is an
``append``), and sort a bucket once — with C timsort, on mostly-ordered
data — when the clock reaches it.  Pops are then an index increment.

Exactness contract: this kernel replays the heap kernel's order
*bit-identically*.  Entries are the same ``(time, seq, Event)`` tuples,
buckets are drained in key order, the drain list is kept sorted (late
inserts into the current bucket go through ``bisect.insort``, which uses
the same tuple comparison the heap uses), and the cancellation counters
mirror :class:`~repro.sim.engine.Simulator` exactly.  The differential
corpus and a hypothesis order property enforce the contract.

Bucket sizing: the width adapts to the observed drain occupancy
(halve when buckets run hot, double when the calendar runs sparse), and
adaptation triggers only on bucket boundaries so a resize can never
reorder the current drain.
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush
from typing import Any, Callable, Optional

from ..obs.base import Observability
from .engine import Simulator
from .events import Event

__all__ = ["CalendarSimulator"]


class CalendarSimulator(Simulator):
    """Bucketed-time kernel, order-identical to the heap kernel."""

    kernel_name = "calendar"

    __slots__ = (
        "_width",
        "_buckets",
        "_keys",
        "_cur",
        "_cur_idx",
        "_cur_key",
        "_size",
        "_occupancy_since",
        "_drained_since",
    )

    #: Width bounds: never finer than a microsecond (pathological fan-out
    #: would explode the key space), never coarser than a policy timeout.
    _MIN_WIDTH = 1e-6
    _MAX_WIDTH = 64.0
    #: Review the width after this many non-empty bucket drains.
    _REVIEW_DRAINS = 64
    #: Halve the width above this mean drain occupancy, double below the
    #: floor.  The band is wide and biased toward *large* buckets: a
    #: drain's sort is C timsort and lockstep workloads append entries
    #: already ordered (same time ⇒ ascending seq), so a 100-entry bucket
    #: sorts in one linear merge pass, while a too-fine width degenerates
    #: into one key-heap push/pop per event — strictly worse than the
    #: plain heap.  Halving also cannot split identical timestamps, so a
    #: tight cap would just chase ties down to ``_MIN_WIDTH``.
    _OCCUPANCY_MAX = 256.0
    _OCCUPANCY_MIN = 2.0

    def __init__(
        self, obs: Optional[Observability] = None, width: float = 0.5
    ) -> None:
        super().__init__(obs=obs)
        if width <= 0:
            raise ValueError(f"bucket width must be positive: {width}")
        self._width = float(width)
        #: key -> unsorted list of (time, seq, Event) entries, future only.
        self._buckets: dict[int, list[tuple[float, int, Event]]] = {}
        #: min-heap of bucket keys awaiting drain (each pushed once).
        self._keys: list[int] = []
        #: the bucket being drained: sorted ascending, consumed by index.
        self._cur: Optional[list[tuple[float, int, Event]]] = None
        self._cur_idx = 0
        self._cur_key = 0
        self._size = 0  # entries stored, including canceled ones
        self._occupancy_since = 0
        self._drained_since = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        The insert is inlined (shared helper: :meth:`_insert`) — this is
        the kernel's hottest entry point and a Python-level call per event
        is exactly the overhead the calendar exists to shave off.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        time = self.now + delay
        event = Event(time, callback, args, sim=self)
        entry = (time, event.seq, event)
        key = int(time / self._width)
        cur = self._cur
        if cur is not None and key <= self._cur_key:
            insort(cur, entry, lo=self._cur_idx)
        else:
            bucket = self._buckets.get(key)
            if bucket is None:
                self._buckets[key] = [entry]
                heappush(self._keys, key)
            else:
                bucket.append(entry)
        self._size += 1
        return event

    def schedule_at_exact(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Absolute-time scheduling (see the heap kernel's docstring)."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past (t={time} < now={self.now})"
            )
        event = Event(time, callback, args, sim=self)
        self._insert((time, event.seq, event))
        self._size += 1
        return event

    def _insert(self, entry: tuple[float, int, Event]) -> None:
        key = int(entry[0] / self._width)
        cur = self._cur
        if cur is not None and key <= self._cur_key:
            # Lands in (or before) the bucket being drained.  Entry time
            # is >= now, so its position is at or after the drain cursor;
            # insort keeps the drain sorted under the same tuple
            # comparison the heap kernel uses.
            insort(cur, entry, lo=self._cur_idx)
            return
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = [entry]
            heappush(self._keys, key)
        else:
            bucket.append(entry)

    # ------------------------------------------------------------------
    # Queue consumption
    # ------------------------------------------------------------------
    def _advance_bucket(self) -> bool:
        """Move the drain cursor to the next non-empty bucket."""
        self._cur = None
        keys = self._keys
        buckets = self._buckets
        while keys:
            key = heappop(keys)
            bucket = buckets.pop(key, None)
            if bucket:
                bucket.sort()
                self._cur = bucket
                self._cur_idx = 0
                self._cur_key = key
                # Occupancy is tallied here, once per install, rather
                # than per pop — the hot consume paths stay lean, and a
                # mean over whole drained buckets is exactly what the
                # width heuristic wants.  (Canceled entries and late
                # insorts skew it slightly; a heuristic does not care.)
                self._occupancy_since += len(bucket)
                self._drained_since += 1
                if self._drained_since >= self._REVIEW_DRAINS:
                    self._review_width()
                return True
        return False

    def _review_width(self) -> None:
        """Adapt the bucket width to the observed drain occupancy."""
        mean = self._occupancy_since / self._drained_since
        self._occupancy_since = 0
        self._drained_since = 0
        width = self._width
        if mean > self._OCCUPANCY_MAX and width > self._MIN_WIDTH:
            self._width = max(width / 2.0, self._MIN_WIDTH)
        elif mean < self._OCCUPANCY_MIN and width < self._MAX_WIDTH:
            self._width = min(width * 2.0, self._MAX_WIDTH)
        else:
            return
        self._rebucket()

    def _rebucket(self) -> None:
        """Re-hash all stored entries under the current width.

        Called only from a bucket boundary (the fresh drain list was just
        installed), so rebuilding the cursor state cannot skip entries.
        """
        entries: list[tuple[float, int, Event]] = []
        cur = self._cur
        if cur is not None:
            entries.extend(cur[self._cur_idx:])
        for bucket in self._buckets.values():
            entries.extend(bucket)
        self._buckets.clear()
        self._keys.clear()
        self._cur = None
        self._cur_idx = 0
        for entry in entries:
            self._insert(entry)

    def step(self) -> bool:
        """Execute the next pending event.  Returns False when drained."""
        while True:
            cur = self._cur
            if cur is None or self._cur_idx >= len(cur):
                if not self._advance_bucket():
                    return False
                continue
            time, _seq, event = cur[self._cur_idx]
            self._cur_idx += 1
            self._size -= 1
            if event.canceled:
                self._canceled -= 1
                continue
            if time < self.now - 1e-12:
                raise RuntimeError(
                    "calendar queue corrupted: time went backwards"
                )
            if time > self.now:
                self.now = time
            self._events_executed += 1
            event.callback(*event.args)
            return True

    def _peek(self) -> Optional[Event]:
        while True:
            cur = self._cur
            if cur is None or self._cur_idx >= len(cur):
                if not self._advance_bucket():
                    return None
                continue
            event = cur[self._cur_idx][2]
            if event.canceled:
                self._cur_idx += 1
                self._size -= 1
                self._canceled -= 1
                continue
            return event

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        """Drain loop, fused so a peeked entry is consumed by index bump
        instead of a second queue traversal (semantics identical to the
        heap kernel's :meth:`~repro.sim.engine.Simulator.run`).  The peek
        itself is inlined too; cursor state is re-read from ``self`` each
        iteration because callbacks mutate it (late inserts grow the
        drain list, cancel compaction replaces it)."""
        executed = 0
        while True:
            cur = self._cur
            idx = self._cur_idx
            if cur is None or idx >= len(cur):
                if not self._advance_bucket():
                    break
                continue
            entry = cur[idx]
            event = entry[2]
            if event.canceled:
                self._cur_idx = idx + 1
                self._size -= 1
                self._canceled -= 1
                continue
            if max_events is not None and executed >= max_events:
                return
            time = entry[0]
            if until is not None and time > until:
                self.now = until
                return
            self._cur_idx = idx + 1
            self._size -= 1
            if time > self.now:
                self.now = time
            self._events_executed += 1
            event.callback(*event.args)
            executed += 1
        if until is not None and self.now < until:
            self.now = until

    # ------------------------------------------------------------------
    # Cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        self._canceled += 1
        if (
            self._canceled >= self._COMPACT_MIN
            and self._canceled * 2 > self._size
        ):
            dropped = self._canceled
            cur = self._cur
            if cur is not None:
                live = [
                    entry for entry in cur[self._cur_idx:]
                    if not entry[2].canceled
                ]
                self._cur = live  # still sorted; cursor restarts at 0
                self._cur_idx = 0
            for key, bucket in list(self._buckets.items()):
                live = [e for e in bucket if not e[2].canceled]
                if live:
                    self._buckets[key] = live
                else:
                    # Leave the stale key in the key heap; the drain skips
                    # keys whose bucket has disappeared.
                    del self._buckets[key]
            self._size -= dropped
            self._canceled = 0

    @property
    def pending_events(self) -> int:
        """Number of non-canceled events still queued (O(1))."""
        return self._size - self._canceled

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CalendarSimulator(now={self.now:.6f}, "
            f"pending={self.pending_events}, width={self._width})"
        )
