"""Tests for the basic scheduling algorithm (§IV-B1, Figure 11)."""

import pytest

from repro.core import BasicScheduler, DataAccess
from repro.core.basic import ScheduleState
from repro.core.signature import signature_from_nodes


def access(aid, process, begin, end, sig, original=None, length=1):
    return DataAccess(
        aid=aid,
        process=process,
        original_slot=end if original is None else original,
        begin=begin,
        end=end,
        signature=sig,
        length=length,
    )


class TestDataAccess:
    def test_slack_length(self):
        a = access(0, 0, 2, 6, 0b1)
        assert a.slack_length == 5

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            access(0, 0, 5, 3, 0b1)

    def test_empty_signature_rejected(self):
        with pytest.raises(ValueError):
            access(0, 0, 0, 1, 0)

    def test_occupied_slots_requires_scheduling(self):
        a = access(0, 0, 0, 3, 0b1, length=2)
        with pytest.raises(ValueError):
            a.occupied_slots()
        a.scheduled_slot = 1
        assert list(a.occupied_slots()) == [1, 2]

    def test_early_prefetch_flag(self):
        a = access(0, 0, 0, 5, 0b1, original=5)
        a.scheduled_slot = 2
        assert a.is_early_prefetch
        a.scheduled_slot = 5
        assert not a.is_early_prefetch


class TestScheduleState:
    def test_one_access_per_process_per_slot(self):
        state = ScheduleState(n_nodes=4)
        a = access(0, 0, 0, 5, 0b1)
        state.commit(a, 2)
        b = access(1, 0, 0, 5, 0b1)
        assert not state.is_available(b, 2)
        assert state.is_available(b, 3)

    def test_other_process_may_share_slot(self):
        state = ScheduleState(n_nodes=4)
        state.commit(access(0, 0, 0, 5, 0b1), 2)
        assert state.is_available(access(1, 1, 0, 5, 0b1), 2)

    def test_group_signature_accumulates(self):
        state = ScheduleState(n_nodes=4)
        state.commit(access(0, 0, 0, 5, 0b0001), 2)
        state.commit(access(1, 1, 0, 5, 0b0100), 2)
        assert state.group_at(2) == 0b0101
        assert state.group_at(3) == 0

    def test_node_load_counts(self):
        state = ScheduleState(n_nodes=4)
        state.commit(access(0, 0, 0, 5, 0b0011), 1)
        state.commit(access(1, 1, 0, 5, 0b0010), 1)
        assert state.load_at(1) == [1, 2, 0, 0]

    def test_multislot_access_occupies_run(self):
        state = ScheduleState(n_nodes=4)
        state.commit(access(0, 0, 0, 9, 0b1, length=3), 4)
        for s in (4, 5, 6):
            assert state.group_at(s) == 0b1
        assert not state.is_available(access(1, 0, 0, 9, 0b1), 5)


class TestValidation:
    def test_bad_nodes(self):
        with pytest.raises(ValueError):
            BasicScheduler(0)

    def test_bad_delta(self):
        with pytest.raises(ValueError):
            BasicScheduler(4, delta=-1)

    def test_bad_tie_break(self):
        with pytest.raises(ValueError):
            BasicScheduler(4, tie_break="coin")


class TestWeights:
    def test_sigma_formula(self):
        """σ_|k| = 1 − |k|/(δ+1): the paper's example with δ=4 gives
        σ0=1, σ1=0.8, σ2=0.6."""
        sched = BasicScheduler(4, delta=4)
        assert sched._weights[0] == 1.0
        assert sched._weights[1] == pytest.approx(0.8)
        assert sched._weights[2] == pytest.approx(0.6)

    def test_reuse_factor_hand_computed(self):
        """Mirror the §IV-B1 calculation structure on 16 nodes with our
        exact σ weights."""
        n = 16
        sched = BasicScheduler(n, delta=2)
        state = ScheduleState(n_nodes=n)
        g4 = signature_from_nodes([1, 9], n)
        # Group signatures chosen to realize D values 20, 20, 16, 16, 14:
        state.group[4] = signature_from_nodes([2, 10], n)   # D = 20
        state.group[5] = signature_from_nodes([2, 10], n)   # D = 20
        state.group[6] = signature_from_nodes([1], n)       # D = 16
        state.group[7] = signature_from_nodes([1], n)       # D = 16
        state.group[8] = g4                                 # D = 14
        a4 = access(0, 0, 3, 10, g4)
        expected = (
            1.0 / 16
            + (2 / 3) * (1 / 20 + 1 / 16)
            + (1 / 3) * (1 / 20 + 1 / 14)
        )
        assert sched.reuse_factor(a4, 6, state) == pytest.approx(expected)

    def test_vectorized_scores_match_scalar(self):
        import random

        rng = random.Random(7)
        sched = BasicScheduler(8, delta=5, seed=3)
        state = ScheduleState(n_nodes=8)
        for aid in range(40):
            a = access(aid, rng.randrange(4), 0, 30,
                       rng.randrange(1, 256), original=rng.randrange(31))
            sched.place(a, state)
        probe = access(99, 9, 3, 25, 0b1011)
        for slot, score in sched.scored_candidates(probe, state):
            assert score == pytest.approx(
                sched.reuse_factor(probe, slot, state)
            )


class TestScheduling:
    def test_all_accesses_get_slots_in_window(self):
        sched = BasicScheduler(8, delta=3, seed=1)
        accesses = [
            access(i, i % 3, 2, 12, signature_from_nodes([i % 8], 8))
            for i in range(12)
        ]
        sched.schedule(accesses)
        for a in accesses:
            assert a.scheduled_slot is not None
            assert 2 <= a.scheduled_slot <= 12

    def test_shortest_slack_scheduled_first(self):
        """The constrained access gets its only slot; the flexible one
        moves elsewhere."""
        sched = BasicScheduler(4, delta=2, seed=0)
        tight = access(0, 0, 5, 5, 0b0001)
        loose = access(1, 0, 0, 9, 0b0001)
        sched.schedule([loose, tight])  # order in list must not matter
        assert tight.scheduled_slot == 5
        assert loose.scheduled_slot != 5

    def test_same_process_conflict_falls_back_to_original(self):
        sched = BasicScheduler(4, delta=2, seed=0)
        a = access(0, 0, 3, 3, 0b1, original=3)
        b = access(1, 0, 3, 3, 0b1, original=3)
        state = sched.schedule([a, b])
        # Both windows are the single slot 3; the second access cannot be
        # placed and stays at its original point without claiming state.
        assert {a.scheduled_slot, b.scheduled_slot} == {3}
        assert state.group_at(3).bit_count() == 1

    def test_same_signature_accesses_cluster(self):
        """Horizontal reuse: accesses with identical signatures from
        different processes gravitate to the same slots."""
        sched = BasicScheduler(8, delta=4, seed=2, tie_break="latest")
        sig_a = signature_from_nodes([0, 1], 8)
        sig_b = signature_from_nodes([6, 7], 8)
        accesses = []
        aid = 0
        for proc in range(4):
            accesses.append(access(aid, proc, 0, 20, sig_a, original=20)); aid += 1
            accesses.append(access(aid, proc, 0, 20, sig_b, original=20)); aid += 1
        sched.schedule(accesses)
        slots_a = {a.scheduled_slot for a in accesses if a.signature == sig_a}
        slots_b = {a.scheduled_slot for a in accesses if a.signature == sig_b}
        # Each class lands on few distinct slots and the classes separate.
        assert len(slots_a) <= 2
        assert len(slots_b) <= 2

    def test_tie_break_latest_prefers_original_end(self):
        sched = BasicScheduler(4, delta=2, seed=0, tie_break="latest")
        a = access(0, 0, 0, 10, 0b1, original=10)
        state = ScheduleState(n_nodes=4)
        slot = sched.place(a, state)
        assert slot == 10

    def test_tie_break_first_prefers_window_start(self):
        sched = BasicScheduler(4, delta=2, seed=0, tie_break="first")
        a = access(0, 0, 0, 10, 0b1)
        state = ScheduleState(n_nodes=4)
        assert sched.place(a, state) == 0

    def test_random_tie_break_deterministic_per_seed(self):
        def run(seed):
            sched = BasicScheduler(4, delta=2, seed=seed, tie_break="random")
            accesses = [access(i, i % 2, 0, 20, 0b11) for i in range(8)]
            sched.schedule(accesses)
            return [a.scheduled_slot for a in accesses]

        assert run(5) == run(5)

    def test_deterministic_full_schedule(self):
        def run():
            sched = BasicScheduler(8, delta=3, seed=11)
            accesses = [
                access(i, i % 4, 0, 15, signature_from_nodes([i % 8], 8))
                for i in range(20)
            ]
            sched.schedule(accesses)
            return [a.scheduled_slot for a in accesses]

        assert run() == run()
