"""Verifier entry points: one call runs every static checker.

:func:`verify_schedule` is what the CLI (``repro verify``) and the
compiler gate (``CompilerOptions(verify=True)``) invoke; it aggregates the
schedule checks, the race/deadlock detection and the capacity analysis
into one :class:`~repro.analysis.diagnostics.Report`.  The runtime
semantics the checks model (``min_lead``, ``batch_slots``, buffer
capacity) travel in a :class:`RuntimeModel`, defaulting to the session
defaults so a bare ``verify_schedule(trace, book)`` checks what a bare
``Session`` would run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.table import ScheduleBook
from ..ir.profiling import AccessTrace
from .capacity import CapacityProfile, analyze_capacity, lint_trace
from .diagnostics import Report
from .races import detect_races
from .schedule_check import check_book, oracle_writer_table

__all__ = [
    "RuntimeModel",
    "ScheduleVerificationError",
    "verify_schedule",
    "capacity_profile",
    "lint_program",
]


@dataclass(frozen=True)
class RuntimeModel:
    """The runtime semantics the static checks are evaluated against.

    Defaults mirror :class:`~repro.runtime.session.SessionConfig`; build
    from a real config with :meth:`from_session_config` so the verifier
    and the simulator never disagree about the knobs.
    """

    min_lead: int = 2
    batch_slots: int = 8
    buffer_capacity_blocks: int = 512

    @classmethod
    def from_session_config(cls, config) -> "RuntimeModel":
        """From a :class:`~repro.runtime.session.SessionConfig`."""
        return cls(
            min_lead=config.scheduler_min_lead,
            batch_slots=config.scheduler_batch_slots,
            buffer_capacity_blocks=config.buffer_capacity_blocks,
        )


class ScheduleVerificationError(RuntimeError):
    """Raised by the compiler gate when a schedule has error diagnostics."""

    def __init__(self, report: Report):
        self.report = report
        codes = ", ".join(sorted({d.code for d in report.errors}))
        super().__init__(
            f"schedule failed static verification with "
            f"{len(report.errors)} error(s) [{codes}]"
        )


def verify_schedule(
    trace: AccessTrace,
    book: ScheduleBook,
    runtime: RuntimeModel = RuntimeModel(),
    granularity: int = 1,
    include_lint: bool = True,
) -> Report:
    """Statically verify ``book`` against ``trace`` — no simulation.

    ``granularity`` is the compiler's slot granularity the trace was taken
    at; it selects the dependence oracle (see
    :func:`~repro.analysis.schedule_check.oracle_writer_table`).
    Error-severity diagnostics mean the schedule violates a correctness
    invariant; warnings and notes are realizability and style findings.
    """
    report = Report()
    writer_table = oracle_writer_table(trace, granularity)
    report.extend(check_book(trace, book, writer_table=writer_table,
                             granularity=granularity))
    report.extend(detect_races(trace, book, runtime.min_lead,
                               runtime.batch_slots))
    _profile, cap_diags = analyze_capacity(
        trace, book, runtime.buffer_capacity_blocks,
        runtime.min_lead, runtime.batch_slots,
    )
    report.extend(cap_diags)
    if include_lint:
        report.extend(lint_trace(trace))
    return report


def capacity_profile(
    trace: AccessTrace,
    book: ScheduleBook,
    runtime: RuntimeModel = RuntimeModel(),
) -> CapacityProfile:
    """The planned buffer-occupancy profile of a schedule (no report)."""
    profile, _diags = analyze_capacity(
        trace, book, runtime.buffer_capacity_blocks,
        runtime.min_lead, runtime.batch_slots,
    )
    return profile


def lint_program(trace: AccessTrace) -> Report:
    """IR lint alone (``repro lint``): no schedule required."""
    report = Report()
    report.extend(lint_trace(trace))
    return report
