"""The experiment runner: one (workload, policy, scheme) → measurements.

Builds the trace, optionally compiles the schedule (once per workload ×
compiler-config; compilation is policy-independent), assembles a
:class:`~repro.runtime.session.Session`, runs it, and distils the metrics
every figure consumes.  Results and compilations are memoized per
configuration so the figure functions can share runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..core.compiler import CompileResult, CompilerOptions, compile_schedule
from ..core.slack import SlackOptions
from ..ir.profiling import AccessTrace, trace_program
from ..metrics.energy import breakdown_until, fleet_energy, idle_periods_until
from ..metrics.idle import IdleCDF, idle_cdf
from ..obs.base import Observability
from ..power import (
    CreditMultiSpeed,
    ForecastSpindown,
    HistoryBasedMultiSpeed,
    HybridCompilerAssist,
    NoPowerManagement,
    PredictionSpinDown,
    SimpleSpinDown,
    StaggeredMultiSpeed,
)
from ..runtime.session import Session
from ..workloads import get_workload
from .config import ExperimentConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..exec.cache import ResultCache

__all__ = [
    "RunResult",
    "Runner",
    "POLICIES",
    "ONLINE_POLICIES",
    "MULTISPEED_POLICIES",
]

#: The paper's four evaluated policies — figure grids are pinned to these.
POLICIES = ("simple", "prediction", "history", "staggered")
#: The online/adaptive family (beyond the paper; see ``repro.power.online``).
ONLINE_POLICIES = ("forecast", "credit", "hybrid")
#: Policies that run on the DRPM (multi-speed) disk spec.
MULTISPEED_POLICIES = frozenset({"history", "staggered", "credit"})


@dataclass
class RunResult:
    """Distilled measurements of one run."""

    workload: str
    policy: str
    scheme: bool
    execution_time: float
    energy_joules: float
    idle_cdf: IdleCDF
    idle_periods: list[float]
    energy_breakdown: dict[str, float]
    buffer_hits: int
    prefetches: int
    accesses: int


class Runner:
    """Memoizing experiment driver for one base configuration.

    With a :class:`~repro.exec.cache.ResultCache` attached, finished runs
    are also persisted on disk (content-addressed by the canonical config
    key), so repeat invocations — and parallel workers feeding the same
    cache — never re-simulate an unchanged point.  ``simulations`` counts
    the runs that actually hit the simulator in this process.
    """

    def __init__(
        self, config: ExperimentConfig, cache: Optional["ResultCache"] = None
    ):
        self.config = config
        self.cache = cache
        self.simulations = 0
        #: Kernel-side statistics of the most recent ``_simulate`` call
        #: (kernel name, events executed, collapsed-phase counters).
        #: Deliberately *not* part of :class:`RunResult`: event counts
        #: differ across kernels by design, while RunResult must stay
        #: bit-identical.
        self.last_sim_stats: dict = {}
        self._traces: dict[tuple, AccessTrace] = {}
        self._compilations: dict[tuple, CompileResult] = {}
        self._runs: dict[tuple, RunResult] = {}

    # ------------------------------------------------------------------
    # Cached building blocks
    # ------------------------------------------------------------------
    def trace(
        self, workload: str, config: Optional[ExperimentConfig] = None
    ) -> AccessTrace:
        cfg = config or self.config
        key = (workload, cfg.n_clients, cfg.workload_scale, cfg.granularity)
        if key not in self._traces:
            program = get_workload(workload).build(
                n_processes=cfg.n_clients, scale=cfg.workload_scale
            )
            self._traces[key] = trace_program(
                program, granularity=cfg.granularity
            )
        return self._traces[key]

    def compilation(
        self, workload: str, config: Optional[ExperimentConfig] = None
    ) -> CompileResult:
        cfg = config or self.config
        key = (
            workload,
            cfg.n_clients,
            cfg.workload_scale,
            cfg.granularity,
            cfg.n_ionodes,
            cfg.stripe_size,
            cfg.delta,
            cfg.theta,
            cfg.max_slack,
        )
        if key not in self._compilations:
            trace = self.trace(workload, cfg)
            # Build the striping view the compiler schedules against.
            from ..storage.striping import StripedFile, StripeMap

            stripe_map = StripeMap(cfg.stripe_size, cfg.n_ionodes)
            files = {
                name: StripedFile(name, decl.size_bytes)
                for name, decl in trace.program.files.items()
            }
            options = CompilerOptions(
                delta=cfg.delta,
                theta=cfg.theta,
                granularity=cfg.granularity,
                slack=SlackOptions(max_slack=cfg.max_slack),
            )
            self._compilations[key] = compile_schedule(
                trace.program, stripe_map, files, options, trace=trace
            )
        return self._compilations[key]

    # ------------------------------------------------------------------
    # Policy factory
    # ------------------------------------------------------------------
    def _policy_factory(
        self,
        policy: str,
        cfg: ExperimentConfig,
        workload: Optional[str] = None,
        scheme: bool = False,
    ):
        """Zero-arg factory the session calls once per drive.

        ``workload``/``scheme`` matter only for ``hybrid``, whose hints
        are the compiled schedule's nominal touch times — available
        exactly when the scheme is on for a known workload; otherwise the
        policy runs hint-less (pure online fallback).
        """
        if policy == "default":
            return lambda: NoPowerManagement()
        if policy == "simple":
            return lambda: SimpleSpinDown(timeout=cfg.simple_timeout)
        if policy == "prediction":
            return lambda: PredictionSpinDown(
                breakeven_margin=cfg.prediction_margin
            )
        if policy == "history":
            return lambda: HistoryBasedMultiSpeed(
                utilization_bound=cfg.history_utilization_bound
            )
        if policy == "staggered":
            return lambda: StaggeredMultiSpeed(step_timeout=cfg.staggered_step)
        if policy == "forecast":
            return lambda: ForecastSpindown(epoch=cfg.forecast_epoch)
        if policy == "credit":
            return lambda: CreditMultiSpeed(slack_budget=cfg.credit_slack)
        if policy == "hybrid":
            hints: dict[int, tuple[float, ...]] = {}
            if scheme and workload is not None:
                from ..power.hints import nominal_node_touch_times

                hints = nominal_node_touch_times(
                    self.trace(workload, cfg),
                    cfg.n_ionodes,
                    cfg.stripe_size,
                    book=self.compilation(workload, cfg).book,
                )
            return lambda: HybridCompilerAssist(
                hints=hints, divergence_tolerance=cfg.hybrid_divergence
            )
        raise ValueError(f"unknown policy {policy!r}")

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def _simulate(
        self,
        workload: str,
        policy: str,
        scheme: bool,
        cfg: ExperimentConfig,
        obs: Optional[Observability] = None,
    ) -> RunResult:
        """Simulate one point unconditionally and distil its result.

        ``obs`` threads an observability context into the session; the
        distilled :class:`RunResult` is identical with or without it.
        """
        self.simulations += 1
        trace = self.trace(workload, cfg)
        compile_result = self.compilation(workload, cfg) if scheme else None
        multispeed = policy in MULTISPEED_POLICIES
        session = Session(
            trace,
            cfg.disk_spec(multispeed),
            self._policy_factory(policy, cfg, workload=workload, scheme=scheme),
            cfg.session_config(),
            compile_result=compile_result,
            obs=obs,
            faults=cfg.fault_plan,
        )
        outcome = session.run()
        sim = session.sim
        self.last_sim_stats = {
            "kernel": sim.kernel_name,
            "events": sim.events_executed,
            "phases_collapsed": getattr(sim, "phases_collapsed", 0),
            "slots_collapsed": getattr(sim, "slots_collapsed", 0),
        }
        horizon = outcome.execution_time
        if obs is not None and obs.metrics is not None:
            from ..obs.collect import collect_session_metrics

            collect_session_metrics(obs.metrics, outcome, horizon)

        periods = [
            p for d in outcome.drives for p in idle_periods_until(d, horizon)
        ]
        breakdown_total: dict[str, float] = {}
        for drive in outcome.drives:
            for state, joules in breakdown_until(drive, horizon).as_dict().items():
                breakdown_total[state] = breakdown_total.get(state, 0.0) + joules

        return RunResult(
            workload=workload,
            policy=policy,
            scheme=scheme,
            execution_time=horizon,
            energy_joules=fleet_energy(outcome.drives, horizon),
            idle_cdf=idle_cdf(periods),
            idle_periods=periods,
            energy_breakdown=breakdown_total,
            buffer_hits=outcome.buffer.hits if outcome.buffer else 0,
            prefetches=outcome.buffer.total_prefetches if outcome.buffer else 0,
            accesses=len(compile_result.accesses) if compile_result else 0,
        )

    def run(
        self,
        workload: str,
        policy: str,
        scheme: bool,
        config: Optional[ExperimentConfig] = None,
    ) -> RunResult:
        """Run (memoized, disk-cached) and distil one experiment."""
        cfg = config or self.config
        key = (workload, policy, scheme, cfg.to_key())
        if key in self._runs:
            return self._runs[key]
        if self.cache is not None:
            cached = self.cache.lookup(cfg, workload, policy, scheme)
            if cached is not None:
                self._runs[key] = cached
                return cached

        result = self._simulate(workload, policy, scheme, cfg)
        self._runs[key] = result
        if self.cache is not None:
            self.cache.store(cfg, workload, policy, scheme, result)
        return result

    def measure(
        self,
        workload: str,
        policy: str,
        scheme: bool,
        config: Optional[ExperimentConfig] = None,
    ) -> tuple[RunResult, dict]:
        """Simulate one point unconditionally; return ``(result, stats)``.

        The benchmark's events/sec probe: bypasses the memo table and the
        disk cache (a cached result has no kernel timeline to measure),
        warms the trace/compile memos first so only the simulation is
        timed, and returns the kernel statistics alongside the result —
        ``kernel``, ``events``, ``seconds``, ``events_per_sec`` and the
        analytic kernel's collapse counters.  The result is bit-identical
        to :meth:`run`'s and is *not* written back to the cache (measured
        passes must stay repeatable-cold).
        """
        import time

        cfg = config or self.config
        self.trace(workload, cfg)
        if scheme:
            self.compilation(workload, cfg)
        start = time.perf_counter()  # det: wall-clock duration is the benchmark's measurement
        result = self._simulate(workload, policy, scheme, cfg)
        elapsed = time.perf_counter() - start  # det: wall-clock duration is the benchmark's measurement
        stats = dict(self.last_sim_stats)
        stats["seconds"] = elapsed
        stats["events_per_sec"] = (
            stats["events"] / elapsed if elapsed > 0 else 0.0
        )
        # Equal-work throughput: collapsed slots stand in for the Timeout
        # events the DES would have executed, so kernels compare on the
        # same denominator.
        stats["effective_events_per_sec"] = (
            (stats["events"] + stats["slots_collapsed"]) / elapsed
            if elapsed > 0
            else 0.0
        )
        return result, stats

    def run_instrumented(
        self,
        workload: str,
        policy: str,
        scheme: bool,
        obs: Observability,
        config: Optional[ExperimentConfig] = None,
    ) -> RunResult:
        """Simulate one point under an observability context.

        Never served from the memo table or the disk cache — a cached
        result carries no trace events and no metrics, so an instrumented
        request must actually run.  The fresh result *is* written back to
        both, and is bit-identical to an uninstrumented run's.
        """
        cfg = config or self.config
        if obs is None or not isinstance(obs, Observability):
            raise TypeError("run_instrumented requires an Observability")
        result = self._simulate(workload, policy, scheme, cfg, obs=obs)
        self._runs[(workload, policy, scheme, cfg.to_key())] = result
        if self.cache is not None:
            self.cache.store(cfg, workload, policy, scheme, result)
        return result

    def seed_result(
        self,
        workload: str,
        policy: str,
        scheme: bool,
        config: ExperimentConfig,
        result: RunResult,
    ) -> None:
        """Install an externally-computed result into the memo table.

        The parallel executor uses this to make figure drivers — which call
        :meth:`run` serially — find every grid point already materialized.
        """
        self._runs[(workload, policy, scheme, config.to_key())] = result

    def baseline(
        self, workload: str, config: Optional[ExperimentConfig] = None
    ) -> RunResult:
        """The Default Scheme run (no power management, no scheduling)."""
        return self.run(workload, "default", scheme=False, config=config)

    # ------------------------------------------------------------------
    def normalized_energy(
        self, workload: str, policy: str, scheme: bool,
        config: Optional[ExperimentConfig] = None,
    ) -> float:
        """Policy energy ÷ default energy (Figures 12(c)/(d))."""
        cfg = config or self.config
        base = self.baseline(workload, cfg)
        run = self.run(workload, policy, scheme, cfg)
        return run.energy_joules / base.energy_joules

    def degradation(
        self, workload: str, policy: str, scheme: bool,
        config: Optional[ExperimentConfig] = None,
    ) -> float:
        """Execution-time degradation versus the default scheme
        (Figures 13(a)/(b))."""
        cfg = config or self.config
        base = self.baseline(workload, cfg)
        run = self.run(workload, policy, scheme, cfg)
        return run.execution_time / base.execution_time - 1.0
