"""Oracle power policies — upper bounds used in ablation studies.

These are not in the paper's evaluation but bound what any online policy
could achieve: :class:`OracleSpinDown` knows each idle period's true length
in advance (supplied by a prior identical run under the default policy)
and spins down only when it pays off, waking exactly on time.
"""

from __future__ import annotations

from bisect import bisect_left

from .policy import PowerPolicy

__all__ = ["OracleSpinDown"]


class OracleSpinDown(PowerPolicy):
    """Perfect-knowledge spin-down policy.

    ``idle_intervals`` is the chronological list of ``(start, length)``
    idle periods this drive experienced in a previous run of the same
    workload under the default policy (see
    :meth:`repro.disk.drive.Drive.idle_period_intervals`).  Because the
    oracle hides every spin-up behind a perfectly timed wake, the replay
    timeline stays aligned with the recorded one; lookups match by start
    time with a tolerance so transient drift self-corrects.
    """

    name = "oracle"

    def __init__(
        self, idle_intervals: list[tuple[float, float]], tolerance: float = 2.0
    ):
        super().__init__()
        self._intervals = sorted(idle_intervals)
        self._starts = [s for s, _l in self._intervals]
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive: {tolerance}")
        self.tolerance = tolerance
        self.correct_decisions = 0
        self.unmatched_idles = 0

    def _true_idle_length(self, now: float) -> float:
        """The recorded idle period starting nearest ``now``, or 0."""
        if not self._starts:
            self.unmatched_idles += 1
            return 0.0
        idx = bisect_left(self._starts, now)
        best = None
        for candidate in (idx - 1, idx):
            if 0 <= candidate < len(self._starts):
                dist = abs(self._starts[candidate] - now)
                if best is None or dist < best[0]:
                    best = (dist, candidate)
        if best is None or best[0] > self.tolerance:
            self.unmatched_idles += 1
            return 0.0
        return self._intervals[best[1]][1]

    def on_idle_start(self, now: float) -> None:
        true_idle = self._true_idle_length(now)
        spec = self.drive.spec
        if true_idle >= spec.breakeven_idle_seconds():
            if self.drive.spin_down():
                self.correct_decisions += 1
                wake_delay = max(
                    true_idle - spec.spin_up_time, spec.spin_down_time
                )
                self._arm_timer(wake_delay, self._wake)

    def _wake(self) -> None:
        self._timer = None
        if self.drive.is_standby and self.drive.is_idle:
            self.drive.spin_up()

    def on_request_arrival(self, now: float) -> None:
        self._cancel_timer()
