"""The online energy-policy tournament: schema, determinism, arithmetic.

The tournament document is the PR's product: a leaderboard CI pins.
These tests check the three properties that make it pinnable — the
schema is stable, the body replays byte-identically (in-process, run
over run, and serial vs. a 4-worker pool through the campaign
machinery), and the win-matrix / leaderboard arithmetic is internally
consistent with the cells.
"""

import io
import json
import re

import pytest

from repro.cli import main
from repro.exec import CampaignSupervisor, ExperimentExecutor
from repro.exec.serialize import canonical_dumps
from repro.experiments import ExperimentConfig
from repro.experiments.tournament import (
    DEFAULT_ENTRANTS,
    SCENARIOS,
    TOURNAMENT_SCHEMA,
    TOURNAMENT_WORKLOADS,
    Entrant,
    run_tournament,
    scenario_config,
    tournament_points,
    write_tournament_record,
)

SMALL = ExperimentConfig(n_clients=8, n_ionodes=4, workload_scale=0.05)

#: Reduced grid shared across the module: small enough to be quick,
#: wide enough that the win matrix and both fault scenarios are real.
WORKLOADS = ("sar", "hf")
ENTRANTS = (
    Entrant("compiler-simple", "simple", scheme=True),
    Entrant("forecast", "forecast", scheme=False),
    Entrant("hybrid", "hybrid", scheme=True),
)
GRID_SCENARIOS = ("clean", "straggler")


@pytest.fixture(scope="module")
def doc():
    return run_tournament(
        SMALL, workloads=WORKLOADS, entrants=ENTRANTS,
        scenarios=GRID_SCENARIOS,
    )


class TestEntrant:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Entrant("", "simple", scheme=True)

    def test_reorder_without_scheme_rejected(self):
        with pytest.raises(ValueError):
            Entrant("x", "forecast", scheme=False, reorder=True)

    def test_default_field_is_valid_and_distinct(self):
        names = [e.name for e in DEFAULT_ENTRANTS]
        assert len(set(names)) == len(names)
        assert any(e.reorder for e in DEFAULT_ENTRANTS)

    def test_as_dict_round_trips_fields(self):
        e = Entrant("h", "hybrid", scheme=True, reorder=True)
        assert e.as_dict() == {
            "name": "h", "policy": "hybrid", "scheme": True, "reorder": True,
        }


class TestScenarios:
    def test_clean_is_base(self):
        assert scenario_config(SMALL, "clean") is SMALL

    def test_straggler_attaches_plan(self):
        cfg = scenario_config(SMALL, "straggler")
        assert cfg.fault_plan is not None
        assert cfg.fault_plan.events[0].kind == "node.straggle"

    def test_degraded_is_raid5_with_dead_member(self):
        cfg = scenario_config(SMALL, "degraded")
        assert cfg.raid_level == 5
        assert cfg.disks_per_node == 3
        assert cfg.fault_plan.events[0].kind == "disk.fail"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            scenario_config(SMALL, "chaos")


class TestPoints:
    def test_baselines_present_per_scenario_workload(self):
        points = tournament_points(
            SMALL, WORKLOADS, ENTRANTS, GRID_SCENARIOS
        )
        defaults = [p for p in points if p.policy == "default"]
        assert len(defaults) == len(WORKLOADS) * len(GRID_SCENARIOS)

    def test_points_deduplicated(self):
        # Two entrants sharing (policy, scheme, config) collapse to one
        # run point — the grid pays for distinct simulations only.
        twins = (
            Entrant("a", "forecast", scheme=False),
            Entrant("b", "forecast", scheme=False),
        )
        points = tournament_points(SMALL, ("sar",), twins, ("clean",))
        assert len(points) == 2  # baseline + the shared forecast point

    def test_reorder_entrant_gets_distinct_config(self):
        pair = (
            Entrant("hybrid", "hybrid", scheme=True),
            Entrant("hybrid-reorder", "hybrid", scheme=True, reorder=True),
        )
        points = tournament_points(SMALL, ("sar",), pair, ("clean",))
        assert len(points) == 3  # baseline + hybrid + hybrid-with-reorder
        hybrids = [p for p in points if p.policy == "hybrid"]
        assert len(hybrids) == 2
        # reorder=True joins the config key, so the two hybrid cells are
        # distinct grid points (distinct cache digests), not aliases.
        assert hybrids[0].config.to_key() != hybrids[1].config.to_key()

    def test_duplicate_entrant_names_rejected(self):
        with pytest.raises(ValueError):
            run_tournament(
                SMALL, workloads=("sar",), scenarios=("clean",),
                entrants=(
                    Entrant("same", "simple", scheme=True),
                    Entrant("same", "forecast", scheme=False),
                ),
            )


class TestDocument:
    def test_schema_stable_keys(self, doc):
        assert set(doc) == {
            "kind", "schema", "scale", "workloads", "scenarios", "entrants",
            "cells", "win_matrix", "leaderboard", "all_contained",
        }
        assert doc["kind"] == "tournament"
        assert doc["schema"] == TOURNAMENT_SCHEMA
        cell_keys = {
            "scenario", "workload", "entrant", "policy", "scheme", "reorder",
            "energy_j", "execution_s", "normalized_energy", "slowdown",
            "envelope_lo_j", "envelope_hi_j", "contained",
        }
        for cell in doc["cells"]:
            assert set(cell) == cell_keys

    def test_grid_complete(self, doc):
        assert len(doc["cells"]) == (
            len(WORKLOADS) * len(GRID_SCENARIOS) * len(ENTRANTS)
        )
        seen = {(c["scenario"], c["workload"], c["entrant"])
                for c in doc["cells"]}
        assert len(seen) == len(doc["cells"])

    def test_all_cells_contained(self, doc):
        """The acceptance gate: every measured energy sits inside the
        analyzer's certified envelope."""
        for cell in doc["cells"]:
            assert cell["envelope_lo_j"] <= cell["energy_j"] \
                <= cell["envelope_hi_j"], cell["entrant"]
            assert cell["contained"]
        assert doc["all_contained"]

    def test_win_matrix_consistent_with_cells(self, doc):
        names = [e.name for e in ENTRANTS]
        n_cells = len(WORKLOADS) * len(GRID_SCENARIOS)
        energy = {}
        for cell in doc["cells"]:
            energy[(cell["scenario"], cell["workload"], cell["entrant"])] = (
                cell["energy_j"]
            )
        for a in names:
            for b in names:
                if a == b:
                    assert b not in doc["win_matrix"][a]
                    continue
                expect = sum(
                    1
                    for s in GRID_SCENARIOS
                    for w in WORKLOADS
                    if energy[(s, w, a)] < energy[(s, w, b)]
                )
                assert doc["win_matrix"][a][b] == expect, (a, b)
                # Strict wins: a-beats-b plus b-beats-a never exceeds the
                # cell count (ties belong to neither).
                assert (
                    doc["win_matrix"][a][b] + doc["win_matrix"][b][a]
                    <= n_cells
                )

    def test_leaderboard_consistent_with_cells(self, doc):
        rows = {row["entrant"]: row for row in doc["leaderboard"]}
        assert set(rows) == {e.name for e in ENTRANTS}
        for name, row in rows.items():
            own = [c for c in doc["cells"] if c["entrant"] == name]
            mean = sum(c["normalized_energy"] for c in own) / len(own)
            assert row["mean_normalized_energy"] == pytest.approx(mean)
            assert row["wins"] == sum(doc["win_matrix"][name].values())
            assert row["max_wins"] == (
                len(WORKLOADS) * len(GRID_SCENARIOS) * (len(ENTRANTS) - 1)
            )
        ranked = [row["mean_normalized_energy"] for row in doc["leaderboard"]]
        assert ranked == sorted(ranked)

    def test_body_carries_no_timestamps(self, doc):
        text = canonical_dumps(doc)
        assert "created" not in text
        assert not re.search(r"\d{4}-\d{2}-\d{2}T", text)


class TestDeterminism:
    def test_rerun_byte_identical(self, doc):
        again = run_tournament(
            SMALL, workloads=WORKLOADS, entrants=ENTRANTS,
            scenarios=GRID_SCENARIOS,
        )
        assert canonical_dumps(again) == canonical_dumps(doc)

    def test_supervised_jobs4_matches_in_process(self, doc, tmp_path):
        executor = ExperimentExecutor(jobs=4)
        supervisor = CampaignSupervisor(executor)
        pooled = run_tournament(
            SMALL, workloads=WORKLOADS, entrants=ENTRANTS,
            scenarios=GRID_SCENARIOS, supervisor=supervisor,
        )
        assert canonical_dumps(pooled) == canonical_dumps(doc)


class TestRecord:
    def test_filename_shape_and_round_trip(self, doc, tmp_path):
        path = write_tournament_record(doc, tmp_path)
        assert re.fullmatch(r"TOURNAMENT_\d{8}T\d{6}Z\.json", path.name)
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert canonical_dumps(loaded) == canonical_dumps(doc)


class TestCli:
    def run_cli(self, *argv):
        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_tournament_renders_leaderboard_and_matrix(self, tmp_path):
        code, text = self.run_cli(
            "tournament", "--scale", "0.05",
            "--workloads", "sar",
            "--entrants", "forecast,hybrid",
            "--scenarios", "clean",
            "--no-cache", "--output-dir", str(tmp_path),
        )
        assert code == 0
        assert "forecast" in text and "hybrid" in text
        assert "beats" in text or "wins" in text
        records = list(tmp_path.glob("TOURNAMENT_*.json"))
        assert len(records) == 1

    def test_tournament_json_mode(self, tmp_path):
        code, text = self.run_cli(
            "tournament", "--scale", "0.05",
            "--workloads", "sar",
            "--entrants", "forecast",
            "--scenarios", "clean",
            "--no-cache", "--no-record", "--json",
            "--output-dir", str(tmp_path),
        )
        assert code == 0
        doc = json.loads(text)
        assert doc["kind"] == "tournament"
        assert doc["all_contained"] is True
        assert not list(tmp_path.glob("TOURNAMENT_*.json"))

    def test_unknown_entrant_rejected(self, tmp_path, capsys):
        code, _ = self.run_cli(
            "tournament", "--entrants", "nonesuch",
            "--output-dir", str(tmp_path),
        )
        assert code == 2
        assert "nonesuch" in capsys.readouterr().err
