"""Per-figure/table experiment drivers.

Each function regenerates the rows/series of one table or figure from the
paper's evaluation (§V) and returns a :class:`FigureResult` whose ``text``
is the printable table and whose ``data`` is the raw structure tests
assert on.  All functions share one memoizing :class:`Runner`, so a full
sweep reuses every run it can.

Paper ↔ function map:

==========  =====================================================
Table II    :func:`table2_rows`
Table III   :func:`table3`
Fig 12(a)   :func:`fig12a` — idle CDF without the scheme
Fig 12(b)   :func:`fig12b` — idle CDF with the scheme
Fig 12(c)   :func:`fig12c` — normalized energy without the scheme
Fig 12(d)   :func:`fig12d` — normalized energy with the scheme
Fig 13(a)   :func:`fig13a` — perf degradation without the scheme
Fig 13(b)   :func:`fig13b` — perf degradation with the scheme
Fig 13(c)   :func:`fig13c` — benefit vs number of I/O nodes
Fig 13(d)   :func:`fig13d` — benefit vs δ
Fig 14(a)   :func:`fig14a` — benefit vs θ
Fig 14(b)   :func:`fig14b` — performance improvement vs θ
§V-D text   :func:`cache_sensitivity`
==========  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from ..metrics.idle import PAPER_BUCKETS_MS
from ..metrics.report import format_percent, format_table
from .config import ExperimentConfig, default_config
from .runner import POLICIES, Runner

__all__ = [
    "FigureResult",
    "APPS",
    "table2_rows",
    "table3",
    "fig12a",
    "fig12b",
    "fig12c",
    "fig12d",
    "fig13a",
    "fig13b",
    "fig13c",
    "fig13d",
    "fig14a",
    "fig14b",
    "cache_sensitivity",
]

#: The six applications, paper order (Table III).
APPS = ("hf", "sar", "astro", "apsi", "madbench2", "wupwise")

IONODE_SWEEP = (2, 4, 8, 16, 32)
DELTA_SWEEP = (5, 10, 20, 40, 80)
THETA_SWEEP = (2, 4, 6, 8)
CACHE_SWEEP_MB = (32, 64, 256)


@dataclass
class FigureResult:
    """One regenerated table/figure: raw data + printable text."""

    figure_id: str
    data: Any
    text: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def make_runner(config: Optional[ExperimentConfig] = None) -> Runner:
    """A fresh memoizing runner over the (Table II) default config."""
    return Runner(config or default_config())


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------
def table2_rows(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Table II: the experimental configuration actually in force."""
    cfg = config or default_config()
    spec = cfg.disk_spec(multispeed=True)
    rows = [
        ("Number of Client (Compute) Nodes", cfg.n_clients),
        ("Number of I/O nodes", cfg.n_ionodes),
        ("Stripe Size", f"{cfg.stripe_size // 1024}KB"),
        ("Storage Cache Capacity",
         f"{cfg.cache_bytes // (1024 * 1024)}MB (per I/O node)"),
        ("Individual Disk Capacity", f"{spec.capacity_bytes // 2**30}GB"),
        ("Maximum Disk Rotation Speed", f"{spec.max_rpm} RPM"),
        ("Idle Power", f"{spec.idle_power}W (at {spec.max_rpm} RPM)"),
        ("Active (R/W) Power", f"{spec.active_power}W (at {spec.max_rpm} RPM)"),
        ("Seek Power", f"{spec.seek_power}W (at {spec.max_rpm} RPM)"),
        ("Standby Power", f"{spec.standby_power}W"),
        ("Spin-up Power", f"{spec.spin_up_power}W"),
        ("Spin-up Time", f"{spec.spin_up_time:.0f}secs"),
        ("Spin-down Time", f"{spec.spin_down_time:.0f}secs"),
        ("Disk-Arm Scheduling", "Elevator"),
        ("Minimum Disk Rotation Speed", f"{spec.min_rpm} RPM"),
        ("RPM Step-Size", f"{spec.rpm_step}"),
        ("delta", cfg.delta),
        ("theta", cfg.theta),
    ]
    text = format_table(("Parameter", "Value"), rows, title="Table II")
    return FigureResult("table2", rows, text)


def table3(runner: Runner) -> FigureResult:
    """Table III: per-app execution time and disk energy, Default Scheme."""
    rows = []
    data = {}
    for app in APPS:
        base = runner.baseline(app)
        minutes = base.execution_time / 60.0
        rows.append((app, f"{minutes:.1f}", f"{base.energy_joules:,.1f}"))
        data[app] = {
            "exec_minutes": minutes,
            "energy_joules": base.energy_joules,
        }
    text = format_table(
        ("Name", "Exec Time (minutes)", "Disk Energy (Joule)"),
        rows,
        title="Table III (Default Scheme)",
    )
    return FigureResult("table3", data, text)


# ----------------------------------------------------------------------
# Figure 12 — idle CDFs and normalized energy
# ----------------------------------------------------------------------
def _idle_cdf_figure(runner: Runner, scheme: bool, figure_id: str) -> FigureResult:
    data = {}
    rows = []
    for app in APPS:
        run = runner.run(app, "default", scheme)
        cdf = run.idle_cdf
        data[app] = dict(zip(cdf.buckets_ms, cdf.cumulative))
        rows.append(
            (app,)
            + tuple(format_percent(f, 0) for f in cdf.cumulative)
        )
    headers = ("app",) + tuple(f"≤{b}ms" for b in PAPER_BUCKETS_MS)
    title = f"Figure 12({'b' if scheme else 'a'}): CDF of idle periods "
    title += "with" if scheme else "without"
    title += " the scheme"
    return FigureResult(figure_id, data, format_table(headers, rows, title=title))


def fig12a(runner: Runner) -> FigureResult:
    """CDF of disk idle-period lengths, no scheme (Default)."""
    return _idle_cdf_figure(runner, scheme=False, figure_id="fig12a")


def fig12b(runner: Runner) -> FigureResult:
    """CDF of disk idle-period lengths with the compiler scheme."""
    return _idle_cdf_figure(runner, scheme=True, figure_id="fig12b")


def _normalized_energy_figure(
    runner: Runner, scheme: bool, figure_id: str
) -> FigureResult:
    data: dict[str, dict[str, float]] = {}
    rows = []
    for app in APPS:
        data[app] = {}
        row = [app]
        for policy in POLICIES:
            norm = runner.normalized_energy(app, policy, scheme)
            data[app][policy] = norm
            row.append(format_percent(norm, 1))
        rows.append(tuple(row))
    avg_row = ["average"]
    for policy in POLICIES:
        avg = sum(data[a][policy] for a in APPS) / len(APPS)
        avg_row.append(format_percent(avg, 1))
    rows.append(tuple(avg_row))
    title = (
        f"Figure 12({'d' if scheme else 'c'}): normalized energy "
        f"({'with' if scheme else 'without'} the scheme)"
    )
    return FigureResult(
        figure_id, data, format_table(("app",) + POLICIES, rows, title=title)
    )


def fig12c(runner: Runner) -> FigureResult:
    """Normalized energy of the four policies, no scheme."""
    return _normalized_energy_figure(runner, scheme=False, figure_id="fig12c")


def fig12d(runner: Runner) -> FigureResult:
    """Normalized energy of the four policies with the scheme."""
    return _normalized_energy_figure(runner, scheme=True, figure_id="fig12d")


# ----------------------------------------------------------------------
# Figure 13 — performance and first sensitivity sweeps
# ----------------------------------------------------------------------
def _degradation_figure(runner: Runner, scheme: bool, figure_id: str) -> FigureResult:
    data: dict[str, dict[str, float]] = {}
    rows = []
    for app in APPS:
        data[app] = {}
        row = [app]
        for policy in POLICIES:
            deg = runner.degradation(app, policy, scheme)
            data[app][policy] = deg
            row.append(format_percent(deg, 1))
        rows.append(tuple(row))
    avg_row = ["average"]
    for policy in POLICIES:
        avg = sum(data[a][policy] for a in APPS) / len(APPS)
        avg_row.append(format_percent(avg, 1))
    rows.append(tuple(avg_row))
    title = (
        f"Figure 13({'b' if scheme else 'a'}): performance degradation "
        f"({'with' if scheme else 'without'} the scheme)"
    )
    return FigureResult(
        figure_id, data, format_table(("app",) + POLICIES, rows, title=title)
    )


def fig13a(runner: Runner) -> FigureResult:
    """Performance degradation versus Default, no scheme."""
    return _degradation_figure(runner, scheme=False, figure_id="fig13a")


def fig13b(runner: Runner) -> FigureResult:
    """Performance degradation versus Default, with the scheme."""
    return _degradation_figure(runner, scheme=True, figure_id="fig13b")


def scheme_benefit(
    runner: Runner, app: str, config: ExperimentConfig, policy: str = "history"
) -> float:
    """The sensitivity metric of Figs 13(c)/(d) and 14(a): the *additional*
    energy reduction the scheme brings over the bare policy,
    1 − E(policy, scheme) / E(policy)."""
    without = runner.run(app, policy, False, config=config)
    with_scheme = runner.run(app, policy, True, config=config)
    if without.energy_joules == 0:
        return 0.0
    return 1.0 - with_scheme.energy_joules / without.energy_joules


def _sweep_figure(
    runner: Runner,
    figure_id: str,
    title: str,
    param_name: str,
    values: Sequence,
    config_of,
    apps: Sequence[str] = APPS,
) -> FigureResult:
    data: dict[Any, float] = {}
    rows = []
    for value in values:
        cfg = config_of(value)
        benefits = [scheme_benefit(runner, app, cfg) for app in apps]
        avg = sum(benefits) / len(benefits)
        data[value] = avg
        rows.append((value, format_percent(avg, 1)))
    text = format_table((param_name, "extra energy reduction"), rows, title=title)
    return FigureResult(figure_id, data, text)


def fig13c(
    runner: Runner,
    values: Sequence[int] = IONODE_SWEEP,
    apps: Sequence[str] = APPS,
) -> FigureResult:
    """Energy reduction of the scheme over history-based, vs #I/O nodes."""
    return _sweep_figure(
        runner,
        "fig13c",
        "Figure 13(c): scheme benefit over history-based vs #I/O nodes",
        "io_nodes",
        values,
        lambda n: runner.config.scaled(n_ionodes=n),
        apps,
    )


def fig13d(
    runner: Runner,
    values: Sequence[int] = DELTA_SWEEP,
    apps: Sequence[str] = APPS,
) -> FigureResult:
    """Energy reduction of the scheme over history-based, vs δ."""
    return _sweep_figure(
        runner,
        "fig13d",
        "Figure 13(d): scheme benefit over history-based vs delta",
        "delta",
        values,
        lambda d: runner.config.scaled(delta=d),
        apps,
    )


# ----------------------------------------------------------------------
# Figure 14 — θ sweeps
# ----------------------------------------------------------------------
def fig14a(
    runner: Runner,
    values: Sequence[int] = THETA_SWEEP,
    apps: Sequence[str] = APPS,
) -> FigureResult:
    """Energy reduction of the scheme over history-based, vs θ."""
    return _sweep_figure(
        runner,
        "fig14a",
        "Figure 14(a): scheme benefit over history-based vs theta",
        "theta",
        values,
        lambda t: runner.config.scaled(theta=t),
        apps,
    )


def fig14b(
    runner: Runner,
    values: Sequence[int] = THETA_SWEEP,
    apps: Sequence[str] = APPS,
) -> FigureResult:
    """Performance improvement the scheme brings (vs the bare history
    policy) at each θ — the θ constraint trades energy for exactly this."""
    data: dict[int, float] = {}
    rows = []
    for theta in values:
        cfg = runner.config.scaled(theta=theta)
        improvements = []
        for app in apps:
            without = runner.run(app, "history", False, config=cfg)
            with_scheme = runner.run(app, "history", True, config=cfg)
            improvements.append(
                without.execution_time / with_scheme.execution_time - 1.0
            )
        avg = sum(improvements) / len(improvements)
        data[theta] = avg
        rows.append((theta, format_percent(avg, 1)))
    text = format_table(
        ("theta", "performance improvement"),
        rows,
        title="Figure 14(b): performance improvement of the scheme vs theta",
    )
    return FigureResult("fig14b", data, text)


# ----------------------------------------------------------------------
# §V-D cache-capacity sensitivity (reported in text)
# ----------------------------------------------------------------------
def cache_sensitivity(
    runner: Runner,
    sizes_mb: Sequence[int] = CACHE_SWEEP_MB,
    apps: Sequence[str] = APPS,
) -> FigureResult:
    """Scheme benefit over history-based at different storage-cache sizes.

    The paper reports the benefit growing when the cache shrinks (32 MB)
    and shrinking when it grows (256 MB) — a bigger cache absorbs disk
    activity by itself, leaving less for scheduling to win.
    """
    data: dict[int, float] = {}
    rows = []
    for mb in sizes_mb:
        cfg = runner.config.scaled(cache_bytes=mb * 1024 * 1024)
        benefits = [scheme_benefit(runner, app, cfg) for app in apps]
        avg = sum(benefits) / len(benefits)
        data[mb] = avg
        rows.append((f"{mb}MB", format_percent(avg, 1)))
    text = format_table(
        ("cache", "extra energy reduction"),
        rows,
        title="§V-D: scheme benefit vs storage-cache capacity",
    )
    return FigureResult("cache_sensitivity", data, text)
