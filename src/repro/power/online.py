"""Online / adaptive power-management policies (beyond the paper).

The paper's framework is *static*: the compiler emits a scheduling table
and the four §II policies react to idleness with fixed rules.  This
module adds the online family the roadmap's scenario-diversity item asks
for, grounded in the online-approach literature (workload-forecasting
spin-down and credit-based DRPM speed selection) and in the repo's own
compiled schedules:

* :class:`ForecastSpindown` — extends the idle-length EWMA of
  :class:`~repro.power.predictor.IdlePredictor` with a *per-epoch demand
  forecast*: arrivals are folded into an epoch-rate EWMA, the implied
  mean inter-arrival gap is blended with the idle-length prediction, and
  the blend is compared against the spin-down break-even point;
* :class:`CreditMultiSpeed` — a credit-based DRPM speed selector: the
  policy accrues *performance credits* (seconds of allowed exposure) at
  a bounded fraction of elapsed time and spends them on RPM drops, where
  a drop's price is its worst-case ramp-back exposure.  Total
  performance impact is budgeted by construction instead of per-gap;
* :class:`HybridCompilerAssist` — consumes the compiler's scheduling
  table as *hints* (nominal per-node touch times from
  :mod:`repro.power.hints`), aligns them against observed arrivals with
  an offset/spread EWMA, and falls back to pure online prediction
  whenever observation diverges from the table — or when no table was
  compiled at all.

All three are ordinary :class:`~repro.power.policy.PowerPolicy`
implementations: they see only their drive's notifications and timers,
so runs replay bit-identically at any ``--jobs`` and the static analyzer
bounds them soundly through the same ``can_spin_down`` / ``can_ramp``
capability declarations as the paper policies.
"""

from __future__ import annotations

from .multispeed import speed_for_idle
from .policy import PowerPolicy
from .predictor import IdlePredictor

__all__ = ["ForecastSpindown", "CreditMultiSpeed", "HybridCompilerAssist"]


class ForecastSpindown(PowerPolicy):
    """Workload-forecasting spin-down (epoch demand × idle history)."""

    name = "forecast"
    can_spin_down = True

    def __init__(
        self,
        predictor: IdlePredictor | None = None,
        epoch: float = 30.0,
        demand_alpha: float = 0.5,
        demand_weight: float = 0.5,
        breakeven_margin: float = 1.0,
        min_observe: float = 0.2,
        decision_delay: float = 0.3,
    ):
        """``epoch`` is the demand-forecast bucket width (seconds):
        arrivals are counted per epoch and folded into an EWMA with
        weight ``demand_alpha``.  The forecast gap is the blend
        ``(1 − w)·idle_prediction + w·epoch/demand`` with
        ``w = demand_weight`` — a low forecast demand argues *for*
        spinning down even when the recent idle history alone is
        inconclusive, and a hot epoch vetoes a marginal spin-down.
        The remaining knobs match :class:`PredictionSpinDown`."""
        super().__init__()
        self.predictor = predictor or IdlePredictor()
        if epoch <= 0:
            raise ValueError(f"epoch must be positive: {epoch}")
        if not 0.0 < demand_alpha <= 1.0:
            raise ValueError(f"demand_alpha must be in (0, 1]: {demand_alpha}")
        if not 0.0 <= demand_weight <= 1.0:
            raise ValueError(
                f"demand_weight must be in [0, 1]: {demand_weight}"
            )
        if breakeven_margin <= 0:
            raise ValueError(f"breakeven_margin must be positive: {breakeven_margin}")
        if min_observe < 0:
            raise ValueError(f"min_observe must be non-negative: {min_observe}")
        if decision_delay < 0:
            raise ValueError(f"decision_delay must be non-negative: {decision_delay}")
        self.epoch = epoch
        self.demand_alpha = demand_alpha
        self.demand_weight = demand_weight
        self.breakeven_margin = breakeven_margin
        self.min_observe = min_observe
        self.decision_delay = decision_delay
        self._idle_since: float | None = None
        self._epoch_end = epoch
        self._epoch_arrivals = 0
        self._demand = 0.0          # EWMA arrivals per epoch
        self._epochs_folded = 0
        self.forecasts = 0
        self.spin_down_decisions = 0

    # -- demand bookkeeping ------------------------------------------------
    def _roll_epochs(self, now: float) -> None:
        """Fold every finished epoch into the demand EWMA.

        Driven from notifications only (no self-scheduled epoch timer),
        so a policy that never sees traffic costs the simulator nothing.
        """
        while now >= self._epoch_end:
            if self._epochs_folded == 0:
                self._demand = float(self._epoch_arrivals)
            else:
                self._demand = (
                    self.demand_alpha * self._epoch_arrivals
                    + (1 - self.demand_alpha) * self._demand
                )
            self._epochs_folded += 1
            self._epoch_arrivals = 0
            self._epoch_end += self.epoch

    def demand_gap(self) -> float | None:
        """Forecast mean inter-arrival gap, or None before any evidence."""
        if self._epochs_folded == 0:
            return None
        if self._demand <= 1e-12:
            # A forecast of zero demand supports an arbitrarily long gap;
            # report one epoch *beyond* the horizon rather than infinity
            # so the blend stays finite.
            return 2.0 * self.epoch
        return self.epoch / self._demand

    def forecast_gap(self) -> float:
        """The blended idle-gap forecast the spin-down decision uses."""
        predicted = self.predictor.predict()
        gap = self.demand_gap()
        if gap is None:
            return predicted
        w = self.demand_weight
        return (1 - w) * predicted + w * gap

    # -- notifications -----------------------------------------------------
    def on_idle_start(self, now: float) -> None:
        self._roll_epochs(now)
        self._idle_since = now
        self._arm_timer(self.decision_delay, self._decide)

    def _decide(self) -> None:
        self._timer = None
        if not self.drive.is_idle or self.drive.is_standby:
            return
        now = self.sim.now
        self._roll_epochs(now)
        elapsed = now - (self._idle_since or now)
        forecast = self.forecast_gap()
        self.forecasts += 1
        threshold = (
            self.drive.spec.breakeven_idle_seconds() * self.breakeven_margin
        )
        if forecast >= threshold and self.drive.spin_down():
            self.spin_down_decisions += 1
            # Wake on the more conservative of the window upper estimate
            # and the blended forecast (see PredictionSpinDown for why
            # waking early is the costlier failure mode).
            upper = max(self.predictor.predict_upper(), forecast)
            wake_delay = upper - self.drive.spec.spin_up_time - elapsed
            wake_delay = max(wake_delay, self.drive.spec.spin_down_time)
            self._arm_timer(wake_delay, self._proactive_wake)

    def _proactive_wake(self) -> None:
        self._timer = None
        if self.drive.is_standby and self.drive.is_idle:
            self.drive.spin_up()

    def on_request_arrival(self, now: float) -> None:
        self._cancel_timer()
        self._roll_epochs(now)
        self._epoch_arrivals += 1
        if self._idle_since is not None:
            length = now - self._idle_since
            if length >= self.min_observe:
                self.predictor.observe(length)
            self._idle_since = None

    def on_simulation_end(self, now: float) -> None:
        if self._idle_since is not None and now > self._idle_since:
            length = now - self._idle_since
            if length >= self.min_observe:
                self.predictor.observe(length)
            self._idle_since = None
        super().on_simulation_end(now)


class CreditMultiSpeed(PowerPolicy):
    """Credit-based DRPM speed selector with a performance-slack budget."""

    name = "credit"
    can_ramp = True

    def __init__(
        self,
        predictor: IdlePredictor | None = None,
        slack_budget: float = 0.05,
        credit_cap: float = 60.0,
        utilization_bound: float = 1.0,
        min_observe: float = 0.2,
        decision_delay: float = 0.3,
    ):
        """``slack_budget`` is the fraction of elapsed time the policy may
        spend as worst-case performance exposure: credits (seconds) accrue
        at that rate, capped at ``credit_cap`` so a long-quiet drive
        cannot bank an unbounded license to stall.  A drop to RPM level
        *r* costs its ramp-back time (the exposure a surprise arrival
        would suffer) and is taken only when affordable.
        ``utilization_bound`` is forwarded to
        :func:`~repro.power.multispeed.speed_for_idle` — the default 1.0
        leaves pacing entirely to the credit budget."""
        super().__init__()
        self.predictor = predictor or IdlePredictor()
        if not 0.0 < slack_budget <= 1.0:
            raise ValueError(f"slack_budget must be in (0, 1]: {slack_budget}")
        if credit_cap <= 0:
            raise ValueError(f"credit_cap must be positive: {credit_cap}")
        if not 0 < utilization_bound <= 1:
            raise ValueError(
                f"utilization_bound must be in (0, 1]: {utilization_bound}"
            )
        if min_observe < 0:
            raise ValueError(f"min_observe must be non-negative: {min_observe}")
        if decision_delay < 0:
            raise ValueError(f"decision_delay must be non-negative: {decision_delay}")
        self.slack_budget = slack_budget
        self.credit_cap = credit_cap
        self.utilization_bound = utilization_bound
        self.min_observe = min_observe
        self.decision_delay = decision_delay
        self._credit = 0.0
        self._last_accrual = 0.0
        self._idle_since: float | None = None
        self.ramps_taken = 0
        self.ramps_deferred = 0
        self.credit_spent = 0.0

    @property
    def credit(self) -> float:
        return self._credit

    def _accrue(self, now: float) -> None:
        self._credit = min(
            self.credit_cap,
            self._credit + self.slack_budget * (now - self._last_accrual),
        )
        self._last_accrual = now

    def on_idle_start(self, now: float) -> None:
        self._accrue(now)
        self._idle_since = now
        self._arm_timer(self.decision_delay, self._decide)

    def _decide(self) -> None:
        self._timer = None
        drive = self.drive
        if not drive.is_idle or drive.is_standby:
            return
        now = self.sim.now
        self._accrue(now)
        spec = drive.spec
        predicted = self.predictor.predict()
        rpm = speed_for_idle(spec, predicted, self.utilization_bound)
        if rpm == spec.max_rpm:
            return
        cost = spec.rpm_change_time(rpm, spec.max_rpm)
        if cost > self._credit:
            self.ramps_deferred += 1
            return
        self._credit -= cost
        self.credit_spent += cost
        self.ramps_taken += 1
        drive.request_rpm(rpm)
        # Proactive ramp-back, paid for up front by the spent credit: the
        # timer targets the window's upper estimate minus the ramp time.
        upper = self.predictor.predict_upper()
        if upper > 0:
            elapsed = now - (self._idle_since or now)
            wake_delay = max(upper - cost - elapsed, 0.0)
            self._arm_timer(wake_delay, self._proactive_speed_up)

    def _proactive_speed_up(self) -> None:
        self._timer = None
        if self.drive.is_idle and not self.drive.is_standby:
            self.drive.request_rpm(self.drive.spec.max_rpm)

    def on_request_arrival(self, now: float) -> None:
        self._cancel_timer()
        self._accrue(now)
        if self._idle_since is not None:
            length = now - self._idle_since
            if length >= self.min_observe:
                self.predictor.observe(length)
            self._idle_since = None
        self.drive.request_rpm(self.drive.spec.max_rpm)

    def on_simulation_end(self, now: float) -> None:
        if self._idle_since is not None and now > self._idle_since:
            length = now - self._idle_since
            if length >= self.min_observe:
                self.predictor.observe(length)
            self._idle_since = None
        super().on_simulation_end(now)


class HybridCompilerAssist(PowerPolicy):
    """Compiler-hinted spin-down with online divergence override.

    Constructed with the nominal per-node touch times of
    :func:`~repro.power.hints.nominal_node_touch_times`; at
    :meth:`bind` the policy resolves its drive's I/O node from the drive
    name (``node3.disk0`` → node 3) and keeps only that node's hints.
    Each observed arrival consumes the next hint and updates an
    offset/spread EWMA between observed and hinted times; decisions use
    the hinted *next-touch gap* (offset-corrected) while the spread stays
    inside ``divergence_tolerance``, and the plain idle-history
    prediction once it does not — or once the hints run out.  With no
    hints at all (scheme off) the policy degrades to pure online
    prediction.
    """

    name = "hybrid"
    can_spin_down = True

    #: EWMA weight of the newest (observed − hinted) sample.
    OFFSET_ALPHA = 0.5

    def __init__(
        self,
        hints: dict[int, tuple[float, ...]] | None = None,
        predictor: IdlePredictor | None = None,
        breakeven_margin: float = 1.0,
        divergence_tolerance: float = 5.0,
        min_observe: float = 0.2,
        decision_delay: float = 0.3,
    ):
        """``divergence_tolerance`` (seconds) bounds the mean absolute
        offset residual: above it, the table's timing evidently no longer
        describes the run (stragglers, degraded RAID, load imbalance) and
        the policy overrides the compiler."""
        super().__init__()
        self.predictor = predictor or IdlePredictor()
        if breakeven_margin <= 0:
            raise ValueError(f"breakeven_margin must be positive: {breakeven_margin}")
        if divergence_tolerance <= 0:
            raise ValueError(
                f"divergence_tolerance must be positive: {divergence_tolerance}"
            )
        if min_observe < 0:
            raise ValueError(f"min_observe must be non-negative: {min_observe}")
        if decision_delay < 0:
            raise ValueError(f"decision_delay must be non-negative: {decision_delay}")
        self.hints = hints or {}
        self.breakeven_margin = breakeven_margin
        self.divergence_tolerance = divergence_tolerance
        self.min_observe = min_observe
        self.decision_delay = decision_delay
        self._times: tuple[float, ...] = ()
        self._cursor = 0
        self._offset = 0.0
        self._spread = 0.0
        self._aligned = 0
        self._idle_since: float | None = None
        self.hint_decisions = 0
        self.fallback_decisions = 0
        self.overrides = 0
        self.spin_down_decisions = 0

    def bind(self, drive) -> None:
        super().bind(drive)
        name = drive.name
        if name.startswith("node") and "." in name:
            try:
                node = int(name[len("node"):name.index(".")])
            except ValueError:
                node = -1
            self._times = tuple(self.hints.get(node, ()))

    # -- hint alignment ----------------------------------------------------
    def _align(self, now: float) -> None:
        """Consume the next hint for an observed arrival and update the
        offset/spread estimates."""
        if self._cursor >= len(self._times):
            return
        divergence = now - self._times[self._cursor]
        self._cursor += 1
        if self._aligned == 0:
            self._offset = divergence
        else:
            residual = divergence - self._offset
            self._spread = (
                self.OFFSET_ALPHA * abs(residual)
                + (1 - self.OFFSET_ALPHA) * self._spread
            )
            self._offset = (
                self.OFFSET_ALPHA * divergence
                + (1 - self.OFFSET_ALPHA) * self._offset
            )
        self._aligned += 1

    def hints_trusted(self) -> bool:
        """Whether the table's timing still describes the observed run."""
        return (
            self._cursor < len(self._times)
            and self._aligned >= 2
            and self._spread <= self.divergence_tolerance
        )

    def _hinted_gap(self, now: float) -> float | None:
        """Offset-corrected time until the next hinted touch, if any."""
        for t in self._times[self._cursor:]:
            gap = t + self._offset - now
            if gap > 0:
                return gap
        return None

    # -- notifications -----------------------------------------------------
    def on_idle_start(self, now: float) -> None:
        self._idle_since = now
        self._arm_timer(self.decision_delay, self._decide)

    def _decide(self) -> None:
        self._timer = None
        if not self.drive.is_idle or self.drive.is_standby:
            return
        now = self.sim.now
        elapsed = now - (self._idle_since or now)
        trusted = self.hints_trusted()
        gap = self._hinted_gap(now) if trusted else None
        if gap is not None:
            self.hint_decisions += 1
            predicted = gap
            # A hinted gap is a concrete appointment: wake for it, not
            # for the history's upper estimate.
            upper = gap
        else:
            if self._times and not trusted and self._aligned >= 2:
                self.overrides += 1
            self.fallback_decisions += 1
            predicted = self.predictor.predict()
            upper = self.predictor.predict_upper()
        threshold = (
            self.drive.spec.breakeven_idle_seconds() * self.breakeven_margin
        )
        if predicted >= threshold and self.drive.spin_down():
            self.spin_down_decisions += 1
            wake_delay = upper - self.drive.spec.spin_up_time - elapsed
            wake_delay = max(wake_delay, self.drive.spec.spin_down_time)
            self._arm_timer(wake_delay, self._proactive_wake)

    def _proactive_wake(self) -> None:
        self._timer = None
        if self.drive.is_standby and self.drive.is_idle:
            self.drive.spin_up()

    def on_request_arrival(self, now: float) -> None:
        self._cancel_timer()
        self._align(now)
        if self._idle_since is not None:
            length = now - self._idle_since
            if length >= self.min_observe:
                self.predictor.observe(length)
            self._idle_since = None

    def on_simulation_end(self, now: float) -> None:
        if self._idle_since is not None and now > self._idle_since:
            length = now - self._idle_since
            if length >= self.min_observe:
                self.predictor.observe(length)
            self._idle_since = None
        super().on_simulation_end(now)
