"""Shared infrastructure for the figure-regeneration benchmarks.

One memoizing :class:`Runner` is shared across every benchmark in the
session, so the ~dozen figures reuse each other's simulation runs.  The
workload scale comes from ``REPRO_SCALE`` (default 0.25 — minutes for the
full set; use 1.0 to approximate the paper's full run sizes).

Sensitivity sweeps (Figs 13(c)/(d), 14(a)/(b), cache) run over a reduced
three-app subset by default to bound wall-clock time; set
``REPRO_FULL_SWEEPS=1`` to sweep all six applications as the paper did.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import APPS, Runner, default_config

#: Apps used by the sensitivity sweeps (one short-idle, one streaming,
#: one long-idle) unless REPRO_FULL_SWEEPS is set.
SWEEP_APPS = ("hf", "sar", "wupwise")


def sweep_apps() -> tuple[str, ...]:
    if os.environ.get("REPRO_FULL_SWEEPS"):
        return APPS
    return SWEEP_APPS


@pytest.fixture(scope="session")
def runner() -> Runner:
    return Runner(default_config())


def run_once(benchmark, fn):
    """Execute a figure driver exactly once under pytest-benchmark.

    Figure regeneration is a deterministic simulation, not a microkernel:
    one round measures it; more rounds would only re-read the runner's
    memo cache.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
