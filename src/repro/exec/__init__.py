"""Parallel experiment execution: process-pool fan-out, content-addressed
result caching, grid enumeration and the ``repro bench`` perf harness.

Layout:

* :mod:`~repro.exec.serialize` — exact JSON round-tripping of
  :class:`~repro.experiments.runner.RunResult` and the cache/output
  :data:`~repro.exec.serialize.SCHEMA_VERSION`;
* :mod:`~repro.exec.cache` — :class:`ResultCache`, a content-addressed
  on-disk store keyed by the canonical config digest;
* :mod:`~repro.exec.executor` — :class:`ExperimentExecutor` and the
  worker entry points (one shared Runner per worker, verify gating);
* :mod:`~repro.exec.grid` — which run points each paper figure consumes;
* :mod:`~repro.exec.journal` — :class:`DurableJournal`, the fsync'd
  truncated-tail-tolerant JSONL substrate shared by the campaign journal
  and the scheduling server's admission WAL (``repro serve --recover``);
* :mod:`~repro.exec.supervise` — :class:`CampaignSupervisor`: watchdog
  timeouts, seeded-backoff retries, worker-crash recovery/quarantine,
  the resumable JSONL campaign journal and partial-failure reports;
* :mod:`~repro.exec.bench` — timed grid execution and ``BENCH_*.json``
  perf records.
"""

from .bench import (
    QUICK_FIGURES,
    compare_with_previous,
    kernel_shootout,
    profile_grid,
    run_bench,
    write_bench_record,
)
from .cache import CacheStats, ResultCache, point_digest
from .executor import (
    ExecStats,
    ExperimentExecutor,
    RunPoint,
    VerifyFailure,
    execute_point,
    merge_metrics_dir,
)
from .grid import (
    GRID_FIGURES,
    all_figure_points,
    figure_points,
    with_fault_plan,
    with_kernel,
)
from .journal import (
    WAL_SCHEMA_VERSION,
    DurableJournal,
    load_wal,
    point_from_doc,
    point_to_doc,
    wal_admit,
    wal_header,
    wal_outcome,
)
from .serialize import (
    JOURNAL_SCHEMA_VERSION,
    SCHEMA_VERSION,
    run_result_from_dict,
    run_result_to_dict,
)
from .supervise import (
    BOUNDARY_ERRORS,
    CampaignFailed,
    CampaignJournal,
    CampaignReport,
    CampaignSupervisor,
    PointFailure,
    PointTimeout,
    SupervisorPolicy,
    WorkerFailure,
    backoff_delay,
    load_journal,
)

__all__ = [
    "SCHEMA_VERSION",
    "JOURNAL_SCHEMA_VERSION",
    "WAL_SCHEMA_VERSION",
    "DurableJournal",
    "point_to_doc",
    "point_from_doc",
    "wal_header",
    "wal_admit",
    "wal_outcome",
    "load_wal",
    "run_result_to_dict",
    "run_result_from_dict",
    "point_digest",
    "CacheStats",
    "ResultCache",
    "RunPoint",
    "VerifyFailure",
    "ExecStats",
    "ExperimentExecutor",
    "execute_point",
    "merge_metrics_dir",
    "figure_points",
    "all_figure_points",
    "with_fault_plan",
    "with_kernel",
    "GRID_FIGURES",
    "QUICK_FIGURES",
    "run_bench",
    "kernel_shootout",
    "profile_grid",
    "compare_with_previous",
    "write_bench_record",
    "BOUNDARY_ERRORS",
    "CampaignFailed",
    "CampaignJournal",
    "CampaignReport",
    "CampaignSupervisor",
    "PointFailure",
    "PointTimeout",
    "SupervisorPolicy",
    "WorkerFailure",
    "backoff_delay",
    "load_journal",
]
