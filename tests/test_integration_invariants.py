"""Cross-cutting integration invariants on full simulated runs."""

import pytest

from repro.disk import states as st
from repro.experiments import ExperimentConfig, Runner
from repro.ir import trace_program
from repro.power import make_policy
from repro.runtime import Session, SessionConfig
from repro.workloads import get_workload

from conftest import fast_spec

TINY = ExperimentConfig(workload_scale=0.05)


@pytest.fixture(scope="module")
def runner():
    return Runner(TINY)


class TestTimelineSanity:
    @pytest.mark.parametrize("policy", ["simple", "prediction", "history",
                                        "staggered"])
    def test_drive_timelines_well_formed(self, runner, policy):
        run = runner.run("sar", policy, False)
        # Reconstruct via a fresh session to inspect the drives directly.
        cfg = TINY
        trace = runner.trace("sar")
        session = Session(
            trace,
            cfg.disk_spec(policy in ("history", "staggered")),
            lambda: make_policy(policy) if policy != "simple"
            else make_policy("simple", timeout=cfg.simple_timeout),
            cfg.session_config(),
        )
        outcome = session.run()
        for drive in outcome.drives:
            intervals = list(drive.timeline.intervals())
            for prev, cur in zip(intervals, intervals[1:]):
                # Contiguous, non-overlapping, monotone.
                assert cur.start == pytest.approx(prev.end)
                assert cur.duration >= 0
            for iv in intervals:
                # Service states never appear while in standby-family RPM 0.
                if st.base_state(iv.state) in (st.ACTIVE_READ,
                                               st.ACTIVE_WRITE, st.SEEK):
                    assert st.parse_rpm(iv.state, 12000) > 0

    def test_energy_never_negative(self, runner):
        for policy in ("default", "simple", "history"):
            run = runner.run("hf", policy, False)
            assert run.energy_joules > 0
            assert all(v >= -1e-9 for v in run.energy_breakdown.values())


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        a = Runner(TINY).run("apsi", "history", True)
        b = Runner(TINY).run("apsi", "history", True)
        assert a.energy_joules == pytest.approx(b.energy_joules)
        assert a.execution_time == pytest.approx(b.execution_time)
        assert a.idle_cdf.count == b.idle_cdf.count

    def test_seed_changes_random_tiebreak_schedule_only(self):
        from repro.core import CompilerOptions, SlackOptions, compile_schedule
        from repro.storage import StripedFile, StripeMap

        program = get_workload("madbench2").build(4, 0.05)
        trace = trace_program(program)
        smap = StripeMap(64 * 1024, 8)
        files = {
            n: StripedFile(n, d.size_bytes)
            for n, d in trace.program.files.items()
        }

        def slots(seed):
            result = compile_schedule(
                program, smap, files,
                CompilerOptions(tie_break="random", seed=seed,
                                slack=SlackOptions(max_slack=50)),
                trace=trace,
            )
            return [a.scheduled_slot for a in result.accesses]

        assert slots(1) == slots(1)
        assert slots(2) == slots(2)
        # (Different seeds may or may not shuffle ties — equality across
        # seeds is legitimate when no scored tie reaches the RNG.)


class TestGranularityEndToEnd:
    def test_coarse_granularity_session_completes(self):
        cfg = ExperimentConfig(workload_scale=0.05, granularity=4,
                               delta=5, max_slack=50)
        runner = Runner(cfg)
        base = runner.baseline("hf")
        run = runner.run("hf", "default", True)
        assert run.prefetches > 0
        # Coarse slots change scheduling resolution, not correctness:
        # every prefetch is still consumed.
        assert run.buffer_hits == run.prefetches
        assert run.execution_time == pytest.approx(
            base.execution_time, rel=0.1
        )


class TestConservation:
    def test_bytes_read_conserved_through_stack(self):
        """Client-level read bytes equal MPI-IO read bytes (no request is
        lost or duplicated on the way to the storage stack)."""
        cfg = SessionConfig(n_ionodes=4, stripe_size=64 * 1024)
        trace = trace_program(get_workload("sar").build(4, 0.05))
        session = Session(trace, fast_spec(), None, cfg)
        outcome = session.run()
        expected = sum(
            io.blocks * trace.program.files[io.file].block_bytes
            for p in trace.processes
            for io in p.ios
            if not io.is_write
        )
        assert outcome.mpi_io.stats.bytes_read == expected

    def test_all_written_bytes_destaged(self):
        cfg = SessionConfig(n_ionodes=4, stripe_size=64 * 1024)
        trace = trace_program(get_workload("sar").build(4, 0.05))
        session = Session(trace, fast_spec(), None, cfg)
        outcome = session.run()
        session.pfs.finalize(session.sim.now)
        session.sim.run()
        for node in session.pfs.nodes:
            assert node.cache.dirty_blocks() == []
