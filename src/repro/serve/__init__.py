"""Scheduling-as-a-service: serve experiment points over JSON/HTTP.

``repro.serve`` turns the one-shot executor/supervisor stack into a
long-lived service (:mod:`repro.serve.server`) plus the synthetic load
harness that benchmarks it (:mod:`repro.serve.loadgen`), both speaking
the hand-rolled zero-dependency HTTP/1.1 framing in
:mod:`repro.serve.http`.  CLI entry points: ``repro serve`` and
``repro loadtest``.
"""

from .chaos import ChaosEngine, chaos_engine
from .http import (
    CircuitBreaker,
    CircuitOpen,
    HttpClient,
    TruncatedResponse,
)
from .loadgen import LoadgenConfig, default_mix, run_inprocess_loadtest, run_loadgen
from .server import (
    DEFAULT_TENANT,
    Draining,
    Job,
    QueueFull,
    SchedulingServer,
    ServerConfig,
    parse_point,
    parse_tenant,
)

__all__ = [
    "DEFAULT_TENANT",
    "ChaosEngine",
    "CircuitBreaker",
    "CircuitOpen",
    "Draining",
    "HttpClient",
    "Job",
    "LoadgenConfig",
    "QueueFull",
    "SchedulingServer",
    "ServerConfig",
    "TruncatedResponse",
    "chaos_engine",
    "default_mix",
    "parse_point",
    "parse_tenant",
    "run_inprocess_loadtest",
    "run_loadgen",
]
