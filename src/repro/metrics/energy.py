"""Energy metrics over finalized drive timelines.

The paper reports *normalized energy consumption* (policy ÷ default
scheme) and *reduction in energy consumption* (1 − normalized).  Metrics
here integrate over a clipped horizon — the application's execution window
— so trailing drain activity doesn't skew policy comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..disk.drive import Drive
from ..disk.power import EnergyBreakdown
from ..disk import states as st
from ..sim.trace import Interval

__all__ = [
    "energy_until",
    "breakdown_until",
    "fleet_energy",
    "idle_periods_until",
    "residency_until",
    "transition_counts_until",
    "EnergyComparison",
]


def _clipped_intervals(drive: Drive, horizon: float):
    for iv in drive.timeline.intervals():
        if iv.start >= horizon:
            break
        end = min(iv.end, horizon)
        if end > iv.start:
            yield Interval(iv.start, end, iv.state)


def energy_until(drive: Drive, horizon: float) -> float:
    """Joules consumed by one drive in ``[0, horizon]``.

    Defined as the total of :func:`breakdown_until` so the two can never
    disagree — summing the per-family buckets (rather than re-integrating
    interval by interval) makes ``sum(breakdown) == energy_until`` exact,
    not approximate.
    """
    return breakdown_until(drive, horizon).total


def breakdown_until(drive: Drive, horizon: float) -> EnergyBreakdown:
    """Per-state-family joules in ``[0, horizon]``.

    Uses the drive's *attached* power model — a drive carrying a
    customized model must break down under the same wattages it
    integrates under, or per-state numbers silently disagree with
    :func:`energy_until`.
    """
    model = drive.power_model
    result = EnergyBreakdown()
    for iv in _clipped_intervals(drive, horizon):
        joules = model.power_of(iv.state) * iv.duration
        base = st.base_state(iv.state)
        if base in (st.ACTIVE_READ, st.ACTIVE_WRITE):
            result.active += joules
        elif base == st.SEEK:
            result.seek += joules
        elif base == st.IDLE:
            result.idle += joules
        elif base == st.STANDBY:
            result.standby += joules
        elif base == st.SPIN_UP:
            result.spin_up += joules
        elif base == st.SPIN_DOWN:
            result.spin_down += joules
        else:
            result.rpm_change += joules
    return result


def _family(state: str) -> str:
    """Base state family, with both ramp directions folded into
    ``rpm_change`` so residency keys match the energy-breakdown keys."""
    base = st.base_state(state)
    if base in ("rpm_up", "rpm_down"):
        return st.RPM_CHANGE
    return base


def residency_until(drive: Drive, horizon: float) -> dict[str, float]:
    """Seconds spent per base state family in ``[0, horizon]``.

    The continuous-observation quantity the observability layer reports:
    how long the drive sat in each of idle/standby/seek/… regardless of
    the RPM level encoded in the state label.
    """
    out: dict[str, float] = {}
    for iv in _clipped_intervals(drive, horizon):
        family = _family(iv.state)
        out[family] = out.get(family, 0.0) + iv.duration
    return out


def transition_counts_until(drive: Drive, horizon: float) -> dict[str, int]:
    """How many times the drive *entered* each base state family in
    ``[0, horizon]`` (consecutive same-family intervals count once)."""
    out: dict[str, int] = {}
    prev: str | None = None
    for iv in _clipped_intervals(drive, horizon):
        family = _family(iv.state)
        if family != prev:
            out[family] = out.get(family, 0) + 1
            prev = family
    return out


def fleet_energy(drives: list[Drive], horizon: float) -> float:
    """Total joules over a set of drives in ``[0, horizon]``."""
    return sum(energy_until(d, horizon) for d in drives)


def idle_periods_until(drive: Drive, horizon: float) -> list[float]:
    """Idle-period lengths clipped to the execution window."""
    out = []
    for iv in drive.timeline.merged_periods(st.is_idle_family):
        if iv.start >= horizon:
            break
        end = min(iv.end, horizon)
        if end > iv.start:
            out.append(end - iv.start)
    return out


@dataclass(frozen=True)
class EnergyComparison:
    """One policy's energy versus the default scheme."""

    policy: str
    energy_joules: float
    baseline_joules: float

    @property
    def normalized(self) -> float:
        """Figure 12(c)/(d): policy energy ÷ default energy."""
        if self.baseline_joules == 0:
            return 1.0
        return self.energy_joules / self.baseline_joules

    @property
    def reduction(self) -> float:
        """Figures 13(c)/(d), 14(a): 1 − normalized."""
        return 1.0 - self.normalized
