"""repro — Software-Directed Data Access Scheduling for Reducing Disk
Energy Consumption (ICDCS 2012), reproduced as a Python library.

The package provides:

* :mod:`repro.core` — the paper's contribution: access-signature-driven
  I/O scheduling (slack determination, basic/extended/θ-constrained
  algorithms, scheduling tables, compiler driver);
* :mod:`repro.ir` — the loop-nest program IR and both slack-extraction
  paths (polyhedral-style and profiling);
* :mod:`repro.sim`, :mod:`repro.disk`, :mod:`repro.storage`,
  :mod:`repro.net`, :mod:`repro.runtime` — the simulation substrate
  (event engine, DiskSim-like drives with power states, PVFS-like striped
  storage with per-node caches, interconnect, MPI-IO-like runtime with
  prefetching scheduler threads);
* :mod:`repro.power` — the four disk power-management policies evaluated
  in the paper plus the no-op baseline and an oracle;
* :mod:`repro.workloads` — the six application models of Table III;
* :mod:`repro.experiments` — one driver per table/figure of §V;
* :mod:`repro.faults` — deterministic fault injection (fault plans,
  seeded streams, degraded-mode recovery counters).

Quick start::

    from repro.experiments import make_runner, fig12c
    runner = make_runner()
    print(fig12c(runner).text)
"""

from .core import (
    BasicScheduler,
    CompileResult,
    CompilerOptions,
    DataAccess,
    ExtendedScheduler,
    ScheduleBook,
    ThetaConstrainedScheduler,
    compile_schedule,
)
from .disk import TABLE2_DISK, DiskRequest, DiskSpec, Drive, table2_multispeed_spec
from .experiments import ExperimentConfig, Runner, default_config, make_runner
from .faults import FaultEvent, FaultPlan, load_plan, save_plan
from .ir import Compute, FileDecl, Loop, Program, Read, Write, trace_program
from .power import (
    HistoryBasedMultiSpeed,
    NoPowerManagement,
    PredictionSpinDown,
    SimpleSpinDown,
    StaggeredMultiSpeed,
    make_policy,
)
from .runtime import Session, SessionConfig
from .sim import Simulator
from .storage import ParallelFileSystem, StripedFile, StripeMap
from .workloads import all_workloads, get_workload

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "compile_schedule",
    "CompilerOptions",
    "CompileResult",
    "DataAccess",
    "BasicScheduler",
    "ExtendedScheduler",
    "ThetaConstrainedScheduler",
    "ScheduleBook",
    # ir
    "Program",
    "FileDecl",
    "Loop",
    "Read",
    "Write",
    "Compute",
    "trace_program",
    # substrate
    "Simulator",
    "DiskSpec",
    "TABLE2_DISK",
    "table2_multispeed_spec",
    "Drive",
    "DiskRequest",
    "ParallelFileSystem",
    "StripeMap",
    "StripedFile",
    "Session",
    "SessionConfig",
    # power
    "make_policy",
    "NoPowerManagement",
    "SimpleSpinDown",
    "PredictionSpinDown",
    "HistoryBasedMultiSpeed",
    "StaggeredMultiSpeed",
    # faults
    "FaultPlan",
    "FaultEvent",
    "load_plan",
    "save_plan",
    # workloads & experiments
    "get_workload",
    "all_workloads",
    "Runner",
    "ExperimentConfig",
    "default_config",
    "make_runner",
]
