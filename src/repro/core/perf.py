"""Performance-aware (θ-constrained) scheduling (§IV-B3).

Aggressive grouping can pile many accesses onto one I/O node in one slot,
causing queueing delays.  The θ variant limits the number of scheduled
accesses per I/O node per slot: candidate slots are sorted by reuse factor
(non-increasing) and the first slot satisfying the θ constraint at every
covered iteration wins.  When no slot qualifies, the slot minimizing the
mean excess

    E_t = Σ_{d ∈ D_t} (M_d − θ) / |D_t|

is chosen (D_t = overloaded nodes, M_d = accesses on node d).
"""

from __future__ import annotations

from typing import Optional

from .access import DataAccess
from .basic import BasicScheduler, ScheduleState
from .extended import ExtendedScheduler

__all__ = ["ThetaConstrainedScheduler", "mean_excess"]


def mean_excess(
    access: DataAccess, slot: int, state: ScheduleState, theta: int
) -> float:
    """E_t: average overload the placement would create, over the nodes
    that exceed θ across every slot the access would occupy."""
    overloaded: list[int] = []
    for s in range(slot, slot + access.length):
        loads = state.load_at(s)
        for node in range(state.n_nodes):
            if access.signature >> node & 1:
                would_be = loads[node] + 1
                if would_be > theta:
                    overloaded.append(would_be - theta)
    if not overloaded:
        return 0.0
    return sum(overloaded) / len(overloaded)


class ThetaConstrainedScheduler:
    """Wraps a basic or extended scheduler with the θ constraint.

    ``base`` supplies reuse factors, candidate slots and the occupancy
    rules; this class only changes *which* candidate is selected.
    """

    def __init__(self, base: BasicScheduler, theta: int = 4):
        if theta < 1:
            raise ValueError(f"theta must be >= 1: {theta}")
        self.base = base
        self.theta = theta

    @property
    def n_nodes(self) -> int:
        return self.base.n_nodes

    @property
    def delta(self) -> int:
        return self.base.delta

    # ------------------------------------------------------------------
    def _satisfies_theta(
        self, access: DataAccess, slot: int, state: ScheduleState
    ) -> bool:
        """θ holds when every I/O node the access touches stays ≤ θ in
        every slot the access occupies."""
        for s in range(slot, slot + access.length):
            loads = state.load_at(s)
            for node in range(state.n_nodes):
                if access.signature >> node & 1 and loads[node] + 1 > self.theta:
                    return False
        return True

    def place(self, access: DataAccess, state: ScheduleState) -> Optional[int]:
        scored = self.base.scored_candidates(access, state)
        if not scored:
            access.scheduled_slot = access.original_slot
            return None
        # Non-increasing score; equal scores follow the base tie-break
        # preference (latest slot first when tie_break == "latest").
        tie_sign = -1 if self.base.tie_break == "latest" else 1
        scored.sort(key=lambda pair: (-pair[1], tie_sign * pair[0]))
        for slot, _score in scored:
            if self._satisfies_theta(access, slot, state):
                state.commit(access, slot)
                return slot
        # No slot satisfies θ: minimize the average overload E_t.
        slot = min(
            (t for t, _s in scored),
            key=lambda t: (mean_excess(access, t, state, self.theta), t),
        )
        state.commit(access, slot)
        return slot

    def schedule(self, accesses: list[DataAccess]) -> ScheduleState:
        """Full run, identical driver to the base schedulers."""
        state = ScheduleState(n_nodes=self.n_nodes)
        for access in self.base._ordered(accesses):
            self.place(access, state)
        return state


def make_scheduler(
    n_nodes: int,
    delta: int = 20,
    theta: Optional[int] = 4,
    extended: bool = True,
    seed: int = 0,
    tie_break: str = "random",
    order: str = "shortest",
    weight_shape: str = "linear",
):
    """Factory assembling the full paper configuration.

    ``theta=None`` disables the performance constraint (pure §IV-B1/B2);
    ``extended=False`` restricts to unit-length accesses; ``order`` and
    ``weight_shape`` expose the ablation knobs (see
    :class:`~repro.core.basic.BasicScheduler`).
    """
    base_cls = ExtendedScheduler if extended else BasicScheduler
    base = base_cls(
        n_nodes, delta=delta, seed=seed, tie_break=tie_break,
        order=order, weight_shape=weight_shape,
    )
    if theta is None:
        return base
    return ThetaConstrainedScheduler(base, theta=theta)
