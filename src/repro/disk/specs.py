"""Disk drive specification records.

:class:`DiskSpec` carries every timing and power parameter the drive model
needs.  The defaults reproduce Table II of the paper (a 100 GB server disk
at 12,000 RPM with Ultra-3 SCSI-era characteristics); the multi-speed
variant adds the DRPM speed ladder (3,600..12,000 RPM in 1,200 RPM steps)
with the quadratic power model of Eq. 1.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["DiskSpec", "TABLE2_DISK", "table2_multispeed_spec"]

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclass(frozen=True)
class DiskSpec:
    """Static characteristics of one disk drive.

    Powers are in watts, times in seconds, sizes in bytes.  The power values
    are specified at ``max_rpm``; multi-speed operation scales them with the
    quadratic model ``P(rpm) = P_max * (rpm / max_rpm)**2`` (Eq. 1 in the
    paper — motor power goes with the square of angular velocity).
    """

    name: str = "table2-disk"
    capacity_bytes: int = 100 * GB

    # Rotation.
    max_rpm: int = 12_000
    min_rpm: int = 12_000           # == max_rpm for a single-speed disk
    rpm_step: int = 1_200
    rpm_change_time_per_step: float = 2.0    # DRPM-class ramp per 1200 RPM step

    # Mechanics (single-speed reference values at max_rpm).
    avg_seek_time: float = 0.0047   # 4.7 ms average seek
    min_seek_time: float = 0.0008   # track-to-track
    max_seek_time: float = 0.0105   # full stroke
    head_switch_time: float = 0.0008
    sectors_per_track: int = 1024
    sector_bytes: int = 512
    cylinders: int = 65_536
    internal_transfer_mbps: float = 85.0  # MB/s sustained media rate at max_rpm

    # Power at max_rpm (Table II).
    idle_power: float = 17.1
    active_power: float = 36.6
    seek_power: float = 32.1
    standby_power: float = 7.2
    spin_up_power: float = 44.8
    spin_down_power: float = 10.0   # motor braking draw, DiskSim-style default

    # Spin transitions (Table II).
    spin_up_time: float = 16.0
    spin_down_time: float = 10.0

    # Controller cache / bus.
    bus: str = "ultra3-scsi"
    bus_bandwidth_mbps: float = 160.0

    def __post_init__(self) -> None:
        if self.min_rpm > self.max_rpm:
            raise ValueError("min_rpm must not exceed max_rpm")
        if self.rpm_step <= 0:
            raise ValueError("rpm_step must be positive")
        if (self.max_rpm - self.min_rpm) % self.rpm_step != 0:
            raise ValueError("RPM range must be a multiple of rpm_step")

    # ------------------------------------------------------------------
    # Speed ladder
    # ------------------------------------------------------------------
    @property
    def rpm_levels(self) -> tuple[int, ...]:
        """Available speeds, fastest first (RPM1 = fastest, as in Fig. 3)."""
        return tuple(
            range(self.max_rpm, self.min_rpm - 1, -self.rpm_step)
        )

    @property
    def is_multispeed(self) -> bool:
        return self.min_rpm < self.max_rpm

    def rpm_scale(self, rpm: int) -> float:
        """Quadratic motor-power scale factor for ``rpm`` (Eq. 1)."""
        return (rpm / self.max_rpm) ** 2

    def idle_power_at(self, rpm: int) -> float:
        return self.idle_power * self.rpm_scale(rpm)

    def active_power_at(self, rpm: int) -> float:
        """R/W power at ``rpm``: the motor part scales quadratically, the
        electronics/arm part (the delta above idle) stays fixed."""
        electronics = self.active_power - self.idle_power
        return self.idle_power_at(rpm) + electronics

    def seek_power_at(self, rpm: int) -> float:
        electronics = self.seek_power - self.idle_power
        return self.idle_power_at(rpm) + electronics

    def rpm_change_time(self, rpm_from: int, rpm_to: int) -> float:
        """Time to ramp between two speeds, linear in the RPM delta."""
        steps = abs(rpm_from - rpm_to) / self.rpm_step
        return steps * self.rpm_change_time_per_step

    def rpm_change_power(self, rpm_from: int, rpm_to: int) -> float:
        """Power while ramping one step.

        Accelerating a single 1,200 RPM step needs only a modest torque
        boost above the target speed's windage (unlike a full spin-up from
        rest); decelerating coasts at roughly the windage of the speed
        being passed through.
        """
        if rpm_to > rpm_from:
            # Torque to accelerate grows with the target speed's drag.
            boost = (
                0.6 * (self.spin_up_power - self.idle_power) * self.rpm_scale(rpm_to)
            )
            return self.idle_power_at(rpm_to) + boost
        return self.idle_power_at(rpm_to)

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def rotation_time(self, rpm: Optional[int] = None) -> float:
        """One full platter revolution at ``rpm`` (default: max speed)."""
        rpm = rpm or self.max_rpm
        return 60.0 / rpm

    def avg_rotational_latency(self, rpm: Optional[int] = None) -> float:
        """Expected rotational delay: half a revolution."""
        return self.rotation_time(rpm) / 2.0

    def transfer_rate(self, rpm: Optional[int] = None) -> float:
        """Sustained media transfer rate in bytes/s at ``rpm``.

        Media rate is linear in RPM (same bits pass under the head per
        revolution)."""
        rpm = rpm or self.max_rpm
        return self.internal_transfer_mbps * 1e6 * (rpm / self.max_rpm)

    def transfer_time(self, nbytes: int, rpm: Optional[int] = None) -> float:
        """Media transfer time for ``nbytes`` at ``rpm``, bus-capped."""
        media = nbytes / self.transfer_rate(rpm)
        bus = nbytes / (self.bus_bandwidth_mbps * 1e6)
        return max(media, bus)

    def seek_time(self, distance_fraction: float) -> float:
        """Seek time for a seek spanning ``distance_fraction`` of the
        cylinders (0..1), using the standard sqrt + linear curve."""
        if distance_fraction <= 0:
            return 0.0
        frac = min(distance_fraction, 1.0)
        sqrt_part = (
            (self.avg_seek_time - self.min_seek_time) * (frac / (1.0 / 3.0)) ** 0.5
        )
        if frac <= 1.0 / 3.0:
            return self.min_seek_time + sqrt_part
        linear_span = self.max_seek_time - self.avg_seek_time
        return self.avg_seek_time + linear_span * (frac - 1.0 / 3.0) / (2.0 / 3.0)

    # ------------------------------------------------------------------
    # Energies of fixed transitions
    # ------------------------------------------------------------------
    @property
    def spin_up_energy(self) -> float:
        return self.spin_up_power * self.spin_up_time

    @property
    def spin_down_energy(self) -> float:
        return self.spin_down_power * self.spin_down_time

    def breakeven_idle_seconds(self) -> float:
        """Minimum idle length G for which a spin-down saves energy.

        Solves  idle_power·G = E_down + E_up + standby·(G − t_down − t_up)
        for G (and G can never be shorter than the transitions themselves).
        Below this an attempted spin-down *costs* energy."""
        transition_e = self.spin_up_energy + self.spin_down_energy
        transition_t = self.spin_up_time + self.spin_down_time
        saved_per_s = self.idle_power - self.standby_power
        if saved_per_s <= 0:
            return float("inf")
        neutral = (transition_e - self.standby_power * transition_t) / saved_per_s
        return max(neutral, transition_t)

    def with_multispeed(
        self, min_rpm: int = 3_600, rpm_step: int = 1_200
    ) -> "DiskSpec":
        """A copy of this spec with the DRPM speed ladder enabled."""
        return replace(self, min_rpm=min_rpm, rpm_step=rpm_step)


#: The paper's Table II disk, single-speed.
TABLE2_DISK = DiskSpec()


def table2_multispeed_spec() -> DiskSpec:
    """Table II disk with the multi-speed parameters enabled
    (minimum 3,600 RPM, 1,200 RPM step, quadratic power model)."""
    return TABLE2_DISK.with_multispeed(min_rpm=3_600, rpm_step=1_200)
