"""The paper's primary contribution: compiler-directed I/O scheduling.

Pipeline: signatures (:mod:`signature`) → slack determination
(:mod:`slack`) → scheduling (:mod:`basic` / :mod:`extended` / :mod:`perf`)
→ per-process tables (:mod:`table`), driven by
:func:`compile_schedule`.
"""

from .access import DataAccess
from .basic import BasicScheduler, ScheduleState
from .compiler import CompileResult, CompilerOptions, compile_schedule
from .extended import ExtendedScheduler
from .perf import ThetaConstrainedScheduler, make_scheduler, mean_excess
from .signature import (
    ZERO_DISTANCE_INVERSE,
    difference,
    distance,
    group_signature,
    inverse_distance,
    signature_bits,
    signature_from_nodes,
    similarity,
)
from .slack import SlackOptions, determine_slacks
from .table import ScheduleBook, ScheduleTable

__all__ = [
    "DataAccess",
    "BasicScheduler",
    "ExtendedScheduler",
    "ThetaConstrainedScheduler",
    "ScheduleState",
    "make_scheduler",
    "mean_excess",
    "CompilerOptions",
    "CompileResult",
    "compile_schedule",
    "SlackOptions",
    "determine_slacks",
    "ScheduleBook",
    "ScheduleTable",
    "similarity",
    "difference",
    "distance",
    "inverse_distance",
    "group_signature",
    "signature_bits",
    "signature_from_nodes",
    "ZERO_DISTANCE_INVERSE",
]
