"""ASCII visualizations of schedules and drive timelines.

Two renderers, both text-only (no plotting dependencies):

* :func:`access_density_timeline` — per-I/O-node access density across
  the slot axis, before and after scheduling.  Makes the paper's central
  effect visible at a glance: the "after" picture has denser, narrower
  bands and wider blank stretches.
* :func:`drive_state_gantt` — one row per drive showing which power state
  it occupied over wall-clock time.
"""

from __future__ import annotations

from .core.compiler import CompileResult
from .disk import states as st
from .disk.drive import Drive

__all__ = ["access_density_timeline", "drive_state_gantt"]

#: Density glyphs from empty to saturated.
SHADES = " .:-=+*#%@"

#: One-character labels for drive state families.
STATE_GLYPHS = {
    st.IDLE: ".",
    st.ACTIVE_READ: "R",
    st.ACTIVE_WRITE: "W",
    st.SEEK: "s",
    st.STANDBY: "_",
    st.SPIN_UP: "^",
    st.SPIN_DOWN: "v",
    "rpm_up": "/",
    "rpm_down": "\\",
}


def _shade(count: int, max_count: int) -> str:
    if count <= 0 or max_count <= 0:
        return SHADES[0]
    level = min(len(SHADES) - 1, 1 + (count * (len(SHADES) - 2)) // max_count)
    return SHADES[level]


def access_density_timeline(result: CompileResult, width: int = 72) -> str:
    """Render per-node access density before vs after scheduling.

    Each column aggregates ``n_slots / width`` slots; each row is one I/O
    node; the glyph encodes how many scheduled accesses touch that node in
    that slot range.
    """
    if width < 8:
        raise ValueError(f"width too small: {width}")
    n_slots = max(result.book.n_slots, 1)
    n_nodes = result.state.n_nodes
    per_col = max(1, -(-n_slots // width))
    cols = -(-n_slots // per_col)

    def densities(slot_of) -> list[list[int]]:
        grid = [[0] * cols for _ in range(n_nodes)]
        for access in result.accesses:
            col = min(slot_of(access) // per_col, cols - 1)
            for node in range(n_nodes):
                if access.signature >> node & 1:
                    grid[node][col] += 1
        return grid

    before = densities(lambda a: a.original_slot)
    after = densities(lambda a: a.scheduled_slot)
    peak = max(
        max(max(row) for row in before), max(max(row) for row in after), 1
    )

    def render(grid: list[list[int]], title: str) -> list[str]:
        lines = [f"{title} (slots 0..{n_slots - 1}, {per_col} slots/column, "
                 f"peak {peak} accesses)"]
        for node, row in enumerate(grid):
            lines.append(
                f"node {node:2d} |" + "".join(_shade(c, peak) for c in row) + "|"
            )
        return lines

    out = render(before, "BEFORE scheduling — original access points")
    out.append("")
    out.extend(render(after, "AFTER scheduling — chosen slots"))
    return "\n".join(out)


def drive_state_gantt(
    drives: list[Drive], horizon: float, width: int = 72
) -> str:
    """Render each drive's dominant power state per time column.

    Legend: ``R``/``W`` active, ``s`` seek, ``.`` idle (full speed shown
    uppercase-free), ``_`` standby, ``^``/``v`` spin transitions,
    ``/``/``\\`` RPM ramps; digits 1-9 mark idle at a reduced speed
    (1 = just below max … 9 = deepest).
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive: {horizon}")
    dt = horizon / width
    lines = [f"0s {'-' * (width - 8)} {horizon:.0f}s"]
    for drive in drives:
        # Dominant state per column by occupancy time.
        occupancy: list[dict[str, float]] = [dict() for _ in range(width)]
        for iv in drive.timeline.intervals():
            if iv.start >= horizon:
                break
            first = int(iv.start / dt)
            last = min(int(min(iv.end, horizon - 1e-9) / dt), width - 1)
            for col in range(first, last + 1):
                lo = max(iv.start, col * dt)
                hi = min(iv.end, (col + 1) * dt, horizon)
                if hi > lo:
                    bucket = occupancy[col]
                    bucket[iv.state] = bucket.get(iv.state, 0.0) + (hi - lo)
        row = []
        for bucket in occupancy:
            if not bucket:
                row.append(" ")
                continue
            state = max(bucket, key=bucket.get)
            base = st.base_state(state)
            if base == st.IDLE:
                rpm = st.parse_rpm(state, drive.spec.max_rpm)
                if rpm == drive.spec.max_rpm:
                    row.append(".")
                else:
                    depth = (drive.spec.max_rpm - rpm) // drive.spec.rpm_step
                    row.append(str(min(depth, 9)))
            else:
                row.append(STATE_GLYPHS.get(base, "?"))
        lines.append(f"{drive.name[-12:]:>12} |" + "".join(row) + "|")
    lines.append(
        "legend: . idle@max  1-9 idle@reduced  R/W active  s seek  "
        "_ standby  ^ spin-up  v spin-down  / ramp-up  \\ ramp-down"
    )
    return "\n".join(lines)
