"""Tests for the intra-node RAID layouts."""

import pytest

from repro.storage import RaidMap

KB = 1024


class TestValidation:
    def test_unknown_level(self):
        with pytest.raises(ValueError):
            RaidMap(1, 2)

    def test_raid5_needs_three_disks(self):
        with pytest.raises(ValueError):
            RaidMap(5, 2)

    def test_raid10_needs_even_disks(self):
        with pytest.raises(ValueError):
            RaidMap(10, 3)

    def test_chunk_size_positive(self):
        with pytest.raises(ValueError):
            RaidMap(0, 2, chunk_size=0)

    def test_negative_extent(self):
        with pytest.raises(ValueError):
            RaidMap(0, 2).map(-1, 10, False)


class TestRaid0:
    def test_single_chunk_single_disk(self):
        raid = RaidMap(0, 4, chunk_size=64 * KB)
        ops = raid.map(0, 64 * KB, False)
        assert len(ops) == 1
        assert ops[0].disk == 0

    def test_chunks_rotate_disks(self):
        raid = RaidMap(0, 4, chunk_size=64 * KB)
        ops = raid.map(0, 256 * KB, False)
        assert [op.disk for op in ops] == [0, 1, 2, 3]

    def test_bytes_preserved(self):
        raid = RaidMap(0, 4, chunk_size=64 * KB)
        ops = raid.map(13 * KB, 200 * KB, False)
        assert sum(op.nbytes for op in ops) == 200 * KB

    def test_row_addressing(self):
        raid = RaidMap(0, 2, chunk_size=64 * KB)
        ops = raid.map(128 * KB, 64 * KB, False)  # chunk 2 -> disk 0 row 1
        assert ops[0].disk == 0
        assert ops[0].lba == 64 * KB

    def test_single_disk_degenerate(self):
        raid = RaidMap(0, 1, chunk_size=64 * KB)
        ops = raid.map(0, 256 * KB, True)
        assert all(op.disk == 0 for op in ops)


class TestRaid5:
    def test_read_touches_single_disk(self):
        raid = RaidMap(5, 4, chunk_size=64 * KB)
        ops = raid.map(0, 64 * KB, False)
        assert len(ops) == 1
        assert not ops[0].is_write

    def test_write_does_read_modify_write(self):
        raid = RaidMap(5, 4, chunk_size=64 * KB)
        ops = raid.map(0, 64 * KB, True)
        writes = [op for op in ops if op.is_write]
        reads = [op for op in ops if not op.is_write]
        assert len(writes) == 2  # data + parity
        assert len(reads) == 2   # old data + old parity

    def test_parity_disk_differs_from_data_disk(self):
        raid = RaidMap(5, 4, chunk_size=64 * KB)
        ops = raid.map(0, 64 * KB, True)
        writes = [op for op in ops if op.is_write]
        assert writes[0].disk != writes[1].disk

    def test_parity_rotates_across_rows(self):
        raid = RaidMap(5, 4, chunk_size=64 * KB)
        parities = set()
        for row in range(4):
            chunk_offset = row * raid.data_disks * 64 * KB
            ops = raid.map(chunk_offset, 64 * KB, True)
            parity = [op for op in ops if op.is_write][1].disk
            parities.add(parity)
        assert len(parities) == 4

    def test_data_disks_count(self):
        assert RaidMap(5, 4).data_disks == 3


class TestRaid10:
    def test_write_hits_both_mirrors(self):
        raid = RaidMap(10, 4, chunk_size=64 * KB)
        ops = raid.map(0, 64 * KB, True)
        assert {op.disk for op in ops} == {0, 1}
        assert all(op.is_write for op in ops)

    def test_reads_round_robin_between_mirrors(self):
        raid = RaidMap(10, 4, chunk_size=64 * KB)
        first = raid.map(0, 64 * KB, False)[0].disk
        second = raid.map(0, 64 * KB, False)[0].disk
        assert {first, second} == {0, 1}

    def test_second_pair_used_for_second_chunk(self):
        raid = RaidMap(10, 4, chunk_size=64 * KB)
        ops = raid.map(64 * KB, 64 * KB, True)
        assert {op.disk for op in ops} == {2, 3}

    def test_data_disks_count(self):
        assert RaidMap(10, 4).data_disks == 2
