"""Figure 12(d) — normalized energy of the four policies with the scheme.

Paper shape: the scheme roughly doubles every policy's savings
(5.5→11.8% class for the spin-down pair, 12.7→27.6% class for the
multi-speed pair), with every policy strictly better than without it.
"""

from repro.experiments import APPS, POLICIES, fig12c, fig12d

from conftest import run_once


def averages(data):
    return {
        policy: sum(data[a][policy] for a in APPS) / len(APPS)
        for policy in POLICIES
    }


def test_fig12d_energy_with(benchmark, runner):
    without = averages(fig12c(runner).data)
    result = run_once(benchmark, lambda: fig12d(runner))
    print("\n" + result.text)
    avg = averages(result.data)
    for policy in POLICIES:
        save_without = 1 - without[policy]
        save_with = 1 - avg[policy]
        print(f"{policy:>10}: {save_without:6.1%} -> {save_with:6.1%}")
        # Every policy benefits from the scheme on average.
        assert save_with > save_without, policy
    # The spin-down policies' savings grow by well over the paper's ~2x.
    assert (1 - avg["simple"]) >= 2 * (1 - without["simple"])
    assert (1 - avg["prediction"]) >= 2 * (1 - without["prediction"])
