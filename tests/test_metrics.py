"""Tests for the metrics layer."""

import math

import pytest

from repro.metrics import (
    EnergyComparison,
    PAPER_BUCKETS_MS,
    PerfComparison,
    breakdown_until,
    clip_periods,
    degradation,
    energy_until,
    fleet_energy,
    format_percent,
    format_series,
    format_table,
    idle_cdf,
    idle_periods_until,
    improvement,
    residency_until,
    transition_counts_until,
)

from conftest import make_drive, submit_read


class TestIdleCDF:
    def test_paper_buckets(self):
        assert PAPER_BUCKETS_MS[0] == 5
        assert PAPER_BUCKETS_MS[-1] == 50_000

    def test_empty_lengths(self):
        cdf = idle_cdf([])
        assert cdf.count == 0
        assert all(f == 0.0 for f in cdf.cumulative)

    def test_cumulative_fraction(self):
        # 4 periods: 3ms, 30ms, 300ms, 30s.
        cdf = idle_cdf([0.003, 0.030, 0.300, 30.0])
        assert cdf.fraction_at_most(5) == 0.25
        assert cdf.fraction_at_most(50) == 0.5
        assert cdf.fraction_at_most(500) == 0.75
        assert cdf.fraction_at_most(30_000) == 1.0

    def test_cumulative_monotone(self):
        cdf = idle_cdf([0.001 * (2 ** i) for i in range(16)])
        assert list(cdf.cumulative) == sorted(cdf.cumulative)

    def test_mean_and_total(self):
        cdf = idle_cdf([1.0, 3.0])
        assert cdf.total_idle_seconds == 4.0
        assert cdf.mean_seconds == 2.0

    def test_rows_include_open_bucket(self):
        cdf = idle_cdf([0.001])
        rows = cdf.rows()
        assert rows[-1] == ("50000+", 1.0)

    def test_boundary_is_inclusive(self):
        cdf = idle_cdf([0.005])
        assert cdf.fraction_at_most(5) == 1.0

    def test_clip_periods(self):
        periods = [(0.0, 2.0), (5.0, 9.0), (12.0, 20.0)]
        assert clip_periods(periods, 10.0) == [2.0, 4.0]


class TestEnergyClipping:
    def test_energy_until_clips_horizon(self, sim):
        drive = make_drive(sim)
        submit_read(sim, drive, 0.0)
        sim.run()
        drive.finalize()
        full = energy_until(drive, sim.now)
        half = energy_until(drive, sim.now / 2)
        assert 0 < half < full

    def test_energy_until_matches_manual_idle_integral(self, sim):
        drive = make_drive(sim)
        sim.run(until=10.0)
        drive.finalize()
        assert energy_until(drive, 10.0) == pytest.approx(
            10.0 * drive.spec.idle_power
        )

    def test_breakdown_families_sum_to_total(self, sim):
        drive = make_drive(sim)
        submit_read(sim, drive, 0.0)
        sim.schedule(1.0, drive.spin_down)
        submit_read(sim, drive, 30.0)
        sim.run()
        drive.finalize()
        horizon = sim.now
        breakdown = breakdown_until(drive, horizon)
        # Exact, not approximate: energy_until is defined as the total of
        # the breakdown, and total is an order-independent fsum, so the
        # identity survives JSON round-trips and re-summation.
        assert breakdown.total == energy_until(drive, horizon)
        families = breakdown.as_dict()
        assert families.pop("total") == math.fsum(sorted(families.values()))
        assert breakdown.standby > 0
        assert breakdown.spin_up > 0

    def test_breakdown_uses_attached_power_model(self, sim):
        """Regression: breakdown_until used to rebuild a fresh
        DiskPowerModel from drive.spec, so a drive carrying a customized
        model broke down under different wattages than it integrated
        under and sum(breakdown) != energy_until."""
        drive = make_drive(sim)
        submit_read(sim, drive, 0.0)
        sim.schedule(1.0, drive.spin_down)
        submit_read(sim, drive, 30.0)
        sim.run()
        drive.finalize()
        horizon = sim.now
        base = breakdown_until(drive, horizon)

        class DoubledModel:
            def __init__(self, inner):
                self.inner = inner

            def power_of(self, state):
                return 2.0 * self.inner.power_of(state)

        drive.power_model = DoubledModel(drive.power_model)
        doubled = breakdown_until(drive, horizon)
        assert doubled.total == energy_until(drive, horizon)
        assert doubled.total == pytest.approx(2.0 * base.total)
        assert doubled.standby == pytest.approx(2.0 * base.standby)

    def test_fleet_energy_sums(self, sim):
        drives = [make_drive(sim) for _ in range(3)]
        sim.run(until=5.0)
        for d in drives:
            d.finalize()
        assert fleet_energy(drives, 5.0) == pytest.approx(
            3 * 5.0 * drives[0].spec.idle_power
        )

    def test_idle_periods_until_clips(self, sim):
        drive = make_drive(sim)
        submit_read(sim, drive, 0.0)
        submit_read(sim, drive, 10.0)
        sim.run()
        drive.finalize()
        clipped = idle_periods_until(drive, 5.0)
        assert all(p <= 5.0 for p in clipped)


class TestResidency:
    FAMILIES = {
        "active_read", "active_write", "seek", "idle", "standby",
        "spin_up", "spin_down", "rpm_change",
    }

    def _exercised_drive(self, sim):
        drive = make_drive(sim)
        submit_read(sim, drive, 0.0)
        sim.schedule(1.0, drive.spin_down)
        submit_read(sim, drive, 30.0)
        sim.run()
        drive.finalize()
        return drive, sim.now

    def test_residency_partitions_horizon(self, sim):
        drive, horizon = self._exercised_drive(sim)
        res = residency_until(drive, horizon)
        assert set(res) <= self.FAMILIES
        assert math.fsum(res.values()) == pytest.approx(horizon)
        assert res["standby"] > 0

    def test_transition_counts_families(self, sim):
        drive, horizon = self._exercised_drive(sim)
        counts = transition_counts_until(drive, horizon)
        assert set(counts) <= self.FAMILIES
        assert counts["spin_up"] == 1
        assert counts["spin_down"] == 1
        # At least the idle stretch between the first read and spin-down.
        assert counts["idle"] >= 1

    def test_transition_counts_merge_consecutive_intervals(self, sim):
        # An untouched drive's timeline is one idle stretch: one entry.
        drive = make_drive(sim)
        sim.run(until=10.0)
        drive.finalize()
        assert transition_counts_until(drive, 10.0) == {"idle": 1}


class TestComparisons:
    def test_energy_comparison(self):
        cmp = EnergyComparison("simple", 80.0, 100.0)
        assert cmp.normalized == pytest.approx(0.8)
        assert cmp.reduction == pytest.approx(0.2)

    def test_energy_comparison_zero_baseline(self):
        assert EnergyComparison("x", 5.0, 0.0).normalized == 1.0

    def test_degradation(self):
        assert degradation(110.0, 100.0) == pytest.approx(0.1)

    def test_degradation_bad_baseline(self):
        with pytest.raises(ValueError):
            degradation(1.0, 0.0)

    def test_improvement(self):
        assert improvement(80.0, 100.0) == pytest.approx(0.25)

    def test_improvement_bad_time(self):
        with pytest.raises(ValueError):
            improvement(0.0, 1.0)

    def test_perf_comparison(self):
        cmp = PerfComparison("simple", 120.0, 100.0)
        assert cmp.degradation == pytest.approx(0.2)


class TestFormatting:
    def test_format_percent(self):
        assert format_percent(0.1234) == "12.3%"
        assert format_percent(0.1234, 0) == "12%"

    def test_format_table_aligns(self):
        text = format_table(("a", "bbbb"), [("x", 1), ("yyyy", 22)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbbb" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        s = format_series("hist", [2, 4], [0.5, 0.25])
        assert s == "hist: 2=0.500, 4=0.250"
