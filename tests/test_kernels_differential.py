"""Differential corpus: every simulation kernel is bit-identical.

The pluggable kernels (heap reference, calendar queue, analytic affine
fast path) are *performance* variants only — the distilled
:class:`~repro.experiments.runner.RunResult` must match the heap kernel
byte for byte on every grid point, including faulted and degraded-mode
configurations, serially and under a worker pool.  Equality is asserted
on :func:`~repro.exec.serialize.run_result_to_dict` documents, the same
encoding the result cache and campaign journals persist.

A separate check pins down *when* the analytic fast path may engage:
only on affine, scheme-off, fault-free runs — and that it actually does
engage there (``slots_collapsed > 0``), so the speedup can never
silently rot into "analytic == calendar".
"""

import pytest

from repro.analysis import CORPUS_POLICIES
from repro.exec import (
    ExperimentExecutor,
    RunPoint,
    run_result_to_dict,
    with_kernel,
)
from repro.experiments import APPS, ExperimentConfig, Runner
from repro.faults import FaultEvent, FaultPlan
from repro.sim import DEFAULT_KERNEL, kernel_names

KERNELS = kernel_names()
ALT_KERNELS = tuple(k for k in KERNELS if k != DEFAULT_KERNEL)

#: Small but full-stack (same shape as the faults corpus): every layer
#: participates, each point simulates in well under a second.
SMALL = ExperimentConfig(n_clients=8, n_ionodes=4, workload_scale=0.05)

#: One shared Runner per kernel — memoization makes each corpus point
#: simulate exactly once per kernel for the whole module.
RUNNERS = {name: Runner(SMALL.scaled(kernel=name)) for name in KERNELS}

#: A deterministic multi-fault plan exercising every recovery layer the
#: kernels must replay identically (retries, degraded reads, stragglers).
FAULTED_PLAN = FaultPlan(
    events=(
        FaultEvent(
            kind="disk.transient_errors", target="node1.disk0", time=2.0,
            duration=30.0, probability=0.5,
        ),
        FaultEvent(kind="node.straggle", target="node0", time=5.0,
                   duration=10.0, factor=3.0),
        FaultEvent(kind="net.latency", target="node2", time=1.0,
                   duration=15.0, extra_latency=0.01),
    ),
    seed=7,
)

#: RAID-5 with a dead member: parity reconstruction on the read path.
DEGRADED_RAID5 = ExperimentConfig(
    n_clients=8, n_ionodes=2, workload_scale=0.05,
    disks_per_node=3, raid_level=5,
    fault_plan=FaultPlan(events=(
        FaultEvent(kind="disk.fail", target="node0.disk1", time=0.0),
    )),
)


def docs_for(workload, policy, scheme):
    return {
        name: run_result_to_dict(runner.run(workload, policy, scheme))
        for name, runner in RUNNERS.items()
    }


@pytest.mark.parametrize("workload", APPS)
@pytest.mark.parametrize("policy", CORPUS_POLICIES)
@pytest.mark.parametrize("scheme", [False, True], ids=["plain", "scheme"])
def test_corpus_point_bit_identical(workload, policy, scheme):
    """6 workloads × corpus policies × scheme on/off: all kernels agree."""
    docs = docs_for(workload, policy, scheme)
    reference = docs[DEFAULT_KERNEL]
    for name in ALT_KERNELS:
        assert docs[name] == reference, (workload, policy, scheme, name)


@pytest.mark.parametrize("workload", ["madbench2", "hf"])
def test_faulted_runs_bit_identical(workload):
    """Fault injection replays identically on every kernel."""
    cfg = SMALL.scaled(fault_plan=FAULTED_PLAN)
    docs = {
        name: run_result_to_dict(
            Runner(cfg.scaled(kernel=name)).run(workload, "simple", True)
        )
        for name in KERNELS
    }
    for name in ALT_KERNELS:
        assert docs[name] == docs[DEFAULT_KERNEL], (workload, name)


def test_degraded_raid5_bit_identical():
    """Parity reconstruction with a dead disk replays identically."""
    docs = {
        name: run_result_to_dict(
            Runner(DEGRADED_RAID5.scaled(kernel=name)).run(
                "sar", "simple", False
            )
        )
        for name in KERNELS
    }
    for name in ALT_KERNELS:
        assert docs[name] == docs[DEFAULT_KERNEL], name


class TestExecutorEquivalence:
    """Kernel identity survives the process pool and the result cache."""

    def points(self):
        base = [
            RunPoint("sar", "simple", False, SMALL),
            RunPoint("madbench2", "history", True, SMALL),
        ]
        out = []
        for kernel in KERNELS:
            out.extend(with_kernel(base, kernel))
        return out

    def test_jobs1_and_jobs4_bit_identical(self):
        points = self.points()
        serial = ExperimentExecutor(jobs=1).run_points(points)
        parallel = ExperimentExecutor(jobs=4).run_points(points)
        assert set(serial) == set(parallel) == set(points)
        for point in points:
            assert (
                run_result_to_dict(parallel[point])
                == run_result_to_dict(serial[point])
            ), point.label()

    def test_kernels_never_collide_in_memo(self):
        """with_kernel re-keys the config, so per-kernel points are
        distinct grid cells (distinct cache keys), not aliases."""
        points = self.points()
        assert len({p.config.to_key() for p in points}) == len(KERNELS)


class TestAnalyticEngagement:
    """The fast path must engage exactly where it is eligible."""

    def test_collapses_affine_scheme_off_run(self):
        runner = Runner(SMALL.scaled(kernel="analytic"))
        _, stats = runner.measure("sweep", "simple", False)
        assert stats["kernel"] == "analytic"
        assert stats["slots_collapsed"] > 0
        assert stats["phases_collapsed"] > 0

    def test_no_collapse_under_scheme(self):
        """A compiled schedule forbids collapsing (prefetch interleaves
        with compute inside the phase)."""
        runner = Runner(SMALL.scaled(kernel="analytic"))
        _, stats = runner.measure("sweep", "simple", True)
        assert stats["slots_collapsed"] == 0

    def test_no_collapse_under_faults(self):
        cfg = SMALL.scaled(kernel="analytic", fault_plan=FAULTED_PLAN)
        runner = Runner(cfg)
        _, stats = runner.measure("madbench2", "simple", False)
        assert stats["slots_collapsed"] == 0

    def test_heap_and_calendar_never_collapse(self):
        for name in ("heap", "calendar"):
            _, stats = RUNNERS[name].measure("sweep", "simple", False)
            assert stats["kernel"] == name
            assert stats["slots_collapsed"] == 0
