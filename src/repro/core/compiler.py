"""The optimizing-compiler driver (Figure 4's left half).

Glues the pipeline together: trace (or analyze) the program, determine
access slacks, run the chosen scheduling algorithm, and emit per-process
scheduling tables.  This is the single entry point workloads and
experiments use:

    result = compile_schedule(program, stripe_map, files, CompilerOptions())
    result.book.table_for(pid)   # what each runtime scheduler thread walks
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..ir.profiling import AccessTrace, trace_program
from ..ir.program import Program
from ..storage.striping import StripedFile, StripeMap
from .access import DataAccess
from .basic import ScheduleState
from .perf import make_scheduler
from .slack import SlackOptions, determine_slacks
from .table import ScheduleBook

__all__ = ["CompilerOptions", "CompileResult", "compile_schedule"]


@dataclass(frozen=True)
class CompilerOptions:
    """Everything the compiler's power-optimization phase can be tuned by.

    Mirrors the paper's knobs: δ (vertical reuse range), θ (per-node
    per-slot access bound; ``None`` disables §IV-B3), the slot granularity
    *d*, and whether the extended (multi-length) algorithm runs.

    ``verify`` turns on the static schedule verifier
    (:mod:`repro.analysis`) as a compile gate: a resulting book with any
    error-severity diagnostic raises
    :class:`~repro.analysis.ScheduleVerificationError` instead of being
    returned, so broken scheduling policies fail at compile time rather
    than after a simulation run.
    """

    delta: int = 20
    theta: Optional[int] = 4
    granularity: int = 1
    extended: bool = True
    seed: int = 0
    tie_break: str = "latest"
    order: str = "shortest"
    weight_shape: str = "linear"
    slack: SlackOptions = field(default_factory=SlackOptions)
    verify: bool = False


@dataclass
class CompileResult:
    """Output bundle of one compilation."""

    program: Program
    trace: AccessTrace
    accesses: list[DataAccess]
    state: ScheduleState
    book: ScheduleBook

    @property
    def moved(self) -> int:
        return self.book.moved_count()

    def stats(self) -> dict[str, float]:
        """Summary statistics for reports and tests."""
        slacks = [a.slack_length for a in self.accesses]
        early = sum(1 for a in self.accesses if a.is_early_prefetch)
        return {
            "accesses": len(self.accesses),
            "moved": self.moved,
            "early_prefetches": early,
            "mean_slack": sum(slacks) / len(slacks) if slacks else 0.0,
            "max_slack": max(slacks, default=0),
            "n_slots": self.book.n_slots,
        }


def compile_schedule(
    program: Program,
    stripe_map: StripeMap,
    files: dict[str, StripedFile],
    options: CompilerOptions = CompilerOptions(),
    trace: Optional[AccessTrace] = None,
) -> CompileResult:
    """Run the full compiler pipeline on ``program``.

    ``trace`` may be supplied to reuse an existing profiling run (the
    simulation harness traces once and compiles from the same trace).
    Affine programs take the same code path — for them the trace *is* the
    polyhedral enumeration (see :mod:`repro.ir.dependence`).
    """
    if trace is None:
        trace = trace_program(program, granularity=options.granularity)

    accesses = determine_slacks(trace, stripe_map, files, options.slack)
    scheduler = make_scheduler(
        n_nodes=stripe_map.n_nodes,
        delta=options.delta,
        theta=options.theta,
        extended=options.extended,
        seed=options.seed,
        tie_break=options.tie_break,
        order=options.order,
        weight_shape=options.weight_shape,
    )
    state = scheduler.schedule(accesses)
    book = ScheduleBook.from_accesses(
        accesses, n_processes=program.n_processes, n_slots=trace.n_slots
    )
    if options.verify:
        # Imported here: repro.analysis depends on this package, so the
        # gate resolves it lazily to keep the import graph acyclic.
        from ..analysis import ScheduleVerificationError, verify_schedule

        report = verify_schedule(
            trace, book, granularity=options.granularity, include_lint=False
        )
        if report.has_errors:
            raise ScheduleVerificationError(report)
    return CompileResult(
        program=program, trace=trace, accesses=accesses, state=state, book=book
    )
