"""Experiment configuration — Table II defaults plus run-scaling knobs.

One :class:`ExperimentConfig` captures everything a single simulated run
depends on: platform shape (clients, I/O nodes, stripes, caches, disk
spec), power-policy parameters (§V-A's tuned values) and the compiler
knobs (δ, θ, granularity).  Configs are frozen and hashable so the runner
can memoize results.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields, replace
from typing import Optional

from ..disk.specs import TABLE2_DISK, DiskSpec, table2_multispeed_spec
from ..faults.plan import FaultPlan
from ..runtime.session import SessionConfig

__all__ = ["ExperimentConfig", "default_config", "bench_scale"]

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class ExperimentConfig:
    """All knobs of one experiment run (defaults = Table II)."""

    # Platform (Table II).
    n_clients: int = 32
    n_ionodes: int = 8
    stripe_size: int = 64 * KB
    cache_bytes: int = 64 * MB
    disks_per_node: int = 1
    raid_level: int = 0

    # Algorithm parameters (Table II).
    delta: int = 20
    theta: int = 4
    granularity: int = 1

    # Policy parameters (§V-A, retuned for this substrate's idle
    # distribution following the paper's own procedure: pick x for good
    # savings under a bounded performance penalty).
    simple_timeout: float = 38.0
    staggered_step: float = 4.5         # dwell per RPM step (substrate-scaled)
    prediction_margin: float = 1.0
    history_utilization_bound: float = 0.8

    # Online-policy parameters (``repro.power.online``).
    forecast_epoch: float = 30.0        # demand-forecast bucket (seconds)
    credit_slack: float = 0.05          # performance-slack accrual fraction
    hybrid_divergence: float = 2.0      # hint-trust spread bound (seconds)

    # Runtime scheduler.
    buffer_capacity_blocks: int = 2048
    scheduler_min_lead: int = 2
    max_slack: int = 200
    #: Straggler-aware client-side window reordering (scheme runs only;
    #: see :mod:`repro.runtime.reorder`).
    reorder: bool = False

    # Workload scaling.
    workload_scale: float = 1.0

    # Simulation kernel (see ``repro.sim.kernels``).  All kernels produce
    # bit-identical results; the field still participates in ``to_key()``
    # (as every dataclass field does) so memo tables, the result cache
    # and campaign journals can never silently mix kernels — a kernel
    # regression must be observable, not masked by a stale cache hit.
    kernel: str = "heap"

    # Fault injection (``None`` = the perfect stack).  Part of the config
    # so fault plans are enumerable in experiment grids and participate
    # in every cache key — a faulted run can never collide with a clean
    # one in the ResultCache or the runner's memo tables.
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        from ..sim.kernels import KERNELS

        if self.kernel not in KERNELS:
            raise ValueError(
                f"unknown simulation kernel {self.kernel!r}; "
                f"available: {', '.join(KERNELS)}"
            )

    def disk_spec(self, multispeed: bool) -> DiskSpec:
        """Table II single-speed or DRPM disk."""
        return table2_multispeed_spec() if multispeed else TABLE2_DISK

    def session_config(self) -> SessionConfig:
        return SessionConfig(
            n_ionodes=self.n_ionodes,
            stripe_size=self.stripe_size,
            cache_bytes=self.cache_bytes,
            disks_per_node=self.disks_per_node,
            raid_level=self.raid_level,
            buffer_capacity_blocks=self.buffer_capacity_blocks,
            scheduler_min_lead=self.scheduler_min_lead,
            reorder=self.reorder,
            kernel=self.kernel,
        )

    def scaled(self, **changes) -> "ExperimentConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def to_key(self) -> tuple[tuple[str, object], ...]:
        """Canonical, order-stable ``((field, value), ...)`` key.

        This is the *only* sanctioned way to use a config as a memoization
        or cache key: it enumerates every dataclass field by name, so it
        cannot silently conflate two configs (dataclass ``hash``/``eq``
        would break if a future field were added with ``compare=False``)
        and it keys equally across processes, unlike ``hash()`` which is
        salted per-interpreter for any str-containing value.

        Values that know how to canonicalize themselves (``to_key()``,
        e.g. :class:`~repro.faults.plan.FaultPlan`) contribute their own
        nested primitive tuples so the key stays JSON-encodable.
        """
        out = []
        for f in fields(self):
            value = getattr(self, f.name)
            own_key = getattr(value, "to_key", None)
            if callable(own_key):
                value = own_key()
            out.append((f.name, value))
        return tuple(out)


def bench_scale() -> float:
    """Workload scale used by tests/benchmarks.

    Controlled by the ``REPRO_SCALE`` environment variable; the default
    0.25 keeps a full figure sweep in minutes while preserving every
    qualitative result.  Set ``REPRO_SCALE=1.0`` to reproduce the paper's
    full run magnitudes.
    """
    return float(os.environ.get("REPRO_SCALE", "0.25"))


def default_config(scale: float | None = None) -> ExperimentConfig:
    """Table II configuration at the chosen workload scale."""
    return ExperimentConfig(
        workload_scale=bench_scale() if scale is None else scale
    )
