"""``sweep`` — raster-scan frame processing (ODSA-style regular access).

Not one of the paper's six Table III applications: this model captures
the *sweep/scan* access pattern of the disk-scheduling related work
(Dash et al., ODSA) — long, perfectly regular compute phases between
sparse, strided frame I/O.  It exists for two reasons:

* it is the pattern the paper's software-directed scheme is *best* at
  (every access statically resolvable, deep inter-I/O idle windows that
  let disks spin down fully), and
* those same certified I/O-free phases are exactly what the analytic
  simulation kernel solves in closed form, so this workload is the
  benchmark's affine-heavy speedup probe (``repro bench`` kernel
  shootout).

Per frame each process reads its two input stripe blocks, crunches them
through a long run of fixed-cost compute slots, and checkpoints one
output block.  All subscripts affine, all costs constant ⇒ polyhedral
path, fully collapsible phases.

It registers like any workload (``repro run --app sweep``) but is *not*
added to the figure grids — the paper's figures stay the paper's.
"""

from __future__ import annotations

from ..ir.affine import var
from ..ir.program import Compute, FileDecl, Loop, Program, Read, Write
from .base import WorkloadInfo, register, scaled

__all__ = ["build"]

BLOCK_BYTES = 64 * 1024
FRAMES = 8
PHASE_SLOTS = 480          # compute slots between frame I/O bursts
PHASE_COST = 0.5           # seconds per slot -> 4-minute phases at scale 1


def build(n_processes: int = 32, scale: float = 1.0) -> Program:
    """Build the sweep program.

    ``scale`` shrinks the per-frame compute phase (the frame count stays
    put so the I/O structure — and the idle-period population — keeps
    its shape).
    """
    frames = scaled(FRAMES, scale, minimum=2)
    phase_slots = scaled(PHASE_SLOTS, scale, minimum=8)
    p = var("p")
    f = var("f")

    files = {
        "scan": FileDecl("scan", 2 * frames * n_processes, BLOCK_BYTES),
        "out": FileDecl("out", frames * n_processes, BLOCK_BYTES),
    }

    body = [
        Loop("f", 0, frames - 1, body=[
            # Two strided input blocks for this process's tile.
            Read("scan", (f * n_processes + p) * 2),
            Read("scan", (f * n_processes + p) * 2 + 1),
            # The raster crunch: one long certified I/O-free phase.
            Loop("k", 0, phase_slots - 1, body=[
                Compute(PHASE_COST),
            ]),
            # Frame checkpoint.
            Write("out", f * n_processes + p),
        ]),
    ]
    return Program("sweep", n_processes, files, body)


register(
    WorkloadInfo(
        name="sweep",
        description="Raster-scan sweep: strided frame reads, long "
        "constant-cost compute phases, checkpoint writes — the "
        "regular pattern the analytic kernel solves in closed form",
        build=build,
        affine=True,
    )
)
