"""``repro bench`` — timed execution of the figure grid.

Times the same cold grid three ways — serial in-process, parallel through
the executor, then a warm-cache replay — and writes a ``BENCH_*.json``
perf record so successive PRs have a wall-clock trajectory to compare
against.  The warm pass doubles as an end-to-end cache check: it must
perform **zero** simulations.

The parallel pass runs under the campaign supervisor in keep-going mode,
and the record carries a schema-stable ``failures`` block (count, retry/
timeout/worker-death/quarantine tallies, failed point labels — all zero/
empty on a clean run), so BENCH JSON stays comparable under partial
failure instead of the record simply not existing.

Besides wall-clock, the record carries kernel-level throughput: each grid
point is measured once serially (``point_stats``: events executed,
seconds, events/sec, the simulation kernel's label) and a fixed *kernel
shootout* races all registered kernels on the affine-heavy ``sweep``
workload, asserting their results stay bit-identical while recording the
speedups (the number the CI kernel gate bounds).  Records in an output
directory form a trajectory: :func:`compare_with_previous` diffs a fresh
record against the latest committed one and merely warns when the
trajectory is empty.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Optional, Sequence, TextIO

from ..experiments.config import ExperimentConfig, default_config
from ..experiments.runner import Runner
from .cache import ResultCache
from .executor import ExperimentExecutor, RunPoint, execute_point
from .grid import GRID_FIGURES, all_figure_points
from .serialize import SCHEMA_VERSION, canonical_dumps, run_result_to_dict
from .supervise import CampaignSupervisor, SupervisorPolicy

__all__ = [
    "QUICK_FIGURES",
    "SHOOTOUT_WORKLOAD",
    "SHOOTOUT_SCALE",
    "run_bench",
    "kernel_shootout",
    "profile_grid",
    "write_bench_record",
    "latest_bench_record",
    "compare_with_previous",
]

#: Small but representative subset for CI smoke runs: baselines plus a
#: scheme compile + full policy grid for one figure.
QUICK_FIGURES = ("table3", "fig12a", "fig12b", "fig12c")

#: The kernel shootout always runs this (workload, scale): ``sweep`` is
#: the affine-heavy speedup probe (long certified compute phases for the
#: analytic kernel, dense lockstep ticks for the calendar queue), and the
#: fixed scale keeps shootout numbers comparable PR-over-PR regardless of
#: what ``--scale`` the grid passes used.  2.0 makes the measured run
#: long enough (~5×10^5 events, seconds of wall-clock per kernel) that
#: neither per-point fixed costs nor scheduler noise drown the kernels
#: being compared.
SHOOTOUT_WORKLOAD = "sweep"
SHOOTOUT_SCALE = 2.0


def _time_serial(points: Sequence[RunPoint], verify: bool) -> float:
    """One cold serial pass through the grid."""
    runner = Runner(points[0].config)
    start = time.perf_counter()  # det: wall-clock duration is the benchmark's measurement
    for point in points:
        execute_point(runner, point, verify=verify)
    return time.perf_counter() - start  # det: wall-clock duration is the benchmark's measurement


def _measure_trace_overhead(
    points: Sequence[RunPoint], trace_path: Path, repeats: int
) -> tuple[float, float]:
    """Paired per-point measurement of lifecycle-tracing overhead.

    Returns ``(traced_seconds, overhead)``.  Machine throughput on
    shared runners drifts by 10-25% on a timescale of seconds — far more
    than the few percent being measured — so whole-pass comparisons are
    hopeless.  Instead each point is run back to back untraced and
    traced (order alternating by index so drift inside a pair cancels on
    average), both through :meth:`Runner.run_instrumented` so neither
    side touches the memo, on a runner whose compile/trace memos were
    warmed first.  The ratio of the summed halves is one estimate; the
    median over ``repeats`` estimates discards pairs that a drift edge
    split.  Verification is excluded from both halves (it is identical
    work either way), which only makes the reported ratio stricter.
    """
    from ..obs.base import Observability
    from ..obs.tracer import JsonlTracer

    runner = Runner(points[0].config)
    null_obs = Observability()
    for point in points:  # warm compile/trace memos, untimed
        runner.run_instrumented(
            point.workload, point.policy, point.scheme, null_obs,
            config=point.config,
        )
    ratios = []
    traced_seconds = []
    for _ in range(repeats):
        tracer = JsonlTracer(trace_path)  # rewrite: keep the last pass
        traced_obs = Observability(tracer=tracer)
        untraced = traced = 0.0
        try:
            for index, point in enumerate(points):
                tracer.set_context(point=point.label())
                order = ((null_obs, False), (traced_obs, True))
                if index % 2:
                    order = order[::-1]
                for obs, is_traced in order:
                    start = time.perf_counter()  # det: wall-clock duration is the benchmark's measurement
                    runner.run_instrumented(
                        point.workload, point.policy, point.scheme, obs,
                        config=point.config,
                    )
                    elapsed = time.perf_counter() - start  # det: wall-clock duration is the benchmark's measurement
                    if is_traced:
                        traced += elapsed
                    else:
                        untraced += elapsed
        finally:
            tracer.close()
        if untraced > 0:
            ratios.append(traced / untraced - 1.0)
        traced_seconds.append(traced)
    ratios.sort()
    mid = len(ratios) // 2
    median = (
        ratios[mid]
        if len(ratios) % 2
        else (ratios[mid - 1] + ratios[mid]) / 2
    )
    return min(traced_seconds), median


def _envelope_widths(cfg: ExperimentConfig, workloads: Sequence[str]) -> list:
    """Static energy-envelope tightness for the benched workloads.

    Pure analysis (no simulation), so it adds milliseconds to a bench
    pass; the widths ride along in the BENCH record to give envelope
    tightness the same PR-over-PR trajectory the wall-clock numbers have.
    """
    from ..analysis.energy import CORPUS_POLICIES, analyze_energy

    runner = Runner(cfg)
    rows = []
    for app in workloads:
        trace = runner.trace(app)
        book = runner.compilation(app).book
        for policy in CORPUS_POLICIES:
            for scheme in (False, True):
                env = analyze_energy(
                    trace, cfg, policy, scheme,
                    book=book if scheme else None,
                ).envelope
                rows.append({
                    "workload": app,
                    "policy": policy,
                    "scheme": scheme,
                    "width_j": round(env.width_j, 1),
                    "relative_width": round(env.relative_width, 4),
                })
    return rows


def _point_throughput(points: Sequence[RunPoint]) -> tuple[list[dict], float]:
    """Per-point kernel throughput: one measured serial pass.

    Returns ``(rows, aggregate_events_per_sec)``.  Each point runs once
    through :meth:`Runner.measure` (memo- and cache-bypassing, trace and
    compilation warmed untimed), so the seconds cover simulation only.
    """
    runner = Runner(points[0].config)
    rows: list[dict] = []
    total_events = 0
    total_seconds = 0.0
    for point in points:
        _, stats = runner.measure(
            point.workload, point.policy, point.scheme, config=point.config
        )
        rows.append({
            "point": point.label(),
            "kernel": stats["kernel"],
            "events": stats["events"],
            "seconds": round(stats["seconds"], 4),
            "events_per_sec": round(stats["events_per_sec"], 1),
            "slots_collapsed": stats["slots_collapsed"],
        })
        total_events += stats["events"]
        total_seconds += stats["seconds"]
    aggregate = total_events / total_seconds if total_seconds > 0 else 0.0
    return rows, aggregate


def kernel_shootout(
    config: Optional[ExperimentConfig] = None, repeats: int = 3
) -> dict:
    """Race every registered kernel on the shootout point; assert identity.

    Each kernel simulates ``sweep`` at :data:`SHOOTOUT_SCALE` ``repeats``
    times with the best wall-clock kept — the comparison wants each
    kernel's honest capability, not scheduler noise — and the repeats are
    *interleaved* across kernels (heap, calendar, analytic, heap, …) so
    slow machine-throughput drift hits every kernel alike instead of
    whichever one happened to run last.  The distilled results must be
    bit-identical across kernels — that is the kernels' contract, and a
    benchmark quietly racing kernels that disagree would be meaningless —
    so any divergence raises ``RuntimeError`` instead of producing a
    record.
    """
    from ..sim.kernels import kernel_names

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1: {repeats}")
    base = (config or default_config()).scaled(
        workload_scale=SHOOTOUT_SCALE, fault_plan=None
    )
    names = kernel_names()
    runners = {name: Runner(base.scaled(kernel=name)) for name in names}
    best: dict[str, dict] = {}
    per_rep: dict[str, list[float]] = {name: [] for name in names}
    canonical: dict[str, str] = {}
    for _ in range(repeats):
        for kernel in names:
            result, stats = runners[kernel].measure(
                SHOOTOUT_WORKLOAD, "simple", False
            )
            per_rep[kernel].append(stats["seconds"])
            if kernel not in best or stats["seconds"] < best[kernel]["seconds"]:
                best[kernel] = stats
            canonical[kernel] = canonical_dumps(run_result_to_dict(result))
    kernels = {
        kernel: {
            "seconds": round(best[kernel]["seconds"], 4),
            "events": best[kernel]["events"],
            "events_per_sec": round(best[kernel]["events_per_sec"], 1),
            "effective_events_per_sec": round(
                best[kernel]["effective_events_per_sec"], 1
            ),
            "slots_collapsed": best[kernel]["slots_collapsed"],
        }
        for kernel in names
    }
    reference = canonical["heap"]
    for kernel, doc in canonical.items():
        if doc != reference:
            raise RuntimeError(
                f"kernel {kernel!r} diverged from the heap kernel on the "
                f"shootout point ({SHOOTOUT_WORKLOAD} @ {SHOOTOUT_SCALE}) — "
                "results must be bit-identical"
            )
    heap_seconds = kernels["heap"]["seconds"]
    for kernel, row in kernels.items():
        row["speedup_vs_heap"] = round(
            heap_seconds / row["seconds"] if row["seconds"] > 0 else 0.0, 2
        )
        # Paired speedup: ratio within each interleaved repeat, median
        # kept.  Repeats run back to back, so machine-throughput drift
        # cancels inside a pair — this is the robust ordering statistic
        # the CI kernel gate consumes (best-of seconds are each kernel's
        # headline, but their ratio inherits both tails' noise).
        ratios = sorted(
            h / k
            for h, k in zip(per_rep["heap"], per_rep[kernel])
            if k > 0
        )
        mid = len(ratios) // 2
        median = (
            ratios[mid]
            if len(ratios) % 2
            else (ratios[mid - 1] + ratios[mid]) / 2
        )
        row["paired_speedup_vs_heap"] = round(median, 3)
    return {
        "workload": SHOOTOUT_WORKLOAD,
        "scale": SHOOTOUT_SCALE,
        "repeats": repeats,
        "identical": True,
        "kernels": kernels,
    }


def profile_grid(
    points: Sequence[RunPoint], top: int = 12
) -> list[tuple[str, str]]:
    """cProfile each grid point's simulation; ``[(label, table)]``.

    Profiling runs serially on a warmed runner so the table shows the
    simulation hot path, not trace/compile construction.  Output is for
    humans chasing a regression — it never lands in the BENCH record
    (profiler tables are machine- and load-dependent).
    """
    import cProfile
    import io
    import pstats

    runner = Runner(points[0].config)
    blocks: list[tuple[str, str]] = []
    for point in points:
        runner.trace(point.workload, point.config)
        if point.scheme:
            runner.compilation(point.workload, point.config)
        profiler = cProfile.Profile()
        profiler.enable()
        runner.measure(
            point.workload, point.policy, point.scheme, config=point.config
        )
        profiler.disable()
        buf = io.StringIO()
        pstats.Stats(profiler, stream=buf).sort_stats("tottime").print_stats(
            top
        )
        blocks.append((point.label(), buf.getvalue().rstrip()))
    return blocks


def _record_timestamp(path: Path) -> "datetime.datetime":
    """The UTC instant a ``BENCH_<stamp>.json`` name encodes.

    Current records carry a ``Z``-suffixed UTC stamp; legacy records
    (pre-UTC fix) carry a naive local stamp, which is read *as if* UTC —
    the best available fallback, and exactly what the old lexical
    ordering silently assumed.  Unparseable names sort to the epoch so a
    stray file can never shadow a real record."""
    import datetime

    stem = path.name[len("BENCH_"):]
    if stem.endswith(".json"):
        stem = stem[: -len(".json")]
    for fmt in ("%Y%m%dT%H%M%SZ", "%Y%m%dT%H%M%S"):
        try:
            parsed = datetime.datetime.strptime(stem, fmt)
        except ValueError:
            continue
        return parsed.replace(tzinfo=datetime.timezone.utc)
    return datetime.datetime.min.replace(tzinfo=datetime.timezone.utc)


def latest_bench_record(
    out_dir: Path, exclude: Optional[Path] = None
) -> Optional[Path]:
    """Newest ``BENCH_*.json`` under ``out_dir`` by *parsed* timestamp,
    skipping ``exclude`` — normally the record just written, which must
    not compare against itself.

    Selection is by :func:`_record_timestamp`, not lexical name order:
    records written before the UTC fix carry naive local stamps, and a
    naive stamp from a timezone ahead of UTC sorts lexically *after* a
    newer UTC one — picking the wrong "previous" record.  Name order
    only breaks ties."""
    out_dir = Path(out_dir)
    if not out_dir.is_dir():
        return None
    candidates = [
        p for p in sorted(out_dir.glob("BENCH_*.json"))
        if exclude is None or p.resolve() != Path(exclude).resolve()
    ]
    if not candidates:
        return None
    return max(candidates, key=lambda p: (_record_timestamp(p), p.name))


def compare_with_previous(
    record: dict,
    out_dir: Path,
    exclude: Optional[Path] = None,
    out: Optional[TextIO] = None,
) -> Optional[dict]:
    """Diff ``record`` against the latest prior record in ``out_dir``.

    Returns the comparison dict (``None`` when the trajectory is empty —
    a *warning*, never an error: the first bench of a fresh checkout
    seeds the trajectory, it has nothing to regress against).  Unreadable
    or schema-less prior records also warn instead of crashing: a stale
    trajectory must never block a fresh measurement.
    """
    stream = out if out is not None else sys.stderr
    previous_path = latest_bench_record(out_dir, exclude=exclude)
    if previous_path is None:
        print(
            f"[bench] warning: no prior BENCH record under {out_dir} — "
            "this record seeds the trajectory",
            file=stream,
        )
        return None
    try:
        previous = json.loads(previous_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(
            f"[bench] warning: cannot read prior record "
            f"{previous_path.name}: {exc}",
            file=stream,
        )
        return None
    comparison: dict = {"previous": previous_path.name, "deltas": {}}
    for key in (
        "serial_seconds",
        "parallel_seconds",
        "warm_seconds",
        "events_per_sec",
    ):
        now, then = record.get(key), previous.get(key)
        if not (
            isinstance(now, (int, float)) and isinstance(then, (int, float))
        ) or then == 0:
            continue
        ratio = now / then - 1.0
        comparison["deltas"][key] = round(ratio, 4)
        print(
            f"[bench] {key}: {then:g} -> {now:g} ({ratio:+.1%} "
            f"vs {previous_path.name})",
            file=stream,
        )
    return comparison


def _server_block(cfg: ExperimentConfig, cache_root: Path) -> dict:
    """Serving-throughput measurement for the BENCH record.

    Spins the scheduling server up in-process on an ephemeral port and
    drives the standard load harness at it (configure → warm → timed
    burst → metrics diff): a small fixed mix at the record's scale, so
    the burst measures the serving path (HTTP framing, queueing,
    coalescing, cache reads) rather than simulation.  The report is the
    load generator's schema-stable dict, embedded verbatim — every
    future PR gets requests/sec and tail latency on the same trajectory
    the wall-clock numbers ride.
    """
    import asyncio

    from ..serve.loadgen import run_inprocess_loadtest

    mix = [
        {"workload": "sar", "policy": "simple", "scheme": False},
        {"workload": "hf", "policy": "simple", "scheme": False},
    ]
    return asyncio.run(
        run_inprocess_loadtest(
            cfg, cache_root, clients=8, requests=4, mix=mix
        )
    )


def _tournament_block(cfg: ExperimentConfig) -> dict:
    """The ``tournament`` block: a reduced policy race per bench record.

    Two workloads × three entrants (one static compiler entrant, one
    pure-online, one hybrid) × {clean, straggler} — small enough to ride
    every bench run, wide enough to put the adaptive policies' energy
    and envelope containment on the trajectory PRs are diffed against.
    """
    from ..experiments.tournament import Entrant, run_tournament

    doc = run_tournament(
        cfg,
        workloads=("sar", "hf"),
        entrants=(
            Entrant("compiler-simple", "simple", scheme=True),
            Entrant("forecast", "forecast", scheme=False),
            Entrant("hybrid", "hybrid", scheme=True),
        ),
        scenarios=("clean", "straggler"),
    )
    return {
        "workloads": doc["workloads"],
        "scenarios": doc["scenarios"],
        "all_contained": doc["all_contained"],
        "winner": doc["leaderboard"][0]["entrant"],
        "leaderboard": doc["leaderboard"],
    }


def run_bench(
    config: Optional[ExperimentConfig] = None,
    figures: Sequence[str] = GRID_FIGURES,
    jobs: int = 4,
    verify: bool = True,
    compare_serial: bool = True,
    cache_dir: Optional[Path] = None,
    trace_path: Optional[Path] = None,
    repeats: int = 1,
    shootout: bool = True,
    server: bool = True,
    tournament: bool = True,
) -> dict:
    """Run the grid benchmark; returns the record (not yet written).

    ``cache_dir`` is wiped of matching entries by using a fresh temporary
    directory when omitted, so the parallel pass is genuinely cold.

    With ``trace_path`` (requires ``compare_serial``), the grid is also
    re-run with lifecycle tracing on and the record gains
    ``traced_seconds`` and ``trace_overhead`` (traced ÷ untraced − 1,
    measured pairwise per point — see :func:`_measure_trace_overhead`) —
    the number the CI gate bounds.  ``repeats`` repeats both the serial
    pass (minimum kept) and the overhead measurement (median kept); the
    CI gate uses ``repeats >= 3`` to ride out noisy shared runners.

    With ``server`` (the default) the record also gains a ``server``
    block: an in-process load-test of the scheduling service (see
    :func:`_server_block`) reporting requests/sec, p50/p99 latency and
    cache hit rate of the serving path.

    With ``tournament`` (the default) the record gains a ``tournament``
    block: the reduced policy race of :func:`_tournament_block`, keyed
    on the winning entrant and per-cell envelope containment.
    """
    cfg = config or default_config()
    points = all_figure_points(cfg, names=figures)

    record: dict = {
        "kind": "repro-bench",
        "schema": SCHEMA_VERSION,
        # UTC with an explicit Z: naive local stamps made the trajectory
        # ordering timezone/DST-dependent (see latest_bench_record).
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),  # det: record timestamp, not simulated state
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "workload_scale": cfg.workload_scale,
        "figures": list(figures),
        "points": len(points),
        "jobs": jobs,
        "verify": verify,
        "kernel": cfg.kernel,
    }

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1: {repeats}")
    record["repeats"] = repeats

    point_stats, aggregate_eps = _point_throughput(points)
    record["point_stats"] = point_stats
    record["events_per_sec"] = round(aggregate_eps, 1)

    if shootout:
        # The shootout is cheap (one workload, three kernels) but feeds a
        # CI ordering gate, so it always gets enough repeats to be stable.
        record["kernel_shootout"] = kernel_shootout(
            cfg, repeats=max(repeats, 3)
        )

    envelopes = _envelope_widths(
        cfg, sorted({point.workload for point in points})
    )
    record["envelopes"] = envelopes
    if envelopes:
        record["envelope_mean_relative_width"] = round(
            sum(e["relative_width"] for e in envelopes) / len(envelopes), 4
        )

    if compare_serial:
        record["serial_seconds"] = round(
            min(_time_serial(points, verify) for _ in range(repeats)), 4
        )
        if trace_path is not None:
            traced_seconds, overhead = _measure_trace_overhead(
                points, Path(trace_path), repeats
            )
            record["traced_seconds"] = round(traced_seconds, 4)
            record["trace_overhead"] = round(overhead, 4)
            record["trace_path"] = str(trace_path)

    tmp = None
    if cache_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-bench-cache-")
        cache_dir = Path(tmp.name)
    try:
        cold_cache = ResultCache(Path(cache_dir))
        executor = ExperimentExecutor(
            jobs=jobs, cache=cold_cache, verify=verify
        )
        supervisor = CampaignSupervisor(
            executor, SupervisorPolicy(keep_going=True)
        )
        start = time.perf_counter()  # det: wall-clock duration is the benchmark's measurement
        report = supervisor.run_points(points)
        record["parallel_seconds"] = round(time.perf_counter() - start, 4)  # det: wall-clock duration is the benchmark's measurement
        record["parallel"] = executor.stats.as_dict()
        # Schema-stable even on clean runs, so BENCH consumers can key on
        # it unconditionally; a partial failure shows up here instead of
        # truncating the record.
        record["failures"] = report.failures_block()

        warm = ExperimentExecutor(
            jobs=jobs, cache=ResultCache(Path(cache_dir)), verify=verify
        )
        start = time.perf_counter()  # det: wall-clock duration is the benchmark's measurement
        warm.run_points(points)
        record["warm_seconds"] = round(time.perf_counter() - start, 4)  # det: wall-clock duration is the benchmark's measurement
        record["warm"] = warm.stats.as_dict()

        if server:
            # Tenants namespace the cache *root*, so the server phase
            # gets its own subtree and cannot disturb the grid entries.
            record["server"] = _server_block(
                cfg, Path(cache_dir) / "serve"
            )
        if tournament:
            record["tournament"] = _tournament_block(cfg)
    finally:
        if tmp is not None:
            tmp.cleanup()

    if compare_serial and record["parallel_seconds"] > 0:
        record["speedup"] = round(
            record["serial_seconds"] / record["parallel_seconds"], 2
        )
    return record


def write_bench_record(record: dict, out_dir: Path) -> Path:
    """Write the record as ``BENCH_<timestamp>.json``; returns the path."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    stamp = record["created"].replace("-", "").replace(":", "")
    path = out_dir / f"BENCH_{stamp}.json"
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    return path
