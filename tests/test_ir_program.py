"""Tests for the loop-nest program IR."""

import pytest

from repro.ir import Compute, FileDecl, Loop, Program, Read, Write, var


def simple_program(n_processes=2, phases=3):
    files = {"data": FileDecl("data", n_processes * phases, 1024)}
    body = [
        Loop("i", 0, phases - 1, body=[
            Read("data", var("p") * phases + var("i")),
            Compute(1.0),
        ]),
    ]
    return Program("simple", n_processes, files, body)


class TestFileDecl:
    def test_size(self):
        f = FileDecl("f", 10, 1024)
        assert f.size_bytes == 10 * 1024

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            FileDecl("f", 0, 1024)
        with pytest.raises(ValueError):
            FileDecl("f", 10, 0)


class TestOps:
    def test_read_coerces_int_block(self):
        r = Read("f", 3)
        assert r.block_at({}) == 3
        assert r.is_affine

    def test_read_affine_block(self):
        r = Read("f", var("i") * 2)
        assert r.block_at({"i": 4}) == 8

    def test_callable_block_is_non_affine(self):
        r = Read("f", lambda env: env["i"] % 7)
        assert not r.is_affine
        assert r.block_at({"i": 9}) == 2

    def test_blocks_must_be_positive(self):
        with pytest.raises(ValueError):
            Read("f", 0, blocks=0)
        with pytest.raises(ValueError):
            Write("f", 0, blocks=-1)

    def test_compute_constant_cost(self):
        c = Compute(2.5)
        assert c.cost_at({}) == 2.5
        assert c.is_affine

    def test_compute_callable_cost(self):
        c = Compute(lambda env: env["i"] * 0.5)
        assert c.cost_at({"i": 4}) == 2.0
        assert not c.is_affine


class TestLoop:
    def test_inclusive_bounds(self):
        loop = Loop("i", 1, 3)
        assert list(loop.iter_range({})) == [1, 2, 3]

    def test_step(self):
        loop = Loop("i", 0, 10, step=5)
        assert list(loop.iter_range({})) == [0, 5, 10]

    def test_negative_step(self):
        loop = Loop("i", 3, 1, step=-1)
        assert list(loop.iter_range({})) == [3, 2, 1]

    def test_zero_step_rejected(self):
        with pytest.raises(ValueError):
            Loop("i", 0, 1, step=0)

    def test_affine_bounds(self):
        loop = Loop("i", var("p"), var("p") + 2)
        assert list(loop.iter_range({"p": 5})) == [5, 6, 7]

    def test_empty_range(self):
        loop = Loop("i", 5, 3)
        assert list(loop.iter_range({})) == []


class TestProgramValidation:
    def test_valid_program_builds(self):
        assert simple_program().name == "simple"

    def test_needs_a_process(self):
        with pytest.raises(ValueError):
            Program("p", 0, {}, [])

    def test_undeclared_file_rejected(self):
        with pytest.raises(ValueError):
            Program("p", 1, {}, [Read("ghost", 0)])

    def test_unbound_subscript_variable_rejected(self):
        files = {"f": FileDecl("f", 10, 1024)}
        with pytest.raises(ValueError):
            Program("p", 1, files, [Read("f", var("i"))])

    def test_unbound_loop_bound_rejected(self):
        files = {"f": FileDecl("f", 10, 1024)}
        with pytest.raises(ValueError):
            Program("p", 1, files, [Loop("i", 0, var("n"), body=[])])

    def test_params_bind_symbols(self):
        files = {"f": FileDecl("f", 10, 1024)}
        prog = Program(
            "p", 1, files,
            [Loop("i", 0, var("n") - 1, body=[Read("f", var("i"))])],
            params={"n": 5},
        )
        assert prog.params["n"] == 5

    def test_p_is_always_bound(self):
        files = {"f": FileDecl("f", 10, 1024)}
        Program("p", 2, files, [Read("f", var("p"))])

    def test_unknown_statement_rejected(self):
        with pytest.raises(TypeError):
            Program("p", 1, {}, ["not a statement"])


class TestAffinity:
    def test_affine_program(self):
        assert simple_program().is_affine

    def test_callable_subscript_makes_non_affine(self):
        files = {"f": FileDecl("f", 10, 1024)}
        prog = Program("p", 1, files, [Read("f", lambda env: 0)])
        assert not prog.is_affine

    def test_callable_compute_cost_stays_affine(self):
        """Costs don't affect dependences, so jittered compute keeps the
        polyhedral path available (§IV-A applies to subscripts)."""
        files = {"f": FileDecl("f", 10, 1024)}
        prog = Program(
            "p", 1, files,
            [Read("f", 0), Compute(lambda env: 0.5)],
        )
        assert prog.is_affine

    def test_io_ops_enumeration(self):
        prog = simple_program()
        ops = prog.io_ops()
        assert len(ops) == 1
        assert isinstance(ops[0], Read)
