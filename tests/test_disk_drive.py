"""Tests for the drive model: service, elevator, spin and RPM transitions."""

import pytest

from repro.disk import DiskRequest
from repro.disk import states as st

from conftest import drain, fast_spec, make_drive, multispeed_fast_spec, submit_read


class TestService:
    def test_single_request_completes(self, sim):
        drive = make_drive(sim)
        done = []
        req = DiskRequest(lba=0, nbytes=64 * 1024, on_complete=done.append)
        drive.submit(req)
        drain(sim, drive)
        assert done == [req]
        assert req.end_time > req.submit_time
        assert drive.stats.requests == 1

    def test_queued_requests_all_complete(self, sim):
        drive = make_drive(sim)
        done = []
        for i in range(10):
            drive.submit(DiskRequest(lba=i * 2**20, nbytes=4096,
                                     on_complete=done.append))
        drain(sim, drive)
        assert len(done) == 10
        # The first request enters service immediately, so the queue peaks
        # at the nine still waiting.
        assert drive.stats.max_queue_depth == 9

    def test_read_write_stats_separate(self, sim):
        drive = make_drive(sim)
        drive.submit(DiskRequest(lba=0, nbytes=1000))
        drive.submit(DiskRequest(lba=0, nbytes=2000, is_write=True))
        drain(sim, drive)
        assert drive.stats.reads == 1
        assert drive.stats.writes == 1
        assert drive.stats.bytes_read == 1000
        assert drive.stats.bytes_written == 2000

    def test_sequential_hint_is_faster(self, sim):
        d1 = make_drive(sim)
        d2 = make_drive(sim)
        r1 = DiskRequest(lba=50 * 2**30, nbytes=64 * 1024)
        r2 = DiskRequest(lba=50 * 2**30, nbytes=64 * 1024, sequential_hint=True)
        d1.submit(r1)
        d2.submit(r2)
        drain(sim, d1)
        d2.finalize()
        assert r2.response_time < r1.response_time

    def test_elevator_serves_sweep_order(self, sim):
        drive = make_drive(sim)
        order = []
        # Pin the head at cylinder 0 with a long transfer so the other
        # three requests queue up behind it.
        drive.submit(DiskRequest(lba=0, nbytes=2**26))
        cap = drive.spec.capacity_bytes
        for name, lba in (("far", cap - 2**21), ("near", 2**21),
                          ("mid", cap // 2)):
            drive.submit(DiskRequest(lba=lba, nbytes=4096,
                                     on_complete=lambda r, n=name: order.append(n)))
        drain(sim, drive)
        assert order == ["near", "mid", "far"]

    def test_idle_periods_between_bursts(self, sim):
        drive = make_drive(sim)
        submit_read(sim, drive, 0.0)
        submit_read(sim, drive, 10.0)
        drain(sim, drive)
        periods = drive.idle_periods()
        assert any(p > 9.0 for p in periods)

    def test_idle_period_intervals_match_lengths(self, sim):
        drive = make_drive(sim)
        submit_read(sim, drive, 0.0)
        submit_read(sim, drive, 5.0)
        drain(sim, drive)
        lengths = drive.idle_periods()
        intervals = drive.idle_period_intervals()
        assert [round(d, 9) for _s, d in intervals] == [
            round(d, 9) for d in lengths
        ]


class TestSpinDown:
    def test_spin_down_then_wake_on_request(self, sim):
        drive = make_drive(sim)
        submit_read(sim, drive, 0.0)
        sim.schedule(1.0, drive.spin_down)
        req = submit_read(sim, drive, 20.0)
        drain(sim, drive)
        # Request waited for the spin-up.
        assert req.response_time >= drive.spec.spin_up_time
        assert drive.stats.spin_downs == 1
        assert drive.stats.spin_ups == 1
        assert drive.timeline.time_in_state(st.STANDBY) > 0

    def test_spin_down_refused_while_busy(self, sim):
        drive = make_drive(sim)
        drive.submit(DiskRequest(lba=0, nbytes=2**26))  # long transfer
        assert drive.spin_down() is False

    def test_spin_down_refused_in_standby(self, sim):
        drive = make_drive(sim)
        assert drive.spin_down() is True
        sim.run()
        assert drive.spin_down() is False

    def test_abort_mid_spin_down_costs_partial_recovery(self, sim):
        spec = fast_spec(spin_down_time=10.0, spin_up_time=16.0)
        drive = make_drive(sim, spec)
        submit_read(sim, drive, 0.0)
        sim.schedule(1.0, drive.spin_down)
        # Arrives 5s into the 10s spin-down: recovery should be about
        # half the full spin-up, far less than the 26s full cycle.
        req = submit_read(sim, drive, 6.0)
        drain(sim, drive)
        assert drive.stats.aborted_spin_downs == 1
        assert drive.stats.spin_ups == 0  # no full spin-up
        assert req.response_time < spec.spin_down_time + spec.spin_up_time
        assert req.response_time >= 0.4 * spec.spin_up_time

    def test_request_just_after_standby_entry_full_spin_up(self, sim):
        spec = fast_spec(spin_down_time=1.0, spin_up_time=2.0)
        drive = make_drive(sim, spec)
        drive.spin_down()
        req = submit_read(sim, drive, 5.0)
        drain(sim, drive)
        assert req.response_time >= spec.spin_up_time

    def test_proactive_spin_up(self, sim):
        spec = fast_spec(spin_down_time=1.0, spin_up_time=2.0)
        drive = make_drive(sim, spec)
        drive.spin_down()
        sim.schedule(5.0, drive.spin_up)
        req = submit_read(sim, drive, 10.0)
        drain(sim, drive)
        # Disk was awake again before the request: no spin-up exposure.
        assert req.response_time < 1.0

    def test_energy_lower_with_long_standby(self, sim):
        drive = make_drive(sim)
        submit_read(sim, drive, 0.0)
        submit_read(sim, drive, 500.0)
        drain(sim, drive)
        idle_energy = drive.energy()

        sim2 = type(sim)()
        drive2 = make_drive(sim2)
        submit_read(sim2, drive2, 0.0)
        sim2.schedule(1.0, drive2.spin_down)
        submit_read(sim2, drive2, 500.0)
        drain(sim2, drive2)
        # Compare the same horizon.
        from repro.metrics import energy_until
        horizon = 500.0
        assert energy_until(drive2, horizon) < energy_until(drive, horizon)


class TestMultiSpeed:
    def test_request_rpm_walks_ladder(self, sim):
        drive = make_drive(sim, multispeed_fast_spec())
        drive.request_rpm(9_600)
        sim.run()
        assert drive.current_rpm == 9_600
        assert drive.stats.rpm_steps == 2

    def test_rpm_not_on_ladder_rejected(self, sim):
        drive = make_drive(sim, multispeed_fast_spec())
        with pytest.raises(ValueError):
            drive.request_rpm(5_000)

    def test_retarget_mid_ramp(self, sim):
        spec = multispeed_fast_spec(rpm_change_time_per_step=1.0)
        drive = make_drive(sim, spec)
        drive.request_rpm(3_600)
        sim.schedule(1.5, drive.request_rpm, 12_000)  # turn around
        sim.run()
        assert drive.current_rpm == 12_000

    def test_service_at_low_rpm_is_slower(self, sim):
        spec = multispeed_fast_spec()
        fast_drive = make_drive(sim, spec)
        slow_drive = make_drive(sim, spec)
        slow_drive.request_rpm(3_600)
        sim.run()
        r_fast = DiskRequest(lba=2**30, nbytes=2**20)
        r_slow = DiskRequest(lba=2**30, nbytes=2**20)
        fast_drive.submit(r_fast)
        slow_drive.submit(r_slow)
        sim.run()
        assert r_slow.response_time > r_fast.response_time

    def test_request_aborts_ramp_and_settles(self, sim):
        spec = multispeed_fast_spec(rpm_change_time_per_step=2.0)
        drive = make_drive(sim, spec)
        drive.request_rpm(3_600)
        # Arrives mid-first-step: settle time bounds the wait.
        req = submit_read(sim, drive, 0.5)
        sim.run()
        assert req.queue_delay <= drive.ramp_settle_time + 0.01
        drive.finalize()

    def test_ramp_abort_settles_to_nearest_boundary(self, sim):
        spec = multispeed_fast_spec(rpm_change_time_per_step=2.0)
        drive = make_drive(sim, spec)
        drive.request_rpm(3_600)
        submit_read(sim, drive, 1.9)  # 95% through the first step down
        sim.run(until=2.5)
        assert drive.current_rpm == 10_800  # committed to the step target

    def test_ramp_resumes_toward_target_after_service(self, sim):
        spec = multispeed_fast_spec(rpm_change_time_per_step=0.25)
        drive = make_drive(sim, spec)
        drive.request_rpm(3_600)
        submit_read(sim, drive, 0.1)
        sim.run()
        # After serving, the drive kept walking down to the target.
        assert drive.current_rpm == 3_600

    def test_serve_at_low_rpm_false_waits_for_max(self, sim):
        spec = multispeed_fast_spec(rpm_change_time_per_step=0.5)
        drive = make_drive(sim, spec, serve_at_low_rpm=False)
        drive.request_rpm(3_600)
        sim.run()
        req = submit_read(sim, drive, 10.0)
        sim.run()
        # Had to climb all the way back before serving.
        assert req.queue_delay >= 0.5 * 6  # at least most of the climb

    def test_timeline_tracks_rpm_states(self, sim):
        drive = make_drive(sim, multispeed_fast_spec())
        drive.request_rpm(10_800)
        sim.run(until=30.0)
        drive.finalize()
        states = {iv.state for iv in drive.timeline.intervals()}
        assert any(s.startswith("rpm_down") for s in states)
        assert "idle@10800" in states
