"""Tests for disk specifications (Table II values, DRPM ladder, powers)."""

import pytest

from repro.disk import TABLE2_DISK, DiskSpec, table2_multispeed_spec


class TestTable2Values:
    def test_power_values_match_table2(self):
        spec = TABLE2_DISK
        assert spec.idle_power == 17.1
        assert spec.active_power == 36.6
        assert spec.seek_power == 32.1
        assert spec.standby_power == 7.2
        assert spec.spin_up_power == 44.8

    def test_transition_times_match_table2(self):
        assert TABLE2_DISK.spin_up_time == 16.0
        assert TABLE2_DISK.spin_down_time == 10.0

    def test_capacity_100gb(self):
        assert TABLE2_DISK.capacity_bytes == 100 * 2**30

    def test_single_speed_by_default(self):
        assert not TABLE2_DISK.is_multispeed
        assert TABLE2_DISK.rpm_levels == (12_000,)

    def test_multispeed_ladder_matches_table2(self):
        spec = table2_multispeed_spec()
        assert spec.is_multispeed
        assert spec.rpm_levels == (
            12_000, 10_800, 9_600, 8_400, 7_200, 6_000, 4_800, 3_600
        )


class TestValidation:
    def test_min_rpm_above_max_rejected(self):
        with pytest.raises(ValueError):
            DiskSpec(min_rpm=13_000)

    def test_non_divisible_rpm_range_rejected(self):
        with pytest.raises(ValueError):
            DiskSpec(min_rpm=3_600, rpm_step=1_000)

    def test_zero_step_rejected(self):
        with pytest.raises(ValueError):
            DiskSpec(rpm_step=0)


class TestQuadraticPowerModel:
    """Eq. 1: motor power scales with the square of angular velocity."""

    def test_scale_at_max_is_one(self):
        assert TABLE2_DISK.rpm_scale(12_000) == 1.0

    def test_scale_quadratic(self):
        assert TABLE2_DISK.rpm_scale(6_000) == pytest.approx(0.25)
        assert TABLE2_DISK.rpm_scale(3_600) == pytest.approx(0.09)

    def test_idle_power_at_min_speed(self):
        spec = table2_multispeed_spec()
        assert spec.idle_power_at(3_600) == pytest.approx(17.1 * 0.09)

    def test_active_power_keeps_electronics_fixed(self):
        spec = table2_multispeed_spec()
        electronics = 36.6 - 17.1
        assert spec.active_power_at(3_600) == pytest.approx(
            17.1 * 0.09 + electronics
        )

    def test_power_monotone_in_rpm(self):
        spec = table2_multispeed_spec()
        powers = [spec.idle_power_at(r) for r in spec.rpm_levels]
        assert powers == sorted(powers, reverse=True)

    def test_rpm_change_power_up_exceeds_down(self):
        spec = table2_multispeed_spec()
        up = spec.rpm_change_power(10_800, 12_000)
        down = spec.rpm_change_power(12_000, 10_800)
        assert up > down

    def test_rpm_change_time_linear_in_steps(self):
        spec = table2_multispeed_spec()
        one = spec.rpm_change_time(12_000, 10_800)
        full = spec.rpm_change_time(12_000, 3_600)
        assert full == pytest.approx(7 * one)


class TestTiming:
    def test_rotation_time_at_12000(self):
        assert TABLE2_DISK.rotation_time() == pytest.approx(0.005)

    def test_rotational_latency_is_half_rotation(self):
        assert TABLE2_DISK.avg_rotational_latency() == pytest.approx(0.0025)

    def test_latency_grows_at_lower_speed(self):
        spec = table2_multispeed_spec()
        assert spec.avg_rotational_latency(3_600) == pytest.approx(
            spec.avg_rotational_latency(12_000) * (12_000 / 3_600)
        )

    def test_transfer_rate_linear_in_rpm(self):
        spec = table2_multispeed_spec()
        assert spec.transfer_rate(6_000) == pytest.approx(
            spec.transfer_rate(12_000) / 2
        )

    def test_transfer_time_bus_capped(self):
        # A transfer can never beat the bus.
        spec = DiskSpec(internal_transfer_mbps=1000.0, bus_bandwidth_mbps=160.0)
        t = spec.transfer_time(16 * 2**20)
        assert t == pytest.approx(16 * 2**20 / (160 * 1e6))

    def test_seek_time_zero_for_zero_distance(self):
        assert TABLE2_DISK.seek_time(0.0) == 0.0

    def test_seek_time_monotone(self):
        ds = [0.01, 0.1, 0.3, 0.5, 0.8, 1.0]
        times = [TABLE2_DISK.seek_time(d) for d in ds]
        assert times == sorted(times)

    def test_full_stroke_equals_max(self):
        assert TABLE2_DISK.seek_time(1.0) == pytest.approx(
            TABLE2_DISK.max_seek_time
        )

    def test_seek_beyond_full_clamped(self):
        assert TABLE2_DISK.seek_time(2.0) == TABLE2_DISK.seek_time(1.0)


class TestBreakeven:
    def test_breakeven_exceeds_transition_time(self):
        be = TABLE2_DISK.breakeven_idle_seconds()
        assert be > TABLE2_DISK.spin_up_time + TABLE2_DISK.spin_down_time

    def test_breakeven_balances_energy(self):
        spec = TABLE2_DISK
        be = spec.breakeven_idle_seconds()
        idle_energy = spec.idle_power * be
        cycle = (
            spec.spin_down_energy
            + spec.spin_up_energy
            + spec.standby_power * (be - spec.spin_down_time - spec.spin_up_time)
        )
        assert idle_energy == pytest.approx(cycle)

    def test_breakeven_infinite_when_standby_not_cheaper(self):
        spec = DiskSpec(standby_power=17.1)
        assert spec.breakeven_idle_seconds() == float("inf")

    def test_with_multispeed_copies(self):
        spec = TABLE2_DISK.with_multispeed()
        assert spec.is_multispeed
        assert TABLE2_DISK.min_rpm == 12_000  # original untouched
