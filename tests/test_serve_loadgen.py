"""Tests for the load harness (``repro.serve.loadgen``)."""

import asyncio

import pytest

from repro.experiments import ExperimentConfig
from repro.serve import LoadgenConfig, default_mix, run_inprocess_loadtest
from repro.serve.loadgen import _percentile

TINY = ExperimentConfig(workload_scale=0.05)

MIX_ONE = [{"workload": "sar", "policy": "simple", "scheme": False}]


class TestPercentile:
    def test_empty_sample(self):
        assert _percentile([], 0.99) == 0.0

    def test_single_sample(self):
        assert _percentile([7.0], 0.50) == 7.0
        assert _percentile([7.0], 0.99) == 7.0

    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]  # 1..100
        assert _percentile(values, 0.50) == 50.0
        assert _percentile(values, 0.99) == 99.0
        assert _percentile(values, 1.0) == 100.0


class TestDefaultMix:
    def test_every_app_scheme_combination(self):
        mix = default_mix(apps=("sar",), schemes=(False, True))
        assert mix == [
            {"workload": "sar", "policy": "simple", "scheme": False},
            {"workload": "sar", "policy": "simple", "scheme": True},
        ]


class TestLoadgenConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [{"clients": 0}, {"requests": 0}, {"mix": ()}],
    )
    def test_bad_knobs_rejected(self, overrides):
        with pytest.raises(ValueError):
            LoadgenConfig(**overrides)


class TestInprocessLoadtest:
    def test_small_warm_burst_is_clean(self, tmp_path):
        report = asyncio.run(
            run_inprocess_loadtest(
                TINY,
                tmp_path / "cache",
                clients=4,
                requests=2,
                mix=MIX_ONE,
            )
        )
        assert report["requests"] == 8
        assert report["ok"] == 8
        assert report["failed"] == 0
        assert report["errors"] == []
        assert report["warmed"] == len(MIX_ONE)
        # The warm pass did the only simulation; the timed burst is all
        # cache hits (and/or coalesced onto in-flight duplicates).
        assert report["simulated"] == 0
        assert report["cache_hits"] + report["batched"] == 8
        assert report["cache_hit_rate"] == 1.0
        assert report["rps"] > 0
        assert report["seconds"] > 0

    def test_report_schema_is_stable(self, tmp_path):
        report = asyncio.run(
            run_inprocess_loadtest(
                TINY, tmp_path / "cache", clients=1, requests=1, mix=MIX_ONE
            )
        )
        expected = {
            "clients", "requests_per_client", "requests", "ok", "failed",
            "rejected_retries", "warmed", "seconds", "rps", "latency_ms",
            "cache_hit_rate", "batched", "simulated", "cache_hits",
            "queue_depth_peak", "errors",
        }
        assert set(report) == expected
        assert set(report["latency_ms"]) == {"p50", "p99", "mean", "max"}
        assert report["latency_ms"]["p99"] >= report["latency_ms"]["p50"]

    def test_cold_burst_simulates_at_least_once(self, tmp_path):
        report = asyncio.run(
            run_inprocess_loadtest(
                TINY,
                tmp_path / "cache",
                clients=2,
                requests=1,
                mix=MIX_ONE,
                warm=False,
            )
        )
        assert report["warmed"] == 0
        assert report["ok"] == 2
        assert report["failed"] == 0
        # Two identical concurrent submissions, cold cache: exactly one
        # simulation — the second rides the first (coalesce or hit).
        assert report["simulated"] == 1
