"""Tests for scheduling tables and the compiler driver."""

import pytest

from repro.core import (
    CompilerOptions,
    DataAccess,
    ScheduleBook,
    ScheduleTable,
    SlackOptions,
    compile_schedule,
)
from repro.ir import Compute, FileDecl, Loop, Program, Read, Write, var
from repro.storage import StripedFile, StripeMap

KB = 1024


def access(aid, process, slot, original=None):
    a = DataAccess(
        aid=aid, process=process, original_slot=original or slot,
        begin=0, end=max(slot, original or slot), signature=0b1,
    )
    a.scheduled_slot = slot
    return a


class TestScheduleTable:
    def test_add_and_lookup(self):
        table = ScheduleTable(process=0)
        a = access(0, 0, 3)
        table.add(a)
        assert table.at(3) == [a]
        assert table.at(4) == []
        assert len(table) == 1

    def test_wrong_process_rejected(self):
        table = ScheduleTable(process=0)
        with pytest.raises(ValueError):
            table.add(access(0, 1, 3))

    def test_unscheduled_rejected(self):
        table = ScheduleTable(process=0)
        a = DataAccess(aid=0, process=0, original_slot=1, begin=0, end=1,
                       signature=0b1)
        with pytest.raises(ValueError):
            table.add(a)

    def test_iteration_in_slot_order(self):
        table = ScheduleTable(process=0)
        for slot in (7, 2, 5):
            table.add(access(slot, 0, slot))
        assert [slot for slot, _a in table] == [2, 5, 7]


class TestScheduleBook:
    def test_from_accesses_partitions_by_process(self):
        accesses = [access(i, i % 2, i) for i in range(6)]
        book = ScheduleBook.from_accesses(accesses, n_processes=2, n_slots=10)
        assert len(book.table_for(0)) == 3
        assert len(book.table_for(1)) == 3
        assert book.access_count() == 6

    def test_unknown_process_raises(self):
        book = ScheduleBook.from_accesses([], n_processes=1, n_slots=5)
        with pytest.raises(KeyError):
            book.table_for(3)

    def test_moved_count(self):
        a = access(0, 0, 2, original=8)
        b = access(1, 0, 5, original=5)
        book = ScheduleBook.from_accesses([a, b], n_processes=1, n_slots=10)
        assert book.moved_count() == 1

    def test_all_accesses_sorted_by_aid(self):
        accesses = [access(i, 0, 9 - i) for i in range(5)]
        book = ScheduleBook.from_accesses(accesses, n_processes=1, n_slots=10)
        assert [a.aid for a in book.all_accesses()] == list(range(5))


def sample_program(n_processes=4, phases=8):
    files = {
        "in": FileDecl("in", n_processes * phases, 128 * KB),
        "out": FileDecl("out", n_processes * phases, 128 * KB),
    }
    body = [
        Loop("i", 0, phases - 1, body=[
            Read("in", var("p") * phases + var("i")),
            Compute(0.5), Compute(0.5), Compute(0.5),
            Write("out", var("p") * phases + var("i")),
            Compute(0.5),
        ]),
    ]
    return Program("sample", n_processes, files, body)


class TestCompileSchedule:
    def compile(self, program=None, **options):
        program = program or sample_program()
        smap = StripeMap(64 * KB, 8)
        files = {
            name: StripedFile(name, decl.size_bytes)
            for name, decl in program.files.items()
        }
        return compile_schedule(
            program, smap, files, CompilerOptions(**options)
        )

    def test_every_read_scheduled(self):
        result = self.compile()
        assert all(a.is_scheduled for a in result.accesses)
        assert len(result.accesses) == 32  # 4 procs x 8 reads

    def test_windows_respected(self):
        result = self.compile()
        for a in result.accesses:
            assert a.begin <= a.scheduled_slot <= max(a.end, a.original_slot)

    def test_book_matches_accesses(self):
        result = self.compile()
        assert result.book.access_count() == len(result.accesses)
        assert result.book.n_slots == result.trace.n_slots

    def test_moves_happen_with_slack(self):
        result = self.compile()
        assert result.moved > 0
        assert result.stats()["early_prefetches"] > 0

    def test_granularity_flows_through(self):
        fine = self.compile(granularity=1)
        coarse = self.compile(granularity=2)
        assert coarse.trace.n_slots == fine.trace.n_slots // 2

    def test_trace_reuse(self):
        program = sample_program()
        smap = StripeMap(64 * KB, 8)
        files = {
            name: StripedFile(name, decl.size_bytes)
            for name, decl in program.files.items()
        }
        first = compile_schedule(program, smap, files)
        second = compile_schedule(program, smap, files, trace=first.trace)
        assert second.trace is first.trace

    def test_max_slack_bounds_windows(self):
        result = self.compile(slack=SlackOptions(max_slack=3))
        for a in result.accesses:
            assert a.slack_length <= 4

    def test_stats_fields(self):
        stats = self.compile().stats()
        for key in ("accesses", "moved", "early_prefetches", "mean_slack",
                    "max_slack", "n_slots"):
            assert key in stats

    def test_deterministic_compilation(self):
        r1 = self.compile(seed=5)
        r2 = self.compile(seed=5)
        assert [a.scheduled_slot for a in r1.accesses] == [
            a.scheduled_slot for a in r2.accesses
        ]
