"""Race/deadlock detector, capacity analyzer and IR lint."""

from __future__ import annotations

import pytest

from repro.analysis import (
    RuntimeModel,
    analyze_capacity,
    build_wait_graph,
    capacity_profile,
    detect_races,
    lint_program,
    lint_trace,
    verify_schedule,
)
from repro.ir.affine import var
from repro.ir.profiling import trace_program
from repro.ir.program import Compute, FileDecl, Loop, Program, Read, Write
from repro.runtime.scheduler_thread import issue_window, will_prefetch
from test_analysis_verify import BLOCK, compile_fixture, first_access


class TestPureWaitSemantics:
    """The runtime's wait semantics as pure functions (shared with the
    static analyzer — these are the exact predicates the thread runs)."""

    def test_issue_window(self):
        assert issue_window(0, 8) == 0
        assert issue_window(7, 8) == 0
        assert issue_window(8, 8) == 8
        assert issue_window(9, 4) == 8

    def test_issue_window_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            issue_window(3, 0)

    def test_will_prefetch_threshold(self):
        assert will_prefetch(10, 8, 2)
        assert not will_prefetch(10, 9, 2)
        assert not will_prefetch(10, 10, 2)

    def test_will_prefetch_rejects_bad_lead(self):
        with pytest.raises(ValueError):
            will_prefetch(10, 8, 0)


class TestWaitGraph:
    def test_cross_process_prefetches_induce_edges(self):
        result = compile_fixture()
        for a in result.book.all_accesses():
            a.scheduled_slot = a.begin  # earliest legal slot: lead >= 1
        edges = build_wait_graph(result.book, min_lead=1, batch_slots=1)
        assert len(edges) == 8  # every read has a cross-process producer
        by_aid = {a.aid: a for a in result.book.all_accesses()}
        for e in edges:
            assert e.waiter != e.producer
            assert e.requires == by_aid[e.aid].producer[0] + 1
            assert e.issue_slot == by_aid[e.aid].scheduled_slot
            assert e.blocked_at == by_aid[e.aid].original_slot

    def test_min_lead_filters_unprefetched(self):
        result = compile_fixture()
        for a in result.book.all_accesses():
            a.scheduled_slot = a.original_slot  # nothing moved
        assert build_wait_graph(result.book, 2, 8) == []


class TestRaces:
    def test_stock_fixture_has_no_races(self):
        result = compile_fixture()
        diags = detect_races(result.trace, result.book, 2, 8)
        assert not [d for d in diags if d.severity.label == "error"]

    def test_wait_for_cycle_detected(self):
        result = compile_fixture()
        a0 = next(a for a in result.book.all_accesses()
                  if a.process == 0 and a.original_slot == 4)
        a1 = next(a for a in result.book.all_accesses()
                  if a.process == 1 and a.original_slot == 4)
        # Each claims the other's process writes at slot 4 — a crossing
        # pair of producer-waits no execution order can satisfy.
        a0.producer, a0.scheduled_slot = (4, 1), 1
        a1.producer, a1.scheduled_slot = (4, 0), 1
        diags = detect_races(result.trace, result.book, 2, 8)
        codes = {d.code for d in diags}
        assert "RACE001" in codes
        report = verify_schedule(result.trace, result.book)
        assert "RACE001" in report.codes()
        assert report.has_errors

    def test_unbounded_wait_detected(self):
        result = compile_fixture()
        access = next(a for a in result.book.all_accesses()
                      if a.process == 0 and a.original_slot == 7)
        access.producer = (100, 1)  # beyond p1's 8-slot horizon
        access.scheduled_slot = 1
        diags = detect_races(result.trace, result.book, 2, 8)
        assert "RACE002" in {d.code for d in diags}

    def test_wait_on_nonexistent_process(self):
        result = compile_fixture()
        access = first_access(result)
        access.producer = (0, 40)
        access.scheduled_slot = access.original_slot - 2
        diags = detect_races(result.trace, result.book, 2, 8)
        assert "RACE002" in {d.code for d in diags}

    def test_batching_stall_is_a_note(self):
        result = compile_fixture()
        # Consume at slot 7, produced at slot 3: schedule at slot 5 in an
        # 8-wide window starting at 0 — the issue blocks until p1 passes 3.
        access = next(a for a in result.book.all_accesses()
                      if a.process == 0 and a.original_slot == 7)
        access.scheduled_slot = 5
        diags = detect_races(result.trace, result.book, 2, 8)
        stalls = [d for d in diags if d.code == "RACE003"]
        assert stalls and stalls[0].severity.label == "info"


def wide_read_program() -> Program:
    """One process, four 4-block input reads (no producers)."""
    j = var("j")
    files = {"g": FileDecl("g", 16, BLOCK)}
    body = [Loop("j", 0, 3, body=[
        Read("g", j * 4, blocks=4), Compute(1.0),
    ])]
    return Program("wide", 1, files, body)


def compile_wide():
    from repro.core.compiler import CompilerOptions, compile_schedule
    from repro.storage.striping import StripedFile, StripeMap

    program = wide_read_program()
    trace = trace_program(program)
    stripe_map = StripeMap(BLOCK, 2)
    files = {n: StripedFile(n, d.size_bytes) for n, d in program.files.items()}
    return compile_schedule(program, stripe_map, files, CompilerOptions(),
                            trace=trace)


class TestCapacity:
    def test_oversized_access_rejected(self):
        result = compile_wide()
        access = next(a for a in result.book.all_accesses()
                      if a.original_slot == 3)
        access.scheduled_slot = 0  # window [0, 3]: a real prefetch
        report = verify_schedule(
            result.trace, result.book,
            runtime=RuntimeModel(buffer_capacity_blocks=2),
        )
        assert "CAP001" in report.codes()
        assert report.has_errors

    def test_overcommit_is_a_warning(self):
        result = compile_wide()
        for a in result.book.all_accesses():
            if a.original_slot >= 2:
                a.scheduled_slot = 0  # two 4-block fetches live at once
        _profile, diags = analyze_capacity(
            result.trace, result.book, capacity_blocks=4,
            min_lead=2, batch_slots=1,
        )
        (diag,) = [d for d in diags if d.code == "CAP002"]
        assert diag.severity.label == "warning"

    def test_profile_counts_planned_residency(self):
        result = compile_wide()
        access = next(a for a in result.book.all_accesses()
                      if a.original_slot == 3)
        access.scheduled_slot = 0
        profile = capacity_profile(
            result.trace, result.book,
            RuntimeModel(min_lead=2, batch_slots=1,
                         buffer_capacity_blocks=64),
        )
        assert profile.peak_blocks >= 4
        assert profile.fits
        assert profile.per_process_peak[0] == profile.peak_blocks
        # Resident from issue window through the consuming slot.
        assert profile.demand[0] >= 4
        assert profile.demand[3] == 0

    def test_capacity_validates_input(self):
        result = compile_wide()
        with pytest.raises(ValueError):
            analyze_capacity(result.trace, result.book, 0, 2, 8)


def linty_program() -> Program:
    i = var("i")
    files = {
        "in": FileDecl("in", 4, BLOCK),
        "out": FileDecl("out", 4, BLOCK),
        "unused": FileDecl("unused", 2, BLOCK),
    }
    body = [Loop("i", 0, 3, body=[
        Read("in", i), Compute(1.0), Write("out", i),
    ])]
    return Program("linty", 1, files, body)


class TestLint:
    def test_dead_write_and_unused_file(self):
        report = lint_program(trace_program(linty_program()))
        assert {"LINT001", "LINT002"} <= report.codes()
        assert not report.has_errors  # lint findings are notes

    def test_read_back_write_is_live(self):
        i = var("i")
        files = {"t": FileDecl("t", 4, BLOCK)}
        body = [
            Loop("i", 0, 3, body=[Write("t", i), Compute(1.0)]),
            Loop("i", 0, 3, body=[Read("t", i), Compute(1.0)]),
        ]
        trace = trace_program(Program("rw", 1, files, body))
        assert not [d for d in lint_trace(trace) if d.code == "LINT001"]
