"""Power-management policy interface.

A :class:`PowerPolicy` attaches to one :class:`~repro.disk.drive.Drive` and
reacts to three notifications — idle-start, request-arrival and
ramp-complete — by driving the disk's spin-down / spin-up / RPM controls.
Policies own their own timers via the drive's simulator.

The four concrete policies of the paper live in
:mod:`repro.power.spindown` and :mod:`repro.power.multispeed`; the
no-op baseline (the paper's *Default Scheme*) is here.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..disk.drive import Drive

__all__ = ["PowerPolicy", "NoPowerManagement"]


class PowerPolicy:
    """Base class: observes one drive, never acts.

    ``can_spin_down`` / ``can_ramp`` declare which drive controls the
    policy ever exercises.  The static energy analyzer
    (:mod:`repro.analysis.energy`) derives the set of *reachable* power
    states — and hence the certified power floor/ceiling — from these
    flags, so a policy that starts using a new control must also declare
    it here or the analyzer's bounds become unsound for it.
    """

    name = "base"
    #: Policy may enter standby via spin-down (and thus spin up again).
    can_spin_down = False
    #: Policy may ramp a multi-speed (DRPM) disk below max RPM.
    can_ramp = False

    def __init__(self) -> None:
        self.drive: Optional["Drive"] = None
        self._timer: Optional[Event] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, drive: "Drive") -> None:
        """Called by :meth:`Drive.attach_policy`."""
        self.drive = drive

    @property
    def sim(self):
        if self.drive is None:
            raise RuntimeError(f"policy {self.name!r} is not bound to a drive")
        return self.drive.sim

    # ------------------------------------------------------------------
    # Timer helpers
    # ------------------------------------------------------------------
    def _arm_timer(self, delay: float, callback, *args) -> None:
        self._cancel_timer()
        self._timer = self.sim.schedule(delay, callback, *args)

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------------------
    # Notifications (override in subclasses)
    # ------------------------------------------------------------------
    def on_idle_start(self, now: float) -> None:
        """The drive's queue just drained."""

    def on_request_arrival(self, now: float) -> None:
        """A request arrived at a previously idle drive."""

    def on_ramp_complete(self, now: float) -> None:
        """An RPM ramp reached the policy's target while idle."""

    def on_simulation_end(self, now: float) -> None:
        """Final chance to cancel timers / record state."""
        self._cancel_timer()


class NoPowerManagement(PowerPolicy):
    """The paper's *Default Scheme*: the disk idles at full speed forever.

    All energy-saving and performance-degradation percentages in the
    evaluation are reported relative to this policy.
    """

    name = "default"
