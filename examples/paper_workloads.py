#!/usr/bin/env python3
"""Reproduce the heart of the paper's evaluation on two of its workloads.

Runs the ``sar`` (streaming radar) and ``wupwise`` (lattice QCD) models at
a reduced scale through all four disk power-management policies, with and
without the compiler-directed scheduling scheme, and prints the mini
versions of Figures 12(c)/(d) and 13(a)/(b).

Run:  python examples/paper_workloads.py          (about a minute)
      REPRO_SCALE=1.0 python examples/paper_workloads.py   (full size)
"""

from repro.experiments import POLICIES, default_config, make_runner
from repro.metrics import format_percent, format_table

APPS = ("sar", "wupwise")

config = default_config()
print(
    f"platform: {config.n_clients} clients, {config.n_ionodes} I/O nodes, "
    f"stripe {config.stripe_size // 1024}KB, workload scale "
    f"{config.workload_scale}"
)
runner = make_runner(config)

# Baselines (Table III rows for these apps).
rows = []
for app in APPS:
    base = runner.baseline(app)
    rows.append(
        (app, f"{base.execution_time / 60:.1f} min",
         f"{base.energy_joules / 1000:.1f} kJ",
         format_percent(base.idle_cdf.fraction_at_most(100), 0) + " idle ≤100ms")
    )
print()
print(format_table(("app", "exec time", "disk energy", "idle CDF"), rows,
                   title="Default Scheme (no power management)"))

# Policy matrix: energy savings and performance degradation.
for metric, fn, better in (
    ("energy saving", lambda a, p, s: 1 - runner.normalized_energy(a, p, s), "higher"),
    ("perf degradation", runner.degradation, "lower"),
):
    rows = []
    for app in APPS:
        for policy in POLICIES:
            without = fn(app, policy, False)
            with_scheme = fn(app, policy, True)
            rows.append(
                (app, policy, format_percent(without, 1),
                 format_percent(with_scheme, 1))
            )
    print()
    print(format_table(
        ("app", "policy", "without scheme", "with scheme"),
        rows,
        title=f"{metric} vs Default ({better} is better)",
    ))

print(
    "\nExpected shape (paper Figs 12-13): multi-speed (history/staggered) "
    "beats spin-down;\nthe scheme roughly doubles every policy's savings "
    "and softens every degradation."
)
