"""Session driver: wires clients, scheduler threads, storage and network
into one simulator and runs a program trace to completion.

This is the top-level simulation entry point the experiment harness uses.
A :class:`Session` owns everything needed for one run: the simulator, the
storage stack (with one power policy instance per drive), the network, the
per-process clients, and — when the compiler scheme is on — the global
buffer plus one scheduler thread per client.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..core.compiler import CompileResult
from ..core.table import ScheduleBook
from ..disk.specs import DiskSpec
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..ir.profiling import AccessTrace
from ..net.network import Network
from ..obs.base import NULL_OBS, Observability
from ..power.policy import PowerPolicy
from ..ir.dependence import compute_phases
from ..sim.engine import Simulator
from ..sim.kernels import make_kernel
from ..storage.filesystem import ParallelFileSystem
from .buffer import GlobalBuffer
from .client import ClientProcess
from .clock import LocalClocks
from .mpi_io import MPIIO
from .reorder import StragglerAwareReorderer
from .scheduler_thread import SchedulerThread

__all__ = ["SessionConfig", "SessionResult", "Session"]


@dataclass(frozen=True)
class SessionConfig:
    """Shape of the simulated platform (Table II defaults)."""

    n_ionodes: int = 8
    stripe_size: int = 64 * 1024
    cache_bytes: int = 64 * 1024 * 1024
    disks_per_node: int = 1
    raid_level: int = 0
    prefetch_depth: int = 2
    destage_delay: float = 0.5
    network_latency: float = 0.0001
    network_bandwidth_bps: float = 1e9
    buffer_capacity_blocks: int = 512
    scheduler_min_lead: int = 2
    scheduler_batch_slots: int = 8
    #: Straggler-aware client-side reordering of each scheduler issue
    #: window (see :mod:`repro.runtime.reorder`).  Only meaningful with
    #: the scheme on — without scheduler threads there is nothing to
    #: reorder.
    reorder: bool = False
    #: Simulation kernel (see :mod:`repro.sim.kernels`).  All kernels are
    #: bit-identical in results; they differ only in wall-clock speed.
    kernel: str = "heap"


@dataclass
class SessionResult:
    """Outcome of one run."""

    execution_time: float
    drives: list
    pfs: ParallelFileSystem
    network: Network
    mpi_io: MPIIO
    clients: list[ClientProcess]
    scheduler_threads: list[SchedulerThread]
    buffer: Optional[GlobalBuffer]
    sim: Optional[Simulator] = None
    #: The run's fault injector (``None`` on fault-free runs); carries
    #: the fault counters ``repro.obs`` exports as ``faults.*``.
    faults: Optional[FaultInjector] = None

    @property
    def client_finish_times(self) -> list[float]:
        return [c.stats.finish_time for c in self.clients]


class Session:
    """One complete simulation run of a traced program."""

    def __init__(
        self,
        trace: AccessTrace,
        disk_spec: DiskSpec,
        policy_factory: Optional[Callable[[], PowerPolicy]],
        config: SessionConfig = SessionConfig(),
        compile_result: Optional[CompileResult] = None,
        obs: Optional[Observability] = None,
        faults: Optional[FaultPlan] = None,
    ):
        """``compile_result`` turns the software scheme on: its schedule
        book drives one scheduler thread per client.  ``obs`` attaches an
        observability context (tracer and/or metrics registry); the
        default is the shared null context — zero instrumentation cost.
        ``faults`` injects the given fault plan; an empty (or absent)
        plan builds no injector at all, so the run is structurally
        bit-identical to a fault-free one.
        """
        self.trace = trace
        self.config = config
        self.obs = obs if obs is not None else NULL_OBS
        self.fault_plan = faults
        self.faults: Optional[FaultInjector] = None
        if faults is not None and faults.events:
            self.faults = FaultInjector(faults)
        self.sim = make_kernel(config.kernel, obs=self.obs)
        self.obs.tracer.bind_clock(self.sim)
        # Analytic fast path: collapse certified I/O-free slot runs into
        # single events.  Sound only when nothing can observe a client
        # mid-phase: the kernel must opt in, the scheme must be off (with
        # it on, scheduler threads wait on the local clocks *between*
        # slots), no fault injector may perturb timing (an empty plan
        # builds none, preserving the empty≡absent invariant), and the
        # program must be affine so the oracle's phase plan is a proof,
        # not a profile.
        self.phase_plan: dict[int, list[tuple[int, int]]] = {}
        if (
            self.sim.supports_phase_collapse
            and compile_result is None
            and self.faults is None
            and trace.program.is_affine
        ):
            self.phase_plan = compute_phases(trace)
        self.pfs = ParallelFileSystem.build(
            self.sim,
            n_nodes=config.n_ionodes,
            stripe_size=config.stripe_size,
            disk_spec=disk_spec,
            cache_bytes=config.cache_bytes,
            policy_factory=policy_factory,
            disks_per_node=config.disks_per_node,
            raid_level=config.raid_level,
            prefetch_depth=config.prefetch_depth,
            destage_delay=config.destage_delay,
            faults=self.faults,
        )
        # Register program files on the striped FS.
        for decl in trace.program.files.values():
            self.pfs.create_file(decl.name, decl.size_bytes)
        self.network = Network(
            self.sim,
            config.n_ionodes,
            latency=config.network_latency,
            bandwidth_bps=config.network_bandwidth_bps,
            faults=self.faults,
        )
        if self.obs.metrics is not None:
            # Per-link queue-delay histograms are the one metric that must
            # be sampled per transfer; wire them only when a registry is
            # attached so the untracked hot path stays a None check.
            from ..obs.collect import LINK_DELAY_BOUNDS_S

            for i, link in enumerate(self.network.links):
                link.delay_hist = self.obs.metrics.histogram(
                    f"net.link{i}.queue_delay_s", LINK_DELAY_BOUNDS_S
                )
        block_bytes = {
            name: decl.block_bytes for name, decl in trace.program.files.items()
        }
        self.mpi_io = MPIIO(self.sim, self.pfs, self.network, block_bytes)
        self.clocks = LocalClocks(self.sim, trace.program.n_processes)
        self.compile_result = compile_result
        self.buffer: Optional[GlobalBuffer] = None
        self.scheduler_threads: list[SchedulerThread] = []
        self.clients: list[ClientProcess] = []
        # One shared straggler map across every scheduler thread: the
        # simulator is single-threaded, so sharing stays deterministic.
        self.reorderer: Optional[StragglerAwareReorderer] = None
        if config.reorder and compile_result is not None:
            self.reorderer = StragglerAwareReorderer(config.n_ionodes)
        self._build_actors()

    # ------------------------------------------------------------------
    def _build_actors(self) -> None:
        book: Optional[ScheduleBook] = None
        accesses_by_proc_seq: dict[int, dict[int, object]] = {}
        if self.compile_result is not None:
            book = self.compile_result.book
            self.buffer = GlobalBuffer(
                self.sim, self.config.buffer_capacity_blocks
            )
            # Map (process, trace seq) -> DataAccess for client lookups.
            # determine_slacks emits accesses in (process, seq-of-read)
            # order; recover seq from the trace read order per process.
            per_proc_reads: dict[int, list] = {}
            for proc_trace in self.trace.processes:
                per_proc_reads[proc_trace.process] = [
                    io for io in proc_trace.ios if not io.is_write
                ]
            cursor = {p: 0 for p in per_proc_reads}
            for access in self.compile_result.accesses:
                reads = per_proc_reads[access.process]
                io = reads[cursor[access.process]]
                cursor[access.process] += 1
                accesses_by_proc_seq.setdefault(access.process, {})[io.seq] = access

        for proc_trace in self.trace.processes:
            pid = proc_trace.process
            client = ClientProcess(
                self.sim,
                pid,
                proc_trace,
                self.mpi_io,
                self.clocks,
                buffer=self.buffer,
                accesses_by_seq=accesses_by_proc_seq.get(pid, {}),
                phase_runs=self.phase_plan.get(pid),
            )
            self.clients.append(client)
            self.sim.process(client.run(), name=f"client{pid}")
            if book is not None:
                thread = SchedulerThread(
                    self.sim,
                    pid,
                    book.table_for(pid),
                    self.mpi_io,
                    self.clocks,
                    self.buffer,
                    min_lead=self.config.scheduler_min_lead,
                    batch_slots=self.config.scheduler_batch_slots,
                    fetch_timeout=(
                        self.faults.fetch_timeout
                        if self.faults is not None
                        else None
                    ),
                    fetch_retries=(
                        self.faults.fetch_retries
                        if self.faults is not None
                        else 0
                    ),
                    fault_counters=(
                        self.faults.counters
                        if self.faults is not None
                        else None
                    ),
                    reorder=self.reorderer,
                )
                self.scheduler_threads.append(thread)
                self.sim.process(thread.run(), name=f"sched{pid}")

    # ------------------------------------------------------------------
    def run(self, max_events: int = 50_000_000) -> SessionResult:
        """Run to quiescence and return the measured result.

        Execution time is the latest client completion; drive timelines
        are finalized at full drain (metrics clip to the execution window
        as needed).
        """
        self.sim.run(max_events=max_events)
        finish_times = [c.stats.finish_time for c in self.clients]
        if any(t < 0 for t in finish_times):
            raise RuntimeError(
                "simulation drained before all clients finished — "
                "likely a lost completion signal or an event-budget hit"
            )
        execution_time = max(finish_times)
        self.pfs.finalize(self.sim.now)
        return SessionResult(
            execution_time=execution_time,
            drives=self.pfs.all_drives(),
            pfs=self.pfs,
            network=self.network,
            mpi_io=self.mpi_io,
            clients=self.clients,
            scheduler_threads=self.scheduler_threads,
            buffer=self.buffer,
            sim=self.sim,
            faults=self.faults,
        )
