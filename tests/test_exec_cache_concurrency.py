"""Shared-cache concurrency tests (the scheduling-server shape).

The server hands every batch worker a *fresh* :class:`ResultCache` on
the same on-disk root, and separate server processes may share that root
too.  These tests hammer one digest from many threads and many processes
with interleaved ``store`` / ``lookup`` / ``clear`` / ``sweep_orphans``
calls and assert the concurrency contract:

* no call raises;
* no torn reads — every successful ``lookup`` round-trips through
  ``run_result_from_dict`` into a result equal to the stored one
  (atomic tempfile + ``os.replace`` makes partial visibility
  impossible);
* per-instance stats identities hold: ``hits + misses`` equals the
  number of lookups that instance performed.

Plus unit coverage for the corrupt-entry quarantine path that makes the
shared-root story safe against torn *writers from other schemas*.
"""

import json
import threading
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.exec import (
    ResultCache,
    point_digest,
    run_result_to_dict,
)
from repro.experiments import ExperimentConfig, Runner

TINY = ExperimentConfig(workload_scale=0.05)

#: The single point every worker fights over.
POINT = ("sar", "simple", False)


@pytest.fixture(scope="module")
def result():
    return Runner(TINY).run(*POINT)


# ----------------------------------------------------------------------
# Threaded: many cache instances, one root, one digest
# ----------------------------------------------------------------------
class TestThreadedSharedRoot:
    def test_store_lookup_clear_hammer(self, tmp_path, result):
        root = tmp_path / "shared"
        threads = 8
        rounds = 30
        outcomes = [None] * threads
        start = threading.Barrier(threads)

        def hammer(worker_id):
            cache = ResultCache(root)
            lookups = torn = 0
            errors = []
            start.wait()
            for i in range(rounds):
                op = (worker_id + i) % 4
                try:
                    if op in (0, 1):
                        cache.store(TINY, *POINT, result)
                    elif op == 2:
                        lookups += 1
                        got = cache.lookup(TINY, *POINT)
                        if got is not None and got != result:
                            torn += 1
                    else:
                        cache.clear()
                except Exception as exc:  # noqa: BLE001 — contract: no raise
                    errors.append(f"op{op}: {type(exc).__name__}: {exc}")
            outcomes[worker_id] = {
                "errors": errors,
                "torn": torn,
                "lookups": lookups,
                "stats": cache.stats,
            }

        workers = [
            threading.Thread(target=hammer, args=(i,)) for i in range(threads)
        ]
        for t in workers:
            t.start()
        for t in workers:
            t.join(timeout=120)
            assert not t.is_alive(), "hammer thread wedged"

        for outcome in outcomes:
            assert outcome is not None
            assert outcome["errors"] == []
            assert outcome["torn"] == 0
            stats = outcome["stats"]
            # Identity: every lookup was either a hit or a miss; corrupt
            # entries never happen here (all writers write identical
            # bytes atomically).
            assert stats.hits + stats.misses == outcome["lookups"]
            assert stats.invalid == 0
            assert stats.quarantined == 0

        # The root is still coherent: one final instance can read or
        # repopulate the slot cleanly.
        cache = ResultCache(root)
        if cache.lookup(TINY, *POINT) is None:
            cache.store(TINY, *POINT, result)
        assert cache.lookup(TINY, *POINT) == result

    def test_concurrent_clears_count_each_entry_once(self, tmp_path, result):
        """N racing clears: every unlink is counted by exactly one."""
        root = tmp_path / "shared"
        seed = ResultCache(root)
        for scheme in (False, True):
            seed.store(TINY, "sar", "simple", scheme, result)
            seed.store(TINY, "hf", "simple", scheme, result)
        entries = len(seed)
        assert entries == 4

        threads = 6
        removed = [0] * threads
        start = threading.Barrier(threads)

        def clear(worker_id):
            cache = ResultCache(root)
            start.wait()
            removed[worker_id] = cache.clear()

        workers = [
            threading.Thread(target=clear, args=(i,)) for i in range(threads)
        ]
        for t in workers:
            t.start()
        for t in workers:
            t.join(timeout=60)
        assert sum(removed) == entries
        assert len(ResultCache(root)) == 0


# ----------------------------------------------------------------------
# Multi-process: separate interpreters, one root
# ----------------------------------------------------------------------
def _process_hammer(root_str: str, worker_id: int) -> dict:
    """Runs in a child process: simulate the point (deterministic, so
    every process stores identical bytes), then hammer the shared root."""
    cfg = ExperimentConfig(workload_scale=0.05)
    expected = Runner(cfg).run(*POINT)
    cache = ResultCache(root_str)
    lookups = torn = 0
    errors = []
    for i in range(20):
        op = (worker_id + i) % 4
        try:
            if op in (0, 1):
                cache.store(cfg, *POINT, expected)
            elif op == 2:
                lookups += 1
                got = cache.lookup(cfg, *POINT)
                if got is not None and got != expected:
                    torn += 1
            else:
                cache.clear()
        except Exception as exc:  # noqa: BLE001 — contract: no raise
            errors.append(f"op{op}: {type(exc).__name__}: {exc}")
    stats = cache.stats
    return {
        "errors": errors,
        "torn": torn,
        "lookups": lookups,
        "hits": stats.hits,
        "misses": stats.misses,
        "invalid": stats.invalid,
        "quarantined": stats.quarantined,
    }


class TestMultiProcessSharedRoot:
    def test_store_lookup_clear_across_processes(self, tmp_path):
        root = str(tmp_path / "shared")
        with ProcessPoolExecutor(max_workers=4) as pool:
            outcomes = list(
                pool.map(_process_hammer, [root] * 4, range(4))
            )
        for outcome in outcomes:
            assert outcome["errors"] == []
            assert outcome["torn"] == 0
            assert outcome["hits"] + outcome["misses"] == outcome["lookups"]
            assert outcome["invalid"] == 0
            assert outcome["quarantined"] == 0


# ----------------------------------------------------------------------
# Corrupt-entry quarantine
# ----------------------------------------------------------------------
def _poison(cache: ResultCache, text: str = "{ not json") -> None:
    path = cache.path_for(point_digest(TINY, *POINT))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")


class TestQuarantine:
    def test_corrupt_entry_is_renamed_aside(self, tmp_path):
        cache = ResultCache(tmp_path)
        _poison(cache)
        path = cache.path_for(point_digest(TINY, *POINT))

        assert cache.lookup(TINY, *POINT) is None
        assert cache.stats.invalid == 1
        assert cache.stats.misses == 1
        assert cache.stats.quarantined == 1
        assert not path.exists()
        quarantined = list(tmp_path.glob("*/.corrupt-*"))
        assert len(quarantined) == 1
        assert quarantined[0].name.endswith(path.name)

    def test_second_lookup_is_a_plain_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        _poison(cache)
        cache.lookup(TINY, *POINT)
        assert cache.lookup(TINY, *POINT) is None
        # No re-parse of the same bad bytes: invalid stays at 1.
        assert cache.stats.invalid == 1
        assert cache.stats.misses == 2

    def test_store_repopulates_after_quarantine(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        _poison(cache)
        cache.lookup(TINY, *POINT)
        cache.store(TINY, *POINT, result)
        assert cache.lookup(TINY, *POINT) == result

    def test_foreign_schema_entry_quarantined_too(self, tmp_path, result):
        doc = run_result_to_dict(result)
        doc["schema"] = 999_999
        cache = ResultCache(tmp_path)
        _poison(cache, json.dumps(doc))
        assert cache.lookup(TINY, *POINT) is None
        assert cache.stats.quarantined == 1

    def test_sweep_removes_quarantined_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        _poison(cache)
        cache.lookup(TINY, *POINT)
        assert list(tmp_path.glob("*/.corrupt-*"))
        assert cache.sweep_orphans() == 1
        assert not list(tmp_path.glob("*/.corrupt-*"))

    def test_fresh_instance_sweeps_quarantine_of_a_dead_one(self, tmp_path):
        first = ResultCache(tmp_path)
        _poison(first)
        first.lookup(TINY, *POINT)
        second = ResultCache(tmp_path)  # __post_init__ sweeps
        assert second.stats.orphans_swept == 1
        assert not list(tmp_path.glob("*/.corrupt-*"))

    def test_lost_rename_race_is_silent(self, tmp_path, monkeypatch):
        """Another process already moved the corrupt file: no raise, no
        quarantined count — just the invalid-miss."""
        cache = ResultCache(tmp_path)
        _poison(cache)

        def losing_replace(src, dst):
            raise OSError("raced")

        monkeypatch.setattr("repro.exec.cache.os.replace", losing_replace)
        assert cache.lookup(TINY, *POINT) is None
        assert cache.stats.invalid == 1
        assert cache.stats.quarantined == 0

    def test_quarantined_files_invisible_to_len(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        cache.store(TINY, *POINT, result)
        sub = cache.path_for(point_digest(TINY, *POINT)).parent
        (sub / ".corrupt-1234-x.json").write_text("junk", encoding="utf-8")
        (sub / ".tmp-5678.json").write_text("junk", encoding="utf-8")
        assert len(cache) == 1


class TestClearRaces:
    def test_clear_tolerates_vanished_entry(self, tmp_path, monkeypatch):
        """Deterministic stand-in for the listing/unlink race: an entry
        another process removed between ``_entries`` and ``unlink``."""
        cache = ResultCache(tmp_path)
        ghost = tmp_path / "zz" / "gone.json"
        monkeypatch.setattr(cache, "_entries", lambda: iter([ghost]))
        assert cache.clear() == 0

    def test_clear_counts_only_successful_unlinks(
        self, tmp_path, result, monkeypatch
    ):
        cache = ResultCache(tmp_path)
        cache.store(TINY, *POINT, result)
        real = cache.path_for(point_digest(TINY, *POINT))
        ghost = tmp_path / "zz" / "gone.json"
        monkeypatch.setattr(
            cache, "_entries", lambda: iter([ghost, real])
        )
        assert cache.clear() == 1
        assert not real.exists()
