"""Buffer-capacity analysis and IR lint (codes ``CAP*``, ``LINT*``).

A prefetched block occupies the shared :class:`~repro.runtime.buffer.
GlobalBuffer` from the slot its issue window starts (the scheduler thread
reserves space when it begins the fetch) until the consuming iteration
invalidates the entry.  Sweeping those intervals gives the schedule's
*planned* per-slot demand:

* **CAP001** — a single access covers more blocks than the whole buffer:
  it can never be prefetched at all (``begin_fetch`` would overflow; the
  thread stalls forever on ``has_room``).
* **CAP002** (warning) — peak planned demand exceeds capacity: the buffer's
  flow control will stall scheduler threads, so prefetches drift later
  than the table says and some degrade to synchronous reads.  The schedule
  is still *correct*, just not realizable as planned.

The IR lint reads the trace itself, independent of any schedule:

* **LINT001** (note) — writes whose blocks are never read at a later slot
  by any process.  Genuine dead stores look like this, but so do a
  program's final output files, hence a note rather than a warning.
* **LINT002** (note) — a declared file no process ever touches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.table import ScheduleBook
from ..ir.profiling import AccessTrace
from ..runtime.scheduler_thread import issue_window, will_prefetch
from .diagnostics import Diagnostic, Severity, SourceAnchor

__all__ = ["CapacityProfile", "analyze_capacity", "lint_trace"]


@dataclass
class CapacityProfile:
    """Planned buffer occupancy of one schedule."""

    capacity_blocks: int
    peak_blocks: int = 0
    peak_slot: int = 0
    per_process_peak: dict[int, int] = field(default_factory=dict)
    demand: list[int] = field(default_factory=list)  # per-slot totals

    @property
    def fits(self) -> bool:
        return self.peak_blocks <= self.capacity_blocks


def analyze_capacity(
    trace: AccessTrace,
    book: ScheduleBook,
    capacity_blocks: int,
    min_lead: int,
    batch_slots: int,
) -> tuple[CapacityProfile, list[Diagnostic]]:
    """Sweep planned residency intervals; return the profile + CAP*."""
    if capacity_blocks < 1:
        raise ValueError(f"capacity must be >= 1 block: {capacity_blocks}")
    diagnostics: list[Diagnostic] = []
    horizon = max(trace.n_slots, 1)
    deltas = [0] * (horizon + 1)
    per_proc_deltas: dict[int, list[int]] = {}

    for table in book.tables.values():
        for _slot, accesses in table:
            for a in accesses:
                if a.scheduled_slot is None:
                    continue
                if not will_prefetch(a.original_slot, a.scheduled_slot,
                                     min_lead):
                    continue
                if a.blocks > capacity_blocks:
                    diagnostics.append(Diagnostic(
                        "CAP001", Severity.ERROR,
                        f"access a{a.aid} needs {a.blocks} blocks but the "
                        f"buffer holds {capacity_blocks}: it can never be "
                        f"prefetched",
                        SourceAnchor(process=a.process, slot=a.scheduled_slot,
                                     aid=a.aid, file=a.file, block=a.block),
                    ))
                    continue
                start = max(0, issue_window(a.scheduled_slot, batch_slots))
                end = min(max(a.original_slot, start + 1), horizon)
                deltas[start] += a.blocks
                deltas[end] -= a.blocks
                proc = per_proc_deltas.setdefault(
                    a.process, [0] * (horizon + 1)
                )
                proc[start] += a.blocks
                proc[end] -= a.blocks

    profile = CapacityProfile(capacity_blocks=capacity_blocks)
    running = 0
    demand = []
    for slot in range(horizon):
        running += deltas[slot]
        demand.append(running)
        if running > profile.peak_blocks:
            profile.peak_blocks = running
            profile.peak_slot = slot
    profile.demand = demand
    for process, proc_deltas in sorted(per_proc_deltas.items()):
        running = peak = 0
        for slot in range(horizon):
            running += proc_deltas[slot]
            peak = max(peak, running)
        profile.per_process_peak[process] = peak

    if profile.peak_blocks > capacity_blocks:
        diagnostics.append(Diagnostic(
            "CAP002", Severity.WARNING,
            f"peak planned demand of {profile.peak_blocks} blocks at slot "
            f"{profile.peak_slot} exceeds the {capacity_blocks}-block "
            f"buffer: scheduler threads will stall and prefetches slip "
            f"behind the table",
            SourceAnchor(slot=profile.peak_slot),
        ))
    return profile, diagnostics


def lint_trace(trace: AccessTrace) -> list[Diagnostic]:
    """IR lint over the traced program: LINT001/LINT002."""
    diagnostics: list[Diagnostic] = []
    last_read: dict[tuple[str, int], int] = {}
    touched_files: set[str] = set()
    for io in trace.all_ios():
        touched_files.add(io.file)
        if not io.is_write:
            for key in io.block_keys():
                last_read[key] = max(last_read.get(key, -1), io.slot)

    dead_by_file: dict[str, list] = {}
    for io in trace.writes():
        dead_blocks = [
            key for key in io.block_keys()
            if last_read.get(key, -1) < io.slot
        ]
        if len(dead_blocks) == io.blocks:
            dead_by_file.setdefault(io.file, []).append(io)

    for file, writes in sorted(dead_by_file.items()):
        first = writes[0]
        diagnostics.append(Diagnostic(
            "LINT001", Severity.INFO,
            f"{len(writes)} write(s) to {file!r} are never read afterwards "
            f"(first: block {first.block} at slot {first.slot} by process "
            f"{first.process}) — dead stores, or the program's output",
            SourceAnchor(process=first.process, slot=first.slot,
                         file=file, block=first.block),
        ))

    for name in sorted(set(trace.program.files) - touched_files):
        diagnostics.append(Diagnostic(
            "LINT002", Severity.INFO,
            f"file {name!r} is declared but never read or written",
            SourceAnchor(file=name),
        ))
    return diagnostics
