"""Multi-speed (DRPM) power-management policies (paper §II, Figure 3).

*History Based*: on entering idleness, predict the idle duration and jump
straight to the slowest RPM whose round-trip ramp fits inside the predicted
idle window; arm a timer to ramp back to full speed ahead of the predicted
idle end.  A wrong prediction costs either energy (too fast a speed) or
performance (request lands while slow / mid-ramp).

*Staggered*: on entering idleness drop one level to the second-fastest
speed, then one further level for every additional ``step_timeout`` of
continued idleness, walking down the ladder (Figure 3(b)).  The next
request retargets full speed.
"""

from __future__ import annotations

from .policy import PowerPolicy
from .predictor import IdlePredictor

__all__ = ["HistoryBasedMultiSpeed", "StaggeredMultiSpeed", "speed_for_idle"]


def speed_for_idle(spec, predicted_idle: float, utilization_bound: float = 0.5) -> int:
    """Pick the RPM level a history-based policy should drop to.

    Chooses the slowest level whose down-and-back-up ramp time occupies at
    most ``utilization_bound`` of the predicted idle window — i.e. the
    transition overhead must stay a bounded fraction of the idleness, which
    is how the paper bounds the performance impact ("switches to RPM_i,
    which saves maximum energy while keeping the performance impact
    bounded").  Returns the max RPM when no level qualifies.
    """
    if predicted_idle <= 0:
        return spec.max_rpm
    best = spec.max_rpm
    for rpm in spec.rpm_levels:  # fastest → slowest
        round_trip = 2.0 * spec.rpm_change_time(spec.max_rpm, rpm)
        if round_trip <= predicted_idle * utilization_bound:
            best = rpm  # keep walking: slower levels save more
    return best


class HistoryBasedMultiSpeed(PowerPolicy):
    """Prediction-driven single jump to the best speed (Figure 3(a))."""

    name = "history"
    can_ramp = True

    def __init__(
        self,
        predictor: IdlePredictor | None = None,
        utilization_bound: float = 0.8,
        min_observe: float = 0.2,
        escalate_after: float = 2.0,
        decision_delay: float = 0.3,
    ):
        """``min_observe`` filters service-continuation micro-gaps out of
        the predictor's history (see :class:`PredictionSpinDown`).
        ``escalate_after`` is the safety net for gaps the history failed
        to anticipate: when the prediction said "too short to bother" but
        the disk is still idle after this many seconds, the policy starts
        stepping the speed down after all (with doubling re-check
        intervals).  0 disables escalation.  ``decision_delay`` is the
        idleness-detection dwell: with multi-second RPM transitions,
        committing to a ramp during a queue-drain micro-gap would stall
        the next request behind the in-flight step, so the policy waits
        this long before acting (the role the paper's 50 ms thresholds
        play on its much faster substrate)."""
        super().__init__()
        self.predictor = predictor or IdlePredictor()
        if not 0 < utilization_bound <= 1:
            raise ValueError(
                f"utilization_bound must be in (0, 1]: {utilization_bound}"
            )
        if min_observe < 0:
            raise ValueError(f"min_observe must be non-negative: {min_observe}")
        if escalate_after < 0:
            raise ValueError(f"escalate_after must be non-negative: {escalate_after}")
        if decision_delay < 0:
            raise ValueError(f"decision_delay must be non-negative: {decision_delay}")
        self.utilization_bound = utilization_bound
        self.min_observe = min_observe
        self.escalate_after = escalate_after
        self.decision_delay = decision_delay
        self._idle_since: float | None = None
        self.speed_choices: list[int] = []
        self.escalations = 0

    def on_idle_start(self, now: float) -> None:
        self._idle_since = now
        self._arm_timer(self.decision_delay, self._decide)

    def _decide(self) -> None:
        """The idleness survived the detection dwell: commit to a speed."""
        self._timer = None
        if not self.drive.is_idle or self.drive.is_standby:
            return
        spec = self.drive.spec
        # Depth follows the *predicted* length (paper §II: "switches to
        # RPM_i" for the predicted idleness) — committing deeper than the
        # typical gap stalls the next burst behind multi-second ramp
        # steps.  Under-predicted long gaps are rescued by the escalation
        # timer below, not by speculative deep dives.
        predicted = self.predictor.predict()
        rpm = speed_for_idle(spec, predicted, self.utilization_bound)
        self.speed_choices.append(rpm)
        # Always (re)set the target: the last request's arrival left the
        # drive targeting max speed, and a stale max target would ramp the
        # spindle up pointlessly as soon as the restart grace expires.
        self.drive.request_rpm(rpm)
        if self._prediction_confident() and rpm != spec.max_rpm:
            # Ramp back up ahead of the predicted idle end to hide latency.
            # The timer uses the *upper* estimate: waking too early throws
            # away the remaining saving, while waking late just means the
            # request is served at a low speed (a bounded penalty).
            ramp_back = spec.rpm_change_time(rpm, spec.max_rpm)
            elapsed = self.sim.now - (self._idle_since or self.sim.now)
            wake_delay = max(
                self.predictor.predict_upper() - ramp_back - elapsed, 0.0
            )
            self._arm_timer(wake_delay, self._proactive_speed_up)
        elif self.escalate_after > 0 and rpm > spec.min_rpm:
            # Unconfident prediction: whatever depth was chosen, keep
            # deepening if the gap outlives the estimate (runaway gaps
            # must not idle at a shallow speed forever).
            self._arm_escalation(self.escalate_after)

    def _arm_escalation(self, delay: float) -> None:
        self._arm_timer(delay, self._escalate, delay)

    def _escalate(self, last_delay: float) -> None:
        """The gap outlived the prediction: dive by elapsed idleness."""
        self._timer = None
        drive = self.drive
        if not drive.is_idle or drive.is_standby or self._idle_since is None:
            return
        self.escalations += 1
        elapsed = self.sim.now - self._idle_since
        rpm = speed_for_idle(drive.spec, 2.0 * elapsed, self.utilization_bound)
        if rpm < drive.target_rpm or (
            rpm < drive.current_rpm and drive.target_rpm == drive.current_rpm
        ):
            drive.request_rpm(rpm)
        if rpm > drive.spec.min_rpm:
            self._arm_escalation(last_delay * 2.0)

    def _prediction_confident(self) -> bool:
        """Arm the proactive wake-up only when recent idle periods agree
        with each other (a run of similar gaps).  When the history mixes
        short and long gaps, the upper estimate carries no information
        about *this* gap's end — waking on it would burn an arbitrarily
        long remainder at full idle power, the costliest failure mode a
        multi-speed disk has."""
        upper = self.predictor.predict_upper()
        if upper <= 0:
            return False
        return self.predictor.predict() >= 0.5 * upper

    def _proactive_speed_up(self) -> None:
        self._timer = None
        if self.drive.is_idle and not self.drive.is_standby:
            self.drive.request_rpm(self.drive.spec.max_rpm)

    def _observe(self, length: float) -> None:
        if length >= self.min_observe:
            self.predictor.observe(length)

    def on_request_arrival(self, now: float) -> None:
        self._cancel_timer()
        if self._idle_since is not None:
            self._observe(now - self._idle_since)
            self._idle_since = None
        self.drive.request_rpm(self.drive.spec.max_rpm)

    def on_simulation_end(self, now: float) -> None:
        if self._idle_since is not None and now > self._idle_since:
            self._observe(now - self._idle_since)
            self._idle_since = None
        super().on_simulation_end(now)


class StaggeredMultiSpeed(PowerPolicy):
    """Step-down-through-speeds policy (Figure 3(b))."""

    name = "staggered"
    can_ramp = True

    def __init__(self, step_timeout: float = 0.050):
        """``step_timeout`` is the paper's *x₁* msec dwell before dropping
        one more level (50 ms per §V-A)."""
        super().__init__()
        if step_timeout < 0:
            raise ValueError(f"negative step_timeout: {step_timeout}")
        self.step_timeout = step_timeout

    def _next_lower(self, rpm: int) -> int:
        levels = self.drive.spec.rpm_levels  # fastest → slowest
        for level in levels:
            if level < rpm:
                return level
        return rpm

    def on_idle_start(self, now: float) -> None:
        # Head for the second-fastest speed after one dwell — idleness is
        # "detected" once it has lasted the dwell, which keeps the policy
        # from churning the spindle on sub-dwell queue-drain gaps.
        self._arm_timer(self.step_timeout, self._dwell_expired)

    def on_ramp_complete(self, now: float) -> None:
        if self.drive.is_idle and self.drive.current_rpm > self.drive.spec.min_rpm:
            self._arm_timer(self.step_timeout, self._dwell_expired)

    def _dwell_expired(self) -> None:
        self._timer = None
        drive = self.drive
        if not drive.is_idle or drive.is_standby or drive.is_transitioning:
            return
        lower = self._next_lower(drive.current_rpm)
        if lower != drive.current_rpm:
            drive.request_rpm(lower)

    def on_request_arrival(self, now: float) -> None:
        self._cancel_timer()
        self.drive.request_rpm(self.drive.spec.max_rpm)
