"""Tests for the MPI-IO facade."""

from repro.net import Network
from repro.runtime import MPIIO
from repro.storage import ParallelFileSystem

from conftest import fast_spec

KB = 1024
MB = 1024 * KB


def make_mpiio(sim, n_nodes=4, block_bytes=128 * KB):
    pfs = ParallelFileSystem.build(
        sim, n_nodes=n_nodes, stripe_size=64 * KB,
        disk_spec=fast_spec(), cache_bytes=1 * MB,
    )
    pfs.create_file("data", 16 * MB)
    net = Network(sim, n_nodes, latency=0.001, bandwidth_bps=1e9)
    return MPIIO(sim, pfs, net, {"data": block_bytes}), pfs, net


class TestRead:
    def test_read_signal_fires_after_disk_and_network(self, sim):
        mpi, pfs, net = make_mpiio(sim)
        done = []

        def proc():
            yield mpi.read("data", 0)
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        assert len(done) == 1
        # At least two network latencies plus disk service time passed.
        assert done[0] > 0.002
        assert mpi.stats.reads == 1
        assert mpi.stats.bytes_read == 128 * KB

    def test_multiblock_read(self, sim):
        mpi, pfs, net = make_mpiio(sim)
        done = []

        def proc():
            yield mpi.read("data", 0, blocks=4)
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        assert done
        assert mpi.stats.bytes_read == 4 * 128 * KB

    def test_cached_reread_is_faster(self, sim):
        mpi, pfs, net = make_mpiio(sim)
        times = []

        def proc():
            t0 = sim.now
            yield mpi.read("data", 0)
            times.append(sim.now - t0)
            t0 = sim.now
            yield mpi.read("data", 0)
            times.append(sim.now - t0)

        sim.process(proc())
        sim.run()
        assert times[1] < times[0]

    def test_mean_read_latency_tracked(self, sim):
        mpi, pfs, net = make_mpiio(sim)

        def proc():
            yield mpi.read("data", 0)
            yield mpi.read("data", 8)

        sim.process(proc())
        sim.run()
        assert mpi.stats.mean_read_latency > 0

    def test_signature_view(self, sim):
        mpi, pfs, net = make_mpiio(sim)
        sig = mpi.signature("data", 0)
        assert sig.bit_count() == 2  # 128KB block = 2 stripes = 2 nodes


class TestWrite:
    def test_write_completes_quickly(self, sim):
        mpi, pfs, net = make_mpiio(sim)
        done = []

        def proc():
            yield mpi.write("data", 0)
            done.append(sim.now)

        sim.process(proc())
        sim.run(until=0.5)
        # Write-back: completion is network time only, well before destage.
        assert done and done[0] < 0.1
        assert mpi.stats.writes == 1

    def test_write_eventually_reaches_disks(self, sim):
        mpi, pfs, net = make_mpiio(sim)

        def proc():
            yield mpi.write("data", 0)

        sim.process(proc())
        sim.run()
        total = sum(d.stats.writes for d in pfs.all_drives())
        assert total >= 1

    def test_network_traffic_counted(self, sim):
        mpi, pfs, net = make_mpiio(sim)

        def proc():
            yield mpi.write("data", 0)
            yield mpi.read("data", 4)

        sim.process(proc())
        sim.run()
        assert net.stats.bytes_moved > 2 * 128 * KB
