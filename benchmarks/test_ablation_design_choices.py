"""Ablation benchmarks for the design choices DESIGN.md calls out.

These are not paper figures; they quantify the decisions the paper leaves
open (tie-breaking, processing order, σ-weight shape) and one substrate
decision (elevator vs FIFO arm scheduling) on a mid-size workload.
"""

import pytest

from repro.core import CompilerOptions, SlackOptions, compile_schedule
from repro.experiments import default_config
from repro.ir import trace_program
from repro.metrics import fleet_energy, idle_cdf, idle_periods_until
from repro.power import HistoryBasedMultiSpeed
from repro.runtime import Session
from repro.storage import StripedFile, StripeMap
from repro.workloads import get_workload

from conftest import run_once


def _compiled(cfg, trace, **options):
    smap = StripeMap(cfg.stripe_size, cfg.n_ionodes)
    files = {
        name: StripedFile(name, decl.size_bytes)
        for name, decl in trace.program.files.items()
    }
    opts = CompilerOptions(
        delta=cfg.delta, theta=cfg.theta,
        slack=SlackOptions(max_slack=cfg.max_slack), **options
    )
    return compile_schedule(trace.program, smap, files, opts, trace=trace)


def _energy_and_idle(cfg, trace, compiled):
    session = Session(
        trace,
        cfg.disk_spec(multispeed=True),
        lambda: HistoryBasedMultiSpeed(
            utilization_bound=cfg.history_utilization_bound
        ),
        cfg.session_config(),
        compile_result=compiled,
    )
    outcome = session.run()
    horizon = outcome.execution_time
    periods = [
        p for d in outcome.drives for p in idle_periods_until(d, horizon)
    ]
    return fleet_energy(outcome.drives, horizon), idle_cdf(periods)


@pytest.fixture(scope="module")
def setup():
    cfg = default_config()
    trace = trace_program(
        get_workload("hf").build(cfg.n_clients, cfg.workload_scale)
    )
    return cfg, trace


def test_ablation_tie_break(benchmark, setup):
    """Latest-slot tie-breaking preserves long idle periods that random
    seeding fragments (DESIGN.md §7.2)."""
    cfg, trace = setup

    def run():
        results = {}
        for rule in ("latest", "random", "first"):
            compiled = _compiled(cfg, trace, tie_break=rule)
            energy, cdf = _energy_and_idle(cfg, trace, compiled)
            results[rule] = (energy, cdf.mean_seconds)
        return results

    results = run_once(benchmark, run)
    for rule, (energy, mean_idle) in results.items():
        print(f"tie_break={rule:7}: energy={energy:10.1f} J  "
              f"mean idle={mean_idle:6.2f} s")
    # Latest never does worse on energy than the alternatives by more
    # than noise, and it keeps idle periods at least as long on average.
    best = min(e for e, _m in results.values())
    assert results["latest"][0] <= best * 1.05


def test_ablation_scheduling_order(benchmark, setup):
    """Shortest-slack-first (the paper's choice) versus longest-first and
    program order."""
    cfg, trace = setup

    def run():
        results = {}
        for order in ("shortest", "longest", "program"):
            compiled = _compiled(cfg, trace, order=order)
            energy, _cdf = _energy_and_idle(cfg, trace, compiled)
            results[order] = energy
        return results

    results = run_once(benchmark, run)
    for order, energy in results.items():
        print(f"order={order:9}: energy={energy:10.1f} J")
    # Finding (recorded in EXPERIMENTS.md): on this substrate
    # longest-slack-first can beat the paper's shortest-first by ~10% —
    # flexible accesses claim the best cluster seeds before the
    # constrained ones pin them.  All orders stay within a sane band of
    # each other; the paper's choice is competitive, not dominant.
    assert max(results.values()) <= min(results.values()) * 1.25
    assert results["shortest"] <= results["program"] * 1.05


def test_ablation_weight_shape(benchmark, setup):
    """Eq. 3's decaying σ weights versus uniform weights over the
    vertical range."""
    cfg, trace = setup

    def run():
        results = {}
        for shape in ("linear", "uniform"):
            compiled = _compiled(cfg, trace, weight_shape=shape)
            energy, _cdf = _energy_and_idle(cfg, trace, compiled)
            results[shape] = energy
        return results

    results = run_once(benchmark, run)
    for shape, energy in results.items():
        print(f"weights={shape:8}: energy={energy:10.1f} J")
    # Both work; the decaying shape must not be a regression.
    assert results["linear"] <= results["uniform"] * 1.10


def test_ablation_arm_scheduling(benchmark, setup):
    """Elevator (Table II) versus FIFO disk-arm scheduling: elevator's
    shorter seeks keep mean response times at or below FIFO's."""
    from repro.disk import DiskRequest, Drive
    from repro.sim import Simulator
    import random

    def run():
        results = {}
        for policy in ("elevator", "fifo"):
            sim = Simulator()
            drive = Drive(sim, default_config().disk_spec(False),
                          arm_scheduling=policy)
            rng = random.Random(42)
            for burst in range(40):
                base = burst * 2.0
                for _ in range(16):
                    sim.schedule_at(
                        base,
                        drive.submit,
                        DiskRequest(
                            lba=rng.randrange(0, drive.spec.capacity_bytes),
                            nbytes=64 * 1024,
                        ),
                    )
            sim.run()
            drive.finalize()
            results[policy] = drive.stats.mean_response_time
        return results

    results = run_once(benchmark, run)
    for policy, resp in results.items():
        print(f"arm={policy:9}: mean response={resp * 1000:8.2f} ms")
    assert results["elevator"] <= results["fifo"]
