"""Tests for the command-line interface and the ASCII visualizations."""

import io

import pytest

from repro.cli import FIGURES, build_parser, main
from repro.viz import access_density_timeline, drive_state_gantt

from conftest import drain, make_drive, submit_read


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--app", "doom"])

    def test_every_registered_figure_parses(self):
        parser = build_parser()
        for name in FIGURES:
            args = parser.parse_args(["figure", name])
            assert args.name == name


class TestCommands:
    def test_list(self):
        code, text = run_cli("list")
        assert code == 0
        for app in ("hf", "sar", "astro", "apsi", "madbench2", "wupwise"):
            assert app in text
        assert "history" in text

    def test_run_without_scheme(self):
        code, text = run_cli(
            "run", "--app", "madbench2", "--policy", "simple",
            "--scale", "0.05",
        )
        assert code == 0
        assert "energy saving" in text
        assert "perf degradation" in text

    def test_run_with_scheme_reports_prefetches(self):
        code, text = run_cli(
            "run", "--app", "madbench2", "--scheme", "--scale", "0.05",
        )
        assert code == 0
        assert "prefetches" in text

    def test_run_with_overrides(self):
        code, text = run_cli(
            "run", "--app", "madbench2", "--scale", "0.05",
            "--clients", "8", "--ionodes", "4", "--delta", "10",
            "--theta", "2",
        )
        assert code == 0

    def test_figure_table2(self):
        code, text = run_cli("figure", "table2")
        assert code == 0
        assert "Number of I/O nodes" in text

    def test_figure_table3_small(self, monkeypatch):
        code, text = run_cli("figure", "table3", "--scale", "0.05")
        assert code == 0
        assert "wupwise" in text

    def test_figure_with_jobs_and_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        code, text = run_cli(
            "figure", "fig12a", "--scale", "0.05",
            "--jobs", "2", "--cache-dir", cache_dir,
        )
        assert code == 0
        assert "wupwise" in text
        # Warm replay reproduces the figure byte-for-byte from the cache.
        code2, text2 = run_cli(
            "figure", "fig12a", "--scale", "0.05", "--cache-dir", cache_dir,
        )
        assert code2 == 0
        assert text2 == text

    def test_run_no_cache(self):
        code, text = run_cli(
            "run", "--app", "sar", "--scale", "0.05", "--no-cache",
        )
        assert code == 0
        assert "energy saving" in text

    def test_bench_quick_writes_record(self, tmp_path):
        import json

        code, text = run_cli(
            "bench", "--quick", "--jobs", "1", "--no-serial",
            "--figures", "table3",
            "--output-dir", str(tmp_path),
        )
        assert code == 0
        assert "record written to" in text
        records = list(tmp_path.glob("BENCH_*.json"))
        assert len(records) == 1
        record = json.loads(records[0].read_text())
        assert record["kind"] == "repro-bench"
        assert record["points"] == 6
        assert record["parallel_seconds"] > 0
        assert record["warm"]["simulated"] == 0
        assert record["warm"]["cache_hits"] == record["points"]
        # Kernel instrumentation rides in every record.
        assert record["kernel"] == "heap"
        assert record["events_per_sec"] > 0
        assert len(record["point_stats"]) == record["points"]
        shootout = record["kernel_shootout"]
        assert shootout["identical"] is True
        assert set(shootout["kernels"]) == {"heap", "calendar", "analytic"}
        assert "kernel shootout" in text
        # First record in an empty output dir seeds the trajectory.
        assert "seeds the trajectory" in text

    def test_bench_kernel_profile_no_shootout(self, tmp_path):
        import json

        code, text = run_cli(
            "bench", "--quick", "--jobs", "1", "--no-serial",
            "--figures", "table3", "--kernel", "calendar",
            "--no-shootout", "--profile", "5",
            "--output-dir", str(tmp_path),
        )
        assert code == 0
        record = json.loads(next(tmp_path.glob("BENCH_*.json")).read_text())
        assert record["kernel"] == "calendar"
        assert "kernel_shootout" not in record
        assert all(
            p["kernel"] == "calendar" for p in record["point_stats"]
        )
        # cProfile tables printed per point, never persisted.
        assert "tottime" in text
        assert "profile" in text

    def test_bench_rejects_unknown_figure(self, tmp_path):
        code, _text = run_cli(
            "bench", "--figures", "fig99", "--output-dir", str(tmp_path),
        )
        assert code == 2

    def test_schedule_with_timeline(self):
        code, text = run_cli(
            "schedule", "--app", "madbench2", "--scale", "0.05",
            "--timeline", "--width", "40",
        )
        assert code == 0
        assert "BEFORE scheduling" in text
        assert "AFTER scheduling" in text
        assert "node  0" in text


class TestDensityTimeline:
    def make_result(self):
        from repro.core import CompilerOptions, compile_schedule
        from repro.ir import Compute, FileDecl, Loop, Program, Read, var
        from repro.storage import StripedFile, StripeMap

        files = {"f": FileDecl("f", 64, 128 * 1024)}
        prog = Program("viz", 2, files, [
            Loop("i", 0, 15, body=[
                Read("f", var("p") * 16 + var("i")),
                Compute(0.5), Compute(0.5),
            ]),
        ])
        smap = StripeMap(64 * 1024, 4)
        striped = {"f": StripedFile("f", files["f"].size_bytes)}
        return compile_schedule(prog, smap, striped, CompilerOptions(delta=4))

    def test_renders_both_panels(self):
        text = access_density_timeline(self.make_result(), width=20)
        assert "BEFORE scheduling" in text
        assert "AFTER scheduling" in text
        assert text.count("node  0") == 2

    def test_row_count_matches_nodes(self):
        text = access_density_timeline(self.make_result(), width=20)
        assert text.count("node ") == 8  # 4 nodes x 2 panels

    def test_width_validation(self):
        with pytest.raises(ValueError):
            access_density_timeline(self.make_result(), width=2)


class TestGantt:
    def test_gantt_shows_states(self, sim):
        drive = make_drive(sim)
        submit_read(sim, drive, 0.0)
        sim.schedule(1.0, drive.spin_down)
        submit_read(sim, drive, 30.0)
        drain(sim, drive)
        text = drive_state_gantt([drive], horizon=sim.now, width=40)
        assert "_" in text      # standby
        assert "^" in text      # spin-up
        assert "legend" in text

    def test_gantt_reduced_speed_digits(self, sim):
        from conftest import multispeed_fast_spec

        drive = make_drive(sim, multispeed_fast_spec())
        drive.request_rpm(3_600)
        sim.run(until=60.0)
        drive.finalize()
        text = drive_state_gantt([drive], horizon=60.0, width=40)
        assert "7" in text      # deepest level = 7 steps below max

    def test_gantt_validation(self, sim):
        drive = make_drive(sim)
        with pytest.raises(ValueError):
            drive_state_gantt([drive], horizon=0.0)
