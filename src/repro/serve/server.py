"""Scheduling-as-a-service: a persistent asyncio experiment server.

:class:`SchedulingServer` turns the one-shot executor/supervisor stack
into a long-lived service: many concurrent clients submit experiment
points (workload/policy/scheme/config/kernel/fault-plan) over
JSON-over-HTTP, and the server resolves them through the exact same
machinery ``repro run`` uses — :func:`~repro.exec.executor
.ExperimentExecutor.resolve_cached` against a content-addressed
:class:`~repro.exec.cache.ResultCache`, then a
:class:`~repro.exec.supervise.CampaignSupervisor` pass for the misses —
so a served result is bit-identical to a CLI one by construction.

Design points:

* **bounded work queue** — submissions enter an ``asyncio.Queue`` with a
  hard depth limit; a full queue answers ``429`` with a ``Retry-After``
  estimate instead of buffering unboundedly (backpressure, not OOM);
* **request batching** — identical in-flight submissions coalesce: a
  point already queued or running for the same tenant gains a waiter
  instead of a second job, so N identical concurrent submissions cost
  exactly one simulation (fan-out reply).  Distinct queued points are
  drained in batches so one supervisor pass (and one process pool, when
  ``jobs > 1``) serves many points;
* **per-tenant cache namespaces** — the tenant id is folded into the
  *cache root* (``<root>/<tenant>/…``), never into the point digest:
  digests stay tenant-agnostic and content-addressed, tenants simply
  cannot see each other's entries;
* **graceful drain** — SIGTERM/SIGINT stop the listener, let the queue
  empty and in-flight batches finish, then exit; submissions during the
  drain answer ``503``;
* **live telemetry** — every counter the load harness reports
  (``server.*``) lives in a :mod:`repro.obs` ``MetricsRegistry`` and is
  served at ``/v1/metrics`` as a standard snapshot, mergeable with
  simulation snapshots by ``repro report``;
* **durable admission WAL** (optional, ``wal_path``) — every accepted
  submission is fsynced to a :class:`~repro.exec.journal.DurableJournal`
  *before* its 202 leaves the server, and every terminal state follows
  it; ``repro serve --recover`` replays accepted-but-unfinished jobs
  under their original ids, and the content-addressed cache makes the
  replayed results bit-identical (DESIGN.md §18);
* **deterministic service chaos** (optional, ``chaos_plan``) — the
  ``server.*`` events of a fault plan sabotage reads, responses, WAL
  appends and batch executors via :mod:`repro.serve.chaos`, counted as
  ``server.chaos.*``; without a plan the serving path is untouched;
* **idle-bounded waiting** — long-polls and event streams are capped by
  ``idle_timeout`` server-side, so abandoned clients cannot pin
  connections through a graceful drain.

The event loop stays responsive because simulation happens off-loop:
each batch runs in a worker thread (``asyncio.to_thread``), and inside
that thread the supervisor may fan out to a process pool (``jobs > 1``).
All metrics and job-state mutation happen on the loop, so no locks.

Endpoints (all JSON):

* ``GET  /healthz`` — liveness + drain state;
* ``GET  /v1/status`` — queue depth, workers, drain state;
* ``GET  /v1/metrics`` — ``server.*`` metrics snapshot;
* ``POST /v1/submit`` — one point → ``202`` + job document;
* ``POST /v1/grid`` — a figure's whole grid → ``202`` + job documents;
* ``GET  /v1/jobs/<id>`` — poll (``?wait=SEC`` long-polls completion);
* ``GET  /v1/jobs/<id>/events`` — chunked JSONL stream of state changes;
* ``GET  /v1/results/<digest>`` — fetch a cached result by digest.
"""

from __future__ import annotations

import asyncio
import json
import re
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

from ..exec.cache import ResultCache, point_digest
from ..exec.executor import ExperimentExecutor, RunPoint
from ..exec.grid import figure_points
from ..exec.journal import (
    DurableJournal,
    load_wal,
    point_from_doc,
    point_to_doc,
    wal_admit,
    wal_header,
    wal_outcome,
)
from ..exec.serialize import run_result_to_dict
from ..exec.supervise import (
    CampaignReport,
    CampaignSupervisor,
    SupervisorPolicy,
)
from ..experiments.config import ExperimentConfig
from ..experiments.runner import POLICIES
from ..faults.plan import FaultPlan
from ..obs.metrics import MetricsRegistry
from ..workloads import all_workloads
from .chaos import CHAOS_COUNTERS, OVERSIZE_GARBAGE, chaos_engine
from .http import (
    HttpError,
    HttpRequest,
    HttpResponse,
    _head,
    encode_chunk,
    error_response,
    json_response,
    read_request,
    write_response,
)

__all__ = [
    "DEFAULT_TENANT",
    "ServerConfig",
    "Job",
    "BatchOutcome",
    "QueueFull",
    "Draining",
    "parse_point",
    "parse_tenant",
    "SchedulingServer",
]

DEFAULT_TENANT = "default"

#: Tenant ids become one path segment of the cache root: a safe charset,
#: no leading dot (dotfiles are writer-orphan territory), bounded length.
_TENANT_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,63}\Z")

_DIGEST_RE = re.compile(r"[0-9a-f]{64}\Z")

#: Job ids are ``j<seq>-<digest12>``; recovery parses the sequence back
#: out so a restarted server never reissues a recovered id.  The
#: sequence is zero-padded to six digits but *widens* past j999999, so
#: the parse must accept any width or recovery would stop advancing
#: ``_seq`` and reissue colliding ids.
_JOB_ID_RE = re.compile(r"j(\d{6,})-[0-9a-f]{12}\Z")

#: Times a job survives its batch executor dying under it
#: (``server.executor_death`` chaos) before it fails for good.
_MAX_REQUEUES = 5

_JOB_LATENCY_BOUNDS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 15.0, 60.0)

_WORKLOADS = tuple(w.name for w in all_workloads())
_POLICIES = ("default",) + tuple(POLICIES)

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"


class QueueFull(Exception):
    """The bounded work queue is at its limit (→ 429)."""

    def __init__(self, retry_after: int):
        super().__init__(f"work queue full; retry after {retry_after}s")
        self.retry_after = retry_after


class Draining(Exception):
    """The server is draining and accepts no new work (→ 503)."""


@dataclass
class BatchOutcome:
    """What one supervised batch pass produced, stats included.

    The executor/cache stat counters are captured in the worker thread
    and folded into the server's metrics registry back on the event loop
    (the registry is loop-confined by design, so threads never touch it).
    """

    report: CampaignReport
    exec_stats: dict[str, int] = field(default_factory=dict)
    cache_stats: Optional[dict[str, int]] = None


@dataclass(frozen=True)
class ServerConfig:
    """Everything one server instance needs to run."""

    host: str = "127.0.0.1"
    port: int = 8177  # 0 = ephemeral (tests, in-process loadgen)
    #: Cache root; tenants live in ``<cache_root>/<tenant>``.  ``None``
    #: disables caching entirely (every submission simulates).
    cache_root: Optional[Path] = None
    #: Base config submissions override field-by-field.
    base_config: ExperimentConfig = field(default_factory=ExperimentConfig)
    #: Worker processes per batch (1 = in-process, no pool spawn).
    jobs: int = 1
    #: Concurrent batch workers (each occupies one thread while running).
    workers: int = 2
    #: Bounded queue depth; submissions beyond it get 429.
    queue_limit: int = 256
    #: Max jobs drained into one supervisor pass.
    batch_max: int = 16
    #: Retries per point inside a batch (supervisor policy).
    retries: int = 1
    #: Gate scheme submissions behind the static verifier.
    verify: bool = True
    #: Terminal jobs kept addressable for polling, oldest evicted first.
    job_retention: int = 4096
    #: Admission write-ahead log.  When set, every accepted submission
    #: is fsynced here *before* its 202 leaves the server, and every
    #: terminal state follows it — ``--recover`` replays the difference.
    wal_path: Optional[Path] = None
    #: Replay ``wal_path`` on start: accepted-but-unfinished jobs are
    #: re-enqueued under their original ids.  Required (and implied by
    #: ``repro serve --recover``) when the WAL already has records.
    recover: bool = False
    #: Fault plan whose ``server.*`` events sabotage the serving path
    #: deterministically (see :mod:`repro.serve.chaos`).  ``None`` or a
    #: plan without server events changes nothing at all.
    chaos_plan: Optional[FaultPlan] = None
    #: Server-side bound (seconds) on how long a long-poll waits and how
    #: long an event stream sits silent (or a stalled reader keeps the
    #: write buffer pinned) — dead clients cannot hold connections open
    #: through a graceful drain.
    idle_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1: {self.jobs}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1: {self.workers}")
        if self.queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1: {self.queue_limit}")
        if self.batch_max < 1:
            raise ValueError(f"batch_max must be >= 1: {self.batch_max}")
        if self.idle_timeout <= 0:
            raise ValueError(
                f"idle_timeout must be > 0: {self.idle_timeout}"
            )
        if self.recover and self.wal_path is None:
            raise ValueError("recover=True needs a wal_path to replay")


class Job:
    """One unit of queued work: a (tenant, point) with waiters."""

    __slots__ = (
        "id",
        "tenant",
        "point",
        "digest",
        "label",
        "state",
        "submissions",
        "requeues",
        "error",
        "result",
        "enqueued_at",
        "finished_at",
        "done",
        "changed",
        "wal_durable",
        "wal_error",
    )

    def __init__(self, job_id: str, tenant: str, point: RunPoint):
        self.id = job_id
        self.tenant = tenant
        self.point = point
        self.digest = point_digest(
            point.config, point.workload, point.policy, point.scheme
        )
        self.label = point.label()
        self.state = JOB_QUEUED
        self.submissions = 1
        self.requeues = 0
        self.error: Optional[str] = None
        self.result: Optional[dict] = None
        self.enqueued_at = time.monotonic()  # det: serving latency measurement, not simulated state
        self.finished_at: Optional[float] = None
        self.done = asyncio.Event()
        # Replaced (and the old one set) on every state transition, so
        # streamers can await "the next change" without polling.
        self.changed = asyncio.Event()
        # Set once the admit record is on disk (or no WAL is configured
        # / the admission was withdrawn).  Coalesced submissions await
        # it so no 202 ever leaves before the admission is durable.
        self.wal_durable = asyncio.Event()
        self.wal_error: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.state in (JOB_DONE, JOB_FAILED)

    def to_doc(self, include_result: bool = True) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "id": self.id,
            "tenant": self.tenant,
            "digest": self.digest,
            "label": self.label,
            "state": self.state,
            "submissions": self.submissions,
        }
        if self.requeues:
            # Only under chaos: chaos-free job docs stay byte-identical.
            doc["requeues"] = self.requeues
        if self.error is not None:
            doc["error"] = self.error
        if include_result and self.result is not None:
            doc["result"] = self.result
        return doc


# ----------------------------------------------------------------------
# Submission parsing
# ----------------------------------------------------------------------
def _parse_config(
    base: ExperimentConfig, overrides: Any
) -> ExperimentConfig:
    if overrides in (None, {}):
        return base
    if not isinstance(overrides, dict):
        raise HttpError(400, "config must be an object of field overrides")
    changes = dict(overrides)
    plan_doc = changes.pop("fault_plan", None)
    if plan_doc is not None:
        from ..faults import plan_from_dict

        if not isinstance(plan_doc, dict):
            raise HttpError(400, "fault_plan must be a plan object")
        try:
            changes["fault_plan"] = plan_from_dict(plan_doc)
        except (ValueError, KeyError, TypeError) as exc:
            raise HttpError(400, f"bad fault_plan: {exc}")
    try:
        return base.scaled(**changes)
    except TypeError as exc:
        raise HttpError(400, f"unknown config field: {exc}")
    except ValueError as exc:
        raise HttpError(400, f"bad config value: {exc}")


def parse_point(doc: Any, base: ExperimentConfig) -> RunPoint:
    """Validate one submission document into a :class:`RunPoint`.

    Every rejection is an :class:`HttpError` (400) naming the offending
    field — the server never dies on client input.
    """
    if not isinstance(doc, dict):
        raise HttpError(400, "submission must be a JSON object")
    workload = doc.get("workload")
    if workload not in _WORKLOADS:
        raise HttpError(
            400,
            f"unknown workload {workload!r}; "
            f"one of: {', '.join(_WORKLOADS)}",
        )
    policy = doc.get("policy", "default")
    if policy not in _POLICIES:
        raise HttpError(
            400,
            f"unknown policy {policy!r}; one of: {', '.join(_POLICIES)}",
        )
    scheme = doc.get("scheme", False)
    if not isinstance(scheme, bool):
        raise HttpError(400, "scheme must be a boolean")
    config = _parse_config(base, doc.get("config"))
    return RunPoint(workload, policy, scheme, config)


def parse_tenant(request: HttpRequest, doc: Any = None) -> str:
    """The tenant id of a request: header, then body, then default."""
    tenant = request.headers.get("x-repro-tenant")
    if tenant is None and isinstance(doc, dict):
        tenant = doc.get("tenant")
    if tenant is None:
        tenant = request.query.get("tenant", DEFAULT_TENANT)
    if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
        raise HttpError(
            400,
            "tenant must be 1-64 chars of [A-Za-z0-9._-], "
            "not starting with a dot",
        )
    return tenant


# ----------------------------------------------------------------------
# The server
# ----------------------------------------------------------------------
class SchedulingServer:
    """The long-lived scheduling service (see module docstring)."""

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        run_batch_fn: Optional[
            Callable[[str, list[RunPoint]], BatchOutcome]
        ] = None,
    ):
        """``run_batch_fn`` is an injection point for tests (stalling or
        failing batches deterministically); it must match
        :meth:`_run_batch`'s signature and runs in a worker thread."""
        self.config = config or ServerConfig()
        self.metrics = MetricsRegistry()
        for name in (
            "server.requests",
            "server.http_errors",
            "server.submissions",
            "server.batched",
            "server.enqueued",
            "server.rejected",
            "server.completed",
            "server.failed",
            "server.cache_hits",
            "server.simulated",
            "server.cache_stores",
            "server.cache_invalid",
            "server.cache_quarantined",
        ):
            self.metrics.counter(name)
        self.metrics.gauge("server.queue_depth_peak")
        self.metrics.histogram("server.job_latency_s", _JOB_LATENCY_BOUNDS)
        # WAL/recovery/chaos counters exist only when the feature is on:
        # a plain server's /v1/metrics snapshot stays exactly what it
        # was before these features existed.
        if self.config.wal_path is not None:
            for name in (
                "server.wal.appends",
                "server.wal.errors",
                "server.recovery.replayed",
                "server.recovery.skipped",
            ):
                self.metrics.counter(name)
        self._chaos = chaos_engine(self.config.chaos_plan, self.metrics)
        if self._chaos is not None:
            for name in CHAOS_COUNTERS.values():
                self.metrics.counter(name)

        self._queue: asyncio.Queue[Job] = asyncio.Queue(
            maxsize=self.config.queue_limit
        )
        self._active: dict[tuple[str, str], Job] = {}  # (tenant, digest)
        self._jobs: OrderedDict[str, Job] = OrderedDict()
        self._seq = 0
        self._avg_batch_seconds = 1.0  # EWMA feeding Retry-After
        self._draining = False
        self._stopped = asyncio.Event()
        self._server: Optional[asyncio.AbstractServer] = None
        self._workers: list[asyncio.Task] = []
        self._connections: set[asyncio.Task] = set()
        self._run_batch_fn = run_batch_fn or self._run_batch
        self._wal: Optional[DurableJournal] = None
        self._wal_lock = asyncio.Lock()
        self._wal_tasks: set[asyncio.Task] = set()
        # Admissions whose WAL record is in flight: they hold queue room
        # (reserved before the fsync await) without sitting in the queue.
        # The event is set whenever the count is zero, so a drain can
        # wait for in-flight admissions to land before joining the queue.
        self._pending_enqueues = 0
        self._enqueues_idle = asyncio.Event()
        self._enqueues_idle.set()
        self.port = self.config.port  # real port once bound

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Open/replay the WAL, bind the listener, spawn the workers.

        Recovery happens before the listener binds: every replayed job
        is back in the queue (under its original id) before any client
        can submit or poll.
        """
        if self.config.wal_path is not None:
            self._open_wal()
        self._server = await asyncio.start_server(
            self._serve_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._workers = [
            asyncio.get_running_loop().create_task(self._worker())
            for _ in range(self.config.workers)
        ]

    def _open_wal(self) -> None:
        path = Path(self.config.wal_path)
        recovered = {}
        populated = path.exists() and path.stat().st_size > 0
        if populated and not self.config.recover:
            raise ValueError(
                f"admission WAL {path} already has records; start with "
                "recover=True (repro serve --recover) to replay it, or "
                "point --wal at a fresh file"
            )
        if self.config.recover and populated:
            _header, recovered = load_wal(path)
        self._wal = DurableJournal(path, header=wal_header())
        if not recovered:
            return
        # Never reissue a recovered id, finished or not.
        for wal_job in recovered.values():
            seq = _JOB_ID_RE.fullmatch(wal_job.job_id)
            if seq is not None:
                self._seq = max(self._seq, int(seq.group(1)))
        unfinished = [j for j in recovered.values() if j.unfinished]
        if len(unfinished) > self._queue.maxsize:
            self._queue = asyncio.Queue(maxsize=len(unfinished))
        for wal_job in recovered.values():
            if not wal_job.unfinished:
                self.metrics.counter("server.recovery.skipped").inc()
                continue
            workload, policy, scheme, config = point_from_doc(
                wal_job.point_doc
            )
            job = Job(
                wal_job.job_id,
                wal_job.tenant,
                RunPoint(workload, policy, scheme, config),
            )
            job.wal_durable.set()  # it came *from* the WAL
            self._active[(job.tenant, job.digest)] = job
            self._remember(job)
            self._queue.put_nowait(job)
            self.metrics.counter("server.recovery.replayed").inc()
        self.metrics.gauge("server.queue_depth_peak").max_update(
            self._queue.qsize()
        )

    def request_shutdown(self) -> None:
        """Begin a graceful drain (signal-handler safe)."""
        if not self._draining:
            self._draining = True
            asyncio.get_running_loop().create_task(self._drain())

    async def _drain(self) -> None:
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # A submission that passed _admit before the drain began may
        # still be awaiting its WAL fsync; it will enqueue *after* a
        # bare join() returns and strand an accepted job.  _draining is
        # already set, so no new reservations can start — once the
        # in-flight ones land (or withdraw), pending stays zero.
        await self._enqueues_idle.wait()
        # Let queued work finish: task_done() fires per processed job.
        await self._queue.join()
        # Flush in-flight outcome records so a clean shutdown leaves a
        # WAL with nothing to replay.
        if self._wal_tasks:
            await asyncio.gather(
                *list(self._wal_tasks), return_exceptions=True
            )
        self._stopped.set()

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    async def stop(self) -> None:
        """Drain (if not already begun), then tear everything down."""
        if not self._draining:
            self._draining = True
            await self._drain()
        else:
            await self._stopped.wait()
        for worker in self._workers:
            worker.cancel()
        for worker in self._workers:
            try:
                await worker
            except asyncio.CancelledError:
                pass
        for conn in list(self._connections):
            conn.cancel()
        for conn in list(self._connections):
            try:
                await conn
            except asyncio.CancelledError:
                pass
        for task in list(self._wal_tasks):
            task.cancel()
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    @property
    def address(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    # ------------------------------------------------------------------
    # Submission / batching
    # ------------------------------------------------------------------
    def _retry_after(self) -> int:
        estimate = (
            self._avg_batch_seconds
            * (self._queue.qsize() + 1)
            / (self.config.workers * self.config.batch_max)
        )
        return max(1, min(60, int(estimate) + 1))

    def _room_left(self) -> int:
        return (
            self._queue.maxsize
            - self._queue.qsize()
            - self._pending_enqueues
        )

    def _admit(self, tenant: str, point: RunPoint) -> tuple[Job, bool]:
        """Synchronous admission decision: coalesce, reserve, or refuse.

        Runs loop-confined with no awaits, so the coalescing check and
        the room reservation are atomic against concurrent submissions.
        The reserved job is *not* queued yet — :meth:`submit` does that
        only after the WAL record (if any) is durable.
        """
        if self._draining:
            raise Draining()
        digest = point_digest(
            point.config, point.workload, point.policy, point.scheme
        )
        key = (tenant, digest)
        job = self._active.get(key)
        if job is not None and not job.terminal:
            # The digest is the idempotency key: a client retrying an
            # already-admitted submission lands here and deduplicates.
            job.submissions += 1
            self.metrics.counter("server.submissions").inc()
            self.metrics.counter("server.batched").inc()
            return job, True
        if self._room_left() <= 0:
            raise QueueFull(self._retry_after())
        self._seq += 1
        job = Job(f"j{self._seq:06d}-{digest[:12]}", tenant, point)
        self._active[key] = job
        self._remember(job)
        self._pending_enqueues += 1
        self._enqueues_idle.clear()
        self.metrics.counter("server.submissions").inc()
        return job, False

    def _enqueue_settled(self) -> None:
        """One in-flight admission landed or withdrew its reservation."""
        self._pending_enqueues -= 1
        if self._pending_enqueues == 0:
            self._enqueues_idle.set()

    async def submit(
        self, tenant: str, point: RunPoint
    ) -> tuple[Job, bool]:
        """Admit (or coalesce) one submission; ``(job, coalesced)``.

        Raises :class:`Draining` during shutdown and :class:`QueueFull`
        against the bounded queue (the 503/429 paths).  With a WAL
        configured, the ``admit`` record is fsynced before the job
        enters the queue — and therefore before any caller can send the
        202 — so every admission the client ever hears about survives a
        crash.  A failed WAL write withdraws the admission entirely:
        the client gets a 500 and owes the server nothing.  A duplicate
        that coalesces onto an admission whose WAL record is still in
        flight waits for that record to become durable — it shares the
        primary's 202, so it must also share its fsync (and its 500 if
        the append fails).
        """
        job, coalesced = self._admit(tenant, point)
        if coalesced:
            await job.wal_durable.wait()
            if job.wal_error is not None:
                raise RuntimeError(job.wal_error)
            return job, True
        try:
            if self._wal is not None:
                await self._wal_append(
                    wal_admit(
                        job.id,
                        job.tenant,
                        job.digest,
                        job.label,
                        point_to_doc(
                            point.workload,
                            point.policy,
                            point.scheme,
                            point.config,
                        ),
                    )
                )
        except BaseException as exc:
            # BaseException: cancellation (connection teardown mid-fsync)
            # must also withdraw the reservation, or a phantom job stays
            # in _active for duplicates to coalesce onto forever.
            self._active.pop((job.tenant, job.digest), None)
            self._jobs.pop(job.id, None)
            self._enqueue_settled()
            job.wal_error = (
                "admission withdrawn: WAL append failed "
                f"({type(exc).__name__})"
            )
            job.wal_durable.set()  # wake coalescers into the error path
            raise
        job.wal_durable.set()
        self._enqueue_settled()
        self._queue.put_nowait(job)  # room was reserved in _admit
        self.metrics.counter("server.enqueued").inc()
        self.metrics.gauge("server.queue_depth_peak").max_update(
            self._queue.qsize()
        )
        return job, False

    async def _wal_append(self, record: dict[str, Any]) -> None:
        """Durably land one WAL record (fsync off-loop, appends in
        lock-FIFO order; the chaos ``wal_stall`` hook bites first)."""
        if self._chaos is not None:
            stall = self._chaos.wal_stall()
            if stall > 0:
                await asyncio.sleep(stall)
        assert self._wal is not None
        async with self._wal_lock:
            await asyncio.to_thread(self._wal.append, record)
        self.metrics.counter("server.wal.appends").inc()

    def _record_outcome(self, job: Job) -> None:
        """Queue the terminal-state WAL record (fire-and-forget: losing
        an outcome only costs recovery one cache-served replay)."""
        task = asyncio.get_running_loop().create_task(
            self._outcome_append(
                wal_outcome(job.id, job.digest, job.state, job.error)
            )
        )
        self._wal_tasks.add(task)
        task.add_done_callback(self._wal_tasks.discard)

    async def _outcome_append(self, record: dict[str, Any]) -> None:
        try:
            await self._wal_append(record)
        except Exception:  # noqa: BLE001 — outcome durability is best-effort
            self.metrics.counter("server.wal.errors").inc()

    def _remember(self, job: Job) -> None:
        self._jobs[job.id] = job
        while len(self._jobs) > self.config.job_retention:
            oldest_id, oldest = next(iter(self._jobs.items()))
            if not oldest.terminal:
                break  # never evict live work; the queue bound caps it
            del self._jobs[oldest_id]

    def _transition(self, job: Job, state: str) -> None:
        job.state = state
        waker, job.changed = job.changed, asyncio.Event()
        waker.set()
        if job.terminal:
            job.finished_at = time.monotonic()  # det: serving latency measurement, not simulated state
            job.done.set()
            self._active.pop((job.tenant, job.digest), None)
            if self._wal is not None:
                self._record_outcome(job)
            self.metrics.histogram(
                "server.job_latency_s", _JOB_LATENCY_BOUNDS
            ).observe(job.finished_at - job.enqueued_at)

    # ------------------------------------------------------------------
    # Batch workers
    # ------------------------------------------------------------------
    async def _worker(self) -> None:
        while True:
            job = await self._queue.get()
            batch = [job]
            while len(batch) < self.config.batch_max:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                await self._process(batch)
            finally:
                for _ in batch:
                    self._queue.task_done()

    async def _process(self, batch: list[Job]) -> None:
        for job in batch:
            self._transition(job, JOB_RUNNING)
        by_tenant: dict[str, list[Job]] = {}
        for job in batch:
            by_tenant.setdefault(job.tenant, []).append(job)
        for tenant in sorted(by_tenant):
            jobs = by_tenant[tenant]
            if self._chaos is not None and self._chaos.executor_death():
                self._requeue_or_fail(jobs)
                continue
            started = time.monotonic()  # det: serving latency measurement, not simulated state
            try:
                outcome = await asyncio.to_thread(
                    self._run_batch_fn, tenant, [j.point for j in jobs]
                )
            except Exception as exc:  # noqa: BLE001 — the service survives any batch
                for job in jobs:
                    job.error = f"{type(exc).__name__}: {exc}"
                    self.metrics.counter("server.failed").inc()
                    self._transition(job, JOB_FAILED)
                continue
            elapsed = time.monotonic() - started  # det: serving latency measurement, not simulated state
            self._avg_batch_seconds = (
                0.7 * self._avg_batch_seconds + 0.3 * elapsed
            )
            self._fold_stats(outcome)
            self._absorb_report(jobs, outcome.report)

    def _requeue_or_fail(self, jobs: list[Job]) -> None:
        """The batch executor died under these jobs: put each back in
        the queue (bounded — a job that keeps landing under dying
        executors eventually fails honestly)."""
        for job in jobs:
            job.requeues += 1
            if job.requeues > _MAX_REQUEUES:
                job.error = (
                    f"batch executor died {job.requeues} times running "
                    "this job"
                )
                self.metrics.counter("server.failed").inc()
                self._transition(job, JOB_FAILED)
                continue
            try:
                self._queue.put_nowait(job)
            except asyncio.QueueFull:
                job.error = "batch executor died and the queue is full"
                self.metrics.counter("server.failed").inc()
                self._transition(job, JOB_FAILED)
                continue
            self._transition(job, JOB_QUEUED)

    def _fold_stats(self, outcome: BatchOutcome) -> None:
        """Land one batch's executor/cache counters in server metrics."""
        self.metrics.counter("server.cache_hits").inc(
            outcome.exec_stats.get("cache_hits", 0)
        )
        self.metrics.counter("server.simulated").inc(
            outcome.exec_stats.get("simulated", 0)
        )
        if outcome.cache_stats is not None:
            self.metrics.counter("server.cache_stores").inc(
                outcome.cache_stats.get("stores", 0)
            )
            self.metrics.counter("server.cache_invalid").inc(
                outcome.cache_stats.get("invalid", 0)
            )
            self.metrics.counter("server.cache_quarantined").inc(
                outcome.cache_stats.get("quarantined", 0)
            )

    def _absorb_report(
        self, jobs: list[Job], report: CampaignReport
    ) -> None:
        failures = {f.digest: f for f in report.failures}
        for job in jobs:
            failure = failures.get(job.digest)
            result = report.results.get(job.point)
            if result is not None:
                job.result = run_result_to_dict(result)
                self.metrics.counter("server.completed").inc()
                self._transition(job, JOB_DONE)
            else:
                job.error = (
                    f"[{failure.outcome}] {failure.error}"
                    if failure is not None
                    else "no result returned for point"
                )
                self.metrics.counter("server.failed").inc()
                self._transition(job, JOB_FAILED)

    def _tenant_cache(self, tenant: str) -> Optional[ResultCache]:
        if self.config.cache_root is None:
            return None
        # The tenant becomes a path segment of the *root*; digests stay
        # tenant-agnostic, so the same point shares its content address
        # across tenants while the entries themselves stay private.
        return ResultCache(Path(self.config.cache_root) / tenant)

    def _run_batch(
        self, tenant: str, points: list[RunPoint]
    ) -> BatchOutcome:
        """One supervisor pass for one tenant's slice of a batch.

        Runs in a worker thread.  A fresh executor/cache per call keeps
        every mutable piece thread-local; the on-disk cache is the only
        shared state, and it is concurrency-safe by construction.
        """
        cache = self._tenant_cache(tenant)
        executor = ExperimentExecutor(
            jobs=self.config.jobs,
            cache=cache,
            verify=self.config.verify,
        )
        supervisor = CampaignSupervisor(
            executor,
            SupervisorPolicy(
                keep_going=True, retries=self.config.retries
            ),
        )
        report = supervisor.run_points(points)
        return BatchOutcome(
            report=report,
            exec_stats=executor.stats.as_dict(),
            cache_stats=cache.stats.as_dict() if cache is not None else None,
        )


    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._connection_loop(reader, writer)
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            if self._chaos is not None:
                stall = self._chaos.read_stall()
                if stall > 0:
                    await asyncio.sleep(stall)
            try:
                request = await read_request(reader)
            except HttpError as exc:
                self.metrics.counter("server.http_errors").inc()
                await write_response(
                    writer,
                    error_response(exc.status, exc.message),
                )
                return
            except (ConnectionError, OSError):
                return
            if request is None:
                return
            self.metrics.counter("server.requests").inc()
            try:
                response = await self._route(request, writer)
            except HttpError as exc:
                self.metrics.counter("server.http_errors").inc()
                response = error_response(exc.status, exc.message)
            except Exception as exc:  # noqa: BLE001 — one bad request must not kill the listener
                self.metrics.counter("server.http_errors").inc()
                response = error_response(
                    500, f"{type(exc).__name__}: {exc}"
                )
            if response is None:
                return  # the handler streamed and owns the connection
            response.close = response.close or not request.keep_alive
            try:
                forced_close = await self._write_maybe_sabotaged(
                    writer, response
                )
            except (ConnectionError, OSError):
                return
            if response.close or forced_close:
                return

    async def _write_maybe_sabotaged(
        self, writer: asyncio.StreamWriter, response: HttpResponse
    ) -> bool:
        """Write one response, letting the chaos engine sabotage it.

        Returns ``True`` when the sabotage consumed the connection.  With
        no engine this is exactly :func:`write_response` — the chaos-free
        wire bytes are untouched.
        """
        if self._chaos is None:
            await write_response(writer, response)
            return False
        if self._chaos.connection_reset():
            # Head plus half the body, then a hard abort (RST, not FIN):
            # the client sees the connection die mid-response.
            writer.write(
                _head(response) + response.body[: len(response.body) // 2]
            )
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            writer.transport.abort()
            return True
        if self._chaos.truncate_body():
            # Full Content-Length declared, tail withheld, then close:
            # the client must surface TruncatedResponse, never treat the
            # EOF as a clean short body.
            cut = len(response.body) - max(1, len(response.body) // 4)
            writer.write(_head(response) + response.body[: max(0, cut)])
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            return True
        if self._chaos.oversize_body():
            # Declared length is honest but garbage follows it; the
            # connection closes so the garbage is the last thing sent.
            # A client that reads exactly Content-Length is unharmed —
            # one that slurps until EOF chokes.
            writer.write(_head(response) + response.body + OVERSIZE_GARBAGE)
            await writer.drain()
            return True
        await write_response(writer, response)
        return False

    async def _route(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> Optional[HttpResponse]:
        method, path = request.method, request.path
        if path == "/healthz" and method == "GET":
            return json_response(
                200, {"status": "ok", "draining": self._draining}
            )
        if path == "/v1/status" and method == "GET":
            return json_response(200, self._status_doc())
        if path == "/v1/metrics" and method == "GET":
            return json_response(200, self.metrics.snapshot())
        if path == "/v1/submit" and method == "POST":
            return await self._handle_submit(request)
        if path == "/v1/grid" and method == "POST":
            return await self._handle_grid(request)
        match = re.fullmatch(r"/v1/jobs/([^/]+)", path)
        if match and method == "GET":
            return await self._handle_job_poll(request, match.group(1))
        match = re.fullmatch(r"/v1/jobs/([^/]+)/events", path)
        if match and method == "GET":
            await self._stream_job_events(request, writer, match.group(1))
            return None
        match = re.fullmatch(r"/v1/results/([^/]+)", path)
        if match and method == "GET":
            return self._handle_result_fetch(request, match.group(1))
        if path in ("/healthz", "/v1/status", "/v1/metrics", "/v1/submit",
                    "/v1/grid"):
            raise HttpError(405, f"{method} not allowed on {path}")
        raise HttpError(404, f"no such endpoint: {method} {path}")

    def _status_doc(self) -> dict[str, Any]:
        return {
            "queue_depth": self._queue.qsize(),
            "queue_limit": self.config.queue_limit,
            "workers": self.config.workers,
            "jobs": self.config.jobs,
            "batch_max": self.config.batch_max,
            "draining": self._draining,
            "active_jobs": len(self._active),
            "tracked_jobs": len(self._jobs),
            "wal": self._wal is not None,
            "chaos": self._chaos is not None,
        }

    async def _submit_parsed(
        self, tenant: str, point: RunPoint
    ) -> tuple[Job, bool]:
        try:
            return await self.submit(tenant, point)
        except Draining:
            raise HttpError(503, "server is draining; not accepting work")
        except QueueFull as exc:
            self.metrics.counter("server.rejected").inc()
            raise _Backpressure(exc.retry_after)

    async def _handle_submit(self, request: HttpRequest) -> HttpResponse:
        doc = request.json()
        tenant = parse_tenant(request, doc)
        point = parse_point(doc, self.config.base_config)
        try:
            job, coalesced = await self._submit_parsed(tenant, point)
        except _Backpressure as bp:
            return bp.response()
        body = job.to_doc(include_result=False)
        body["coalesced"] = coalesced
        return json_response(202, {"job": body})

    async def _handle_grid(self, request: HttpRequest) -> HttpResponse:
        doc = request.json()
        if not isinstance(doc, dict):
            raise HttpError(400, "grid submission must be a JSON object")
        tenant = parse_tenant(request, doc)
        figure = doc.get("figure")
        if not isinstance(figure, str):
            raise HttpError(400, "grid submission needs a figure name")
        config = _parse_config(
            self.config.base_config, doc.get("config")
        )
        try:
            points = figure_points(figure, config)
        except ValueError as exc:
            raise HttpError(400, str(exc))
        # All or nothing: admitting half a grid would leave the client
        # guessing which cells exist.  Coalesced points need no slots.
        digests = [
            point_digest(p.config, p.workload, p.policy, p.scheme)
            for p in points
        ]
        fresh = {
            digest
            for digest, p in zip(digests, points)
            if (tenant, digest) not in self._active
        }
        if len(fresh) > self._room_left():
            self.metrics.counter("server.rejected").inc()
            return _Backpressure(self._retry_after()).response()
        jobs = []
        for point in points:
            try:
                job, coalesced = await self._submit_parsed(tenant, point)
            except _Backpressure as bp:
                return bp.response()  # racing submitter won the room
            body = job.to_doc(include_result=False)
            body["coalesced"] = coalesced
            jobs.append(body)
        return json_response(
            202, {"figure": figure, "count": len(jobs), "jobs": jobs}
        )

    def _job_for(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        return job

    async def _handle_job_poll(
        self, request: HttpRequest, job_id: str
    ) -> HttpResponse:
        job = self._job_for(job_id)
        wait_text = request.query.get("wait")
        if wait_text is not None and not job.terminal:
            try:
                # The server-side idle timeout caps every long-poll: a
                # dead client's connection cannot outlive it, so a
                # graceful drain is never pinned by abandoned polls.
                wait = min(
                    60.0,
                    self.config.idle_timeout,
                    max(0.0, float(wait_text)),
                )
            except ValueError:
                raise HttpError(400, f"bad wait value {wait_text!r}")
            try:
                await asyncio.wait_for(job.done.wait(), timeout=wait)
            except asyncio.TimeoutError:
                pass  # report current state; the client polls again
        return json_response(200, {"job": job.to_doc()})

    async def _stream_job_events(
        self,
        request: HttpRequest,
        writer: asyncio.StreamWriter,
        job_id: str,
    ) -> None:
        """Chunked JSONL: one line per state change, until terminal.

        Doubly idle-bounded: a stream with no state change for
        ``idle_timeout`` ends cleanly (terminal chunk; the client may
        reconnect), and a reader too stalled to drain a write within
        ``idle_timeout`` is aborted outright — either way a dead client
        cannot pin the connection through a graceful drain.
        """
        job = self._job_for(job_id)
        idle = self.config.idle_timeout
        head = HttpResponse(
            status=200, content_type="application/jsonl", close=True
        )
        writer.write(_head(head, chunked=True))
        await writer.drain()
        while True:
            changed = job.changed  # capture BEFORE reading state
            line = json.dumps(
                job.to_doc(include_result=job.terminal), sort_keys=True
            )
            writer.write(encode_chunk((line + "\n").encode("utf-8")))
            try:
                await asyncio.wait_for(writer.drain(), timeout=idle)
            except asyncio.TimeoutError:
                writer.transport.abort()  # stalled reader
                return
            if job.terminal:
                break
            try:
                await asyncio.wait_for(changed.wait(), timeout=idle)
            except asyncio.TimeoutError:
                break  # idle stream: close it; the client can reconnect
        writer.write(encode_chunk(b""))
        await writer.drain()

    def _handle_result_fetch(
        self, request: HttpRequest, digest: str
    ) -> HttpResponse:
        if not _DIGEST_RE.fullmatch(digest):
            raise HttpError(400, "digest must be 64 hex characters")
        tenant = parse_tenant(request)
        if self.config.cache_root is None:
            raise HttpError(404, "server runs without a result cache")
        path = (
            Path(self.config.cache_root)
            / tenant
            / digest[:2]
            / f"{digest}.json"
        )
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise HttpError(404, f"no cached result for {digest}")
        except (OSError, ValueError):
            raise HttpError(404, f"cached result for {digest} is unreadable")
        return json_response(200, {"digest": digest, "result": doc})


class _Backpressure(Exception):
    """Internal 429 carrier so handlers can return a uniform response."""

    def __init__(self, retry_after: int):
        super().__init__(f"retry after {retry_after}")
        self.retry_after = retry_after

    def response(self) -> HttpResponse:
        return error_response(
            429,
            "work queue is full",
            headers={"Retry-After": str(self.retry_after)},
        )
