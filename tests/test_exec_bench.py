"""Tests for the ``repro bench`` record trajectory and profiling helpers.

The expensive paths (full ``run_bench`` with kernel shootout) are
exercised through the CLI smoke test; here we pin the pure record
plumbing: picking the latest prior record, the warn-and-seed behavior on
an empty trajectory, delta reporting, and the cProfile table shape.
"""

import datetime
import io
import json

from repro.exec import RunPoint, compare_with_previous, profile_grid
from repro.exec.bench import (
    _record_timestamp,
    latest_bench_record,
    write_bench_record,
)
from repro.experiments import ExperimentConfig

SMALL = ExperimentConfig(n_clients=8, n_ionodes=4, workload_scale=0.05)


def fake_record(**overrides):
    record = {
        "kind": "repro-bench",
        "serial_seconds": 2.0,
        "parallel_seconds": 1.0,
        "warm_seconds": 0.01,
        "events_per_sec": 100000.0,
    }
    record.update(overrides)
    return record


class TestLatestBenchRecord:
    def test_empty_dir_is_none(self, tmp_path):
        assert latest_bench_record(tmp_path) is None
        assert latest_bench_record(tmp_path / "missing") is None

    def test_picks_newest_by_timestamp_name(self, tmp_path):
        for stamp in ("20260101T000000", "20260301T000000", "20260201T000000"):
            (tmp_path / f"BENCH_{stamp}.json").write_text("{}")
        latest = latest_bench_record(tmp_path)
        assert latest is not None
        assert latest.name == "BENCH_20260301T000000.json"

    def test_exclude_skips_the_record_just_written(self, tmp_path):
        older = tmp_path / "BENCH_20260101T000000.json"
        newer = tmp_path / "BENCH_20260301T000000.json"
        older.write_text("{}")
        newer.write_text("{}")
        assert latest_bench_record(tmp_path, exclude=newer) == older
        assert latest_bench_record(tmp_path, exclude=older) == newer

    def test_exclude_only_record_is_none(self, tmp_path):
        only = tmp_path / "BENCH_20260101T000000.json"
        only.write_text("{}")
        assert latest_bench_record(tmp_path, exclude=only) is None


class TestRecordTimestamp:
    UTC = datetime.timezone.utc

    def test_parses_utc_z_stamp(self, tmp_path):
        path = tmp_path / "BENCH_20260808T120102Z.json"
        assert _record_timestamp(path) == datetime.datetime(
            2026, 8, 8, 12, 1, 2, tzinfo=self.UTC
        )

    def test_legacy_naive_stamp_read_as_utc(self, tmp_path):
        path = tmp_path / "BENCH_20260101T000000.json"
        assert _record_timestamp(path) == datetime.datetime(
            2026, 1, 1, tzinfo=self.UTC
        )

    def test_unparseable_name_sorts_to_the_epoch(self, tmp_path):
        garbage = _record_timestamp(tmp_path / "BENCH_notastamp.json")
        real = _record_timestamp(tmp_path / "BENCH_19700101T000001.json")
        assert garbage < real

    def test_mixed_legacy_and_utc_ordered_by_instant(self, tmp_path):
        """The bugfix scenario: a naive local stamp from a timezone ahead
        of UTC sorts lexically *after* a newer Z stamp ('...Z' suffix),
        but the parsed instants order them correctly either way round."""
        legacy_old = tmp_path / "BENCH_20260301T000000.json"
        utc_new = tmp_path / "BENCH_20260401T000000Z.json"
        for p in (legacy_old, utc_new):
            p.write_text("{}")
        assert latest_bench_record(tmp_path) == utc_new

        legacy_new = tmp_path / "BENCH_20260501T000000.json"
        legacy_new.write_text("{}")
        assert latest_bench_record(tmp_path) == legacy_new

    def test_stray_file_never_shadows_a_real_record(self, tmp_path):
        real = tmp_path / "BENCH_20260101T000000Z.json"
        stray = tmp_path / "BENCH_zzzzlexicallylast.json"
        for p in (real, stray):
            p.write_text("{}")
        assert latest_bench_record(tmp_path) == real


class TestCompareWithPrevious:
    def test_empty_trajectory_warns_and_seeds(self, tmp_path):
        """No prior record must never crash the bench — it warns and the
        fresh record becomes the baseline."""
        err = io.StringIO()
        outcome = compare_with_previous(fake_record(), tmp_path, out=err)
        assert outcome is None
        assert "seeds the trajectory" in err.getvalue()

    def test_unreadable_prior_warns_not_raises(self, tmp_path):
        (tmp_path / "BENCH_20260101T000000.json").write_text("not json{")
        err = io.StringIO()
        outcome = compare_with_previous(fake_record(), tmp_path, out=err)
        assert outcome is None
        assert "warning" in err.getvalue()

    def test_deltas_against_prior(self, tmp_path):
        prior = tmp_path / "BENCH_20260101T000000.json"
        prior.write_text(json.dumps(fake_record(
            serial_seconds=4.0, events_per_sec=50000.0,
        )))
        err = io.StringIO()
        outcome = compare_with_previous(fake_record(), tmp_path, out=err)
        assert outcome is not None
        assert outcome["previous"] == prior.name
        deltas = outcome["deltas"]
        assert deltas["serial_seconds"] == -0.5     # 4.0s -> 2.0s
        assert deltas["events_per_sec"] == 1.0      # 50k -> 100k
        text = err.getvalue()
        assert prior.name in text
        assert "serial_seconds: 4 -> 2" in text

    def test_skips_metrics_absent_from_either_side(self, tmp_path):
        prior = tmp_path / "BENCH_20260101T000000.json"
        prior.write_text(json.dumps({"kind": "repro-bench",
                                     "serial_seconds": 4.0}))
        outcome = compare_with_previous(
            fake_record(), tmp_path, out=io.StringIO()
        )
        assert outcome is not None
        assert "events_per_sec" not in outcome["deltas"]
        assert "serial_seconds" in outcome["deltas"]


class TestWriteBenchRecord:
    def test_round_trips_and_names_by_timestamp(self, tmp_path):
        path = write_bench_record(
            fake_record(created="2026-01-01T00:00:00"), tmp_path
        )
        assert path.name.startswith("BENCH_")
        assert json.loads(path.read_text())["kind"] == "repro-bench"

    def test_utc_created_stamp_names_a_z_file(self, tmp_path):
        """Current records carry Z-suffixed UTC stamps end to end."""
        path = write_bench_record(
            fake_record(created="2026-08-08T01:02:03Z"), tmp_path
        )
        assert path.name == "BENCH_20260808T010203Z.json"
        assert _record_timestamp(path) == datetime.datetime(
            2026, 8, 8, 1, 2, 3, tzinfo=datetime.timezone.utc
        )


class TestProfileGrid:
    def test_profile_table_per_point(self):
        points = [RunPoint("sar", "simple", False, SMALL)]
        blocks = profile_grid(points, top=5)
        assert len(blocks) == 1
        label, table = blocks[0]
        assert label == "sar/simple/plain"
        # A real pstats table sorted by tottime.
        assert "tottime" in table
        assert "function calls" in table
