"""Durable append-only JSONL journals — the shared crash-safety substrate.

PR 5 gave the campaign supervisor an fsync'd JSONL journal whose loader
tolerates a truncated final line; PR 10 extracts that machinery here so
the scheduling service can reuse it as an **admission write-ahead log**.
Two consumers, one contract:

* :class:`~repro.exec.supervise.CampaignJournal` — ``(digest, outcome)``
  per experiment point, resumed by ``repro resume``;
* the :class:`~repro.serve.server.SchedulingServer` admission WAL — one
  record per accepted submission and one per terminal outcome, replayed
  by ``repro serve --recover``.

The durability contract (identical for both):

* every record is one newline-terminated JSON line, written as a single
  ``write`` + ``flush`` + ``fsync`` — a crash (SIGKILL included) between
  records can at worst truncate the final line;
* the loader (:meth:`DurableJournal.load`) skips blank and truncated
  lines, so a journal cut off at *any* byte boundary stays loadable;
* journals store only identities and outcomes, never results — results
  live in the content-addressed cache, which is what makes replay
  bit-identical by construction.

WAL record vocabulary (``kind`` field)::

    admission-wal   header: schema + server identity
    admit           job accepted: id, tenant, digest, label, point doc
    outcome         job reached a terminal state: id, digest, state

The ``admit`` record embeds the full submission *point* (workload,
policy, scheme and every config field) via :func:`point_to_doc`, so
recovery can re-enqueue the exact experiment without the original client
— and because digests double as idempotency keys, a recovered job that
was already cached completes as a hit, never a re-simulation.
"""

from __future__ import annotations

import os
from dataclasses import fields
from pathlib import Path
from typing import Any, Optional, Union

from ..experiments.config import ExperimentConfig
from ..faults.plan import plan_from_dict, plan_to_dict
from .serialize import canonical_dumps, parse_journal_line

__all__ = [
    "WAL_SCHEMA_VERSION",
    "DurableJournal",
    "point_to_doc",
    "point_from_doc",
    "wal_header",
    "wal_admit",
    "wal_outcome",
    "load_wal",
    "WalJob",
]

#: Layout version of the admission WAL.  Independent of the result
#: SCHEMA_VERSION: the WAL stores submissions and outcomes, never
#: results, so result-semantics bumps never invalidate a WAL — the
#: recovered points simply miss the cache and re-run.
WAL_SCHEMA_VERSION = 1


class DurableJournal:
    """Append-only JSONL file, durable per record, loadable after any cut.

    Generic core shared by the campaign journal and the admission WAL:
    an optional header record is written exactly once (when the file is
    new or empty), then :meth:`append` lands one record per call with
    ``write``+``flush``+``fsync`` semantics.
    """

    def __init__(
        self,
        path: Union[str, Path],
        header: Optional[dict[str, Any]] = None,
    ):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._fh = self.path.open("a", encoding="utf-8")
        self.appended = 0
        if fresh:
            if header is None:
                raise ValueError(
                    "a new journal needs a header record"
                )
            self.append(header)

    def append(self, record: dict[str, Any]) -> None:
        """Write one record durably (write + flush + fsync)."""
        self._fh.write(canonical_dumps(record) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.appended += 1

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "DurableJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    @staticmethod
    def load(path: Union[str, Path]) -> list[dict[str, Any]]:
        """Every complete record, in order; blank/truncated lines skipped.

        A crashed writer can leave a final partial line; tolerating it
        (rather than failing the whole replay) is deliberate — every
        complete line was fsynced before the next record was accepted.
        """
        records: list[dict[str, Any]] = []
        with Path(path).open("r", encoding="utf-8") as fh:
            for line in fh:
                record = parse_journal_line(line)
                if record is not None:
                    records.append(record)
        return records


# ----------------------------------------------------------------------
# Point (de)serialization — what an `admit` record must carry so a
# recovered server can rebuild the exact RunPoint without the client.
# ----------------------------------------------------------------------
def point_to_doc(
    workload: str, policy: str, scheme: bool, config: ExperimentConfig
) -> dict[str, Any]:
    """One submission point as a plain-JSON document (round-trips
    exactly through :func:`point_from_doc`, fault plan included)."""
    cfg: dict[str, Any] = {}
    for f in fields(config):
        value = getattr(config, f.name)
        if f.name == "fault_plan":
            value = None if value is None else plan_to_dict(value)
        cfg[f.name] = value
    return {
        "workload": workload,
        "policy": policy,
        "scheme": scheme,
        "config": cfg,
    }


def point_from_doc(
    doc: dict[str, Any],
) -> tuple[str, str, bool, ExperimentConfig]:
    """Rebuild ``(workload, policy, scheme, config)`` from a point doc."""
    cfg = dict(doc["config"])
    plan_doc = cfg.get("fault_plan")
    cfg["fault_plan"] = (
        None if plan_doc is None else plan_from_dict(plan_doc)
    )
    return (
        doc["workload"],
        doc["policy"],
        bool(doc["scheme"]),
        ExperimentConfig(**cfg),
    )


# ----------------------------------------------------------------------
# WAL records
# ----------------------------------------------------------------------
def wal_header() -> dict[str, Any]:
    """The first line of an admission WAL."""
    return {"kind": "admission-wal", "schema": WAL_SCHEMA_VERSION}


def wal_admit(
    job_id: str,
    tenant: str,
    digest: str,
    label: str,
    point_doc: dict[str, Any],
) -> dict[str, Any]:
    """One accepted submission.  Written (and fsynced) *before* the 202
    leaves the server — the WAL is what makes that 202 a promise."""
    return {
        "kind": "admit",
        "job": job_id,
        "tenant": tenant,
        "digest": digest,
        "label": label,
        "point": point_doc,
    }


def wal_outcome(
    job_id: str, digest: str, state: str, error: Optional[str] = None
) -> dict[str, Any]:
    """One terminal job state (``done`` or ``failed``)."""
    record: dict[str, Any] = {
        "kind": "outcome",
        "job": job_id,
        "digest": digest,
        "state": state,
    }
    if error is not None:
        record["error"] = error
    return record


class WalJob:
    """One job reconstructed from the WAL during recovery."""

    __slots__ = ("job_id", "tenant", "digest", "label", "point_doc", "state")

    def __init__(self, record: dict[str, Any]):
        self.job_id: str = record["job"]
        self.tenant: str = record["tenant"]
        self.digest: str = record["digest"]
        self.label: str = record["label"]
        self.point_doc: dict[str, Any] = record["point"]
        self.state: Optional[str] = None  # terminal state, if any

    @property
    def unfinished(self) -> bool:
        return self.state is None


def load_wal(
    path: Union[str, Path],
) -> tuple[dict[str, Any], dict[str, WalJob]]:
    """Read an admission WAL: ``(header, jobs by id, in admit order)``.

    Every ``admit`` opens a job; an ``outcome`` for the same job id
    closes it.  Jobs left open are exactly the accepted-but-unfinished
    work a recovering server must re-enqueue.  Unknown record kinds are
    skipped (forward compatibility within a schema version).
    """
    header: Optional[dict[str, Any]] = None
    jobs: dict[str, WalJob] = {}
    for record in DurableJournal.load(path):
        kind = record.get("kind")
        if kind == "admission-wal":
            if record.get("schema") != WAL_SCHEMA_VERSION:
                raise ValueError(
                    f"admission WAL schema {record.get('schema')!r} != "
                    f"current {WAL_SCHEMA_VERSION}"
                )
            header = record
        elif kind == "admit":
            try:
                jobs[record["job"]] = WalJob(record)
            except KeyError as exc:
                raise ValueError(
                    f"malformed admit record (missing {exc}): {record}"
                ) from None
        elif kind == "outcome":
            job = jobs.get(record.get("job", ""))
            if job is not None:
                job.state = record.get("state")
    if header is None:
        raise ValueError(f"{path}: not an admission WAL (no header line)")
    return header, jobs
