"""Tests for the content-addressed result cache and its serialization.

Correctness contract: a cache hit returns a result *equal* to the one
simulated (exact float round-trip), and the digest changes whenever any
input that could change the result changes — so stale reuse is impossible
by construction.
"""

import json

import pytest

from repro.exec import (
    SCHEMA_VERSION,
    ResultCache,
    point_digest,
    run_result_from_dict,
    run_result_to_dict,
)
from repro.exec import serialize
from repro.experiments import ExperimentConfig, Runner

TINY = ExperimentConfig(workload_scale=0.05)


@pytest.fixture(scope="module")
def result():
    return Runner(TINY).run("sar", "history", True)


class TestSerialization:
    def test_round_trip_equality(self, result):
        d = run_result_to_dict(result)
        assert run_result_from_dict(d) == result

    def test_json_round_trip_equality(self, result):
        """Through actual JSON text: floats must survive bit-identically."""
        text = json.dumps(run_result_to_dict(result))
        assert run_result_from_dict(json.loads(text)) == result

    def test_idle_cdf_tuples_restored(self, result):
        restored = run_result_from_dict(
            json.loads(json.dumps(run_result_to_dict(result)))
        )
        assert isinstance(restored.idle_cdf.buckets_ms, tuple)
        assert isinstance(restored.idle_cdf.cumulative, tuple)

    def test_schema_mismatch_rejected(self, result):
        d = run_result_to_dict(result)
        d["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            run_result_from_dict(d)


class TestDigest:
    def test_stable_across_calls(self):
        assert point_digest(TINY, "sar", "history", True) == point_digest(
            TINY, "sar", "history", True
        )

    def test_equal_configs_equal_digest(self):
        other = ExperimentConfig(workload_scale=0.05)
        assert point_digest(TINY, "sar", "history", True) == point_digest(
            other, "sar", "history", True
        )

    @pytest.mark.parametrize(
        "change",
        [
            {"delta": 40},
            {"theta": 2},
            {"n_ionodes": 4},
            {"workload_scale": 0.1},
            {"simple_timeout": 10.0},
            {"buffer_capacity_blocks": 1024},
        ],
    )
    def test_any_knob_changes_digest(self, change):
        base = point_digest(TINY, "sar", "history", True)
        assert point_digest(TINY.scaled(**change), "sar", "history", True) != base

    def test_identity_fields_change_digest(self):
        base = point_digest(TINY, "sar", "history", True)
        assert point_digest(TINY, "hf", "history", True) != base
        assert point_digest(TINY, "sar", "simple", True) != base
        assert point_digest(TINY, "sar", "history", False) != base

    def test_schema_version_changes_digest(self, monkeypatch):
        base = point_digest(TINY, "sar", "history", True)
        monkeypatch.setattr(serialize, "SCHEMA_VERSION", SCHEMA_VERSION + 1)
        monkeypatch.setattr(
            "repro.exec.cache.SCHEMA_VERSION", SCHEMA_VERSION + 1
        )
        assert point_digest(TINY, "sar", "history", True) != base


class TestResultCache:
    def test_miss_then_hit(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        assert cache.lookup(TINY, "sar", "history", True) is None
        cache.store(TINY, "sar", "history", True, result)
        assert cache.lookup(TINY, "sar", "history", True) == result
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_knob_change_is_a_miss_not_stale_reuse(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        cache.store(TINY, "sar", "history", True, result)
        for change in ({"delta": 40}, {"theta": 2}, {"n_ionodes": 4}):
            assert cache.lookup(
                TINY.scaled(**change), "sar", "history", True
            ) is None

    def test_schema_bump_orphans_old_entries(self, tmp_path, result,
                                             monkeypatch):
        cache = ResultCache(tmp_path)
        cache.store(TINY, "sar", "history", True, result)
        monkeypatch.setattr(
            "repro.exec.cache.SCHEMA_VERSION", SCHEMA_VERSION + 1
        )
        assert cache.lookup(TINY, "sar", "history", True) is None

    def test_corrupt_entry_treated_as_miss(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        path = cache.store(TINY, "sar", "history", True, result)
        path.write_text("{not json", encoding="utf-8")
        assert cache.lookup(TINY, "sar", "history", True) is None
        assert cache.stats.invalid == 1
        # A fresh store repairs it.
        cache.store(TINY, "sar", "history", True, result)
        assert cache.lookup(TINY, "sar", "history", True) == result

    def test_len_and_clear(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        cache.store(TINY, "sar", "history", True, result)
        cache.store(TINY, "sar", "history", False, result)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_runner_integration_round_trip(self, tmp_path):
        """A Runner wired to a cache persists runs and reloads them equal,
        with zero extra simulations."""
        cache = ResultCache(tmp_path)
        first = Runner(TINY, cache=cache)
        a = first.run("sar", "simple", False)
        assert first.simulations == 1

        second = Runner(TINY, cache=ResultCache(tmp_path))
        b = second.run("sar", "simple", False)
        assert second.simulations == 0
        assert a == b


class TestOrphanSweep:
    """``.tmp-*`` files abandoned by crashed writers must not accumulate."""

    def orphan(self, root, name="aa"):
        fan = root / name
        fan.mkdir(parents=True, exist_ok=True)
        path = fan / ".tmp-dead-writer.json"
        path.write_text("{", encoding="utf-8")
        return path

    def test_init_sweeps_and_counts_orphans(self, tmp_path):
        dead = [self.orphan(tmp_path, fan) for fan in ("aa", "bb", "bb")]
        cache = ResultCache(tmp_path)
        assert cache.stats.orphans_swept == 2  # two distinct files
        assert not any(p.exists() for p in dead)
        assert "orphans_swept" in cache.stats.as_dict()

    def test_clear_sweeps_orphans_but_counts_only_entries(self, tmp_path,
                                                          result):
        cache = ResultCache(tmp_path)
        cache.store(TINY, "sar", "history", True, result)
        orphan = self.orphan(tmp_path)
        assert cache.clear() == 1  # the entry, not the orphan
        assert not orphan.exists()
        assert cache.stats.orphans_swept == 1

    def test_sweep_leaves_real_entries_alone(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        cache.store(TINY, "sar", "history", True, result)
        self.orphan(tmp_path)
        assert cache.sweep_orphans() == 1
        assert cache.lookup(TINY, "sar", "history", True) == result

    def test_store_survives_concurrent_sweep_race(self, tmp_path, result,
                                                  monkeypatch):
        """A racing sweep may unlink our live tempfile between mkstemp
        and os.replace; store must retry with a fresh tempfile."""
        import os as _os

        cache = ResultCache(tmp_path)
        real_replace = _os.replace
        raced = {"done": False}

        def racing_replace(src, dst):
            if not raced["done"]:
                raced["done"] = True
                _os.unlink(src)  # the concurrent sweeper wins the race
                raise FileNotFoundError(src)
            return real_replace(src, dst)

        monkeypatch.setattr("repro.exec.cache.os.replace", racing_replace)
        cache.store(TINY, "sar", "history", True, result)
        assert cache.lookup(TINY, "sar", "history", True) == result
        assert list(tmp_path.glob("*/.tmp-*")) == []
