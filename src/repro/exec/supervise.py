"""Resilient campaign supervision over :class:`ExperimentExecutor`.

The plain executor is fail-stop: one worker death or hung point aborts
the whole campaign and discards every in-flight result.
:class:`CampaignSupervisor` wraps it with the machinery a multi-hour
figure campaign needs to survive partial failure:

* **watchdog timeout** — a point that exceeds ``timeout`` seconds has
  its (unkillable-in-place) worker pool torn down and respawned; the
  point retries, its innocent pool-mates are requeued at no attempt
  cost;
* **bounded retry with deterministic seeded backoff** — every retry
  delay is a pure function of ``(point digest, attempt)``, so two runs
  of the same failing campaign back off identically;
* **worker-crash recovery** — a ``BrokenProcessPool`` respawns the pool
  and requeues the unfinished points.  Because a pool break cannot name
  its killer, the supervisor drops to *solo mode* (one in-flight point
  at a time) until a point completes: in solo mode blame is exact, so a
  point that breaks its pool ``quarantine_after`` times is quarantined
  without taking innocent siblings with it.  If the pool keeps breaking
  (``max_pool_breaks`` consecutive times) the supervisor degrades to
  serial in-process execution for the remainder;
* **campaign journal** — a JSONL log of ``(point digest, outcome)``
  written (appended, flushed, fsynced) as each point resolves.  The
  journal stores *only* digests and outcomes, never results — all data
  flows through the content-addressed result cache — so a resumed
  campaign is bit-identical to an uninterrupted one by construction.
  ``repro resume <journal>`` re-dispatches the argv recorded in the
  journal header; previously-finished points come back as cache hits;
* **partial-failure reporting** — with ``keep_going`` every failure is
  collected into the :class:`CampaignReport` while the rest of the
  campaign completes; without it (fail-fast) the first resolved failure
  raises, after completed siblings' results have been preserved.

Outcome vocabulary (journal + report): ``ok``, ``cached``, ``failed``,
``timeout``, ``quarantined``, plus the intermediate ``retried``.

Determinism: supervision never touches point digests, cache keys or
simulation semantics — an empty journal and a fault-free campaign are
byte-identical to an unsupervised run (locked in by the tests).
"""

from __future__ import annotations

import hashlib
import random
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Optional, Union

from ..experiments.runner import Runner, RunResult
from ..obs.metrics import MetricsRegistry, write_snapshot
from .cache import point_digest
from .executor import (
    ExperimentExecutor,
    RunPoint,
    VerifyFailure,
    _worker_run,
    execute_point,
)
from .journal import DurableJournal
from .serialize import (
    JOURNAL_SCHEMA_VERSION,
    journal_entry,
    journal_header,
)

__all__ = [
    "OUTCOME_OK",
    "OUTCOME_CACHED",
    "OUTCOME_FAILED",
    "OUTCOME_TIMEOUT",
    "OUTCOME_QUARANTINED",
    "OUTCOME_RETRIED",
    "OUTCOMES",
    "BOUNDARY_ERRORS",
    "WorkerFailure",
    "PointTimeout",
    "CampaignFailed",
    "SupervisorPolicy",
    "backoff_delay",
    "CampaignJournal",
    "load_journal",
    "PointFailure",
    "CampaignReport",
    "CampaignSupervisor",
]

OUTCOME_OK = "ok"
OUTCOME_CACHED = "cached"
OUTCOME_FAILED = "failed"
OUTCOME_TIMEOUT = "timeout"
OUTCOME_QUARANTINED = "quarantined"
OUTCOME_RETRIED = "retried"

#: Terminal outcomes first, then the intermediate retry marker.
OUTCOMES = (
    OUTCOME_OK,
    OUTCOME_CACHED,
    OUTCOME_FAILED,
    OUTCOME_TIMEOUT,
    OUTCOME_QUARANTINED,
    OUTCOME_RETRIED,
)

#: Retry-backoff histogram bounds (seconds) for ``exec.retry_backoff_s``.
RETRY_BACKOFF_BOUNDS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0)


class WorkerFailure(RuntimeError):
    """A worker-side exception, flattened to strings for the pool.

    Arbitrary exceptions raised inside a point (simulation bugs, bad
    configs) may not pickle; arriving as an opaque ``PicklingError``
    would defeat the whole report.  The supervised worker entry point
    therefore wraps everything except :class:`VerifyFailure` into this —
    label, original type name, message and formatted traceback, all
    plain strings.
    """

    def __init__(
        self, label: str, kind: str, message: str, traceback_text: str = ""
    ):
        super().__init__(f"{label}: {kind}: {message}")
        self.label = label
        self.kind = kind
        self.message = message
        self.traceback_text = traceback_text

    def __reduce__(self):
        return (
            WorkerFailure,
            (self.label, self.kind, self.message, self.traceback_text),
        )


class PointTimeout(RuntimeError):
    """A point exhausted its retries against the watchdog timeout."""

    def __init__(self, label: str, seconds: float, attempts: int):
        super().__init__(
            f"{label}: no result within {seconds:g}s "
            f"(watchdog fired on all {attempts} attempt(s))"
        )
        self.label = label
        self.seconds = seconds
        self.attempts = attempts

    def __reduce__(self):
        return (PointTimeout, (self.label, self.seconds, self.attempts))


class CampaignFailed(RuntimeError):
    """Raised by :meth:`CampaignReport.raise_if_failed` — every collected
    point failure, not just the first."""

    def __init__(self, failures: list["PointFailure"]):
        lines = [f"{len(failures)} point(s) failed:"]
        lines += [
            f"  {f.label} [{f.outcome}] after {f.attempts + 1} attempt(s): "
            f"{f.error}"
            for f in failures
        ]
        super().__init__("\n".join(lines))
        self.failures = failures

    def __reduce__(self):
        return (CampaignFailed, (self.failures,))


#: Exception types that legitimately cross the worker/parent process
#: boundary.  Every member must round-trip through pickle with its
#: payload intact (``tests/test_exec_pickling.py`` enforces this), so a
#: worker error can never arrive as an opaque ``PicklingError``.
BOUNDARY_ERRORS: tuple[type, ...] = (VerifyFailure, WorkerFailure)


def _supervised_worker_run(
    point: RunPoint, verify: bool, metrics_dir: Optional[str] = None
) -> RunResult:
    """Worker entry point that guarantees picklable failure.

    :class:`VerifyFailure` already crosses the pool cleanly and callers
    key on it (non-retryable); anything else is flattened into a
    :class:`WorkerFailure` carrying the original traceback text.
    """
    import traceback

    try:
        return _worker_run(point, verify, metrics_dir)
    except VerifyFailure:
        raise
    except Exception as exc:
        raise WorkerFailure(
            point.label(),
            type(exc).__name__,
            str(exc),
            traceback.format_exc(),
        ) from None


# ----------------------------------------------------------------------
# Policy and deterministic backoff
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SupervisorPolicy:
    """Tunable supervision knobs (all orthogonal to simulation inputs)."""

    #: Watchdog seconds per attempt; None disables the watchdog.
    timeout: Optional[float] = None
    #: Extra attempts after the first, per point.
    retries: int = 1
    #: First-retry backoff (seconds); doubles per attempt up to the cap.
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    #: Quarantine a point after this many pool breaks blamed on it.
    quarantine_after: int = 2
    #: Consecutive pool breaks before degrading to serial execution.
    max_pool_breaks: int = 3
    #: Collect failures and keep running (vs fail-fast on the first).
    keep_going: bool = False

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0: {self.timeout}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0: {self.retries}")
        if self.quarantine_after < 1:
            raise ValueError(
                f"quarantine_after must be >= 1: {self.quarantine_after}"
            )
        if self.max_pool_breaks < 1:
            raise ValueError(
                f"max_pool_breaks must be >= 1: {self.max_pool_breaks}"
            )


def backoff_delay(
    digest: str, attempt: int, base: float = 0.05, cap: float = 2.0
) -> float:
    """Deterministic jittered exponential backoff.

    A pure function of ``(digest, attempt)``: the jitter comes from a
    ``random.Random`` seeded with their hash, so identical campaigns
    back off identically (the same replay-determinism contract the fault
    injector's named streams follow) while distinct points still spread
    out instead of thundering back together.
    """
    if attempt < 1:
        return 0.0
    seed = int.from_bytes(
        hashlib.sha256(f"{digest}:{attempt}".encode("utf-8")).digest()[:8],
        "big",
    )
    jitter = 0.5 + random.Random(seed).random() / 2  # [0.5, 1.0)
    return min(cap, base * (2.0 ** (attempt - 1))) * jitter


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
class CampaignJournal(DurableJournal):
    """Append-only JSONL outcome log, valid after any line boundary.

    A :class:`~repro.exec.journal.DurableJournal` (one fsync'd line per
    record, truncated-tail-tolerant loader — the same substrate the
    scheduling server's admission WAL rides) specialized to campaign
    outcomes: a SIGINT (or SIGKILL) between points can at worst truncate
    the final line, which the loader skips.  Results never enter the
    journal; they live in the content-addressed cache, keeping resume
    bit-identical for free.
    """

    def __init__(
        self, path: Union[str, Path], argv: Optional[list[str]] = None
    ):
        fresh = not Path(path).exists() or Path(path).stat().st_size == 0
        if fresh and argv is None:
            raise ValueError(
                "a new journal needs the campaign argv for its header"
            )
        super().__init__(
            path, header=journal_header(argv) if argv is not None else None
        )

    def record(
        self, digest: str, label: str, outcome: str, attempts: int = 0
    ) -> None:
        if outcome not in OUTCOMES:
            raise ValueError(f"unknown outcome {outcome!r}")
        self.append(journal_entry(digest, label, outcome, attempts))


def load_journal(
    path: Union[str, Path]
) -> tuple[dict[str, Any], dict[str, dict[str, Any]]]:
    """Read a journal back: ``(header, last entry per digest)``.

    Entries are last-write-wins per digest (a ``retried`` line is later
    overwritten by the point's terminal outcome); truncated or blank
    lines are skipped.
    """
    header: Optional[dict[str, Any]] = None
    entries: dict[str, dict[str, Any]] = {}
    for record in DurableJournal.load(path):
        if record.get("kind") == "campaign-journal":
            if record.get("schema") != JOURNAL_SCHEMA_VERSION:
                raise ValueError(
                    f"journal schema {record.get('schema')!r} != "
                    f"current {JOURNAL_SCHEMA_VERSION}"
                )
            header = record
        elif "digest" in record:
            entries[record["digest"]] = record
    if header is None:
        raise ValueError(f"{path}: not a campaign journal (no header line)")
    return header, entries


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PointFailure:
    """One point's terminal failure, flattened for reporting."""

    label: str
    digest: str
    outcome: str  # failed | timeout | quarantined
    error: str
    attempts: int


@dataclass
class CampaignReport:
    """What a supervised campaign actually did, failures included."""

    results: dict[RunPoint, RunResult] = field(default_factory=dict)
    outcomes: dict[str, str] = field(default_factory=dict)  # digest → outcome
    failures: list[PointFailure] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    worker_deaths: int = 0
    interrupted: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures and not self.interrupted

    def counts(self) -> dict[str, int]:
        out = {outcome: 0 for outcome in OUTCOMES if outcome != "retried"}
        for outcome in self.outcomes.values():
            out[outcome] = out.get(outcome, 0) + 1
        return out

    def failures_block(self) -> dict[str, Any]:
        """Schema-stable summary for BENCH records: always every key,
        empty list and zero counts on a clean run."""
        return {
            "count": len(self.failures),
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_deaths": self.worker_deaths,
            "quarantined": sum(
                1 for f in self.failures if f.outcome == OUTCOME_QUARANTINED
            ),
            "points": sorted(f.label for f in self.failures),
        }

    def summary(self) -> str:
        counts = self.counts()
        bits = [f"{name}={n}" for name, n in counts.items() if n]
        if self.retries:
            bits.append(f"retries={self.retries}")
        if self.worker_deaths:
            bits.append(f"worker_deaths={self.worker_deaths}")
        status = "interrupted" if self.interrupted else (
            "ok" if self.ok else "failed"
        )
        return f"campaign {status}: " + " ".join(bits or ["empty"])

    def raise_if_failed(self) -> None:
        if self.failures:
            raise CampaignFailed(list(self.failures))


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------
class _Task:
    """Mutable per-point supervision state (attempts, blame)."""

    __slots__ = ("point", "digest", "label", "attempts", "deaths")

    def __init__(self, point: RunPoint):
        self.point = point
        self.digest = point_digest(
            point.config, point.workload, point.policy, point.scheme
        )
        self.label = point.label()
        self.attempts = 0  # failed attempts so far
        self.deaths = 0  # pool breaks blamed on this point


class CampaignSupervisor:
    """Retrying, journaling, crash-recovering driver for a point grid.

    Wraps an :class:`ExperimentExecutor` (which contributes jobs/cache/
    verify/observability configuration and ``stats``) without changing
    any of its determinism contracts: results are produced by the exact
    same worker entry path, stored under the exact same digests, and a
    supervised fault-free campaign is bit-identical to an unsupervised
    one at any ``jobs``.

    Unlike the plain executor — which persists results only after the
    whole grid resolves — the supervisor stores each result the moment
    its point completes.  That per-point checkpointing is what makes
    SIGINT/SIGKILL cheap: an interrupted campaign has lost only its
    in-flight points.
    """

    def __init__(
        self,
        executor: ExperimentExecutor,
        policy: Optional[SupervisorPolicy] = None,
        journal: Optional[CampaignJournal] = None,
        metrics: Optional[MetricsRegistry] = None,
        worker_fn: Optional[Callable[..., RunResult]] = None,
    ):
        self.executor = executor
        self.policy = policy or SupervisorPolicy()
        self.journal = journal
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Pre-register so a --metrics snapshot always carries the exec.*
        # family, zeros included.
        for name in (
            "exec.retries",
            "exec.worker_deaths",
            "exec.timeouts",
            "exec.quarantined",
        ):
            self.metrics.counter(name)
        self.metrics.histogram(
            "exec.retry_backoff_s", RETRY_BACKOFF_BOUNDS
        )
        # Injection point for tests (hung/killer stub workers); must be a
        # module-level callable with _worker_run's signature.
        self._worker_fn = worker_fn or _supervised_worker_run

    # ------------------------------------------------------------------
    def run_points(self, points: Iterable[RunPoint]) -> CampaignReport:
        """Resolve every point under supervision; returns the report.

        Fail-fast (default): the first terminal failure raises, after
        completed results have been journaled and cached.  With
        ``keep_going`` all failures are collected on the report instead.
        """
        report = CampaignReport()
        cached, misses = self.executor.resolve_cached(points)
        report.results.update(cached)
        for point, _result in cached.items():
            task = _Task(point)
            self._journal(task, OUTCOME_CACHED)
            report.outcomes[task.digest] = OUTCOME_CACHED

        tasks = [_Task(point) for point in misses]
        try:
            if tasks:
                serial = (
                    self.executor.jobs <= 1
                    or len(tasks) == 1
                    or self.executor.trace_path is not None
                )
                if serial:
                    self._run_serial(tasks, report)
                else:
                    self._run_pool(tasks, report)
        except KeyboardInterrupt:
            report.interrupted = True
            self._flush_metrics()
            raise
        self._flush_metrics()
        return report

    def warm_runner(
        self, runner: Runner, points: Iterable[RunPoint]
    ) -> CampaignReport:
        """:meth:`run_points`, then seed the results into ``runner``'s
        memo table (mirrors :meth:`ExperimentExecutor.warm_runner`)."""
        report = self.run_points(points)
        for point, result in report.results.items():
            runner.seed_result(
                point.workload, point.policy, point.scheme, point.config,
                result,
            )
        return report

    # ------------------------------------------------------------------
    # Outcome plumbing
    # ------------------------------------------------------------------
    def _journal(self, task: _Task, outcome: str) -> None:
        if self.journal is not None:
            self.journal.record(
                task.digest, task.label, outcome, task.attempts
            )

    def _complete(
        self, task: _Task, result: RunResult, report: CampaignReport
    ) -> None:
        report.results[task.point] = result
        report.outcomes[task.digest] = OUTCOME_OK
        # Checkpoint now, not at campaign end: this is what an
        # interrupted campaign resumes from.
        self.executor.store_result(task.point, result)
        self.executor.stats.simulated += 1
        self._journal(task, OUTCOME_OK)

    def _fail(
        self,
        task: _Task,
        outcome: str,
        error: BaseException,
        report: CampaignReport,
    ) -> None:
        """Record a terminal failure; raises unless ``keep_going``."""
        report.outcomes[task.digest] = outcome
        report.failures.append(
            PointFailure(
                label=task.label,
                digest=task.digest,
                outcome=outcome,
                error=str(error),
                attempts=task.attempts,
            )
        )
        if outcome == OUTCOME_QUARANTINED:
            self.metrics.counter("exec.quarantined").inc()
        self._journal(task, outcome)
        if not self.policy.keep_going:
            raise error

    def _backoff(self, task: _Task, report: CampaignReport) -> float:
        """Count one retry; returns its deterministic delay."""
        delay = backoff_delay(
            task.digest,
            task.attempts,
            self.policy.backoff_base,
            self.policy.backoff_cap,
        )
        report.retries += 1
        self.metrics.counter("exec.retries").inc()
        self.metrics.histogram(
            "exec.retry_backoff_s", RETRY_BACKOFF_BOUNDS
        ).observe(delay)
        self._journal(task, OUTCOME_RETRIED)
        return delay

    def _flush_metrics(self) -> None:
        """Land the exec.* counters where ``merge_metrics_dir`` finds
        them, alongside the per-point worker snapshots."""
        executor = self.executor
        if executor.metrics_dir is not None:
            snapshot = self.metrics.snapshot()
            # Campaign-level telemetry, not a per-point run: merging it
            # must not inflate the merged_runs count.
            snapshot["merged_runs"] = 0
            write_snapshot(
                snapshot,
                Path(executor.metrics_dir) / "supervisor.metrics.json",
            )

    # ------------------------------------------------------------------
    # Serial supervised execution (jobs=1, tracing, or degraded mode)
    # ------------------------------------------------------------------
    def _run_serial(
        self, tasks: list[_Task], report: CampaignReport
    ) -> None:
        """In-process execution with retries.

        No watchdog and no crash isolation are possible in-process; a
        point that would hang or kill its worker hangs or kills the
        campaign.  Quarantine still protects serial *degraded* mode:
        points blamed for pool breaks never reach it.
        """
        executor = self.executor
        runner = Runner(tasks[0].point.config)
        tracer = executor.open_tracer()
        try:
            for task in tasks:
                while True:
                    obs = executor.point_observability(tracer, task.point)
                    try:
                        if self._worker_fn is not _supervised_worker_run:
                            result = self._worker_fn(
                                task.point,
                                executor.verify,
                                executor.metrics_dir,
                            )
                        else:
                            result = execute_point(
                                runner,
                                task.point,
                                verify=executor.verify,
                                obs=obs,
                            )
                    except VerifyFailure as exc:
                        self._fail(task, OUTCOME_FAILED, exc, report)
                        break
                    except KeyboardInterrupt:
                        raise
                    except Exception as exc:
                        if task.attempts >= self.policy.retries:
                            self._fail(task, OUTCOME_FAILED, exc, report)
                            break
                        task.attempts += 1
                        time.sleep(self._backoff(task, report))
                        continue
                    executor.write_point_metrics(obs, task.point)
                    self._complete(task, result, report)
                    break
        finally:
            if tracer is not None:
                tracer.close()

    # ------------------------------------------------------------------
    # Supervised pool execution
    # ------------------------------------------------------------------
    def _spawn_pool(self, width: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=width)

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down hard — hung or dead workers included."""
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.kill()
            except (OSError, AttributeError, ValueError):
                pass
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:
            pass

    def _run_pool(self, tasks: list[_Task], report: CampaignReport) -> None:
        policy = self.policy
        executor = self.executor
        width = min(executor.jobs, len(tasks))

        pending: deque[_Task] = deque(tasks)
        waiting: list[tuple[float, _Task]] = []  # (ready_at, task) backoffs
        inflight: dict[Any, _Task] = {}  # future → task
        deadlines: dict[Any, Optional[float]] = {}
        pool = self._spawn_pool(width)
        solo = False  # one point at a time until blame is resolved
        breaks = 0  # consecutive pool breaks (resets on any success)

        def resolve_timeout(task: _Task, now: float) -> None:
            self.metrics.counter("exec.timeouts").inc()
            report.timeouts += 1
            if task.attempts >= policy.retries:
                self._fail(
                    task,
                    OUTCOME_TIMEOUT,
                    PointTimeout(
                        task.label, policy.timeout or 0.0, task.attempts + 1
                    ),
                    report,
                )
                return
            task.attempts += 1
            waiting.append((now + self._backoff(task, report), task))

        def after_break(victims: list[_Task], now: float) -> None:
            """Quarantine or requeue every point that was in flight when
            the pool died.  A death is *recorded* only when blame is
            exact — a lone victim, which is what solo mode guarantees —
            so a killer can never drag co-scheduled innocents over the
            quarantine threshold."""
            for task in victims:
                if len(victims) == 1:
                    task.deaths += 1
                if task.deaths >= policy.quarantine_after:
                    self._fail(
                        task,
                        OUTCOME_QUARANTINED,
                        RuntimeError(
                            f"{task.label}: blamed for {task.deaths} "
                            "worker death(s)"
                        ),
                        report,
                    )
                else:
                    task.attempts += 1
                    waiting.append((now + self._backoff(task, report), task))

        try:
            while pending or inflight or waiting:
                now = time.monotonic()  # det: real-process watchdog clock, not simulated state
                if waiting:
                    still: list[tuple[float, _Task]] = []
                    for ready_at, task in waiting:
                        if ready_at <= now:
                            pending.append(task)
                        else:
                            still.append((ready_at, task))
                    waiting = still

                limit = 1 if solo else width
                broken = False
                while pending and len(inflight) < limit:
                    task = pending.popleft()
                    try:
                        future = pool.submit(
                            self._worker_fn,
                            task.point,
                            executor.verify,
                            executor.metrics_dir,
                        )
                    except BrokenExecutor:
                        pending.appendleft(task)
                        broken = True
                        break
                    inflight[future] = task
                    deadlines[future] = (
                        now + policy.timeout if policy.timeout else None
                    )

                if not broken:
                    if not inflight:
                        if waiting:
                            next_ready = min(r for r, _ in waiting)
                            time.sleep(max(0.0, next_ready - now) + 0.001)
                        continue
                    tick = self._next_tick(deadlines, waiting, now)
                    done, _ = futures_wait(
                        list(inflight),
                        timeout=tick,
                        return_when=FIRST_COMPLETED,
                    )
                    # Successes first: a sibling that finished in the
                    # same batch as a failure is cached and journaled
                    # before any fail-fast raise can unwind past it.
                    for future in sorted(
                        done, key=lambda f: f.exception() is not None
                    ):
                        task = inflight.pop(future)
                        deadlines.pop(future, None)
                        exc = future.exception()
                        if exc is None:
                            self._complete(task, future.result(), report)
                            solo = False
                            breaks = 0
                        elif isinstance(exc, BrokenExecutor):
                            # Put it back; the break is handled wholesale
                            # below so every victim is treated alike.
                            inflight[future] = task
                            deadlines[future] = None
                            broken = True
                        elif isinstance(exc, KeyboardInterrupt):
                            raise KeyboardInterrupt()
                        else:
                            self._handle_error(task, exc, waiting, report)

                now = time.monotonic()  # det: real-process watchdog clock, not simulated state
                if broken or getattr(pool, "_broken", False):
                    self.metrics.counter("exec.worker_deaths").inc()
                    report.worker_deaths += 1
                    breaks += 1
                    victims = list(inflight.values())
                    inflight.clear()
                    deadlines.clear()
                    self._kill_pool(pool)
                    after_break(victims, now)
                    if breaks >= policy.max_pool_breaks:
                        # The pool is a lost cause: finish in-process.
                        # Points already blamed for a pool break never
                        # reach serial mode — in-process there is no
                        # crash isolation, so a repeat offender would
                        # take the whole driver down with it.
                        remaining = list(pending) + [t for _, t in waiting]
                        pending.clear()
                        waiting = []
                        survivors = []
                        for task in remaining:
                            if task.deaths:
                                self._fail(
                                    task,
                                    OUTCOME_QUARANTINED,
                                    RuntimeError(
                                        f"{task.label}: blamed for "
                                        f"{task.deaths} worker death(s); "
                                        "not retried in-process"
                                    ),
                                    report,
                                )
                            else:
                                survivors.append(task)
                        if survivors:
                            self._run_serial(survivors, report)
                        return
                    solo = True
                    pool = self._spawn_pool(width)
                    continue

                overdue = [
                    future
                    for future, deadline in deadlines.items()
                    if deadline is not None and deadline <= now
                ]
                if overdue:
                    # A hung worker cannot be reclaimed individually:
                    # tear the pool down, requeue the innocents at no
                    # attempt cost, charge the overdue points a timeout.
                    victims = []
                    for future in overdue:
                        task = inflight.pop(future)
                        deadlines.pop(future, None)
                        victims.append(task)
                    innocents = list(inflight.values())
                    inflight.clear()
                    deadlines.clear()
                    self._kill_pool(pool)
                    for task in victims:
                        resolve_timeout(task, now)
                    pending.extendleft(reversed(innocents))
                    pool = self._spawn_pool(width)
        finally:
            self._kill_pool(pool)

    def _handle_error(
        self,
        task: _Task,
        exc: BaseException,
        waiting: list[tuple[float, _Task]],
        report: CampaignReport,
    ) -> None:
        """Retry (with backoff) or terminally fail one errored point."""
        retryable = not isinstance(exc, VerifyFailure)
        if retryable and task.attempts < self.policy.retries:
            task.attempts += 1
            waiting.append((time.monotonic() + self._backoff(task, report), task))  # det: real-process watchdog clock, not simulated state
        else:
            self._fail(task, OUTCOME_FAILED, exc, report)

    @staticmethod
    def _next_tick(
        deadlines: dict[Any, Optional[float]],
        waiting: list[tuple[float, _Task]],
        now: float,
    ) -> Optional[float]:
        """How long the wait() may block: until the nearest watchdog
        deadline or backoff expiry, or indefinitely if neither exists."""
        horizons = [d for d in deadlines.values() if d is not None]
        horizons += [ready_at for ready_at, _ in waiting]
        if not horizons:
            return None
        return max(0.01, min(horizons) - now)
