"""The six application models of the paper's evaluation (Table III),
plus the ``sweep`` raster-scan model from the related work.

Importing this package registers all of them; use :func:`get_workload` /
:func:`all_workloads` to enumerate them.
"""

from .base import WorkloadInfo, all_workloads, get_workload, jitter, register
from .multi import merge_traces

# Importing the modules registers each workload.
from . import apsi, astro, hf, madbench2, sar, sweep, wupwise  # noqa: F401,E402

__all__ = [
    "WorkloadInfo",
    "merge_traces",
    "get_workload",
    "all_workloads",
    "register",
    "jitter",
    "hf",
    "sar",
    "astro",
    "apsi",
    "madbench2",
    "wupwise",
    "sweep",
]
