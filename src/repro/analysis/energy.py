"""Static energy-bounds analyzer (``repro analyze``).

Abstract interpretation over the IR and the compiled scheduling table:
without running the discrete-event simulator, compute for one
(workload, policy, scheme) configuration a *certified* fleet-energy
envelope ``[lower, upper]`` joules plus per-I/O-node power-state
residency envelopes, and report statically-provable problems through the
shared diagnostics engine.

Abstract domain
---------------
Every derived quantity lives in a closed :class:`Interval` and every
transformer only ever *widens* — the concrete DES value is an element of
each abstract value by construction:

* **time** — execution time ``T ∈ [T_lo, T_hi]``: the compute critical
  path below (I/O can only add time), the serialized-progress sum of all
  mutually-exclusive work items above;
* **busy** — fleet disk-serving seconds: below, the certainly-cold cache
  blocks (the polyhedral oracle of :mod:`repro.ir.dependence` proves
  their first read in time must miss) times the fastest possible
  transfer; above, every fetch/destage the runtime could issue at the
  slowest reachable speed with worst-case mechanics;
* **power** — per-drive watts bounded by the *reachable-state* bounds of
  :mod:`repro.disk.power`, which enumerate exactly the state labels a
  drive can enter under the policy's declared capabilities
  (``can_spin_down`` / ``can_ramp``) and take min/max of the one shared
  ``DiskPowerModel`` — no duplicated physics.

The energy envelope combines them:
``E_lo = n·P_floor·T_lo + (P_serve_floor − P_floor)·busy_lo`` and
``E_hi = min(flat, decomposed)`` where ``flat = n·P_ceiling·T_hi`` and
``decomposed`` charges rest-ceiling watts for all time plus marginal
serve and burst (spin-up / up-ramp) exposure.  The minimum of two sound
upper bounds is sound.

Widening
--------
Non-affine subscripts (``PHASE001``) and fault plans (``PHASE002``)
force conservative widening via :meth:`Interval.widen`, which can only
loosen an interval — the property the test suite checks by construction.

Soundness is additionally checked *differentially* in CI: for every
corpus configuration the DES-simulated energy must lie inside the
analyzer's envelope (:func:`check_envelope`, ``repro analyze --check``).

Diagnostic families registered here:

* ``ENERGY`` — envelope violations and unprofitable/impossible savings;
* ``OCC``    — statically-provable prefetch-buffer occupancy risk;
* ``PHASE``  — segments that forced conservative widening.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

from ..core.table import ScheduleBook
from ..disk.power import (
    power_bounds,
    rest_power_ceiling,
    serve_power_bounds,
)
from ..disk.specs import DiskSpec
from ..ir.dependence import AffineDependenceAnalyzer, certainly_cold_blocks
from ..ir.profiling import AccessTrace
from ..power import (
    CreditMultiSpeed,
    ForecastSpindown,
    HistoryBasedMultiSpeed,
    HybridCompilerAssist,
    NoPowerManagement,
    PredictionSpinDown,
    SimpleSpinDown,
    StaggeredMultiSpeed,
)
from ..power.hints import nominal_node_touch_times
from ..runtime.mpi_io import REQUEST_MESSAGE_BYTES
from ..runtime.scheduler_thread import issue_window, will_prefetch
from ..storage.raid import RaidMap
from ..storage.striping import StripedFile, StripeMap, plan_layout
from .diagnostics import (
    Diagnostic,
    Report,
    Severity,
    SourceAnchor,
    register_codes,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..experiments.config import ExperimentConfig

__all__ = [
    "Interval",
    "EnergyEnvelope",
    "DiskResidency",
    "EnergyAnalysis",
    "analyze_energy",
    "check_envelope",
    "widen_envelope",
    "POLICY_CLASSES",
    "CORPUS_POLICIES",
    "PHASE_WIDEN_FACTOR",
    "FAULT_WIDEN_FACTOR",
]

register_codes(
    "repro.analysis.energy",
    {
        "ENERGY001": "measured energy lies outside the certified envelope",
        "ENERGY002": "spin-down fires inside a sub-breakeven idle gap",
        "ENERGY003": "policy has no power state below full-speed idle",
        "OCC001": "pessimistic prefetch occupancy reaches buffer capacity",
        "OCC002": "prefetch below min-lead degrades to synchronous read",
        "PHASE001": "non-affine subscripts: envelope widened conservatively",
        "PHASE002": "fault plan forces conservative envelope widening",
    },
)

#: Name → policy class; capability flags are read off the class so the
#: analyzer and the simulator share one declaration (see PowerPolicy).
POLICY_CLASSES = {
    "default": NoPowerManagement,
    "simple": SimpleSpinDown,
    "prediction": PredictionSpinDown,
    "history": HistoryBasedMultiSpeed,
    "staggered": StaggeredMultiSpeed,
    # Online family (repro.power.online): adaptivity changes *when* the
    # capabilities fire, not *which* power states are reachable, so the
    # same capability-derived bounds stay sound without new physics.
    "forecast": ForecastSpindown,
    "credit": CreditMultiSpeed,
    "hybrid": HybridCompilerAssist,
}

#: The CI soundness corpus sweeps these policies (one per capability
#: class: none / spin-down / multi-speed) for every workload × scheme.
CORPUS_POLICIES = ("default", "simple", "history")

#: Relative widening applied when the program is not affine (the
#: polyhedral oracle is unavailable and the trace-scan cold-block proof
#: carries less structure).
PHASE_WIDEN_FACTOR = 0.10

#: Relative widening applied on top of the additive fault pads when a
#: fault plan is attached.
FAULT_WIDEN_FACTOR = 0.25


# ----------------------------------------------------------------------
# Abstract domain
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` — the analyzer's abstract value."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise ValueError("interval bounds must not be NaN")
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def contains(self, value: float, rtol: float = 1e-9) -> bool:
        """Membership with a tiny relative tolerance for float round-off."""
        slack = rtol * max(abs(self.lo), abs(self.hi), 1.0)
        return self.lo - slack <= value <= self.hi + slack

    def widen(self, factor: float) -> "Interval":
        """Loosen by ``factor``: ``[max(0, lo·(1−f)), hi·(1+f)]``.

        Monotone by construction — for any ``f ≥ 0`` the result contains
        the original interval (bounds here are non-negative physical
        quantities, so clamping the floor at zero is still a loosening).
        """
        if factor < 0:
            raise ValueError(f"widening factor must be >= 0: {factor}")
        return Interval(max(0.0, self.lo * (1.0 - factor)),
                        self.hi * (1.0 + factor))

    def as_dict(self) -> dict[str, float]:
        return {"lo": self.lo, "hi": self.hi}


@dataclass(frozen=True)
class EnergyEnvelope:
    """Certified fleet-energy bounds for one configuration."""

    workload: str
    policy: str
    scheme: bool
    energy_j: Interval
    time_s: Interval
    busy_s: Interval
    power_w: Interval          # per-drive watt floor/ceiling
    n_drives: int
    widened_by: tuple[str, ...] = ()

    @property
    def width_j(self) -> float:
        return self.energy_j.width

    @property
    def relative_width(self) -> float:
        """Width ÷ upper bound — the BENCH-tracked tightness metric."""
        if self.energy_j.hi <= 0:
            return 0.0
        return self.energy_j.width / self.energy_j.hi

    def contains(self, joules: float) -> bool:
        return self.energy_j.contains(joules)

    def as_dict(self) -> dict[str, object]:
        return {
            "workload": self.workload,
            "policy": self.policy,
            "scheme": self.scheme,
            "energy_j": self.energy_j.as_dict(),
            "time_s": self.time_s.as_dict(),
            "busy_s": self.busy_s.as_dict(),
            "power_w": self.power_w.as_dict(),
            "n_drives": self.n_drives,
            "width_j": self.width_j,
            "relative_width": self.relative_width,
            "widened_by": list(self.widened_by),
        }


def widen_envelope(
    envelope: EnergyEnvelope, factor: float, code: str
) -> EnergyEnvelope:
    """Widen every abstract value of ``envelope`` by ``factor``.

    The returned envelope contains the original one (interval widening
    is monotone), so applying a widening can never *introduce* a bound
    violation — the property test pins this.
    """
    return replace(
        envelope,
        energy_j=envelope.energy_j.widen(factor),
        time_s=envelope.time_s.widen(factor),
        busy_s=envelope.busy_s.widen(factor),
        widened_by=envelope.widened_by + (code,),
    )


@dataclass(frozen=True)
class DiskResidency:
    """Per-I/O-node residency envelope (seconds over the run)."""

    node: int
    serve_s: Interval
    rest_s: Interval
    nominal_touches: int
    min_nominal_gap_s: float
    max_nominal_gap_s: float

    def as_dict(self) -> dict[str, object]:
        return {
            "node": self.node,
            "serve_s": self.serve_s.as_dict(),
            "rest_s": self.rest_s.as_dict(),
            "nominal_touches": self.nominal_touches,
            "min_nominal_gap_s": self.min_nominal_gap_s,
            "max_nominal_gap_s": self.max_nominal_gap_s,
        }


@dataclass
class EnergyAnalysis:
    """Everything one ``analyze_energy`` call produces."""

    envelope: EnergyEnvelope
    residencies: tuple[DiskResidency, ...]
    report: Report
    occupancy_peak_blocks: int

    def as_dict(self) -> dict[str, object]:
        return {
            "envelope": self.envelope.as_dict(),
            "residencies": [r.as_dict() for r in self.residencies],
            "occupancy_peak_blocks": self.occupancy_peak_blocks,
            "diagnostics": self.report.as_dict(),
        }


# ----------------------------------------------------------------------
# Helpers over the static layout
# ----------------------------------------------------------------------
def _cache_blocks_of(
    striped: StripedFile,
    smap: StripeMap,
    offset: int,
    size: int,
    block_size: int,
) -> list[tuple[int, int]]:
    """(node, node-local cache block) identities a byte extent covers."""
    out: list[tuple[int, int]] = []
    for ext in smap.map_extent(striped, offset, size):
        first = ext.node_offset // block_size
        last = (ext.node_offset + ext.size - 1) // block_size
        out.extend((ext.node, cb) for cb in range(first, last + 1))
    return out


def _io_extent(
    striped: StripedFile, block_bytes: int, block: int, blocks: int
) -> Optional[tuple[int, int]]:
    """Clipped (offset, size) of a traced I/O, or None when degenerate."""
    offset = block * block_bytes
    if offset >= striped.size:
        return None
    size = min(blocks * block_bytes, striped.size - offset)
    if size <= 0:
        return None
    return offset, size


# ----------------------------------------------------------------------
# The analyzer
# ----------------------------------------------------------------------
def analyze_energy(
    trace: AccessTrace,
    config: "ExperimentConfig",
    policy: str,
    scheme: bool,
    book: Optional[ScheduleBook] = None,
) -> EnergyAnalysis:
    """Statically bound the fleet energy of one configuration.

    ``book`` is the compiled schedule and is required when ``scheme`` is
    on (the occupancy and idle-gap analyses interpret the scheduling
    table); with the scheme off the trace's program-order slots are the
    nominal schedule.
    """
    if policy not in POLICY_CLASSES:
        raise ValueError(f"unknown policy {policy!r}")
    if scheme and book is None:
        raise ValueError("scheme analysis requires the compiled ScheduleBook")

    policy_cls = POLICY_CLASSES[policy]
    can_spin_down = bool(policy_cls.can_spin_down)
    can_ramp = bool(policy_cls.can_ramp)
    spec: DiskSpec = config.disk_spec(can_ramp)
    scfg = config.session_config()
    report = Report()

    n_drives = config.n_ionodes * config.disks_per_node
    floor_w, ceiling_w = power_bounds(spec, can_spin_down, can_ramp)
    rest_ceil_w = rest_power_ceiling(spec, can_spin_down, can_ramp)
    serve_floor_w, serve_ceil_w = serve_power_bounds(
        spec, can_spin_down, can_ramp
    )

    program = trace.program
    smap = StripeMap(config.stripe_size, config.n_ionodes)
    files = plan_layout(
        {name: decl.size_bytes for name, decl in program.files.items()},
        config.stripe_size,
        config.n_ionodes,
    )
    raid = RaidMap(
        config.raid_level, config.disks_per_node,
        chunk_size=config.stripe_size,
    )
    bs = config.stripe_size  # storage-cache block size == stripe size
    read_mult = 2 if scheme else 1  # prefetch + possible synchronous fallback

    # ------------------------------------------------------------------
    # Lower bounds: compute critical path + certainly-cold disk traffic
    # ------------------------------------------------------------------
    time_lo = max((p.total_compute for p in trace.processes), default=0.0)

    if program.is_affine:
        cold_blocks = AffineDependenceAnalyzer(program).certainly_cold_blocks()
        widen_codes: list[str] = []
    else:
        cold_blocks = certainly_cold_blocks(trace)
        widen_codes = ["PHASE001"]
        report.add(Diagnostic(
            "PHASE001", Severity.INFO,
            "program has non-affine subscripts; the polyhedral oracle is "
            f"unavailable and the envelope is widened by "
            f"{PHASE_WIDEN_FACTOR:.0%}",
        ))

    # A node-local cache block is *certainly* fetched when it holds a
    # certainly-cold file block and no write ever dirties any part of it
    # (a write would insert the whole stripe-sized block into the cache
    # and could turn the later read into a hit).
    written_cache: set[tuple[int, int]] = set()
    for io in trace.writes():
        striped = files[io.file]
        decl = program.files[io.file]
        extent = _io_extent(striped, decl.block_bytes, io.block, io.blocks)
        if extent is not None:
            written_cache.update(
                _cache_blocks_of(striped, smap, *extent, bs)
            )
    cold_cache: set[tuple[int, int]] = set()
    for file, block in cold_blocks:
        striped = files[file]
        decl = program.files[file]
        extent = _io_extent(striped, decl.block_bytes, block, 1)
        if extent is not None:
            cold_cache.update(_cache_blocks_of(striped, smap, *extent, bs))
    cold_cache -= written_cache

    fastest_transfer = spec.transfer_time(bs, spec.max_rpm)
    busy_lo = len(cold_cache) * fastest_transfer

    # ------------------------------------------------------------------
    # Upper bounds: serialized progress over every work item
    # ------------------------------------------------------------------
    rpm_floor = min(spec.rpm_levels) if can_ramp else spec.max_rpm
    worst_op = (
        spec.seek_time(1.0)
        + spec.avg_rotational_latency(rpm_floor)
        + spec.transfer_time(bs, rpm_floor)
    )
    latency = scfg.network_latency
    bandwidth = scfg.network_bandwidth_bps

    read_ops = 0
    write_ops = 0
    net_read_s = 0.0
    net_write_s = 0.0
    n_messages = 0
    for io in trace.all_ios():
        striped = files[io.file]
        decl = program.files[io.file]
        extent = _io_extent(striped, decl.block_bytes, io.block, io.blocks)
        if extent is None:
            continue
        for ext in smap.map_extent(striped, *extent):
            covered = (
                (ext.node_offset + ext.size - 1) // bs
                - ext.node_offset // bs + 1
            )
            wire = (
                2 * latency
                + (REQUEST_MESSAGE_BYTES + ext.size) / bandwidth
            )
            n_messages += 2
            if io.is_write:
                write_ops += covered * raid.write_op_amplification()
                net_write_s += wire
            else:
                read_ops += covered + scfg.prefetch_depth
                net_read_s += wire

    n_reads = len(trace.reads())
    read_ops_eff = read_ops * read_mult
    busy_hi = (read_ops_eff + write_ops) * worst_op

    transition_s = 0.0
    if can_spin_down:
        # Worst case every (possibly duplicated) read arrives at a drive
        # mid-spin-down: the arrival waits out the rest of the spin-down
        # plus a full spin-up before service.
        transition_s = n_reads * read_mult * (
            spec.spin_down_time + spec.spin_up_time
        )
    elif can_ramp:
        # Worst case every read interrupts an RPM step: settle (0.2 s) +
        # ramp-restart grace (0.5 s) + the interrupted step itself,
        # rounded up to one extra second of exposure.
        transition_s = n_reads * read_mult * (
            spec.rpm_change_time_per_step + 1.0
        )

    compute_all = sum(p.total_compute for p in trace.processes)
    time_hi = (
        compute_all
        + net_read_s * read_mult
        + net_write_s
        + busy_hi
        + transition_s
    )

    # ------------------------------------------------------------------
    # Fault widening: additive pads per event kind, then a relative
    # widening on the whole envelope (PHASE002).
    # ------------------------------------------------------------------
    plan = config.fault_plan
    fault_pad_s = 0.0
    busy_fault_pad_s = 0.0
    if plan is not None and plan.events:
        kinds = {ev.kind for ev in plan.events}
        if "disk.fail" in kinds:
            # Dead-disk routing can drop cold fetches entirely (RAID-0
            # lost ops), so the certain-traffic floor no longer holds —
            # and degraded RAID reads amplify the upper bound.
            busy_lo = 0.0
            amp = raid.read_op_amplification(degraded=True) - 1
            busy_fault_pad_s += read_ops_eff * amp * worst_op
        if kinds & {"disk.transient_errors", "disk.bad_sectors"}:
            busy_fault_pad_s += (
                read_ops_eff * plan.read_retry_limit * plan.read_retry_penalty
            )
        for ev in plan.events:
            if ev.kind == "disk.spinup_fail":
                attempts = max(ev.count, 1)
                backoff = sum(
                    plan.spinup_retry_base * 2**k for k in range(attempts)
                )
                fault_pad_s += attempts * spec.spin_up_time + backoff
            elif ev.kind == "node.straggle":
                fault_pad_s += ev.duration * max(ev.factor, 1.0)
            elif ev.kind == "node.crash":
                # Held transfers resume after the window; everything the
                # crash stalled may have to be replayed behind it.
                fault_pad_s += ev.duration + compute_all
            elif ev.kind == "net.loss":
                p = min(ev.probability, 0.99)
                expected_extra = p / (1.0 - p)
                fault_pad_s += (
                    (net_read_s * read_mult + net_write_s) * expected_extra
                    + n_messages * expected_extra * plan.retransmit_delay
                    + n_reads * read_mult
                    * plan.fetch_timeout * (plan.fetch_retries + 1)
                )
            elif ev.kind == "net.latency":
                fault_pad_s += n_messages * ev.extra_latency
        busy_hi += busy_fault_pad_s
        time_hi += fault_pad_s + busy_fault_pad_s
        widen_codes.append("PHASE002")
        report.add(Diagnostic(
            "PHASE002", Severity.INFO,
            f"fault plan with {len(plan.events)} event(s) adds "
            f"{fault_pad_s + busy_fault_pad_s:.3g}s of pad and widens the "
            f"envelope by {FAULT_WIDEN_FACTOR:.0%}",
        ))

    # ------------------------------------------------------------------
    # Energy envelope
    # ------------------------------------------------------------------
    energy_lo = (
        n_drives * floor_w * time_lo
        + max(0.0, serve_floor_w - floor_w) * busy_lo
    )
    flat_hi = n_drives * ceiling_w * time_hi
    decomposed_hi = (
        n_drives * rest_ceil_w * time_hi
        + max(0.0, serve_ceil_w - rest_ceil_w) * busy_hi
    )
    if can_spin_down:
        decomposed_hi += (
            max(0.0, spec.spin_up_power - rest_ceil_w)
            * read_ops_eff * spec.spin_up_time
        )
    if can_ramp:
        # Up-ramp burst power can exceed the idle ceiling for the whole
        # run in the worst case; the flat bound wins here via min().
        decomposed_hi = flat_hi
    energy_hi = min(flat_hi, decomposed_hi)

    envelope = EnergyEnvelope(
        workload=program.name,
        policy=policy,
        scheme=scheme,
        energy_j=Interval(energy_lo, max(energy_lo, energy_hi)),
        time_s=Interval(time_lo, max(time_lo, time_hi)),
        busy_s=Interval(busy_lo, max(busy_lo, busy_hi)),
        power_w=Interval(floor_w, ceiling_w),
        n_drives=n_drives,
    )
    for code in widen_codes:
        factor = (
            PHASE_WIDEN_FACTOR if code == "PHASE001" else FAULT_WIDEN_FACTOR
        )
        envelope = widen_envelope(envelope, factor, code)

    # ------------------------------------------------------------------
    # Nominal per-node access clock → residency envelopes + idle gaps.
    # Shared derivation with HybridCompilerAssist's hints: what the
    # analyzer bounds statically is exactly what the hybrid policy is
    # handed at runtime (repro.power.hints).
    # ------------------------------------------------------------------
    node_times = nominal_node_touch_times(
        trace,
        config.n_ionodes,
        config.stripe_size,
        book=book if scheme else None,
    )

    cold_per_node: dict[int, int] = {}
    for node, _cb in cold_cache:
        cold_per_node[node] = cold_per_node.get(node, 0) + 1

    breakeven = spec.breakeven_idle_seconds()
    if policy == "simple":
        trigger: Optional[float] = config.simple_timeout
        profitable = config.simple_timeout + breakeven
    elif policy == "prediction":
        trigger = breakeven * config.prediction_margin
        profitable = breakeven
    else:
        trigger = None
        profitable = 0.0

    residencies: list[DiskResidency] = []
    for node in range(config.n_ionodes):
        times = node_times[node]
        gaps = [b - a for a, b in zip(times, times[1:])]
        per_drive_hi = config.disks_per_node * time_hi
        serve_lo = (
            cold_per_node.get(node, 0) * fastest_transfer
            if config.disks_per_node == 1 and busy_lo > 0
            else 0.0
        )
        residencies.append(DiskResidency(
            node=node,
            serve_s=Interval(serve_lo, min(busy_hi, per_drive_hi)),
            rest_s=Interval(
                max(0.0, config.disks_per_node * time_lo - busy_hi),
                per_drive_hi,
            ),
            nominal_touches=len(times),
            min_nominal_gap_s=min(gaps) if gaps else math.inf,
            max_nominal_gap_s=max(gaps) if gaps else math.inf,
        ))
        if trigger is not None:
            losers = [g for g in gaps if trigger < g < profitable]
            if losers:
                report.add(Diagnostic(
                    "ENERGY002", Severity.WARNING,
                    f"{len(losers)} nominal idle gap(s) in "
                    f"[{min(losers):.1f}s, {max(losers):.1f}s] trigger "
                    f"spin-down below the profitable length "
                    f"{profitable:.1f}s (breakeven {breakeven:.1f}s)",
                    SourceAnchor(file=f"node{node}"),
                ))

    if not can_spin_down and not can_ramp:
        report.add(Diagnostic(
            "ENERGY003", Severity.INFO,
            f"policy {policy!r} declares no spin-down or ramp capability; "
            f"the fleet floor is the full-speed idle draw "
            f"({floor_w:.1f} W/drive) and no savings are reachable",
        ))

    # ------------------------------------------------------------------
    # Prefetch-buffer occupancy (interval sweep over the schedule)
    # ------------------------------------------------------------------
    occupancy_peak = 0
    if scheme:
        assert book is not None
        horizon = max(book.n_slots, trace.n_slots) + 2
        delta = [0] * (horizon + 1)
        fallbacks: dict[int, int] = {}
        for access in book.all_accesses():
            slot = access.scheduled_slot
            if slot is None:
                continue
            if will_prefetch(
                access.original_slot, slot, scfg.scheduler_min_lead
            ):
                start = issue_window(slot, scfg.scheduler_batch_slots)
                end = min(access.original_slot + 1, horizon)
                delta[start] += access.blocks
                delta[end] -= access.blocks
            elif slot < access.original_slot:
                fallbacks[access.process] = (
                    fallbacks.get(access.process, 0) + 1
                )
        level = 0
        peak_slot = 0
        for slot, d in enumerate(delta):
            level += d
            if level > occupancy_peak:
                occupancy_peak = level
                peak_slot = slot
        if occupancy_peak >= scfg.buffer_capacity_blocks:
            report.add(Diagnostic(
                "OCC001", Severity.WARNING,
                f"earliest-issue occupancy peaks at {occupancy_peak} "
                f"blocks (capacity {scfg.buffer_capacity_blocks}) — "
                f"batched prefetches can stall on a full buffer",
                SourceAnchor(slot=peak_slot),
            ))
        for process, count in sorted(fallbacks.items()):
            report.add(Diagnostic(
                "OCC002", Severity.WARNING,
                f"{count} access(es) scheduled early but inside min_lead="
                f"{scfg.scheduler_min_lead}: the runtime will fall back "
                f"to synchronous reads",
                SourceAnchor(process=process),
            ))

    return EnergyAnalysis(
        envelope=envelope,
        residencies=tuple(residencies),
        report=report,
        occupancy_peak_blocks=occupancy_peak,
    )


def check_envelope(
    envelope: EnergyEnvelope, measured_joules: float
) -> Report:
    """The differential soundness gate: DES energy must be inside.

    Returns a report with an ``ENERGY001`` error when the measured value
    escapes the envelope — CI runs this for every corpus configuration.
    """
    report = Report()
    if not envelope.contains(measured_joules):
        report.add(Diagnostic(
            "ENERGY001", Severity.ERROR,
            f"simulated energy {measured_joules:.1f} J outside certified "
            f"envelope [{envelope.energy_j.lo:.1f}, "
            f"{envelope.energy_j.hi:.1f}] J for {envelope.workload}/"
            f"{envelope.policy}/scheme={'on' if envelope.scheme else 'off'}",
        ))
    return report
