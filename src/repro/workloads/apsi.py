"""``apsi`` — pollutant-distribution modelling (out-of-core SPEC apsi).

Paper profile (Table III): 13.7 min.

Structure modelled: a time-stepped 2-D advection/diffusion stencil whose
mesh slabs live on disk, alternating with chemistry-integration
stretches.

* **Advection steps**: each timestep every process reads its own slab
  block plus its *right neighbour's* slab block written the previous
  timestep — a genuine inter-process producer→consumer dependence.  For
  the last process the neighbour subscript wraps onto process 0's
  current-step block, i.e. a read that precedes its producing write in
  normalized iteration space: the paper's *negative slack* (Fig. 6(b)),
  clamped to length 1.  An emissions-forcing read per step carries long
  input slack.
* **Chemistry stretch** after each epoch: three ~75 s stiff-ODE slots
  with a rate-table read between them — the spin-down-scale idles.

Affine subscripts and constant costs ⇒ polyhedral path.
"""

from __future__ import annotations

from ..ir.affine import var
from ..ir.program import Compute, FileDecl, Loop, Program, Read, Write
from .base import WorkloadInfo, jitter, register, scaled

__all__ = ["build"]

BLOCK_BYTES = 128 * 1024   # 2 stripes -> 2-node signatures (cf. Fig. 9)
EPOCHS = 3
STEPS_PER_EPOCH = 55
STRETCH_SLOTS = 5
STEP_SLOTS = 6            # fine compute slots per timestep
STEP_COST = 0.45
STRETCH_COST = 31.0


def build(n_processes: int = 32, scale: float = 1.0) -> Program:
    """Build the apsi program.

    ``scale=1.0`` ⇒ ≈14 simulated minutes with 32 processes.
    """
    steps = scaled(STEPS_PER_EPOCH, scale)
    stretch_slots = scaled(STRETCH_SLOTS, scale, minimum=4)
    steps_total = EPOCHS * steps
    p = var("p")
    e = var("e")
    t = var("t")

    # slab block (k * P + p) holds process p's slab after global step k.
    files = {
        "slab": FileDecl("slab", (steps_total + 1) * n_processes + 1, BLOCK_BYTES),
        "emissions": FileDecl("emissions", 3 * n_processes * steps_total, BLOCK_BYTES),
        "rates": FileDecl(
            "rates", 5 * n_processes * EPOCHS * stretch_slots, BLOCK_BYTES
        ),
    }

    # Global step index of (epoch e, step t) is e*steps + t.
    gstep = e * steps + t

    body = [
        # Seed slabs at step 0.
        Write("slab", p),
        Compute(STEP_COST),
        Loop("e", 0, EPOCHS - 1, body=[
            Loop("t", 1, steps - 1, body=[
                # Own slab from the previous global step.
                Read("slab", (gstep - 1) * n_processes + p),
                # Right neighbour's previous slab (inter-process slack;
                # wraps to a negative slack for the last process).
                Read("slab", (gstep - 1) * n_processes + p + 1),
                # Fresh emission forcing (input file, long slack).
                Read("emissions", (p * steps_total + gstep) * 3),
            ] + [
                Compute(jitter(STEP_COST, 0.05, k))
                for k in range(STEP_SLOTS // 2)
            ] + [
                Write("slab", gstep * n_processes + p),
            ] + [
                Compute(jitter(STEP_COST, 0.05, 50 + k))
                for k in range(STEP_SLOTS - STEP_SLOTS // 2)
            ] + [
            ]),
            # Chemistry stretch: runs of long idle periods.
            Loop("cs", 0, stretch_slots - 1, body=[
                Read("rates",
                     (p + n_processes * (e * stretch_slots + var("cs"))) * 5),
                Compute(jitter(STRETCH_COST, 0.02, 99)),
            ]),
        ]),
    ]
    return Program("apsi", n_processes, files, body)


register(
    WorkloadInfo(
        name="apsi",
        description="Pollutant-distribution stencil: inter-process "
        "producer/consumer slacks, negative-slack clamping, chemistry "
        "stretches",
        build=build,
        affine=True,
    )
)
