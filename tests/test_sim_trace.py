"""Tests for state timelines (the power-accounting substrate)."""

import pytest

from repro.sim import StateTimeline


class TestTransitions:
    def test_initial_state_and_empty_intervals(self):
        tl = StateTimeline("d", "idle")
        assert tl.current_state == "idle"
        assert len(tl) == 0

    def test_transition_closes_interval(self):
        tl = StateTimeline("d", "idle")
        tl.transition(2.0, "busy")
        ivs = list(tl.intervals())
        assert len(ivs) == 1
        assert (ivs[0].start, ivs[0].end, ivs[0].state) == (0.0, 2.0, "idle")
        assert tl.current_state == "busy"

    def test_same_state_transition_is_noop(self):
        tl = StateTimeline("d", "idle")
        tl.transition(2.0, "idle")
        assert len(tl) == 0
        assert tl.current_since == 0.0

    def test_zero_duration_interval_skipped(self):
        tl = StateTimeline("d", "idle")
        tl.transition(0.0, "busy")
        assert len(tl) == 0
        assert tl.current_state == "busy"

    def test_time_going_backwards_raises(self):
        tl = StateTimeline("d", "idle")
        tl.transition(5.0, "busy")
        with pytest.raises(ValueError):
            tl.transition(4.0, "idle")

    def test_finalize_closes_open_interval(self):
        tl = StateTimeline("d", "idle")
        tl.transition(1.0, "busy")
        tl.finalize(4.0)
        ivs = list(tl.intervals())
        assert ivs[-1].state == "busy"
        assert ivs[-1].duration == 3.0

    def test_finalize_at_current_time_adds_nothing(self):
        tl = StateTimeline("d", "idle")
        tl.transition(1.0, "busy")
        tl.finalize(1.0)
        assert len(tl) == 1  # only the idle interval


class TestAccounting:
    def make(self):
        tl = StateTimeline("d", "idle")
        tl.transition(2.0, "busy")
        tl.transition(5.0, "idle")
        tl.transition(10.0, "standby")
        tl.finalize(12.0)
        return tl

    def test_time_in_state(self):
        tl = self.make()
        assert tl.time_in_state("idle") == pytest.approx(2.0 + 5.0)
        assert tl.time_in_state("busy") == pytest.approx(3.0)
        assert tl.time_in_state("standby") == pytest.approx(2.0)

    def test_total_time_predicate(self):
        tl = self.make()
        low = tl.total_time(lambda s: s in ("idle", "standby"))
        assert low == pytest.approx(9.0)

    def test_integrate_power(self):
        tl = self.make()
        powers = {"idle": 10.0, "busy": 30.0, "standby": 2.0}
        energy = tl.integrate(lambda s: powers[s])
        assert energy == pytest.approx(7 * 10 + 3 * 30 + 2 * 2)

    def test_durations_partition_horizon(self):
        tl = self.make()
        assert sum(iv.duration for iv in tl.intervals()) == pytest.approx(12.0)


class TestMergedPeriods:
    def test_adjacent_matching_intervals_merge(self):
        tl = StateTimeline("d", "idle")
        tl.transition(1.0, "standby")
        tl.transition(3.0, "idle")
        tl.transition(4.0, "busy")
        tl.finalize(5.0)
        merged = tl.merged_periods(lambda s: s != "busy")
        assert len(merged) == 1
        assert (merged[0].start, merged[0].end) == (0.0, 4.0)

    def test_periods_split_by_non_matching(self):
        tl = StateTimeline("d", "idle")
        tl.transition(1.0, "busy")
        tl.transition(2.0, "idle")
        tl.transition(5.0, "busy")
        tl.finalize(6.0)
        merged = tl.merged_periods(lambda s: s == "idle")
        assert [(m.start, m.end) for m in merged] == [(0.0, 1.0), (2.0, 5.0)]

    def test_trailing_open_period_included_after_finalize(self):
        tl = StateTimeline("d", "busy")
        tl.transition(1.0, "idle")
        tl.finalize(9.0)
        merged = tl.merged_periods(lambda s: s == "idle")
        assert merged[-1].duration == pytest.approx(8.0)

    def test_no_matching_intervals_gives_empty(self):
        tl = StateTimeline("d", "busy")
        tl.finalize(5.0)
        assert tl.merged_periods(lambda s: s == "idle") == []
