"""Tests for file striping and access signatures."""

import pytest

from repro.storage import StripedFile, StripeMap

KB = 1024


class TestValidation:
    def test_bad_stripe_size(self):
        with pytest.raises(ValueError):
            StripeMap(0, 4)

    def test_bad_node_count(self):
        with pytest.raises(ValueError):
            StripeMap(64 * KB, 0)

    def test_extent_beyond_file_rejected(self):
        smap = StripeMap(64 * KB, 4)
        f = StripedFile("f", 128 * KB, start_node=0)
        with pytest.raises(ValueError):
            smap.map_extent(f, 64 * KB, 128 * KB)

    def test_negative_offset_rejected(self):
        smap = StripeMap(64 * KB, 4)
        f = StripedFile("f", 128 * KB, start_node=0)
        with pytest.raises(ValueError):
            smap.map_extent(f, -1, 10)


class TestRoundRobin:
    def test_consecutive_stripes_rotate_nodes(self):
        smap = StripeMap(64 * KB, 4)
        f = StripedFile("f", 1024 * KB, start_node=0)
        nodes = [smap.node_of_stripe(f, i) for i in range(8)]
        assert nodes == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_start_node_rotates_layout(self):
        smap = StripeMap(64 * KB, 4)
        f = StripedFile("f", 1024 * KB, start_node=2)
        assert smap.node_of_stripe(f, 0) == 2
        assert smap.node_of_stripe(f, 3) == 1

    def test_hash_start_node_is_deterministic(self):
        smap = StripeMap(64 * KB, 8)
        a1 = StripedFile("alpha", 1024 * KB)
        a2 = StripedFile("alpha", 1024 * KB)
        assert a1.resolved_start(8) == a2.resolved_start(8)

    def test_different_names_can_start_differently(self):
        starts = {
            StripedFile(name, KB).resolved_start(8)
            for name in ("a", "b", "c", "d", "e", "f", "g", "h", "i")
        }
        assert len(starts) > 1


class TestMapExtent:
    def test_single_stripe_extent(self):
        smap = StripeMap(64 * KB, 4)
        f = StripedFile("f", 1024 * KB, start_node=0)
        exts = smap.map_extent(f, 0, 64 * KB)
        assert len(exts) == 1
        assert exts[0].node == 0
        assert exts[0].size == 64 * KB

    def test_extent_spanning_stripes_splits_per_node(self):
        smap = StripeMap(64 * KB, 4)
        f = StripedFile("f", 1024 * KB, start_node=0)
        exts = smap.map_extent(f, 0, 256 * KB)
        assert [e.node for e in exts] == [0, 1, 2, 3]
        assert all(e.size == 64 * KB for e in exts)

    def test_sub_stripe_offset(self):
        smap = StripeMap(64 * KB, 4)
        f = StripedFile("f", 1024 * KB, start_node=0)
        exts = smap.map_extent(f, 10 * KB, 20 * KB)
        assert len(exts) == 1
        assert exts[0].node_offset == 10 * KB
        assert exts[0].size == 20 * KB

    def test_sizes_partition_request(self):
        smap = StripeMap(64 * KB, 4)
        f = StripedFile("f", 10 * 1024 * KB, start_node=1)
        size = 517 * KB  # deliberately unaligned
        exts = smap.map_extent(f, 33 * KB, size)
        assert sum(e.size for e in exts) == size

    def test_wraparound_gives_second_row_on_first_node(self):
        # Stripes 0..3 land on nodes 0..3; stripe 4 wraps to node 0 at
        # the next node-local row.  It is emitted as a separate extent
        # (coalescing only merges adjacent emissions).
        smap = StripeMap(64 * KB, 4)
        f = StripedFile("f", 1024 * KB, start_node=0)
        exts = smap.map_extent(f, 0, 320 * KB)
        node0 = [e for e in exts if e.node == 0]
        assert len(node0) == 2
        assert node0[0].node_offset == 0
        assert node0[1].node_offset == 64 * KB

    def test_sub_stripe_chunks_of_same_stripe_coalesce(self):
        smap = StripeMap(64 * KB, 4)
        f = StripedFile("f", 1024 * KB, start_node=0)
        # A request entirely inside one stripe comes back as one extent
        # even though the cursor advances in sub-stripe chunks.
        exts = smap.map_extent(f, 4 * KB, 56 * KB)
        assert len(exts) == 1

    def test_base_row_offsets_node_local_space(self):
        smap = StripeMap(64 * KB, 4)
        a = StripedFile("a", 256 * KB, start_node=0, base_row=0)
        b = StripedFile("b", 256 * KB, start_node=0, base_row=5)
        ea = smap.map_extent(a, 0, 64 * KB)[0]
        eb = smap.map_extent(b, 0, 64 * KB)[0]
        assert ea.node == eb.node
        assert eb.node_offset - ea.node_offset == 5 * 64 * KB

    def test_rows_computation(self):
        f = StripedFile("f", 10 * 64 * KB, start_node=0)
        assert f.rows(64 * KB, 4) == 3  # 10 stripes over 4 nodes -> 3 rows

    def test_zero_size_extent(self):
        smap = StripeMap(64 * KB, 4)
        f = StripedFile("f", 1024 * KB, start_node=0)
        assert smap.map_extent(f, 0, 0) == []


class TestSignatures:
    def test_signature_single_node(self):
        smap = StripeMap(64 * KB, 8)
        f = StripedFile("f", 1024 * KB, start_node=3)
        assert smap.signature(f, 0, 64 * KB) == 1 << 3

    def test_signature_two_nodes(self):
        smap = StripeMap(64 * KB, 8)
        f = StripedFile("f", 1024 * KB, start_node=0)
        assert smap.signature(f, 0, 128 * KB) == 0b11

    def test_signature_all_nodes(self):
        smap = StripeMap(64 * KB, 8)
        f = StripedFile("f", 1024 * KB, start_node=0)
        assert smap.signature(f, 0, 512 * KB) == 0xFF

    def test_signature_matches_nodes_of_extent(self):
        smap = StripeMap(64 * KB, 8)
        f = StripedFile("f", 4096 * KB, start_node=5)
        sig = smap.signature(f, 192 * KB, 320 * KB)
        nodes = smap.nodes_of_extent(f, 192 * KB, 320 * KB)
        assert sig == sum(1 << n for n in nodes)

    def test_signature_independent_of_base_row(self):
        smap = StripeMap(64 * KB, 8)
        a = StripedFile("f", 1024 * KB, start_node=2, base_row=0)
        b = StripedFile("f", 1024 * KB, start_node=2, base_row=99)
        assert smap.signature(a, 0, 256 * KB) == smap.signature(b, 0, 256 * KB)
