"""Tests for affine expressions."""

import pytest

from repro.ir import Affine, as_affine, const, var


class TestConstruction:
    def test_var(self):
        x = var("i")
        assert x.coefficient("i") == 1
        assert x.constant == 0

    def test_const(self):
        c = const(5)
        assert c.is_constant
        assert c.constant == 5

    def test_zero_coefficients_dropped(self):
        e = Affine({"i": 0, "j": 2}, 1)
        assert e.variables == frozenset({"j"})

    def test_as_affine_int(self):
        assert as_affine(7) == const(7)

    def test_as_affine_passthrough(self):
        x = var("i")
        assert as_affine(x) is x

    def test_as_affine_rejects_other(self):
        with pytest.raises(TypeError):
            as_affine(3.14)

    def test_immutability(self):
        x = var("i")
        with pytest.raises(AttributeError):
            x.constant = 5


class TestAlgebra:
    def test_add_vars(self):
        e = var("i") + var("j")
        assert e.coefficient("i") == 1
        assert e.coefficient("j") == 1

    def test_add_int(self):
        e = var("i") + 3
        assert e.constant == 3

    def test_radd(self):
        e = 3 + var("i")
        assert e.constant == 3

    def test_sub(self):
        e = var("i") - var("i")
        assert e.is_constant
        assert e.constant == 0

    def test_rsub(self):
        e = 10 - var("i")
        assert e.coefficient("i") == -1
        assert e.constant == 10

    def test_mul(self):
        e = (var("i") + 2) * 3
        assert e.coefficient("i") == 3
        assert e.constant == 6

    def test_rmul(self):
        e = 4 * var("i")
        assert e.coefficient("i") == 4

    def test_mul_non_int_rejected(self):
        with pytest.raises(TypeError):
            var("i") * 1.5

    def test_neg(self):
        e = -(var("i") + 1)
        assert e.coefficient("i") == -1
        assert e.constant == -1


class TestEvaluation:
    def test_evaluate(self):
        e = var("i") * 3 + var("j") + 7
        assert e.evaluate({"i": 2, "j": 5}) == 18

    def test_missing_binding_raises(self):
        with pytest.raises(KeyError):
            var("i").evaluate({})

    def test_extra_bindings_ignored(self):
        assert const(4).evaluate({"x": 1}) == 4

    def test_substitute_partial(self):
        e = var("i") + var("j") * 2
        partial = e.substitute({"i": 10})
        assert partial.constant == 10
        assert partial.variables == frozenset({"j"})
        assert partial.evaluate({"j": 3}) == 16

    def test_equality_and_hash(self):
        assert var("i") + 1 == var("i") + 1
        assert hash(var("i") + 1) == hash(var("i") + 1)
        assert var("i") != var("j")

    def test_repr_readable(self):
        assert "i" in repr(var("i") * 2 + 1)
