"""Client ↔ I/O node interconnect model.

A :class:`Network` provides point-to-point transfers with a fixed per-hop
latency and per-endpoint serialized bandwidth: each I/O node has one
ingress/egress link that transfers queue on (FIFO), which captures the
first-order contention effect of many clients hammering one server, while
client NICs are assumed uncontended (one process per client node).

This is deliberately simpler than a full packet-level fabric — the paper's
results hinge on disk service and queueing, not switch microbehaviour; the
network contributes latency and smooths request arrival, which this model
preserves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from ..sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.injector import FaultInjector, LinkFaultState

__all__ = ["Link", "Network", "NetworkStats"]


@dataclass
class NetworkStats:
    """Aggregate transfer statistics."""

    transfers: int = 0
    bytes_moved: int = 0
    total_queue_delay: float = 0.0


class Link:
    """A serialized FIFO link with latency + bandwidth."""

    def __init__(
        self,
        sim: Simulator,
        latency: float,
        bandwidth_bps: float,
        name: str = "",
        faults: Optional["LinkFaultState"] = None,
    ):
        if latency < 0:
            raise ValueError(f"negative latency: {latency}")
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive: {bandwidth_bps}")
        self.sim = sim
        self.latency = latency
        self.bandwidth_bps = bandwidth_bps
        self.name = name
        self._busy_until = 0.0
        self.stats = NetworkStats()
        self._tracer = sim.obs.tracer
        self._faults = faults
        #: Optional per-transfer queue-delay histogram (seconds), attached
        #: by the session when a metrics registry is live.  ``None`` keeps
        #: the hot path at a single attribute check.
        self.delay_hist = None

    def transfer_time(self, nbytes: int) -> float:
        """Unloaded service time for ``nbytes``."""
        return self.latency + nbytes / self.bandwidth_bps

    def transfer(self, nbytes: int, on_complete: Callable[[], None]) -> None:
        """Queue a transfer; ``on_complete`` fires when the last byte lands."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        now = self.sim.now
        start = max(now, self._busy_until)
        service = nbytes / self.bandwidth_bps
        latency = self.latency
        lf = self._faults
        if lf is not None:
            # Crash windows hold the transfer until recovery; straggle /
            # loss / latency windows inflate its cost.  Transfers are
            # never dropped, so in-flight I/O always lands eventually and
            # the conservation invariants survive degradation.
            start, service, latency = lf.perturb(start, service, latency)
        finish = start + service + latency
        self._busy_until = start + service
        self.stats.transfers += 1
        self.stats.bytes_moved += nbytes
        queue_delay = start - now
        self.stats.total_queue_delay += queue_delay
        if self.delay_hist is not None:
            self.delay_hist.observe(queue_delay)
        if self._tracer.detail:
            self._tracer.event(
                "net.transfer",
                link=self.name,
                nbytes=nbytes,
                queue_delay=queue_delay,
            )
        self.sim.schedule(finish - now, on_complete)


class Network:
    """Star topology: every I/O node hangs off its own serialized link."""

    def __init__(
        self,
        sim: Simulator,
        n_ionodes: int,
        latency: float = 0.0001,
        bandwidth_bps: float = 1e9,
        faults: Optional["FaultInjector"] = None,
    ):
        self.sim = sim
        self.links = [
            Link(
                sim,
                latency,
                bandwidth_bps,
                name=f"ionode{i}",
                faults=(
                    faults.link_state(i) if faults is not None else None
                ),
            )
            for i in range(n_ionodes)
        ]

    def to_node(self, node: int, nbytes: int, on_complete: Callable[[], None]) -> None:
        """Move ``nbytes`` from a client to I/O node ``node``."""
        self.links[node].transfer(nbytes, on_complete)

    def from_node(
        self, node: int, nbytes: int, on_complete: Callable[[], None]
    ) -> None:
        """Move ``nbytes`` from I/O node ``node`` back to a client."""
        self.links[node].transfer(nbytes, on_complete)

    @property
    def stats(self) -> NetworkStats:
        """Summed statistics over all links."""
        total = NetworkStats()
        for link in self.links:
            total.transfers += link.stats.transfers
            total.bytes_moved += link.stats.bytes_moved
            total.total_queue_delay += link.stats.total_queue_delay
        return total
