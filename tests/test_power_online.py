"""Differential test layer for the online/adaptive power policies.

The three online policies (:class:`ForecastSpindown`,
:class:`CreditMultiSpeed`, :class:`HybridCompilerAssist`) and the
straggler-aware reorderer are *runtime-adaptive*: they react to observed
arrivals rather than a fixed rule.  Adaptivity must never cost the
repo's two core guarantees, so this module pins both across the full
differential corpus (all workloads × {clean, straggler, degraded
RAID-5}):

* **replayability** — every online policy replays bit-identically run
  over run and at any ``--jobs`` (asserted on
  :func:`~repro.exec.serialize.run_result_to_dict` documents, the cache
  encoding);
* **soundness** — every measured fleet energy lies inside the static
  analyzer's certified envelope for that (policy, config) cell, and
  conservation invariants (non-negative per-family energy summing to the
  total, well-formed timelines) hold even under fault injection.
"""

import pytest

from repro.analysis.energy import analyze_energy
from repro.disk import Drive
from repro.exec import ExperimentExecutor, RunPoint, run_result_to_dict
from repro.experiments import ExperimentConfig, Runner
from repro.experiments.runner import ONLINE_POLICIES
from repro.experiments.tournament import (
    SCENARIOS,
    TOURNAMENT_WORKLOADS,
    scenario_config,
)
from repro.power import (
    CreditMultiSpeed,
    ForecastSpindown,
    HybridCompilerAssist,
    make_policy,
)

from conftest import drain, fast_spec, multispeed_fast_spec, submit_read

#: Same shape as the kernels corpus: full-stack, sub-second per point.
SMALL = ExperimentConfig(n_clients=8, n_ionodes=4, workload_scale=0.05)

#: The three fault scenarios the tournament runs, anchored on SMALL.
#: (``degraded`` reshapes to 3-disk RAID-5 nodes with one dead member.)
SCENARIO_CONFIGS = {name: scenario_config(SMALL, name) for name in SCENARIOS}

#: One shared Runner per scenario — memoization makes each corpus point
#: simulate exactly once for the whole module.
RUNNERS = {name: Runner(cfg) for name, cfg in SCENARIO_CONFIGS.items()}

#: How each online policy enters the corpus: forecast and credit run
#: standalone, the hybrid runs under the compiled scheme it consumes.
POLICY_MODES = {"forecast": False, "credit": False, "hybrid": True}


# ----------------------------------------------------------------------
# Construction / validation
# ----------------------------------------------------------------------
class TestConstruction:
    def test_factory_resolves_online_names(self):
        for name in ONLINE_POLICIES:
            assert make_policy(name).name == name

    def test_capability_flags(self):
        assert ForecastSpindown.can_spin_down and not ForecastSpindown.can_ramp
        assert CreditMultiSpeed.can_ramp and not CreditMultiSpeed.can_spin_down
        assert HybridCompilerAssist.can_spin_down
        assert not HybridCompilerAssist.can_ramp

    @pytest.mark.parametrize("kwargs", [
        {"epoch": 0.0},
        {"epoch": -1.0},
        {"demand_alpha": 0.0},
        {"demand_alpha": 1.5},
        {"demand_weight": -0.1},
        {"demand_weight": 1.1},
        {"breakeven_margin": 0.0},
        {"min_observe": -1.0},
        {"decision_delay": -0.1},
    ])
    def test_forecast_rejects_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            ForecastSpindown(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"slack_budget": 0.0},
        {"slack_budget": 1.5},
        {"credit_cap": 0.0},
        {"utilization_bound": 0.0},
        {"utilization_bound": 2.0},
        {"min_observe": -1.0},
        {"decision_delay": -0.1},
    ])
    def test_credit_rejects_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            CreditMultiSpeed(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"breakeven_margin": 0.0},
        {"divergence_tolerance": 0.0},
        {"divergence_tolerance": -3.0},
        {"min_observe": -1.0},
        {"decision_delay": -0.1},
    ])
    def test_hybrid_rejects_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            HybridCompilerAssist(**kwargs)


# ----------------------------------------------------------------------
# ForecastSpindown unit behaviour
# ----------------------------------------------------------------------
class TestForecastSpindown:
    def test_no_demand_evidence_before_first_epoch(self):
        policy = ForecastSpindown(epoch=10.0)
        assert policy.demand_gap() is None

    def test_epoch_fold_produces_mean_gap(self):
        policy = ForecastSpindown(epoch=10.0, demand_alpha=0.5)
        for t in (1.0, 2.0, 3.0, 4.0, 5.0):
            policy._roll_epochs(t)
            policy._epoch_arrivals += 1
        policy._roll_epochs(10.0)  # fold epoch 0: 5 arrivals
        assert policy.demand_gap() == pytest.approx(10.0 / 5.0)

    def test_zero_demand_epoch_forecasts_beyond_horizon(self):
        policy = ForecastSpindown(epoch=10.0)
        policy._roll_epochs(10.0)  # fold an empty epoch
        assert policy.demand_gap() == pytest.approx(20.0)

    def test_blend_weights_demand_and_history(self):
        policy = ForecastSpindown(epoch=10.0, demand_weight=0.5)
        policy.predictor.observe(4.0)
        policy._epoch_arrivals = 2
        policy._roll_epochs(10.0)  # demand gap = 5.0
        assert policy.forecast_gap() == pytest.approx(0.5 * 4.0 + 0.5 * 5.0)

    def test_long_forecast_spins_down(self, sim):
        drive = Drive(sim, fast_spec(), name="test-disk")
        policy = ForecastSpindown(epoch=5.0, decision_delay=0.1)
        drive.attach_policy(policy)
        # Two widely-spaced requests: the trailing idle after each is far
        # beyond break-even, so the blended forecast must trigger.
        submit_read(sim, drive, 0.0)
        submit_read(sim, drive, 60.0)
        drain(sim, drive)
        assert policy.forecasts >= 1
        assert policy.spin_down_decisions >= 1
        assert drive.stats.spin_downs >= 1

    def test_hot_epoch_vetoes_spin_down(self, sim):
        drive = Drive(sim, fast_spec(), name="test-disk")
        # Full demand weight: the epoch-rate forecast alone decides.
        policy = ForecastSpindown(
            epoch=5.0, demand_weight=1.0, decision_delay=0.1
        )
        drive.attach_policy(policy)
        for i in range(24):  # dense traffic, every ~0.5 s
            submit_read(sim, drive, 0.5 * i)
        drain(sim, drive)
        # The demand forecast (sub-second gaps) stays far below
        # break-even: no mid-run spin-down.  Only the trailing idle
        # (where the drained epochs decay the demand) may add one.
        assert drive.stats.spin_downs <= 1


# ----------------------------------------------------------------------
# CreditMultiSpeed unit behaviour
# ----------------------------------------------------------------------
class TestCreditMultiSpeed:
    def test_credit_accrues_and_caps(self):
        policy = CreditMultiSpeed(slack_budget=0.1, credit_cap=2.0)
        policy._accrue(10.0)
        assert policy.credit == pytest.approx(1.0)
        policy._accrue(100.0)
        assert policy.credit == pytest.approx(2.0)  # capped

    def test_affordable_ramp_is_taken_and_paid(self, sim):
        drive = Drive(sim, multispeed_fast_spec(), name="test-disk")
        policy = CreditMultiSpeed(slack_budget=1.0, decision_delay=0.1)
        drive.attach_policy(policy)
        submit_read(sim, drive, 0.0)
        submit_read(sim, drive, 30.0)  # long gap, generous budget
        drain(sim, drive)
        assert policy.ramps_taken >= 1
        assert policy.credit_spent > 0
        assert drive.stats.rpm_steps >= 1

    def test_unaffordable_ramp_is_deferred(self, sim):
        drive = Drive(sim, multispeed_fast_spec(), name="test-disk")
        # Minimal budget: by the first decision point almost no credit
        # has accrued, so every desired drop is deferred.
        policy = CreditMultiSpeed(slack_budget=1e-6, decision_delay=0.1)
        drive.attach_policy(policy)
        submit_read(sim, drive, 0.0)
        submit_read(sim, drive, 30.0)
        drain(sim, drive)
        assert policy.ramps_taken == 0
        assert policy.ramps_deferred >= 1
        assert drive.stats.rpm_steps == 0


# ----------------------------------------------------------------------
# HybridCompilerAssist unit behaviour
# ----------------------------------------------------------------------
class TestHybridCompilerAssist:
    def test_bind_selects_own_nodes_hints(self, sim):
        hints = {0: (1.0, 2.0), 3: (7.0, 8.0, 9.0)}
        policy = HybridCompilerAssist(hints=hints)
        drive = Drive(sim, fast_spec(), name="node3.disk1")
        drive.attach_policy(policy)
        assert policy._times == (7.0, 8.0, 9.0)

    def test_bind_without_node_name_keeps_no_hints(self, sim):
        policy = HybridCompilerAssist(hints={0: (1.0,)})
        drive = Drive(sim, fast_spec(), name="test-disk")
        drive.attach_policy(policy)
        assert policy._times == ()
        assert not policy.hints_trusted()

    def test_aligned_hints_become_trusted(self):
        policy = HybridCompilerAssist(
            hints={0: (10.0, 20.0, 30.0, 40.0)}, divergence_tolerance=1.0
        )
        policy._times = policy.hints[0]
        # Arrivals at a constant +2 s offset: spread stays ~0.
        policy._align(12.0)
        assert not policy.hints_trusted()  # one sample only seeds
        policy._align(22.0)
        assert policy.hints_trusted()
        assert policy._offset == pytest.approx(2.0)
        # Offset-corrected gap to the next (30.0) hint from now=25.
        assert policy._hinted_gap(25.0) == pytest.approx(7.0)

    def test_divergence_breaks_trust(self):
        policy = HybridCompilerAssist(
            hints={0: tuple(float(10 * i) for i in range(1, 8))},
            divergence_tolerance=1.0,
        )
        policy._times = policy.hints[0]
        # Wildly inconsistent offsets: spread blows past the tolerance.
        for now in (12.0, 45.0, 31.0, 90.0):
            policy._align(now)
        assert policy._aligned == 4
        assert not policy.hints_trusted()

    def test_exhausted_hints_fall_back(self):
        policy = HybridCompilerAssist(hints={0: (1.0, 2.0)})
        policy._times = policy.hints[0]
        policy._align(1.0)
        policy._align(2.0)
        assert policy._cursor == len(policy._times)
        assert not policy.hints_trusted()
        assert policy._hinted_gap(3.0) is None

    def test_trusted_hints_drive_spin_down_timing(self, sim):
        spec = fast_spec()
        # Hints: a burst, then a long gap far beyond break-even.
        hints = {0: (0.0, 1.0, 2.0, 80.0)}
        policy = HybridCompilerAssist(
            hints=hints, decision_delay=0.1, divergence_tolerance=5.0
        )
        drive = Drive(sim, spec, name="node0.disk0")
        drive.attach_policy(policy)
        for t in hints[0]:
            submit_read(sim, drive, t)
        drain(sim, drive)
        assert policy.hint_decisions >= 1
        assert policy.spin_down_decisions >= 1
        assert drive.stats.spin_downs >= 1

    def test_no_hints_degrades_to_pure_online(self, sim):
        policy = HybridCompilerAssist(decision_delay=0.1)
        drive = Drive(sim, fast_spec(), name="node0.disk0")
        drive.attach_policy(policy)
        submit_read(sim, drive, 0.0)
        submit_read(sim, drive, 60.0)
        drain(sim, drive)
        assert policy.hint_decisions == 0
        assert policy.fallback_decisions >= 1


# ----------------------------------------------------------------------
# Acceptance criterion: analyzer-envelope containment over the full
# differential corpus — every workload × every scenario × every online
# policy.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workload", TOURNAMENT_WORKLOADS)
@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("policy", ONLINE_POLICIES)
def test_measured_energy_inside_envelope(workload, scenario, policy):
    runner = RUNNERS[scenario]
    cfg = SCENARIO_CONFIGS[scenario]
    scheme = POLICY_MODES[policy]
    result = runner.run(workload, policy, scheme, config=cfg)
    book = runner.compilation(workload, cfg).book if scheme else None
    analysis = analyze_energy(
        runner.trace(workload, cfg), cfg, policy, scheme, book=book
    )
    assert analysis.envelope.contains(result.energy_joules), (
        f"{policy}/{workload}/{scenario}: {result.energy_joules} outside "
        f"[{analysis.envelope.energy_j.lo}, {analysis.envelope.energy_j.hi}]"
    )


# ----------------------------------------------------------------------
# Conservation invariants under faults
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("policy", ONLINE_POLICIES)
class TestConservation:
    def test_energy_breakdown_conserved(self, scenario, policy):
        runner = RUNNERS[scenario]
        cfg = SCENARIO_CONFIGS[scenario]
        result = runner.run(workload="sar", policy=policy,
                            scheme=POLICY_MODES[policy], config=cfg)
        assert result.energy_joules > 0
        assert result.execution_time > 0
        assert all(v >= -1e-9 for v in result.energy_breakdown.values())
        # The breakdown carries its own "total" key alongside the
        # per-family buckets; both must agree with the fleet energy.
        families = {
            k: v for k, v in result.energy_breakdown.items() if k != "total"
        }
        assert result.energy_breakdown["total"] == pytest.approx(
            result.energy_joules, rel=1e-9
        )
        assert sum(families.values()) == pytest.approx(
            result.energy_joules, rel=1e-9
        )
        # accesses counts *scheduled* accesses, so only scheme runs
        # compile a table to count.
        if POLICY_MODES[policy]:
            assert result.accesses > 0


# ----------------------------------------------------------------------
# Replayability: bit-identical re-runs, serially and under a pool
# ----------------------------------------------------------------------
def _corpus_points():
    points = []
    for policy in ONLINE_POLICIES:
        scheme = POLICY_MODES[policy]
        for scenario in ("clean", "straggler"):
            points.append(
                RunPoint("hf", policy, scheme, SCENARIO_CONFIGS[scenario])
            )
    # The reorderer rides along on the hybrid under the straggler plan —
    # exactly the situation it was built for.
    points.append(RunPoint(
        "hf", "hybrid", True,
        SCENARIO_CONFIGS["straggler"].scaled(reorder=True),
    ))
    return points


class TestReplayability:
    def test_fresh_runners_agree(self):
        for policy in ONLINE_POLICIES:
            scheme = POLICY_MODES[policy]
            a = Runner(SMALL).run("astro", policy, scheme)
            b = Runner(SMALL).run("astro", policy, scheme)
            assert run_result_to_dict(a) == run_result_to_dict(b), policy

    def test_jobs1_and_jobs4_bit_identical(self):
        points = _corpus_points()
        serial = ExperimentExecutor(jobs=1).run_points(points)
        parallel = ExperimentExecutor(jobs=4).run_points(points)
        assert set(serial) == set(parallel) == set(points)
        for point in points:
            assert (
                run_result_to_dict(parallel[point])
                == run_result_to_dict(serial[point])
            ), point.label()


# ----------------------------------------------------------------------
# The straggler-aware reorderer end to end
# ----------------------------------------------------------------------
class TestReorderEndToEnd:
    def test_reorder_runs_are_deterministic(self):
        cfg = SCENARIO_CONFIGS["straggler"].scaled(reorder=True)
        a = Runner(cfg).run("hf", "hybrid", True, config=cfg)
        b = Runner(cfg).run("hf", "hybrid", True, config=cfg)
        assert run_result_to_dict(a) == run_result_to_dict(b)

    def test_reorder_result_stays_in_envelope(self):
        cfg = SCENARIO_CONFIGS["straggler"].scaled(reorder=True)
        runner = Runner(cfg)
        result = runner.run("hf", "hybrid", True, config=cfg)
        analysis = analyze_energy(
            runner.trace("hf", cfg), cfg, "hybrid", True,
            book=runner.compilation("hf", cfg).book,
        )
        assert analysis.envelope.contains(result.energy_joules)

    def test_reorder_requires_scheme_sessions(self):
        """reorder=True without the scheme is inert (no scheduler
        threads exist to reorder), not an error."""
        cfg = SMALL.scaled(reorder=True)
        plain = Runner(cfg).run("sar", "forecast", False, config=cfg)
        base = Runner(SMALL).run("sar", "forecast", False)
        assert plain.energy_joules == pytest.approx(base.energy_joules)
