#!/usr/bin/env python3
"""Writing a custom disk power-management policy.

The policy interface is three callbacks: ``on_idle_start``,
``on_request_arrival`` and ``on_ramp_complete``.  This example implements
a *two-level timeout* policy (drop to half speed after a short idle,
spin down fully after a long one) and races it against the paper's four
policies — including the perfect-knowledge oracle upper bound — on the
``wupwise`` workload (the long-idle app, where spin-down has real opportunities).

Run:  python examples/custom_policy.py
"""

from repro import Session, make_policy
from repro.experiments import default_config
from repro.ir import trace_program
from repro.metrics import fleet_energy
from repro.power import OracleSpinDown, PowerPolicy
from repro.workloads import get_workload


class TwoLevelTimeout(PowerPolicy):
    """Half speed after ``rpm_timeout`` idle; standby after ``spin_timeout``."""

    name = "two-level"

    def __init__(self, rpm_timeout: float = 5.0, spin_timeout: float = 60.0):
        super().__init__()
        self.rpm_timeout = rpm_timeout
        self.spin_timeout = spin_timeout

    def on_idle_start(self, now: float) -> None:
        self._arm_timer(self.rpm_timeout, self._drop_speed)

    def _drop_speed(self) -> None:
        self._timer = None
        drive = self.drive
        if not drive.is_idle or drive.is_standby:
            return
        levels = drive.spec.rpm_levels
        half = levels[len(levels) // 2]
        if drive.current_rpm > half:
            drive.request_rpm(half)
        self._arm_timer(self.spin_timeout - self.rpm_timeout, self._spin_down)

    def _spin_down(self) -> None:
        self._timer = None
        if self.drive.is_idle and not self.drive.is_transitioning:
            self.drive.spin_down()

    def on_request_arrival(self, now: float) -> None:
        self._cancel_timer()
        if not self.drive.is_standby:
            self.drive.request_rpm(self.drive.spec.max_rpm)


SCALE = 0.15
config = default_config(scale=SCALE)
program = get_workload("wupwise").build(n_processes=config.n_clients, scale=SCALE)
trace = trace_program(program)


def run(policy_factory, multispeed: bool):
    session = Session(
        trace,
        config.disk_spec(multispeed),
        policy_factory,
        config.session_config(),
    )
    outcome = session.run()
    return outcome, outcome.execution_time


# Baseline for normalization + the oracle's idle knowledge.
base_outcome, base_time = run(lambda: make_policy("default"), multispeed=False)
base_energy = fleet_energy(base_outcome.drives, base_time)
oracle_knowledge = [d.idle_period_intervals() for d in base_outcome.drives]

print(f"wupwise @ scale {SCALE}: baseline {base_time:.0f}s, "
      f"{base_energy / 1000:.1f} kJ\n")
print(f"{'policy':<12} {'energy saving':>14} {'perf impact':>12}")

contenders = [
    ("simple", lambda: make_policy("simple", timeout=config.simple_timeout), False),
    ("prediction", lambda: make_policy("prediction"), False),
    ("history", lambda: make_policy("history"), True),
    ("staggered", lambda: make_policy(
        "staggered", step_timeout=config.staggered_step), True),
    ("two-level", lambda: TwoLevelTimeout(), True),
]
for name, factory, multispeed in contenders:
    outcome, exec_time = run(factory, multispeed)
    energy = fleet_energy(outcome.drives, exec_time)
    print(f"{name:<12} {1 - energy / base_energy:>13.1%} "
          f"{exec_time / base_time - 1:>11.1%}")

# Oracle: replays perfect idle knowledge per drive.
knowledge_iter = iter(oracle_knowledge)
outcome, exec_time = run(
    lambda: OracleSpinDown(next(knowledge_iter)), multispeed=False
)
energy = fleet_energy(outcome.drives, exec_time)
print(f"{'oracle':<12} {1 - energy / base_energy:>13.1%} "
      f"{exec_time / base_time - 1:>11.1%}   (upper bound, spin-down only)")
