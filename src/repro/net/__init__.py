"""Interconnect model between client nodes and I/O nodes."""

from .network import Link, Network, NetworkStats

__all__ = ["Network", "Link", "NetworkStats"]
