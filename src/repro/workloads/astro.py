"""``astro`` — astronomical data analysis model.

Paper profile (Table III): 16.8 min, mid-pack idle distribution.

Structure modelled: cross-matching sweeps over a large observation
catalog, alternating with model-fitting stretches.

* **Sweep**: every phase each process reads two *scattered* observation
  blocks — the subscript is a modular stride (non-affine, so the paper's
  profiling tool, not the Omega path, extracts the slacks).  Scattered
  subscripts decorrelate I/O-node signatures across processes, the
  situation the signature-distance grouping exploits.  Compute jitter
  lets processes drift, smearing bursts into broader mid gaps.
* **Fit stretch**: runs of three ~80 s likelihood slots with one prior
  block read apiece — the spin-down opportunities.
"""

from __future__ import annotations

from ..ir.affine import var
from ..ir.program import Compute, FileDecl, Loop, Program, Read, Write
from .base import WorkloadInfo, jitter, register, scaled

__all__ = ["build"]

BLOCK_BYTES = 128 * 1024   # 2 stripes -> 2-node signatures (cf. Fig. 9)
STRIDE = 17
SUPERSTEPS = 3
PHASES_PER_SS = 60
STRETCH_SLOTS = 5
PHASE_SLOTS = 8
PHASE_COST = 0.4
STRETCH_COST = 18.0


def build(n_processes: int = 32, scale: float = 1.0) -> Program:
    """Build the astro program.

    ``scale=1.0`` ⇒ ≈16 simulated minutes with 32 processes.
    """
    phases = scaled(PHASES_PER_SS, scale)
    stretch_slots = scaled(STRETCH_SLOTS, scale, minimum=4)
    phases_total = SUPERSTEPS * phases
    n_obs_blocks = 4 * n_processes * phases_total

    def scattered(offset: int):
        """Non-affine modular-stride subscript (indirection stand-in)."""

        def block(env: dict) -> int:
            raw = (
                env["p"] * 31
                + (env["ss"] * phases + env["ph"]) * STRIDE
                + offset
            )
            return raw % n_obs_blocks

        return block

    files = {
        "observations": FileDecl("observations", n_obs_blocks, BLOCK_BYTES),
        "priors": FileDecl(
            "priors", 5 * n_processes * SUPERSTEPS * stretch_slots, BLOCK_BYTES
        ),
        "matches": FileDecl("matches", n_processes * SUPERSTEPS, BLOCK_BYTES),
    }

    body = [
        Loop("ss", 0, SUPERSTEPS - 1, body=[
            Loop("ph", 0, phases - 1, body=[
                Read("observations", scattered(0)),
                Read("observations", scattered(1)),
            ] + [Compute(jitter(PHASE_COST, 0.06, k)) for k in range(PHASE_SLOTS)] + [
            ]),
            Write("matches", var("p") * SUPERSTEPS + var("ss")),
            Compute(jitter(0.5, 0.06, 3)),
            Loop("fs", 0, stretch_slots - 1, body=[
                Read("priors",
                     (var("p")
                      + n_processes * (var("ss") * stretch_slots + var("fs"))) * 5),
                Compute(jitter(STRETCH_COST, 0.03, 4)),
            ]),
        ]),
    ]
    return Program("astro", n_processes, files, body)


register(
    WorkloadInfo(
        name="astro",
        description="Astronomical catalog analysis: scattered non-affine "
        "reads, drifting processes, fit stretches (profiling path)",
        build=build,
        affine=False,
    )
)
