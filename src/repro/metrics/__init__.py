"""Measurement layer: idle-period CDFs, energy integration, performance
comparisons, and report formatting."""

from .energy import (
    EnergyComparison,
    breakdown_until,
    energy_until,
    fleet_energy,
    idle_periods_until,
    residency_until,
    transition_counts_until,
)
from .idle import PAPER_BUCKETS_MS, IdleCDF, clip_periods, idle_cdf
from .perf import PerfComparison, degradation, improvement
from .report import format_percent, format_series, format_table

__all__ = [
    "energy_until",
    "breakdown_until",
    "fleet_energy",
    "idle_periods_until",
    "residency_until",
    "transition_counts_until",
    "EnergyComparison",
    "idle_cdf",
    "IdleCDF",
    "clip_periods",
    "PAPER_BUCKETS_MS",
    "degradation",
    "improvement",
    "PerfComparison",
    "format_table",
    "format_percent",
    "format_series",
]
