"""Minimal HTTP/1.1 framing over asyncio streams.

The scheduling service speaks JSON-over-HTTP with zero dependencies, so
this module hand-rolls exactly the slice of HTTP/1.1 the server and the
load generator need: request parsing (request line, headers,
``Content-Length`` bodies), keep-alive connections, fixed-length JSON
responses, and ``Transfer-Encoding: chunked`` for the job event stream.
It is *not* a general HTTP implementation — no continuation lines, no
trailers, no request chunking — and malformed input maps to a clean
:class:`HttpError` (→ 400) instead of best-effort recovery.

Shared by both sides: :class:`HttpClient` drives the same framing from
the client end (one persistent connection per load-generator client),
so the harness exercises the exact wire format real clients would.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Optional
from urllib.parse import parse_qs, urlsplit

__all__ = [
    "MAX_BODY_BYTES",
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "read_request",
    "write_response",
    "json_response",
    "error_response",
    "HttpClient",
]

#: Request bodies above this are refused (413) before buffering.
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Header-section cap: a request line or header longer than this is an
#: attack or a bug, not a submission.
_MAX_LINE = 16 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request that cannot be parsed or must be refused early."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request: method, split target, headers, raw body."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]  # keys lower-cased
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> Any:
        """The body decoded as JSON (``{}`` when empty); 400 on garbage."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")


@dataclass
class HttpResponse:
    """One response ready to serialize (body already encoded)."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)
    close: bool = False


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return b""  # clean EOF between requests
        raise HttpError(400, "truncated request") from None
    except asyncio.LimitOverrunError:
        raise HttpError(400, "header line too long") from None
    if len(line) > _MAX_LINE:
        raise HttpError(400, "header line too long")
    return line


async def read_request(
    reader: asyncio.StreamReader,
) -> Optional[HttpRequest]:
    """Parse one request off ``reader``; ``None`` on clean EOF.

    Raises :class:`HttpError` on malformed framing (the handler answers
    it and closes) — never returns a half-parsed request.
    """
    request_line = await _read_line(reader)
    if not request_line:
        return None
    parts = request_line.decode("latin-1").rstrip("\r\n").split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, "malformed request line")
    method, target, _version = parts
    split = urlsplit(target)
    query = {
        key: values[-1]
        for key, values in parse_qs(
            split.query, keep_blank_values=True
        ).items()
    }

    headers: dict[str, str] = {}
    while True:
        line = await _read_line(reader)
        if not line:
            raise HttpError(400, "truncated headers")
        if line == b"\r\n":
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header {name.strip()!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "transfer-encoding" in headers:
        raise HttpError(400, "chunked request bodies are not supported")
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpError(400, f"bad Content-Length {length_text!r}")
    if length < 0:
        raise HttpError(400, f"bad Content-Length {length}")
    if length > MAX_BODY_BYTES:
        raise HttpError(413, f"body of {length} bytes exceeds the cap")
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "truncated body") from None
    return HttpRequest(
        method=method.upper(),
        path=split.path or "/",
        query=query,
        headers=headers,
        body=body,
    )


def _head(response: HttpResponse, chunked: bool = False) -> bytes:
    reason = _REASONS.get(response.status, "Unknown")
    lines = [f"HTTP/1.1 {response.status} {reason}"]
    lines.append(f"Content-Type: {response.content_type}")
    if chunked:
        lines.append("Transfer-Encoding: chunked")
    else:
        lines.append(f"Content-Length: {len(response.body)}")
    for name, value in response.headers.items():
        lines.append(f"{name}: {value}")
    lines.append(
        "Connection: close" if response.close else "Connection: keep-alive"
    )
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def write_response(
    writer: asyncio.StreamWriter, response: HttpResponse
) -> None:
    writer.write(_head(response) + response.body)
    await writer.drain()


def json_response(
    status: int, doc: Any, headers: Optional[dict[str, str]] = None
) -> HttpResponse:
    body = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
    return HttpResponse(status=status, body=body, headers=dict(headers or {}))


def error_response(
    status: int, message: str, headers: Optional[dict[str, str]] = None
) -> HttpResponse:
    return json_response(status, {"error": message}, headers=headers)


def encode_chunk(payload: bytes) -> bytes:
    """One ``Transfer-Encoding: chunked`` frame (empty = terminator)."""
    return f"{len(payload):x}\r\n".encode("latin-1") + payload + b"\r\n"


# ----------------------------------------------------------------------
# Client side
# ----------------------------------------------------------------------
class HttpClient:
    """One persistent keep-alive connection to the scheduling server.

    Deliberately tiny: JSON in, JSON out, no redirects, no TLS, no
    pipelining (one request in flight per connection — the load
    generator gets concurrency from many clients, not deep pipelines).
    """

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except OSError:
                pass
            self._reader = self._writer = None

    async def request(
        self,
        method: str,
        target: str,
        doc: Any = None,
        headers: Optional[dict[str, str]] = None,
    ) -> tuple[int, dict[str, str], Any]:
        """One round trip; returns ``(status, headers, parsed body)``.

        Reconnects once if the pooled connection died between requests
        (the server may close idle connections while draining).
        """
        for attempt in (0, 1):
            if self._writer is None:
                await self._connect()
            try:
                return await self._round_trip(method, target, doc, headers)
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                await self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    async def _round_trip(
        self,
        method: str,
        target: str,
        doc: Any,
        headers: Optional[dict[str, str]],
    ) -> tuple[int, dict[str, str], Any]:
        assert self._reader is not None and self._writer is not None
        body = b""
        if doc is not None:
            body = json.dumps(doc, sort_keys=True).encode("utf-8")
        lines = [
            f"{method} {target} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            f"Content-Length: {len(body)}",
            "Content-Type: application/json",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        self._writer.write(
            ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
        )
        await self._writer.drain()

        status_line = await self._reader.readuntil(b"\r\n")
        pieces = status_line.decode("latin-1").split(" ", 2)
        if len(pieces) < 2 or not pieces[0].startswith("HTTP/1."):
            raise ConnectionError(f"malformed status line {status_line!r}")
        status = int(pieces[1])
        response_headers: dict[str, str] = {}
        while True:
            line = await self._reader.readuntil(b"\r\n")
            if line == b"\r\n":
                break
            name, _sep, value = line.decode("latin-1").partition(":")
            response_headers[name.strip().lower()] = value.strip()
        length = int(response_headers.get("content-length", "0"))
        payload = await self._reader.readexactly(length) if length else b""
        if response_headers.get("connection", "").lower() == "close":
            await self.close()
        parsed: Any = None
        if payload:
            try:
                parsed = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                parsed = payload  # surface raw bytes; caller decides
        return status, response_headers, parsed
