"""JSON (de)serialization for run results.

The on-disk result cache and the machine-readable figure/bench outputs
share one canonical encoding.  Round-tripping is *exact*: every float is
emitted with ``repr`` semantics (what :mod:`json` does), which Python
guarantees to parse back bit-identically, so a result loaded from the
cache compares equal to the freshly-simulated one.

:data:`SCHEMA_VERSION` names the layout *and* the simulation semantics a
cached result was produced under.  Bump it whenever :class:`RunResult`
gains/loses a field **or** a code change legitimately alters simulated
metrics — the version participates in the cache digest, so stale entries
become unreachable instead of being wrongly reused.
"""

from __future__ import annotations

import json
from typing import Any

from ..experiments.runner import RunResult
from ..metrics.idle import IdleCDF

__all__ = [
    "SCHEMA_VERSION",
    "JOURNAL_SCHEMA_VERSION",
    "canonical_dumps",
    "idle_cdf_to_dict",
    "idle_cdf_from_dict",
    "run_result_to_dict",
    "run_result_from_dict",
    "journal_header",
    "journal_entry",
    "parse_journal_line",
]

#: Cache/output schema + simulation-semantics version.
#: 2: energy_until is now defined as the sum of the per-family breakdown
#:    (same wattages, different float summation order), so cached energy
#:    values from v1 are not bit-identical to fresh ones.
#: 3: RAID-10 mirror reads are now a pure function of the extent's
#:    address (was call-history round-robin), so cached raid_level=10
#:    results from v2 are not reproducible by fresh simulation.
#: 4: IdlePredictor.predict() now clamps the EWMA into the recent
#:    window's [min, max] (evidence-bounded forecasts), shifting the
#:    decisions of every predictor-backed policy, so cached
#:    prediction/history/staggered results from v3 are stale.
SCHEMA_VERSION = 4


#: Layout version of the campaign journal (`repro resume`).  Independent
#: of :data:`SCHEMA_VERSION`: the journal stores only point digests and
#: outcomes, never results, so result-semantics bumps do not invalidate
#: journals — the digests simply stop matching anything in the cache and
#: the points re-run.
JOURNAL_SCHEMA_VERSION = 1


def canonical_dumps(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no insignificant whitespace."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# Campaign journal records.  One JSONL line per event: a single header
# naming the campaign (the exact CLI argv to re-dispatch on resume),
# then one entry per point *outcome*.  Entries are append-only and
# last-entry-wins per digest, so a journal is valid after being cut off
# at any line boundary — the property SIGINT-safe checkpointing needs.
# ----------------------------------------------------------------------
def journal_header(argv: list[str]) -> dict[str, Any]:
    """The first line of a campaign journal: how to re-run the campaign."""
    return {
        "kind": "campaign-journal",
        "schema": JOURNAL_SCHEMA_VERSION,
        "argv": list(argv),
    }


def journal_entry(
    digest: str, label: str, outcome: str, attempts: int = 0
) -> dict[str, Any]:
    """One point-outcome line (``ok``/``cached``/``failed``/``timeout``/
    ``quarantined``/``retried``)."""
    return {
        "digest": digest,
        "label": label,
        "outcome": outcome,
        "attempts": attempts,
    }


def parse_journal_line(line: str) -> dict[str, Any] | None:
    """Decode one journal line; ``None`` for blank or truncated lines.

    A crashed writer can leave a final partial line; tolerating it (rather
    than failing the whole resume) is deliberate — every *complete* line
    was flushed before the next point started, so nothing else is at risk.
    """
    line = line.strip()
    if not line:
        return None
    try:
        record = json.loads(line)
    except ValueError:
        return None
    return record if isinstance(record, dict) else None


def idle_cdf_to_dict(cdf: IdleCDF) -> dict[str, Any]:
    return {
        "buckets_ms": list(cdf.buckets_ms),
        "cumulative": list(cdf.cumulative),
        "count": cdf.count,
        "total_idle_seconds": cdf.total_idle_seconds,
        "mean_seconds": cdf.mean_seconds,
    }


def idle_cdf_from_dict(d: dict[str, Any]) -> IdleCDF:
    return IdleCDF(
        buckets_ms=tuple(d["buckets_ms"]),
        cumulative=tuple(d["cumulative"]),
        count=d["count"],
        total_idle_seconds=d["total_idle_seconds"],
        mean_seconds=d["mean_seconds"],
    )


def run_result_to_dict(result: RunResult) -> dict[str, Any]:
    return {
        "schema": SCHEMA_VERSION,
        "workload": result.workload,
        "policy": result.policy,
        "scheme": result.scheme,
        "execution_time": result.execution_time,
        "energy_joules": result.energy_joules,
        "idle_cdf": idle_cdf_to_dict(result.idle_cdf),
        "idle_periods": list(result.idle_periods),
        "energy_breakdown": dict(result.energy_breakdown),
        "buffer_hits": result.buffer_hits,
        "prefetches": result.prefetches,
        "accesses": result.accesses,
    }


def run_result_from_dict(d: dict[str, Any]) -> RunResult:
    if d.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"result schema {d.get('schema')!r} != current {SCHEMA_VERSION}"
        )
    return RunResult(
        workload=d["workload"],
        policy=d["policy"],
        scheme=d["scheme"],
        execution_time=d["execution_time"],
        energy_joules=d["energy_joules"],
        idle_cdf=idle_cdf_from_dict(d["idle_cdf"]),
        idle_periods=list(d["idle_periods"]),
        energy_breakdown=dict(d["energy_breakdown"]),
        buffer_hits=d["buffer_hits"],
        prefetches=d["prefetches"],
        accesses=d["accesses"],
    )
