"""Content-addressed on-disk cache of :class:`RunResult`.

Every experiment point is addressed by a SHA-256 digest of the canonical
JSON encoding of ``(schema version, workload, policy, scheme, full
ExperimentConfig.to_key())``.  Changing *any* knob — δ, θ, the I/O-node
count, the workload scale, a policy parameter — or bumping
:data:`~repro.exec.serialize.SCHEMA_VERSION` changes the digest, so the
cache can only ever return a result computed under exactly the same
inputs; there is no staleness to invalidate.

Layout: ``<root>/<digest[:2]>/<digest>.json`` (fan-out keeps directories
small under full-sweep populations).  Writes are atomic (tempfile +
``os.replace``), which also makes concurrent writers racing on the same
digest harmless — both write identical bytes.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from ..experiments.config import ExperimentConfig
from ..experiments.runner import RunResult
from .serialize import (
    SCHEMA_VERSION,
    canonical_dumps,
    run_result_from_dict,
    run_result_to_dict,
)

__all__ = ["point_digest", "CacheStats", "ResultCache"]


def point_digest(
    config: ExperimentConfig, workload: str, policy: str, scheme: bool
) -> str:
    """Stable content address of one experiment point."""
    payload = canonical_dumps(
        {
            "schema": SCHEMA_VERSION,
            "workload": workload,
            "policy": policy,
            "scheme": scheme,
            "config": {name: value for name, value in config.to_key()},
        }
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid: int = 0  # unreadable/corrupt entries treated as misses
    orphans_swept: int = 0  # .tmp-* files left behind by crashed writers
    quarantined: int = 0  # corrupt entries renamed aside by lookup()

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalid": self.invalid,
            "orphans_swept": self.orphans_swept,
            "quarantined": self.quarantined,
        }


@dataclass
class ResultCache:
    """Content-addressed result store rooted at ``root``."""

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.sweep_orphans()

    # ------------------------------------------------------------------
    def sweep_orphans(self) -> int:
        """Delete ``.tmp-*`` writer leftovers and ``.corrupt-*`` files.

        A writer that dies between ``mkstemp`` and ``os.replace`` leaves
        its tempfile behind, and :meth:`lookup` renames unreadable
        entries to ``.corrupt-*`` names; without a sweep either kind
        accumulates forever.  Racing a *live* writer is harmless: its
        ``os.replace`` then fails with ``FileNotFoundError`` and
        :meth:`store` retries with a fresh tempfile.
        """
        removed = 0
        for pattern in ("*/.tmp-*", "*/.corrupt-*"):
            for orphan in sorted(self.root.glob(pattern)):
                try:
                    orphan.unlink()
                except OSError:
                    continue  # a concurrent sweep got there first
                removed += 1
        self.stats.orphans_swept += removed
        return removed

    def path_for(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def lookup(
        self,
        config: ExperimentConfig,
        workload: str,
        policy: str,
        scheme: bool,
    ) -> Optional[RunResult]:
        """The cached result for this exact point, or None (counted)."""
        path = self.path_for(point_digest(config, workload, policy, scheme))
        try:
            with path.open("r", encoding="utf-8") as fh:
                result = run_result_from_dict(json.load(fh))
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (ValueError, KeyError, TypeError, OSError):
            # Corrupt or foreign-schema entry: treat as a miss, and
            # quarantine the file so subsequent lookups are plain misses
            # instead of re-parsing (and re-counting) the same bad bytes.
            self.stats.invalid += 1
            self.stats.misses += 1
            self._quarantine(path)
            return None
        self.stats.hits += 1
        return result

    def _quarantine(self, path: Path) -> None:
        """Atomically rename a corrupt entry to a ``.corrupt-*`` dotfile.

        The dotfile is invisible to :meth:`_entries` and swept like a
        writer orphan, so the next :meth:`store` repopulates the slot
        cleanly.  The name carries the pid so two processes quarantining
        the same entry cannot collide; losing the rename race (another
        process already moved or replaced the file) is fine.
        """
        aside = path.with_name(f".corrupt-{os.getpid()}-{path.name}")
        try:
            os.replace(path, aside)
        except OSError:
            return  # raced: already quarantined, re-stored, or removed
        self.stats.quarantined += 1

    def store(
        self,
        config: ExperimentConfig,
        workload: str,
        policy: str,
        scheme: bool,
        result: RunResult,
    ) -> Path:
        """Atomically persist one result; returns its path."""
        path = self.path_for(point_digest(config, workload, policy, scheme))
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = canonical_dumps(run_result_to_dict(result))
        # A concurrent cache's orphan sweep may unlink our live tempfile
        # between mkstemp and os.replace; each retry opens a fresh
        # tempfile, so losing the race N consecutive times requires N
        # independent sweeps landing inside N microsecond windows —
        # vanishingly unlikely long before the bound (the shared-root
        # hammer test showed two attempts genuinely are not enough).
        attempts = 8
        for attempt in range(attempts):
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    fh.write(payload)
                os.replace(tmp, path)
            except FileNotFoundError:
                if attempt == attempts - 1:
                    raise
                continue
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            break
        self.stats.stores += 1
        return path

    # ------------------------------------------------------------------
    def _entries(self):
        # pathlib's glob matches dotfiles, so in-flight/orphaned
        # ``.tmp-*.json`` writer files and ``.corrupt-*`` quarantines
        # must be filtered out explicitly.
        return (
            p
            for p in sorted(self.root.glob("*/*.json"))
            if not p.name.startswith(".")
        )

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def clear(self) -> int:
        """Delete every cached entry (and sweep writer orphans); returns
        how many *entries* were removed.

        Safe against concurrent writers and sweepers on the same root
        (the shared-cache shape the scheduling server creates): an entry
        another process unlinked between the listing and our ``unlink``
        is simply skipped, and only successful unlinks are counted.
        """
        self.sweep_orphans()
        removed = 0
        for entry in self._entries():
            try:
                entry.unlink()
            except OSError:
                continue  # a concurrent clear/sweep removed it first
            removed += 1
        return removed
