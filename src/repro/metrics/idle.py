"""Idle-period statistics (Figure 12(a)/(b) CDFs).

Idle periods are the maximal stretches during which a disk serves no
request (whatever low-power states it traverses meanwhile).  The paper
reports their CDF over fixed millisecond buckets; :data:`PAPER_BUCKETS_MS`
reproduces the x-axis of Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PAPER_BUCKETS_MS", "IdleCDF", "idle_cdf", "clip_periods"]

#: Figure 12's bucket edges, in milliseconds; the final bucket is open.
PAPER_BUCKETS_MS = (
    5, 10, 50, 100, 500, 1_000, 5_000, 10_000, 20_000, 30_000, 40_000, 50_000
)


@dataclass(frozen=True)
class IdleCDF:
    """Cumulative distribution of idle-period lengths."""

    buckets_ms: tuple[int, ...]
    cumulative: tuple[float, ...]  # fraction of periods ≤ each bucket edge
    count: int
    total_idle_seconds: float
    mean_seconds: float

    def fraction_at_most(self, ms: float) -> float:
        """Interpolation-free lookup: fraction of periods ≤ ``ms``."""
        result = 0.0
        for edge, frac in zip(self.buckets_ms, self.cumulative):
            if edge <= ms:
                result = frac
            else:
                break
        return result

    def rows(self) -> list[tuple[str, float]]:
        """(bucket label, cumulative fraction) rows for reports."""
        out = [
            (f"{edge}", frac)
            for edge, frac in zip(self.buckets_ms, self.cumulative)
        ]
        out.append((f"{self.buckets_ms[-1]}+", 1.0))
        return out


def clip_periods(
    periods: list[tuple[float, float]], horizon: float
) -> list[float]:
    """Clip (start, end) periods to ``[0, horizon]``; returns lengths."""
    out = []
    for start, end in periods:
        if start >= horizon:
            continue
        out.append(min(end, horizon) - start)
    return out


def idle_cdf(
    lengths_seconds: list[float],
    buckets_ms: tuple[int, ...] = PAPER_BUCKETS_MS,
) -> IdleCDF:
    """Build the Figure-12-style CDF from idle-period lengths."""
    count = len(lengths_seconds)
    total = sum(lengths_seconds)
    if count == 0:
        cumulative = tuple(0.0 for _ in buckets_ms)
        return IdleCDF(tuple(buckets_ms), cumulative, 0, 0.0, 0.0)
    ordered = sorted(lengths_seconds)
    cumulative = []
    idx = 0
    for edge_ms in buckets_ms:
        edge_s = edge_ms / 1_000.0
        while idx < count and ordered[idx] <= edge_s:
            idx += 1
        cumulative.append(idx / count)
    return IdleCDF(
        buckets_ms=tuple(buckets_ms),
        cumulative=tuple(cumulative),
        count=count,
        total_idle_seconds=total,
        mean_seconds=total / count,
    )
