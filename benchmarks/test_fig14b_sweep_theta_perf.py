"""Figure 14(b) — performance improvement of the scheme vs θ.

Paper shape: θ exists to protect performance — the scheme improves (or
at worst barely affects) execution time relative to the bare history
policy at every θ, and tight θ keeps the improvement from eroding.
"""

from repro.experiments import fig14b

from conftest import run_once, sweep_apps


def test_fig14b_sweep_theta_perf(benchmark, runner):
    apps = sweep_apps()
    values = (2, 4, 8)
    result = run_once(
        benchmark, lambda: fig14b(runner, values=values, apps=apps)
    )
    print("\n" + result.text)
    improvements = result.data
    # The scheme never makes the policy-managed run meaningfully slower.
    assert all(v > -0.03 for v in improvements.values())
    # Some θ shows a genuine improvement (prefetching hides latency).
    assert max(improvements.values()) > 0.0
