"""Loop-nest IR and the compiler front end (Phoenix/Omega substitute).

Programs are trees of affine loops over file-block I/O ops and compute
steps.  Two slack-extraction paths exist, matching the paper: the
polyhedral-style :class:`AffineDependenceAnalyzer` for affine programs and
the profiling executor :func:`trace_program` for everything.
"""

from .affine import Affine, as_affine, const, var
from .dependence import (
    AffineDependenceAnalyzer,
    compute_phases,
    solve_affine_equal,
)
from .profiling import AccessTrace, ProcessTrace, TracedIO, trace_program
from .program import Compute, FileDecl, Loop, Program, Read, Write

__all__ = [
    "Affine",
    "var",
    "const",
    "as_affine",
    "Program",
    "FileDecl",
    "Loop",
    "Read",
    "Write",
    "Compute",
    "trace_program",
    "AccessTrace",
    "ProcessTrace",
    "TracedIO",
    "AffineDependenceAnalyzer",
    "solve_affine_equal",
    "compute_phases",
]
