"""Tests for the I/O node (cache + RAID + destage)."""

import pytest

from repro.storage import IONode, RaidMap, StorageCache

from conftest import make_drive

KB = 1024


def make_node(sim, capacity_blocks=16, prefetch_depth=2, destage_delay=0.5,
              n_disks=1, raid_level=0):
    drives = [make_drive(sim) for _ in range(n_disks)]
    cache = StorageCache(capacity_blocks * 64 * KB, 64 * KB)
    raid = RaidMap(raid_level, n_disks, chunk_size=64 * KB)
    node = IONode(sim, 0, drives, cache, raid,
                  prefetch_depth=prefetch_depth, destage_delay=destage_delay)
    return node


class TestReadPath:
    def test_miss_goes_to_disk_then_hits(self, sim):
        node = make_node(sim)
        done = []
        node.read(0, 64 * KB, lambda: done.append(sim.now))
        sim.run()
        assert len(done) == 1
        assert node.drives[0].stats.reads >= 1
        # Second read of the same block: cache hit, no new disk read.
        reads_before = node.drives[0].stats.reads
        node.read(0, 64 * KB, lambda: done.append(sim.now))
        sim.run()
        assert len(done) == 2
        assert node.drives[0].stats.reads == reads_before
        assert node.stats.read_hits >= 1

    def test_hit_completes_at_same_timestamp(self, sim):
        node = make_node(sim)
        node.read(0, 64 * KB, lambda: None)
        sim.run()
        t0 = sim.now
        done = []
        node.read(0, 64 * KB, lambda: done.append(sim.now))
        sim.run()
        assert done == [t0]

    def test_readahead_caches_following_blocks(self, sim):
        node = make_node(sim, prefetch_depth=2)
        node.read(0, 64 * KB, lambda: None)
        sim.run()
        assert node.cache.contains(1)
        assert node.cache.contains(2)

    def test_readahead_zero_disables(self, sim):
        node = make_node(sim, prefetch_depth=0)
        node.read(0, 64 * KB, lambda: None)
        sim.run()
        assert not node.cache.contains(1)

    def test_multiblock_read_completes_once(self, sim):
        node = make_node(sim)
        done = []
        node.read(0, 256 * KB, lambda: done.append(True))
        sim.run()
        assert done == [True]

    def test_byte_stats(self, sim):
        node = make_node(sim)
        node.read(0, 100 * KB, lambda: None)
        sim.run()
        assert node.stats.bytes_read == 100 * KB


class TestWritePath:
    def test_write_completes_without_disk_wait(self, sim):
        node = make_node(sim, destage_delay=5.0)
        done = []
        node.write(0, 64 * KB, lambda: done.append(sim.now))
        sim.run(until=1.0)
        assert done and done[0] < 0.01
        assert node.drives[0].stats.writes == 0  # not destaged yet

    def test_destage_flushes_after_delay(self, sim):
        node = make_node(sim, destage_delay=0.5)
        node.write(0, 64 * KB, lambda: None)
        sim.run()
        assert node.drives[0].stats.writes >= 1
        assert node.cache.dirty_blocks() == []

    def test_destage_batches_multiple_writes(self, sim):
        node = make_node(sim, destage_delay=0.5)
        for i in range(4):
            node.write(i * 64 * KB, 64 * KB, lambda: None)
        sim.run()
        assert node.stats.destages == 1

    def test_dirty_eviction_forces_flush(self, sim):
        node = make_node(sim, capacity_blocks=2, destage_delay=100.0)
        for i in range(4):
            node.write(i * 64 * KB, 64 * KB, lambda: None)
        sim.run(until=1.0)
        # Evicted dirty blocks reached the disk even before the destage.
        assert node.drives[0].stats.writes >= 2

    def test_flush_all_drains_dirty(self, sim):
        node = make_node(sim, destage_delay=1000.0)
        node.write(0, 128 * KB, lambda: None)
        sim.run(until=1.0)
        node.flush_all()
        sim.run()
        assert node.cache.dirty_blocks() == []
        assert node.drives[0].stats.writes >= 1


class TestRaidIntegration:
    def test_raid10_write_mirrors(self, sim):
        node = make_node(sim, n_disks=2, raid_level=10, destage_delay=0.1)
        node.write(0, 64 * KB, lambda: None)
        sim.run()
        assert node.drives[0].stats.writes == 1
        assert node.drives[1].stats.writes == 1

    def test_raid5_write_updates_parity(self, sim):
        node = make_node(sim, n_disks=3, raid_level=5, destage_delay=0.1)
        node.write(0, 64 * KB, lambda: None)
        sim.run()
        total_writes = sum(d.stats.writes for d in node.drives)
        assert total_writes == 2  # data + parity

    def test_mismatched_raid_disks_rejected(self, sim):
        with pytest.raises(ValueError):
            make_node(sim, n_disks=2, raid_level=5)

    def test_node_needs_a_drive(self, sim):
        cache = StorageCache(1024, 64)
        with pytest.raises(ValueError):
            IONode(sim, 0, [], cache, RaidMap(0, 1))

    def test_energy_sums_drives(self, sim):
        node = make_node(sim, n_disks=2, raid_level=10)
        node.write(0, 64 * KB, lambda: None)
        sim.run()
        node.finalize()
        assert node.energy() == pytest.approx(
            sum(d.energy() for d in node.drives)
        )
