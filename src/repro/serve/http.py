"""Minimal HTTP/1.1 framing over asyncio streams.

The scheduling service speaks JSON-over-HTTP with zero dependencies, so
this module hand-rolls exactly the slice of HTTP/1.1 the server and the
load generator need: request parsing (request line, headers,
``Content-Length`` bodies), keep-alive connections, fixed-length JSON
responses, and ``Transfer-Encoding: chunked`` for the job event stream.
It is *not* a general HTTP implementation — no continuation lines, no
trailers, no request chunking — and malformed input maps to a clean
:class:`HttpError` (→ 400) instead of best-effort recovery.

Shared by both sides: :class:`HttpClient` drives the same framing from
the client end (one persistent connection per load-generator client),
so the harness exercises the exact wire format real clients would.

The client is *resilient by default*: transport failures (connection
refused/reset, a response cut off mid-body — surfaced distinctly as
:class:`TruncatedResponse`) are retried with bounded, seeded-jitter
exponential backoff, and a per-endpoint :class:`CircuitBreaker` stops
hammering an endpoint that keeps failing (open after N consecutive
failures, one half-open probe per cooldown).  Retrying a ``POST
/v1/submit`` is safe because the server deduplicates by point digest —
an already-admitted submission coalesces instead of double-running.
HTTP-level backpressure (``429`` + ``Retry-After``) is *not* retried
here: it is returned to the caller, which owns the pacing policy.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Optional
from urllib.parse import parse_qs, urlsplit

__all__ = [
    "MAX_BODY_BYTES",
    "HttpError",
    "TruncatedResponse",
    "CircuitOpen",
    "CircuitBreaker",
    "HttpRequest",
    "HttpResponse",
    "read_request",
    "write_response",
    "json_response",
    "error_response",
    "encode_chunk",
    "read_chunked_body",
    "HttpClient",
]

#: Request bodies above this are refused (413) before buffering.
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Header-section cap: a request line or header longer than this is an
#: attack or a bug, not a submission.
_MAX_LINE = 16 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request that cannot be parsed or must be refused early."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class TruncatedResponse(ConnectionError):
    """The peer closed the connection mid-body.

    Distinct from a clean EOF between responses: the headers promised
    more bytes (``Content-Length`` short, or a chunked stream that never
    reached its terminal chunk) than arrived.  Subclasses
    :class:`ConnectionError` so the client's retry machinery engages —
    a truncated response is a transport failure, never data.
    """


class CircuitOpen(ConnectionError):
    """The endpoint's circuit breaker is open; the request was not sent."""


@dataclass
class HttpRequest:
    """One parsed request: method, split target, headers, raw body."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]  # keys lower-cased
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> Any:
        """The body decoded as JSON (``{}`` when empty); 400 on garbage."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")


@dataclass
class HttpResponse:
    """One response ready to serialize (body already encoded)."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)
    close: bool = False


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return b""  # clean EOF between requests
        raise HttpError(400, "truncated request") from None
    except asyncio.LimitOverrunError:
        raise HttpError(400, "header line too long") from None
    if len(line) > _MAX_LINE:
        raise HttpError(400, "header line too long")
    return line


async def read_request(
    reader: asyncio.StreamReader,
) -> Optional[HttpRequest]:
    """Parse one request off ``reader``; ``None`` on clean EOF.

    Raises :class:`HttpError` on malformed framing (the handler answers
    it and closes) — never returns a half-parsed request.
    """
    request_line = await _read_line(reader)
    if not request_line:
        return None
    parts = request_line.decode("latin-1").rstrip("\r\n").split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, "malformed request line")
    method, target, _version = parts
    split = urlsplit(target)
    query = {
        key: values[-1]
        for key, values in parse_qs(
            split.query, keep_blank_values=True
        ).items()
    }

    headers: dict[str, str] = {}
    while True:
        line = await _read_line(reader)
        if not line:
            raise HttpError(400, "truncated headers")
        if line == b"\r\n":
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header {name.strip()!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "transfer-encoding" in headers:
        raise HttpError(400, "chunked request bodies are not supported")
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpError(400, f"bad Content-Length {length_text!r}")
    if length < 0:
        raise HttpError(400, f"bad Content-Length {length}")
    if length > MAX_BODY_BYTES:
        raise HttpError(413, f"body of {length} bytes exceeds the cap")
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "truncated body") from None
    return HttpRequest(
        method=method.upper(),
        path=split.path or "/",
        query=query,
        headers=headers,
        body=body,
    )


def _head(response: HttpResponse, chunked: bool = False) -> bytes:
    reason = _REASONS.get(response.status, "Unknown")
    lines = [f"HTTP/1.1 {response.status} {reason}"]
    lines.append(f"Content-Type: {response.content_type}")
    if chunked:
        lines.append("Transfer-Encoding: chunked")
    else:
        lines.append(f"Content-Length: {len(response.body)}")
    for name, value in response.headers.items():
        lines.append(f"{name}: {value}")
    lines.append(
        "Connection: close" if response.close else "Connection: keep-alive"
    )
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def write_response(
    writer: asyncio.StreamWriter, response: HttpResponse
) -> None:
    writer.write(_head(response) + response.body)
    await writer.drain()


def json_response(
    status: int, doc: Any, headers: Optional[dict[str, str]] = None
) -> HttpResponse:
    body = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
    return HttpResponse(status=status, body=body, headers=dict(headers or {}))


def error_response(
    status: int, message: str, headers: Optional[dict[str, str]] = None
) -> HttpResponse:
    return json_response(status, {"error": message}, headers=headers)


def encode_chunk(payload: bytes) -> bytes:
    """One ``Transfer-Encoding: chunked`` frame (empty = terminator)."""
    return f"{len(payload):x}\r\n".encode("latin-1") + payload + b"\r\n"


async def read_chunked_body(reader: asyncio.StreamReader) -> bytes:
    """A whole ``Transfer-Encoding: chunked`` body, terminator included.

    EOF anywhere before the terminal empty chunk is a
    :class:`TruncatedResponse` — a chunked stream that just stops is a
    dead peer, not a short body.  Malformed chunk framing (non-hex size,
    missing CRLF) is a :class:`ConnectionError`: the connection state is
    unrecoverable either way.
    """
    chunks: list[bytes] = []
    total = 0
    while True:
        try:
            size_line = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise TruncatedResponse(
                "chunked body ended before its terminal chunk"
            ) from None
        try:
            size = int(size_line.split(b";", 1)[0].strip(), 16)
        except ValueError:
            raise ConnectionError(
                f"malformed chunk size line {size_line!r}"
            ) from None
        if size < 0:
            raise ConnectionError(f"negative chunk size {size}")
        total += size
        if total > MAX_BODY_BYTES:
            raise ConnectionError(
                f"chunked body of {total}+ bytes exceeds the cap"
            )
        try:
            if size:
                chunks.append(await reader.readexactly(size))
            tail = await reader.readexactly(2)
        except asyncio.IncompleteReadError:
            raise TruncatedResponse(
                f"chunk of {size} bytes cut short"
            ) from None
        if tail != b"\r\n":
            raise ConnectionError(f"chunk not CRLF-terminated: {tail!r}")
        if size == 0:
            return b"".join(chunks)


# ----------------------------------------------------------------------
# Client side
# ----------------------------------------------------------------------
def _backoff_delay(
    key: str, attempt: int, base: float = 0.05, cap: float = 1.0
) -> float:
    """Jittered exponential backoff before retry ``attempt + 1``.

    The jitter is seeded from ``(key, attempt)`` — same construction as
    the supervisor's :func:`~repro.exec.supervise.backoff_delay` — so a
    given client's retry schedule replays exactly while distinct
    endpoints still decorrelate.
    """
    span = min(cap, base * (2.0**attempt))
    digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
    fraction = int.from_bytes(digest[:8], "big") / 2**64
    return span * (0.5 + 0.5 * fraction)


def _endpoint_key(method: str, target: str) -> str:
    """The circuit-breaker key for a request: method + path *family*.

    Job and result fetches collapse onto one key per family (the job id
    / digest segment is ``*``-ed out) — breakers track endpoint health,
    and every job poll exercises the same server path.
    """
    path = target.split("?", 1)[0]
    parts = path.split("/")
    if len(parts) > 3 and parts[1] == "v1" and parts[2] in ("jobs", "results"):
        suffix = "/events" if parts[-1] == "events" and len(parts) > 4 else ""
        path = f"/v1/{parts[2]}/*{suffix}"
    return f"{method} {path}"


class CircuitBreaker:
    """Consecutive-failure circuit breaker for one endpoint family.

    Closed until ``threshold`` consecutive transport failures, then open
    for ``cooldown`` seconds, then half-open: exactly one probe request
    is let through per cooldown window — success closes the breaker,
    failure re-opens it for a fresh cooldown.
    """

    __slots__ = ("threshold", "cooldown", "failures", "_opened_at", "_probing")

    def __init__(self, threshold: int = 8, cooldown: float = 0.5):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1: {threshold}")
        self.threshold = threshold
        self.cooldown = cooldown
        self.failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        elapsed = time.monotonic() - self._opened_at  # det: breaker cooldown clock, not simulated state
        return "half_open" if elapsed >= self.cooldown else "open"

    def allow(self) -> bool:
        """May a request go out now?  (Claims the half-open probe slot.)"""
        if self._opened_at is None:
            return True
        if self.state == "open" or self._probing:
            return False
        self._probing = True
        return True

    def record_success(self) -> None:
        self.failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self.failures += 1
        self._probing = False
        if self.failures >= self.threshold:
            self._opened_at = time.monotonic()  # det: breaker cooldown clock, not simulated state


class HttpClient:
    """One persistent keep-alive connection to the scheduling server.

    Deliberately tiny: JSON in, JSON out, no redirects, no TLS, no
    pipelining (one request in flight per connection — the load
    generator gets concurrency from many clients, not deep pipelines).

    Transport failures retry up to ``retries`` times with seeded-jitter
    backoff behind a per-endpoint-family :class:`CircuitBreaker`;
    ``transport_retries`` counts them so the load harness can report
    exactly how bumpy the run was.  Server digest-idempotency makes the
    retried submits safe (see module docstring).
    """

    def __init__(
        self,
        host: str,
        port: int,
        retries: int = 3,
        breaker_threshold: int = 8,
        breaker_cooldown: float = 0.5,
    ):
        self.host = host
        self.port = port
        self.retries = retries
        self.transport_retries = 0
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown = breaker_cooldown
        self._breakers: dict[str, CircuitBreaker] = {}
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    def breaker(self, method: str, target: str) -> CircuitBreaker:
        """The breaker guarding ``method target``'s endpoint family."""
        key = _endpoint_key(method, target)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = self._breakers[key] = CircuitBreaker(
                self._breaker_threshold, self._breaker_cooldown
            )
        return breaker

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except OSError:
                pass
            self._reader = self._writer = None

    async def request(
        self,
        method: str,
        target: str,
        doc: Any = None,
        headers: Optional[dict[str, str]] = None,
    ) -> tuple[int, dict[str, str], Any]:
        """One logical request; returns ``(status, headers, parsed body)``.

        Transport failures — connect refused, connection reset,
        :class:`TruncatedResponse`, malformed framing — are retried up
        to ``self.retries`` times with jittered backoff, reconnecting
        each time.  A breaker held open by earlier failures raises
        :class:`CircuitOpen` without touching the wire.  HTTP status
        codes (429 included) are results, not failures: they return.
        """
        breaker = self.breaker(method, target)
        last: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            if not breaker.allow():
                raise CircuitOpen(
                    f"circuit open for {_endpoint_key(method, target)} "
                    f"after {breaker.failures} consecutive failures"
                )
            try:
                if self._writer is None:
                    await self._connect()
                result = await self._round_trip(method, target, doc, headers)
            except (ConnectionError, asyncio.IncompleteReadError, OSError) as exc:
                await self.close()
                breaker.record_failure()
                last = exc
                if attempt < self.retries:
                    self.transport_retries += 1
                    await asyncio.sleep(
                        _backoff_delay(
                            f"{self.host}:{self.port}:{method} {target}",
                            attempt,
                        )
                    )
                continue
            breaker.record_success()
            return result
        assert last is not None
        raise last

    async def _round_trip(
        self,
        method: str,
        target: str,
        doc: Any,
        headers: Optional[dict[str, str]],
    ) -> tuple[int, dict[str, str], Any]:
        assert self._reader is not None and self._writer is not None
        body = b""
        if doc is not None:
            body = json.dumps(doc, sort_keys=True).encode("utf-8")
        lines = [
            f"{method} {target} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            f"Content-Length: {len(body)}",
            "Content-Type: application/json",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        self._writer.write(
            ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
        )
        await self._writer.drain()

        status_line = await self._reader.readuntil(b"\r\n")
        pieces = status_line.decode("latin-1").split(" ", 2)
        if len(pieces) < 2 or not pieces[0].startswith("HTTP/1."):
            raise ConnectionError(f"malformed status line {status_line!r}")
        status = int(pieces[1])
        response_headers: dict[str, str] = {}
        while True:
            line = await self._reader.readuntil(b"\r\n")
            if line == b"\r\n":
                break
            name, _sep, value = line.decode("latin-1").partition(":")
            response_headers[name.strip().lower()] = value.strip()
        encoding = response_headers.get("transfer-encoding", "").lower()
        if "chunked" in encoding:
            payload = await read_chunked_body(self._reader)
        else:
            length = int(response_headers.get("content-length", "0"))
            if length:
                try:
                    payload = await self._reader.readexactly(length)
                except asyncio.IncompleteReadError as exc:
                    # NOT a clean EOF: the headers promised `length`
                    # bytes.  Distinguishing this is what arms retries
                    # against mid-body connection drops.
                    raise TruncatedResponse(
                        f"response body cut short: got {len(exc.partial)} "
                        f"of {length} bytes"
                    ) from None
            else:
                payload = b""
        if response_headers.get("connection", "").lower() == "close":
            await self.close()
        parsed: Any = None
        if payload:
            try:
                parsed = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                parsed = payload  # surface raw bytes; caller decides
        return status, response_headers, parsed
