"""Table III — per-application execution time and disk energy under the
Default Scheme (no power management, no scheduling)."""

from repro.experiments import table3

from conftest import run_once


def test_table3_defaults(benchmark, runner):
    result = run_once(benchmark, lambda: table3(runner))
    print("\n" + result.text)
    data = result.data
    # Every app simulated; wupwise is the longest run and hf is among the
    # longer ones, as in the paper's Table III.
    assert all(v["exec_minutes"] > 0 for v in data.values())
    # wupwise is among the longest runs (the paper's 39.8 min champion);
    # the exact ordering of the top two depends on the bench scale because
    # the compute stretches do not shrink with the sweep lengths.
    ordered = sorted(data, key=lambda a: data[a]["exec_minutes"], reverse=True)
    assert "wupwise" in ordered[:2]
    assert data["madbench2"]["exec_minutes"] == min(
        v["exec_minutes"] for v in data.values()
    )
    # Energy tracks execution time to first order under pure idling.
    assert data["wupwise"]["energy_joules"] > data["madbench2"]["energy_joules"]
