"""Tests for the experiment harness (config, runner, figure drivers).

Simulation-heavy tests run at a tiny workload scale; they verify the
plumbing and the qualitative direction of the headline result, not the
figures themselves (the benchmarks regenerate those).
"""

import pytest

from repro.experiments import (
    APPS,
    ExperimentConfig,
    POLICIES,
    Runner,
    default_config,
    fig12a,
    fig12c,
    make_runner,
    table2_rows,
    table3,
)

TINY = ExperimentConfig(workload_scale=0.05)


@pytest.fixture(scope="module")
def runner():
    return Runner(TINY)


class TestConfig:
    def test_table2_defaults(self):
        cfg = ExperimentConfig()
        assert cfg.n_clients == 32
        assert cfg.n_ionodes == 8
        assert cfg.stripe_size == 64 * 1024
        assert cfg.cache_bytes == 64 * 1024 * 1024
        assert cfg.delta == 20
        assert cfg.theta == 4

    def test_disk_spec_selection(self):
        cfg = ExperimentConfig()
        assert not cfg.disk_spec(multispeed=False).is_multispeed
        assert cfg.disk_spec(multispeed=True).is_multispeed

    def test_scaled_copy(self):
        cfg = ExperimentConfig()
        other = cfg.scaled(delta=40)
        assert other.delta == 40
        assert cfg.delta == 20

    def test_config_hashable_for_memoization(self):
        assert hash(ExperimentConfig()) == hash(ExperimentConfig())

    def test_to_key_covers_every_field(self):
        """Regression: the canonical key must enumerate every dataclass
        field by name, so no future knob can silently fall out of the
        memo/cache identity."""
        from dataclasses import fields

        key = ExperimentConfig().to_key()
        assert [name for name, _ in key] == [
            f.name for f in fields(ExperimentConfig)
        ]

    def test_to_key_equal_iff_configs_equal(self):
        a, b = ExperimentConfig(), ExperimentConfig()
        assert a.to_key() == b.to_key()
        assert a.scaled(delta=40).to_key() != a.to_key()
        assert a.scaled(workload_scale=0.5).to_key() != a.to_key()

    def test_to_key_is_hashable_and_order_stable(self):
        cfg = ExperimentConfig()
        assert hash(cfg.to_key()) == hash(cfg.to_key())
        assert cfg.to_key() == cfg.scaled().to_key()

    def test_default_config_env_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert default_config().workload_scale == 0.5

    def test_session_config_projection(self):
        sc = ExperimentConfig(buffer_capacity_blocks=99).session_config()
        assert sc.buffer_capacity_blocks == 99
        assert sc.n_ionodes == 8


class TestRunnerCaching:
    def test_trace_cached(self, runner):
        assert runner.trace("sar") is runner.trace("sar")

    def test_compilation_cached(self, runner):
        assert runner.compilation("sar") is runner.compilation("sar")

    def test_run_cached(self, runner):
        first = runner.run("sar", "default", False)
        second = runner.run("sar", "default", False)
        assert first is second

    def test_different_policies_not_conflated(self, runner):
        a = runner.run("sar", "default", False)
        b = runner.run("sar", "simple", False)
        assert a is not b

    def test_config_override_not_conflated(self, runner):
        base = runner.run("sar", "default", False)
        other = runner.run(
            "sar", "default", False, config=TINY.scaled(n_ionodes=4)
        )
        assert other is not base
        assert len(other.idle_periods) != len(base.idle_periods) or (
            other.energy_joules != base.energy_joules
        )

    def test_unknown_policy_rejected(self, runner):
        with pytest.raises(ValueError):
            runner.run("sar", "turbo", False)

    def test_run_memo_keyed_on_canonical_key(self, runner):
        """Regression for the old `(workload, policy, scheme, cfg)` key:
        an equal-but-distinct config object must hit the same memo entry."""
        twin = ExperimentConfig(workload_scale=0.05)
        assert twin is not TINY and twin == TINY
        first = runner.run("sar", "default", False, config=TINY)
        assert runner.run("sar", "default", False, config=twin) is first


class TestRunResults:
    def test_baseline_fields(self, runner):
        base = runner.baseline("sar")
        assert base.execution_time > 0
        assert base.energy_joules > 0
        assert base.idle_cdf.count > 0
        assert base.energy_breakdown["total"] == pytest.approx(
            base.energy_joules
        )

    def test_scheme_run_prefetches(self, runner):
        run = runner.run("sar", "default", True)
        assert run.prefetches > 0
        assert run.buffer_hits == run.prefetches
        assert run.accesses > 0

    def test_normalized_energy_of_default_is_one(self, runner):
        assert runner.normalized_energy("sar", "default", False) == 1.0

    def test_degradation_of_default_is_zero(self, runner):
        assert runner.degradation("sar", "default", False) == 0.0

    def test_headline_direction_multispeed(self, runner):
        """The core claim at tiny scale: the history policy saves energy,
        and the scheme does not make it worse."""
        without = runner.normalized_energy("sar", "history", False)
        with_scheme = runner.normalized_energy("sar", "history", True)
        assert without < 1.0
        assert with_scheme <= without + 0.05


class TestFigureDrivers:
    def test_table2_text(self):
        result = table2_rows(TINY)
        assert "Number of I/O nodes" in result.text
        assert ("delta", 20) in result.data

    def test_table3_covers_all_apps(self, runner):
        result = table3(runner)
        assert set(result.data) == set(APPS)
        for app in APPS:
            assert result.data[app]["exec_minutes"] > 0

    def test_fig12a_structure(self, runner):
        result = fig12a(runner)
        assert set(result.data) == set(APPS)
        for app in APPS:
            fractions = list(result.data[app].values())
            assert fractions == sorted(fractions)

    def test_fig12c_normalized_energies(self, runner):
        result = fig12c(runner)
        for app in APPS:
            for policy in POLICIES:
                assert 0.0 < result.data[app][policy] <= 1.6

    def test_make_runner_uses_default_config(self):
        assert make_runner().config.n_clients == 32
