"""Intra-I/O-node RAID layouts (Table II: "RAID Level 5,10").

An I/O node further stripes its local byte stream across its attached
disks.  :class:`RaidMap` translates one node-local extent into the
per-disk requests that layout implies:

* **RAID-0**  — plain striping, no redundancy.
* **RAID-5**  — block-rotating parity; a write touches the data disk and
  the stripe's parity disk (small-write read-modify-write is modelled as
  the two extra pre-reads).
* **RAID-10** — mirrored pairs; reads alternate between mirrors as a
  *pure function of the extent's address* (stripe row parity), writes
  hit both.

Translation is stateless: the same ``(offset, size, is_write, dead)``
always produces the same operations regardless of call history.  That
purity is what lets faulted runs replay bit-for-bit and lets concurrent
sweeps share nothing.

Degraded mode: passing the set of ``dead`` disks makes the translation
route around them — RAID-5 reads of a dead data disk become a parity
reconstruction (read every surviving disk of the stripe), RAID-10 reads
fail over to the surviving mirror, writes skip dead members (RAID-5
recomputes parity from the survivors).  Operations with no surviving
redundancy are *lost*: counted (``raid_lost_ops``) and dropped, so the
simulation models degraded timing rather than raising.

The paper's default experiments treat each I/O node as one logical disk
("we use the terms I/O node and disk interchangeably"), which is RAID-0
over a single drive; the richer layouts are exercised by the RAID example
and ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Literal, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from collections.abc import Set

    from ..faults.injector import FaultCounters

__all__ = ["DiskOp", "RaidMap"]

RaidLevel = Literal[0, 5, 10]

_NO_DEAD: frozenset = frozenset()


@dataclass(frozen=True)
class DiskOp:
    """One physical-disk operation produced by the RAID translation."""

    disk: int
    lba: int
    nbytes: int
    is_write: bool


class RaidMap:
    """Extent → per-disk operation translation for one I/O node."""

    def __init__(self, level: RaidLevel, n_disks: int, chunk_size: int = 64 * 1024):
        if level not in (0, 5, 10):
            raise ValueError(f"unsupported RAID level: {level}")
        if n_disks < 1:
            raise ValueError(f"n_disks must be >= 1: {n_disks}")
        if level == 5 and n_disks < 3:
            raise ValueError("RAID-5 requires at least 3 disks")
        if level == 10 and n_disks % 2 != 0:
            raise ValueError("RAID-10 requires an even number of disks")
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive: {chunk_size}")
        self.level = level
        self.n_disks = n_disks
        self.chunk_size = chunk_size

    # ------------------------------------------------------------------
    @property
    def data_disks(self) -> int:
        """Disks worth of usable capacity per stripe row."""
        if self.level == 5:
            return self.n_disks - 1
        if self.level == 10:
            return self.n_disks // 2
        return self.n_disks

    # ------------------------------------------------------------------
    # Worst-case amplification bounds (shared with the static analyzer)
    # ------------------------------------------------------------------
    # Derived from the same translation rules _raid0/_raid5/_raid10
    # implement below; the analyzer consumes these instead of hardcoding
    # RAID arithmetic, and a test pins them against the actual
    # translation so the two can never drift.

    def write_op_amplification(self) -> int:
        """Max physical ops one fault-free chunk-sized write produces."""
        if self.level == 5:
            return 4  # data write + parity write + two RMW pre-reads
        if self.level == 10:
            return 2  # both mirrors
        return 1

    def write_byte_amplification(self) -> int:
        """Max physical bytes moved per logical byte written, fault-free."""
        return self.write_op_amplification()

    def read_op_amplification(self, degraded: bool = False) -> int:
        """Max physical ops one fault-free (or degraded) chunk read costs."""
        if degraded and self.level == 5:
            return self.n_disks - 1  # parity reconstruction
        return 1

    def _chunks(self, offset: int, size: int):
        """Yield (chunk_index, within, nbytes) covering the extent."""
        cursor = offset
        remaining = size
        while remaining > 0:
            chunk_index = cursor // self.chunk_size
            within = cursor % self.chunk_size
            nbytes = min(self.chunk_size - within, remaining)
            yield chunk_index, within, nbytes
            cursor += nbytes
            remaining -= nbytes

    def map(
        self,
        offset: int,
        size: int,
        is_write: bool,
        dead: Optional["Set[int]"] = None,
        counters: Optional["FaultCounters"] = None,
    ) -> list[DiskOp]:
        """Translate a node-local extent into physical disk operations.

        ``dead`` is the set of failed disk indices to route around (see
        the module docstring for the degraded-mode semantics); ``counters``
        receives the degraded-path tallies when provided.
        """
        if offset < 0 or size < 0:
            raise ValueError(f"bad extent: offset={offset}, size={size}")
        if dead is None:
            dead = _NO_DEAD
        ops: list[DiskOp] = []
        for chunk_index, within, nbytes in self._chunks(offset, size):
            if self.level == 0:
                ops.extend(
                    self._raid0(chunk_index, within, nbytes, is_write,
                                dead, counters)
                )
            elif self.level == 5:
                ops.extend(
                    self._raid5(chunk_index, within, nbytes, is_write,
                                dead, counters)
                )
            else:
                ops.extend(
                    self._raid10(chunk_index, within, nbytes, is_write,
                                 dead, counters)
                )
        return ops

    # ------------------------------------------------------------------
    @staticmethod
    def _lost(counters: Optional["FaultCounters"]) -> list[DiskOp]:
        if counters is not None:
            counters.raid_lost_ops += 1
        return []

    def _raid0(self, chunk_index, within, nbytes, is_write, dead, counters):
        disk = chunk_index % self.n_disks
        row = chunk_index // self.n_disks
        lba = row * self.chunk_size + within
        if disk in dead:
            # No redundancy at RAID-0: the op has nowhere to go.
            return self._lost(counters)
        return [DiskOp(disk, lba, nbytes, is_write)]

    def _raid5(self, chunk_index, within, nbytes, is_write, dead, counters):
        row = chunk_index // self.data_disks
        position = chunk_index % self.data_disks
        parity_disk = (self.n_disks - 1) - (row % self.n_disks)
        # Data disks are the non-parity disks in row order.
        data_disks = [d for d in range(self.n_disks) if d != parity_disk]
        disk = data_disks[position]
        lba = row * self.chunk_size + within

        if not is_write:
            if disk not in dead:
                return [DiskOp(disk, lba, nbytes, False)]
            # Parity reconstruction: XOR of every surviving disk in the
            # stripe (the other data chunks plus parity).
            survivors = [d for d in range(self.n_disks)
                         if d != disk and d not in dead]
            if counters is not None:
                counters.raid_degraded_reads += 1
            if len(survivors) < self.n_disks - 1:
                # A second failure in the stripe: unrecoverable.
                return self._lost(counters)
            if counters is not None:
                counters.raid_reconstructed += 1
            return [DiskOp(d, lba, nbytes, False) for d in survivors]

        if disk in dead and parity_disk in dead:
            return self._lost(counters)
        if disk in dead:
            # Write lands only as parity: new parity = XOR of the new
            # data with every surviving data chunk, so read them all.
            if counters is not None:
                counters.raid_degraded_writes += 1
            ops = [
                DiskOp(d, lba, nbytes, False)
                for d in data_disks
                if d != disk and d not in dead
            ]
            ops.append(DiskOp(parity_disk, lba, nbytes, True))
            return ops
        if parity_disk in dead:
            # Parity member gone: plain data write, no RMW possible.
            if counters is not None:
                counters.raid_degraded_writes += 1
            return [DiskOp(disk, lba, nbytes, True)]
        # Small-write RMW: pre-read old data + old parity, write parity.
        return [
            DiskOp(disk, lba, nbytes, True),
            DiskOp(disk, lba, nbytes, False),
            DiskOp(parity_disk, lba, nbytes, False),
            DiskOp(parity_disk, lba, nbytes, True),
        ]

    def _raid10(self, chunk_index, within, nbytes, is_write, dead, counters):
        pair = chunk_index % self.data_disks
        row = chunk_index // self.data_disks
        primary = pair * 2
        mirror = primary + 1
        lba = row * self.chunk_size + within
        if is_write:
            members = [d for d in (primary, mirror) if d not in dead]
            if not members:
                return self._lost(counters)
            if len(members) < 2 and counters is not None:
                counters.raid_degraded_writes += 1
            return [DiskOp(d, lba, nbytes, True) for d in members]
        # Reads alternate between the mirrors as a pure function of the
        # extent's address (stripe row + pair parity), so translation is
        # history-free and replays identically.
        chosen = primary + ((row + pair) & 1)
        if chosen in dead:
            other = mirror if chosen == primary else primary
            if other in dead:
                return self._lost(counters)
            if counters is not None:
                counters.raid_failed_over += 1
            chosen = other
        return [DiskOp(chosen, lba, nbytes, False)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RaidMap(level={self.level}, disks={self.n_disks})"
