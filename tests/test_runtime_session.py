"""Integration tests of the runtime layer: clients, scheduler threads,
global buffer and session driver on small programs."""

from repro.core import CompilerOptions, SlackOptions, compile_schedule
from repro.ir import (
    Compute,
    FileDecl,
    Loop,
    Program,
    Read,
    Write,
    trace_program,
    var,
)
from repro.power import NoPowerManagement, make_policy
from repro.runtime import Session, SessionConfig
from repro.storage import StripedFile, StripeMap

from conftest import fast_spec

KB = 1024


def build_program(n_processes=4, phases=6, stretch_cost=8.0):
    files = {
        "in": FileDecl("in", n_processes * phases, 128 * KB),
        "mid": FileDecl("mid", n_processes * phases, 128 * KB),
    }
    p, i = var("p"), var("i")
    body = [
        Loop("i", 0, phases - 1, body=[
            Read("in", p * phases + i),
            Compute(0.2), Compute(0.2),
            Write("mid", p * phases + i),
            Compute(0.2),
        ]),
        # A producer->consumer tail: read back own mid blocks.
        Loop("j", 0, phases - 1, body=[
            Read("mid", p * phases + var("j")),
            Compute(stretch_cost),
        ]),
    ]
    return Program("session-test", n_processes, files, body)


def make_session(with_scheme: bool, program=None, config=None):
    program = program or build_program()
    trace = trace_program(program)
    cfg = config or SessionConfig(n_ionodes=4, stripe_size=64 * KB)
    compiled = None
    if with_scheme:
        smap = StripeMap(cfg.stripe_size, cfg.n_ionodes)
        files = {
            name: StripedFile(name, decl.size_bytes)
            for name, decl in program.files.items()
        }
        compiled = compile_schedule(
            program, smap, files,
            CompilerOptions(delta=5, theta=4, slack=SlackOptions(max_slack=30)),
        )
    return Session(
        trace,
        fast_spec(),
        lambda: NoPowerManagement(),
        cfg,
        compile_result=compiled,
    )


class TestWithoutScheme:
    def test_all_clients_finish(self):
        session = make_session(False)
        result = session.run()
        assert all(t >= 0 for t in result.client_finish_times)
        assert result.execution_time == max(result.client_finish_times)

    def test_execution_time_at_least_compute(self):
        session = make_session(False)
        compute = session.trace.processes[0].total_compute
        result = session.run()
        assert result.execution_time >= compute

    def test_all_reads_synchronous(self):
        session = make_session(False)
        result = session.run()
        for client in result.clients:
            assert client.stats.reads_from_buffer == 0
            assert client.stats.reads_synchronous == 12  # 6 + 6 phases

    def test_writes_reach_the_nodes(self):
        session = make_session(False)
        result = session.run()
        total_written = sum(n.stats.bytes_written for n in result.pfs.nodes)
        assert total_written == 4 * 6 * 128 * KB


class TestWithScheme:
    def test_prefetches_issued_and_consumed(self):
        session = make_session(True)
        result = session.run()
        assert result.buffer is not None
        assert result.buffer.total_prefetches > 0
        # Every prefetch the threads issued was eventually consumed.
        assert result.buffer.hits == result.buffer.total_prefetches
        assert result.buffer.used_blocks == 0

    def test_buffer_reads_replace_synchronous(self):
        without = make_session(False).run()
        with_scheme = make_session(True).run()
        sync_without = sum(c.stats.reads_synchronous for c in without.clients)
        sync_with = sum(c.stats.reads_synchronous for c in with_scheme.clients)
        buffered = sum(
            c.stats.reads_from_buffer + c.stats.reads_waited_on_prefetch
            for c in with_scheme.clients
        )
        assert sync_with + buffered == sync_without
        assert buffered > 0

    def test_scheme_does_not_slow_execution_much(self):
        without = make_session(False).run()
        with_scheme = make_session(True).run()
        assert with_scheme.execution_time <= without.execution_time * 1.05

    def test_producer_consumer_never_prefetched_before_write(self):
        """Correctness invariant (§III): a prefetch of an inter-iteration
        produced block happens only after its producer's local time passed
        the write slot — hence no prefetch completes before the producing
        write was issued."""
        program = build_program()
        trace = trace_program(program)
        cfg = SessionConfig(n_ionodes=4, stripe_size=64 * KB)
        smap = StripeMap(cfg.stripe_size, cfg.n_ionodes)
        files = {
            name: StripedFile(name, decl.size_bytes)
            for name, decl in program.files.items()
        }
        compiled = compile_schedule(
            program, smap, files,
            CompilerOptions(delta=5, theta=4, slack=SlackOptions(max_slack=30)),
        )
        session = Session(trace, fast_spec(), lambda: NoPowerManagement(),
                          cfg, compile_result=compiled)

        write_times: dict[tuple, float] = {}
        read_times: dict[tuple, float] = {}
        mpi = session.mpi_io
        orig_write, orig_read = mpi.write, mpi.read

        def write_logged(name, block, blocks=1):
            for b in range(block, block + blocks):
                write_times[(name, b)] = session.sim.now
            return orig_write(name, block, blocks)

        def read_logged(name, block, blocks=1):
            for b in range(block, block + blocks):
                read_times.setdefault((name, b), session.sim.now)
            return orig_read(name, block, blocks)

        mpi.write = write_logged
        mpi.read = read_logged
        session.run()
        for key, t_read in read_times.items():
            if key in write_times and key[0] == "mid":
                assert t_read >= write_times[key]

    def test_min_lead_skips_non_early_accesses(self):
        program = build_program()
        trace = trace_program(program)
        cfg = SessionConfig(
            n_ionodes=4, stripe_size=64 * KB, scheduler_min_lead=10**6
        )
        smap = StripeMap(cfg.stripe_size, cfg.n_ionodes)
        files = {
            name: StripedFile(name, decl.size_bytes)
            for name, decl in program.files.items()
        }
        compiled = compile_schedule(program, smap, files, CompilerOptions())
        session = Session(trace, fast_spec(), lambda: NoPowerManagement(),
                          cfg, compile_result=compiled)
        result = session.run()
        # Nothing is "much earlier" than an absurd lead: zero prefetches.
        assert result.buffer.total_prefetches == 0
        assert all(c.stats.reads_from_buffer == 0 for c in result.clients)

    def test_tiny_buffer_stalls_but_completes(self):
        program = build_program()
        trace = trace_program(program)
        cfg = SessionConfig(
            n_ionodes=4, stripe_size=64 * KB, buffer_capacity_blocks=2
        )
        smap = StripeMap(cfg.stripe_size, cfg.n_ionodes)
        files = {
            name: StripedFile(name, decl.size_bytes)
            for name, decl in program.files.items()
        }
        compiled = compile_schedule(program, smap, files, CompilerOptions())
        session = Session(trace, fast_spec(), lambda: NoPowerManagement(),
                          cfg, compile_result=compiled)
        result = session.run()
        assert all(t >= 0 for t in result.client_finish_times)
        assert result.buffer.peak_used <= 2


class TestPolicyIntegration:
    def test_policy_attached_per_drive(self):
        program = build_program(n_processes=2, phases=2)
        trace = trace_program(program)
        policies = []

        def factory():
            policy = make_policy("simple", timeout=1.0)
            policies.append(policy)
            return policy

        cfg = SessionConfig(n_ionodes=4, stripe_size=64 * KB)
        session = Session(trace, fast_spec(), factory, cfg)
        session.run()
        assert len(policies) == 4
        assert all(p.drive is not None for p in policies)

    def test_no_policy_factory_allowed(self):
        trace = trace_program(build_program(n_processes=2, phases=2))
        session = Session(
            trace, fast_spec(), None,
            SessionConfig(n_ionodes=4, stripe_size=64 * KB),
        )
        assert all(d.policy is None for d in session.pfs.all_drives())
        session.run()
