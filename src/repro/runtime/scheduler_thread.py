"""The runtime data access scheduler thread (§III, right half of Fig. 4).

One light-weight thread per client node walks its process's scheduling
table in slot order and prefetches the listed accesses into the global
buffer.  Paper semantics implemented here:

* only accesses scheduled *sufficiently earlier* than their original
  iteration are prefetched (``min_lead`` slots); the rest are left to the
  application process (reduces caching overhead);
* before fetching a block produced by another process, the thread checks
  the producer's local time and waits until the write has happened
  (correctness across non-lock-step processes);
* when the buffer is full the thread stops fetching until a hit
  invalidates an entry and frees space;
* the thread paces itself against its own application process: it fetches
  for slot *t* only once the process has entered slot *t* (the schedule is
  defined on the iteration axis, not wall-clock).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..core.table import ScheduleTable
from ..sim.engine import Simulator
from .buffer import EntryState, GlobalBuffer
from .clock import LocalClocks
from .mpi_io import MPIIO

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.injector import FaultCounters
    from .reorder import StragglerAwareReorderer

__all__ = [
    "SchedulerThreadStats",
    "SchedulerThread",
    "issue_window",
    "will_prefetch",
]


def issue_window(slot: int, batch_slots: int) -> int:
    """First slot of the ``batch_slots``-wide issue window containing
    ``slot``.

    The scheduler thread wakes once per window and issues every table
    entry of the window at its first slot, so this is the *earliest*
    iteration at which a prefetch scheduled for ``slot`` can be issued.
    Pure so the static analyzer (:mod:`repro.analysis`) can reason about
    issue times without instantiating a thread.
    """
    if batch_slots < 1:
        raise ValueError(f"batch_slots must be >= 1: {batch_slots}")
    return (slot // batch_slots) * batch_slots


def will_prefetch(original_slot: int, scheduled_slot: int, min_lead: int) -> bool:
    """Whether the runtime prefetches an access at all.

    Only accesses relocated *sufficiently earlier* than their consuming
    iteration (at least ``min_lead`` slots) are prefetched; the rest are
    read synchronously by the application process.  This is the exact
    predicate :meth:`SchedulerThread.run` applies, exposed as a pure
    function for the static analyzer.
    """
    if min_lead < 1:
        raise ValueError(f"min_lead must be >= 1: {min_lead}")
    return original_slot - scheduled_slot >= min_lead


@dataclass
class SchedulerThreadStats:
    """Per-thread prefetch accounting.

    The two ``*_time`` fields break the thread's waiting down by reason —
    the tail-latency attribution the observability layer reports (how long
    schedulers sat on a full buffer versus an unfinished producer).
    """

    prefetches_issued: int = 0
    prefetches_skipped_late: int = 0
    producer_waits: int = 0
    buffer_stalls: int = 0
    buffer_stall_time: float = 0.0
    producer_wait_time: float = 0.0
    #: Fetch-watchdog outcomes (fault-injection runs only): prefetches
    #: abandoned after the timeout, and abandoned entries re-requested.
    prefetch_timeouts: int = 0
    refetches: int = 0


class SchedulerThread:
    """Prefetching companion of one application process."""

    def __init__(
        self,
        sim: Simulator,
        process_id: int,
        table: ScheduleTable,
        mpi_io: MPIIO,
        clocks: LocalClocks,
        buffer: GlobalBuffer,
        min_lead: int = 2,
        batch_slots: int = 8,
        fetch_timeout: Optional[float] = None,
        fetch_retries: int = 0,
        fault_counters: Optional["FaultCounters"] = None,
        reorder: Optional["StragglerAwareReorderer"] = None,
    ):
        """``min_lead`` is the "much earlier" threshold: an access is
        prefetched only when ``original_slot − scheduled_slot ≥ min_lead``.
        ``batch_slots`` groups the table into windows of that many slots
        issued together at the window's first slot — the thread wakes once
        per window instead of once per slot, which both cuts
        synchronization overhead (the paper's stated reason for limiting
        scheduler activity) and keeps the disks' request stream bursty
        instead of smearing it one slot at a time.

        ``fetch_timeout`` arms a watchdog on every issued prefetch (used
        by fault-injection runs, where an I/O node may be slow or down):
        a fetch still in flight after that long is *abandoned* — the
        consumer falls back to an on-demand read — and, while the
        consumer has not yet reached the access's slot, re-requested up
        to ``fetch_retries`` times with exponential backoff.  ``None``
        (the default) schedules no watchdog events at all.

        ``reorder`` attaches a shared
        :class:`~repro.runtime.reorder.StragglerAwareReorderer`: each
        issue window is reordered slowest-node-first before issue, and
        every prefetch completion feeds its latency back per touched
        node.  ``None`` keeps the table order exactly."""
        if min_lead < 1:
            raise ValueError(f"min_lead must be >= 1: {min_lead}")
        if batch_slots < 1:
            raise ValueError(f"batch_slots must be >= 1: {batch_slots}")
        self.sim = sim
        self.process_id = process_id
        self.table = table
        self.mpi_io = mpi_io
        self.clocks = clocks
        self.buffer = buffer
        self.min_lead = min_lead
        self.batch_slots = batch_slots
        self.fetch_timeout = fetch_timeout
        self.fetch_retries = fetch_retries
        self.reorder = reorder
        self.stats = SchedulerThreadStats()
        self._fault_counters = fault_counters
        self._tracer = sim.obs.tracer

    # ------------------------------------------------------------------
    def run(self):
        """The simulation-process generator."""
        for window_start, accesses in self._windows():
            # Pace against our own application process.
            yield from self.clocks.wait_until(self.process_id, window_start)
            if self.reorder is not None:
                # Reorder at wake-up time, not at grouping time: the
                # straggler map reflects every completion observed so far.
                accesses = self.reorder.order(accesses)
            for access in accesses:
                if not will_prefetch(
                    access.original_slot, access.scheduled_slot, self.min_lead
                ):
                    self.stats.prefetches_skipped_late += 1
                    continue
                yield from self._prefetch(access)

    def _windows(self):
        """Group table entries into ``batch_slots``-wide issue windows."""
        grouped: dict[int, list] = {}
        for slot, accesses in self.table:
            window = issue_window(slot, self.batch_slots)
            grouped.setdefault(window, []).extend(accesses)
        for window in sorted(grouped):
            yield window, grouped[window]

    def _prefetch(self, access):
        tracer = self._tracer
        if tracer.enabled:
            tracer.event(
                "access.scheduled",
                aid=access.aid,
                process=self.process_id,
                slot=access.scheduled_slot,
                original_slot=access.original_slot,
            )

        # Correctness: wait for the producer to pass its write slot.
        producer = access.producer
        if producer is not None:
            slot_w, proc_w = producer
            if self.clocks.time_of(proc_w) <= slot_w:
                self.stats.producer_waits += 1
                waited_from = self.sim.now
                yield from self.clocks.wait_until(proc_w, slot_w + 1)
                self.stats.producer_wait_time += self.sim.now - waited_from
            else:
                yield from self.clocks.wait_until(proc_w, slot_w + 1)

        # Flow control: stall while the buffer is full.
        while not self.buffer.has_room(access.blocks):
            self.stats.buffer_stalls += 1
            stalled_from = self.sim.now
            yield self.buffer.space_freed
            self.stats.buffer_stall_time += self.sim.now - stalled_from

        # The application may have already reached (or passed) the original
        # iteration while we were stalled — issuing the prefetch now would
        # be pure overhead; the process reads synchronously instead.
        if self.clocks.time_of(self.process_id) >= access.original_slot:
            self.stats.prefetches_skipped_late += 1
            if tracer.enabled:
                tracer.event(
                    "access.skipped_late",
                    aid=access.aid,
                    process=self.process_id,
                )
            return

        # Issue asynchronously (MPI-IO non-blocking read): the thread moves
        # on to the next table entry immediately so prefetch *issue* times
        # track the schedule even when the disks queue up; completion flips
        # the buffer entry via callback.
        entry = self.buffer.begin_fetch(access.aid, access.blocks)
        self.stats.prefetches_issued += 1
        if tracer.enabled:
            tracer.begin(
                "access.fetch",
                aid=access.aid,
                process=self.process_id,
                blocks=access.blocks,
            )
        done = self.mpi_io.read(access.file, access.block, access.blocks)
        aid = entry.aid
        if self.reorder is not None:
            reorder = self.reorder
            signature = access.signature
            issued_at = self.sim.now
            sim = self.sim

            def _complete(_v, _aid=aid):
                self.buffer.complete_fetch(_aid)
                latency = sim.now - issued_at
                bit = 0
                sig = signature
                while sig:
                    if sig & 1:
                        reorder.observe(bit, latency)
                    sig >>= 1
                    bit += 1

            done.add_waiter(_complete)
        else:
            done.add_waiter(lambda _v: self.buffer.complete_fetch(aid))
        if self.fetch_timeout is not None:
            self._arm_watchdog(entry, access, attempt=0)
        return
        yield  # pragma: no cover - keeps this function a generator

    # ------------------------------------------------------------------
    # Fetch watchdog (fault-injection degraded mode).  Plain callbacks,
    # not generator steps: a stale firing is a state-checked no-op, so the
    # watchdog never perturbs a fetch that landed in time.
    # ------------------------------------------------------------------
    def _arm_watchdog(self, entry, access, attempt: int) -> None:
        self.sim.schedule(
            self.fetch_timeout * (2.0 ** attempt),
            self._watchdog_expire,
            entry,
            access,
            attempt,
        )

    def _watchdog_expire(self, entry, access, attempt: int) -> None:
        if entry.state is not EntryState.FETCHING:
            return  # landed (or already abandoned) in time
        if self.clocks.time_of(self.process_id) >= access.original_slot:
            # The consumer has reached the access's slot: it is either
            # about to wait on this entry or already waiting, and the
            # data *is* coming (transfers are held, never dropped).
            # Abandoning now would strand the waiter.
            return
        self.stats.prefetch_timeouts += 1
        if self._fault_counters is not None:
            self._fault_counters.sched_prefetch_timeouts += 1
        if self._tracer.enabled:
            self._tracer.event(
                "access.fetch_timeout",
                aid=access.aid,
                process=self.process_id,
                attempt=attempt,
            )
        self.buffer.abandon(access.aid)
        if attempt < self.fetch_retries:
            # Back off, then re-request if the slot is still ahead.
            self.sim.schedule(
                self.fetch_timeout * (2.0 ** attempt),
                self._watchdog_retry,
                entry,
                access,
                attempt,
            )

    def _watchdog_retry(self, entry, access, attempt: int) -> None:
        if entry.state is not EntryState.ABANDONED:
            return  # the in-flight fetch landed and freed the entry
        if self.clocks.time_of(self.process_id) >= access.original_slot:
            return  # too late: the consumer has gone on-demand
        if not self.buffer.reclaim(access.aid):
            return
        self.stats.refetches += 1
        if self._fault_counters is not None:
            self._fault_counters.sched_refetches += 1
            self._fault_counters.buffer_reclaimed += 1
        self._arm_watchdog(entry, access, attempt + 1)
