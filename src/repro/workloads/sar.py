"""``sar`` — Synthetic Aperture Radar kernel model.

Paper profile (Table III): 11.1 min, the smallest data set of the suite
(~190 GB in the paper), a classic streaming kernel.

Structure modelled: swaths of range/azimuth processing.  Within a swath
every process streams one private raw-echo block in per phase (perfectly
sequential on disk), runs two FFT-ish compute slots, and writes one
processed image block.  Between swaths a short autofocus **calibration
stretch** (two ~70 s slots with one parameter-block read each) provides
the workload's only spin-down-size idle periods.  Constant costs ⇒
affine path, lockstep bursts.
"""

from __future__ import annotations

from ..ir.affine import var
from ..ir.program import Compute, FileDecl, Loop, Program, Read, Write
from .base import WorkloadInfo, jitter, register, scaled

__all__ = ["build"]

BLOCK_BYTES = 128 * 1024   # 2 stripes -> 2-node signatures (cf. Fig. 9)
SWATHS = 4
PHASES_PER_SWATH = 40
STRETCH_SLOTS = 3
PHASE_SLOTS = 6           # fine compute slots per phase
PHASE_COST = 0.37         # seconds per fine compute slot
STRETCH_COST = 130.0


def build(n_processes: int = 32, scale: float = 1.0) -> Program:
    """Build the sar program.

    ``scale=1.0`` ⇒ ≈11 simulated minutes with 32 processes.
    """
    phases = scaled(PHASES_PER_SWATH, scale)
    stretch_slots = scaled(STRETCH_SLOTS, scale, minimum=3)
    p = var("p")
    sw = var("sw")
    ph = var("ph")

    phases_total = SWATHS * phases
    files = {
        "raw": FileDecl("raw", n_processes * phases_total, BLOCK_BYTES),
        "image": FileDecl("image", n_processes * phases_total, BLOCK_BYTES),
        "autofocus": FileDecl(
            "autofocus", 5 * n_processes * SWATHS * stretch_slots, BLOCK_BYTES
        ),
    }

    body = [
        Loop("sw", 0, SWATHS - 1, body=[
            Loop("ph", 0, phases - 1, body=[
                Read("raw", p * phases_total + sw * phases + ph),
            ] + [Compute(jitter(PHASE_COST, 0.05, k)) for k in range(PHASE_SLOTS)] + [
                Write("image", p * phases_total + sw * phases + ph),
            ]),
            Loop("cal", 0, stretch_slots - 1, body=[
                Read("autofocus",
                     (p + n_processes * (sw * stretch_slots + var("cal"))) * 5),
                Compute(jitter(STRETCH_COST, 0.01, 99)),
            ]),
        ]),
    ]
    return Program("sar", n_processes, files, body)


register(
    WorkloadInfo(
        name="sar",
        description="SAR kernel: sequential streaming with write-behind "
        "output and short calibration stretches",
        build=build,
        affine=True,
    )
)
