"""State-timeline tracing used for energy and idle-period accounting.

A :class:`StateTimeline` records ``(start, end, state)`` intervals for one
component (e.g. one disk).  Power policies and the disk model push state
changes into it; the metrics layer integrates power over the intervals and
extracts idle-period length distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

__all__ = ["Interval", "StateTimeline"]


@dataclass(frozen=True, slots=True)
class Interval:
    """A half-open time interval ``[start, end)`` spent in ``state``."""

    start: float
    end: float
    state: str

    @property
    def duration(self) -> float:
        return self.end - self.start


class StateTimeline:
    """Append-only record of the states one component moved through."""

    __slots__ = ("name", "_intervals", "_current_state", "_current_since")

    def __init__(self, name: str, initial_state: str, start_time: float = 0.0):
        self.name = name
        self._intervals: list[Interval] = []
        self._current_state = initial_state
        self._current_since = start_time

    @property
    def current_state(self) -> str:
        return self._current_state

    @property
    def current_since(self) -> float:
        return self._current_since

    def transition(self, now: float, new_state: str) -> None:
        """Close the current interval at ``now`` and enter ``new_state``."""
        since = self._current_since
        if now < since - 1e-12:
            raise ValueError(
                f"{self.name}: transition at {now} precedes interval start "
                f"{since}"
            )
        if new_state == self._current_state:
            return
        if now > since:
            self._intervals.append(Interval(since, now, self._current_state))
        self._current_state = new_state
        self._current_since = now

    def finalize(self, now: float) -> None:
        """Close the open interval at simulation end."""
        if now > self._current_since:
            self._intervals.append(
                Interval(self._current_since, now, self._current_state)
            )
            self._current_since = now

    def intervals(self) -> Iterator[Interval]:
        """All closed intervals in chronological order."""
        return iter(self._intervals)

    def total_time(self, predicate: Callable[[str], bool]) -> float:
        """Total duration of intervals whose state satisfies ``predicate``."""
        return sum(iv.duration for iv in self._intervals if predicate(iv.state))

    def time_in_state(self, state: str) -> float:
        return self.total_time(lambda s: s == state)

    def integrate(self, power_of: Callable[[str], float]) -> float:
        """Energy in joules: sum of ``power_of(state) * duration``."""
        return sum(power_of(iv.state) * iv.duration for iv in self._intervals)

    def merged_periods(self, predicate: Callable[[str], bool]) -> list[Interval]:
        """Maximal runs of consecutive intervals whose states satisfy
        ``predicate`` (e.g. all idle-family states), merged into single
        intervals.  Used to extract idle *periods* that span several
        low-power states."""
        periods: list[Interval] = []
        run_start: Optional[float] = None
        run_end: Optional[float] = None
        for iv in self._intervals:
            if predicate(iv.state):
                if run_start is None:
                    run_start, run_end = iv.start, iv.end
                elif abs(iv.start - run_end) < 1e-9:
                    run_end = iv.end
                else:
                    periods.append(Interval(run_start, run_end, "merged"))
                    run_start, run_end = iv.start, iv.end
            else:
                if run_start is not None:
                    periods.append(Interval(run_start, run_end, "merged"))
                    run_start = run_end = None
        if run_start is not None:
            periods.append(Interval(run_start, run_end, "merged"))
        return periods

    def __len__(self) -> int:
        return len(self._intervals)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StateTimeline({self.name!r}, {len(self._intervals)} intervals, "
            f"current={self._current_state!r})"
        )
