"""Plain-text report rendering for tables and figure data series.

Every benchmark prints the rows/series the corresponding paper table or
figure reports; these helpers keep the formatting consistent.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_percent", "format_series"]


def format_percent(value: float, digits: int = 1) -> str:
    """0.123 → '12.3%'."""
    return f"{value * 100:.{digits}f}%"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object], ys: Sequence[float]) -> str:
    """Render one figure series as 'name: x=y, x=y, …'."""
    pairs = ", ".join(f"{x}={y:.3f}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"
