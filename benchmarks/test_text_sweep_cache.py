"""§V-D (text) — storage-cache capacity sensitivity.

Paper shape: shrinking the cache from 64 MB to 32 MB *increases* the
scheme's relative benefit (≈ +4.3% in the paper) and growing it to
256 MB decreases the benefit (≈ −3.7%): a big cache absorbs disk activity
by itself, leaving less for scheduling to win.
"""

import os

from repro.experiments import APPS, cache_sensitivity

from conftest import run_once


def test_cache_sensitivity(benchmark, runner):
    # The sweep must include the cache-sensitive workload: madbench2's
    # out-of-core scans are what a bigger storage cache absorbs.
    apps = APPS if os.environ.get("REPRO_FULL_SWEEPS") else (
        "madbench2", "sar", "wupwise"
    )
    result = run_once(
        benchmark,
        lambda: cache_sensitivity(runner, sizes_mb=(32, 64, 256), apps=apps),
    )
    print("\n" + result.text)
    benefits = result.data
    assert all(b > 0 for b in benefits.values())
    # Benefit shrinks as the cache grows (paper §V-D: −3.7% at 256 MB)
    # and the small cache leaves the most room for software scheduling.
    assert benefits[32] >= benefits[256]
    assert benefits[64] > benefits[256]
