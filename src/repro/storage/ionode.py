"""The I/O node: storage cache + RAID-mapped disks + destage machinery.

An :class:`IONode` receives node-local byte extents (already produced by
the stripe map) and serves them through its storage cache.  Read misses go
to the disks via the RAID map with sequential readahead; writes are
write-back — they complete into the cache immediately and a destage timer
flushes dirty blocks to the disks shortly after, which is what puts the
write-induced busy periods near the writes in the disk timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from ..disk.drive import DiskRequest, Drive
from ..sim.engine import Simulator
from ..sim.events import Event
from .cache import StorageCache
from .raid import RaidMap

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.injector import FaultCounters

__all__ = ["IONode", "IONodeStats"]


@dataclass
class IONodeStats:
    """Aggregate request statistics for one I/O node."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    read_hits: int = 0
    destages: int = 0


class IONode:
    """One parallel-file-system I/O server."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        drives: list[Drive],
        cache: StorageCache,
        raid: RaidMap,
        prefetch_depth: int = 2,
        destage_delay: float = 0.5,
        fault_counters: Optional["FaultCounters"] = None,
    ):
        if not drives:
            raise ValueError("an I/O node needs at least one drive")
        if raid.n_disks != len(drives):
            raise ValueError(
                f"RAID map expects {raid.n_disks} disks, got {len(drives)}"
            )
        self.sim = sim
        self.node_id = node_id
        self.drives = drives
        self.cache = cache
        self.raid = raid
        self.prefetch_depth = prefetch_depth
        self.destage_delay = destage_delay
        self.stats = IONodeStats()
        self._destage_timer: Optional[Event] = None
        self._last_read_block = -2
        self._tracer = sim.obs.tracer
        self._fault_counters = fault_counters
        # Dead-disk routing is consulted per translation, but only when a
        # disk.fail event can ever kill one of *these* drives — every
        # other run keeps the fault-free fast path.
        self._dead_tracking = any(
            d.fault_state is not None and d.fault_state.can_die
            for d in drives
        )

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def read(
        self, node_offset: int, size: int, on_complete: Callable[[], None]
    ) -> None:
        """Serve a node-local read; ``on_complete`` fires when all covered
        blocks are cache-resident (hit: immediately, this timestamp)."""
        self.stats.reads += 1
        self.stats.bytes_read += size
        blocks = self.cache.blocks_of(node_offset, size)
        missing = [b for b in blocks if not self.cache.lookup(b)]
        self.stats.read_hits += len(blocks) - len(missing)
        if self._tracer.detail:
            self._tracer.event(
                "ionode.read",
                node=self.node_id,
                nbytes=size,
                blocks=len(blocks),
                misses=len(missing),
            )
        sequential = bool(blocks) and blocks[0] in (
            self._last_read_block,
            self._last_read_block + 1,
        )
        if blocks:
            self._last_read_block = blocks[-1]
        if not missing:
            self.sim.schedule(0.0, on_complete)
            return

        # Extend the miss run with sequential readahead.
        fetch = list(missing)
        for k in range(1, self.prefetch_depth + 1):
            candidate = missing[-1] + k
            if not self.cache.contains(candidate):
                fetch.append(candidate)

        pending = {"n": 0}

        def one_disk_done(_req: DiskRequest) -> None:
            pending["n"] -= 1
            if pending["n"] == 0:
                for block in fetch:
                    flush = self.cache.insert(block, dirty=False)
                    self._flush_blocks(flush)
                on_complete()

        ops = self._runs_to_disk_ops(fetch, is_write=False, sequential=sequential)
        if not ops:
            # Every physical op was lost to dead disks with no surviving
            # redundancy (counted by the RAID translation).  Complete the
            # read anyway — the simulator models degraded timing, not
            # data recovery — so clients never wedge on a dead stripe.
            pending["n"] = 1
            self.sim.schedule(0.0, one_disk_done, None)
            return
        pending["n"] = len(ops)
        for drive, req in ops:
            req.on_complete = one_disk_done
            drive.submit(req)

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def write(
        self, node_offset: int, size: int, on_complete: Callable[[], None]
    ) -> None:
        """Write-back: dirty the covered blocks, complete immediately, and
        arm the destage timer."""
        self.stats.writes += 1
        self.stats.bytes_written += size
        if self._tracer.detail:
            self._tracer.event("ionode.write", node=self.node_id, nbytes=size)
        for block in self.cache.blocks_of(node_offset, size):
            flush = self.cache.insert(block, dirty=True)
            self._flush_blocks(flush)
        self._arm_destage()
        self.sim.schedule(0.0, on_complete)

    def _arm_destage(self) -> None:
        if self._destage_timer is None:
            self._destage_timer = self.sim.schedule(
                self.destage_delay, self._destage
            )

    def _destage(self) -> None:
        self._destage_timer = None
        dirty = self.cache.dirty_blocks()
        if not dirty:
            return
        self.stats.destages += 1
        for block in dirty:
            self.cache.mark_clean(block)
        self._flush_blocks(dirty, already_clean=True)

    def _flush_blocks(self, blocks: list[int], already_clean: bool = False) -> None:
        """Write the given cache blocks to the disks (fire and forget)."""
        if not blocks:
            return
        if not already_clean:
            for block in blocks:
                self.cache.mark_clean(block)
        for drive, req in self._runs_to_disk_ops(
            sorted(blocks), is_write=True, sequential=True
        ):
            drive.submit(req)

    def flush_all(self) -> None:
        """Synchronously queue every dirty block for destage (used at
        simulation shutdown so write energy is accounted)."""
        if self._destage_timer is not None:
            self._destage_timer.cancel()
            self._destage_timer = None
        self._destage()

    # ------------------------------------------------------------------
    # Disk translation
    # ------------------------------------------------------------------
    def _runs_to_disk_ops(
        self, blocks: list[int], is_write: bool, sequential: bool
    ) -> list[tuple[Drive, DiskRequest]]:
        """Coalesce consecutive cache blocks into extents, RAID-map them,
        and build one DiskRequest per physical operation."""
        bs = self.cache.block_size
        runs: list[tuple[int, int]] = []  # (offset, size)
        for block in blocks:
            offset = block * bs
            if runs and runs[-1][0] + runs[-1][1] == offset:
                runs[-1] = (runs[-1][0], runs[-1][1] + bs)
            else:
                runs.append((offset, bs))
        dead = None
        if self._dead_tracking:
            dead = frozenset(
                i for i, d in enumerate(self.drives) if d.is_dead
            )
            if not dead:
                dead = None
        out: list[tuple[Drive, DiskRequest]] = []
        for offset, size in runs:
            for op in self.raid.map(
                offset, size, is_write,
                dead=dead, counters=self._fault_counters,
            ):
                req = DiskRequest(
                    lba=op.lba,
                    nbytes=op.nbytes,
                    is_write=op.is_write,
                    sequential_hint=sequential,
                )
                out.append((self.drives[op.disk], req))
        return out

    # ------------------------------------------------------------------
    def energy(self) -> float:
        """Total joules over all attached drives (after finalize)."""
        return sum(d.energy() for d in self.drives)

    def finalize(self) -> None:
        for drive in self.drives:
            drive.finalize()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"IONode({self.node_id}, drives={len(self.drives)})"
