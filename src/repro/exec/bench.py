"""``repro bench`` — timed execution of the figure grid.

Times the same cold grid three ways — serial in-process, parallel through
the executor, then a warm-cache replay — and writes a ``BENCH_*.json``
perf record so successive PRs have a wall-clock trajectory to compare
against.  The warm pass doubles as an end-to-end cache check: it must
perform **zero** simulations.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Optional, Sequence

from ..experiments.config import ExperimentConfig, default_config
from ..experiments.runner import Runner
from .cache import ResultCache
from .executor import ExperimentExecutor, RunPoint, execute_point
from .grid import GRID_FIGURES, all_figure_points
from .serialize import SCHEMA_VERSION

__all__ = ["QUICK_FIGURES", "run_bench", "write_bench_record"]

#: Small but representative subset for CI smoke runs: baselines plus a
#: scheme compile + full policy grid for one figure.
QUICK_FIGURES = ("table3", "fig12a", "fig12b", "fig12c")


def _time_serial(points: Sequence[RunPoint], verify: bool) -> float:
    runner = Runner(points[0].config)
    start = time.perf_counter()
    for point in points:
        execute_point(runner, point, verify=verify)
    return time.perf_counter() - start


def run_bench(
    config: Optional[ExperimentConfig] = None,
    figures: Sequence[str] = GRID_FIGURES,
    jobs: int = 4,
    verify: bool = True,
    compare_serial: bool = True,
    cache_dir: Optional[Path] = None,
) -> dict:
    """Run the grid benchmark; returns the record (not yet written).

    ``cache_dir`` is wiped of matching entries by using a fresh temporary
    directory when omitted, so the parallel pass is genuinely cold.
    """
    cfg = config or default_config()
    points = all_figure_points(cfg, names=figures)

    record: dict = {
        "kind": "repro-bench",
        "schema": SCHEMA_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "workload_scale": cfg.workload_scale,
        "figures": list(figures),
        "points": len(points),
        "jobs": jobs,
        "verify": verify,
    }

    if compare_serial:
        record["serial_seconds"] = round(_time_serial(points, verify), 4)

    tmp = None
    if cache_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-bench-cache-")
        cache_dir = Path(tmp.name)
    try:
        cold_cache = ResultCache(Path(cache_dir))
        executor = ExperimentExecutor(
            jobs=jobs, cache=cold_cache, verify=verify
        )
        start = time.perf_counter()
        executor.run_points(points)
        record["parallel_seconds"] = round(time.perf_counter() - start, 4)
        record["parallel"] = executor.stats.as_dict()

        warm = ExperimentExecutor(
            jobs=jobs, cache=ResultCache(Path(cache_dir)), verify=verify
        )
        start = time.perf_counter()
        warm.run_points(points)
        record["warm_seconds"] = round(time.perf_counter() - start, 4)
        record["warm"] = warm.stats.as_dict()
    finally:
        if tmp is not None:
            tmp.cleanup()

    if compare_serial and record["parallel_seconds"] > 0:
        record["speedup"] = round(
            record["serial_seconds"] / record["parallel_seconds"], 2
        )
    return record


def write_bench_record(record: dict, out_dir: Path) -> Path:
    """Write the record as ``BENCH_<timestamp>.json``; returns the path."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    stamp = record["created"].replace("-", "").replace(":", "")
    path = out_dir / f"BENCH_{stamp}.json"
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    return path
