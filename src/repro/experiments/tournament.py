"""The online energy-policy tournament (``repro tournament``).

The paper's evaluation compares four *static* policies under one
fault-free platform.  ROADMAP item 3 asks the sharper question: how does
the compiler-directed scheme fare against *online* adaptation — and how
do both degrade when the platform misbehaves?  This module runs that
comparison as a supervised campaign:

    {static compiler, each online policy, hybrids}
        × all registered workloads
        × {clean, straggler, degraded-RAID5}

Every cell is an ordinary cached/journaled run point, so the tournament
resumes, parallelizes and replays bit-identically like any other
campaign.  The product is a schema-stable leaderboard document
(``TOURNAMENT_*.json``): per-cell energy and slowdown against that
scenario's default baseline, a strict-energy win matrix over entrants,
and — because trust is the point — the static analyzer's certified
envelope for every cell with a per-cell containment verdict.

The document body is fully deterministic (no timestamps, no wall-clock
readings): two runs of the same tournament at the same scale produce
byte-identical ``canonical_dumps`` bodies, which CI pins.  Only the
output *filename* carries a timestamp.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Optional

from ..analysis.energy import analyze_energy
from ..faults.plan import FaultEvent, FaultPlan
from .config import ExperimentConfig
from .runner import Runner

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..exec.executor import ExperimentExecutor, RunPoint
    from ..exec.supervise import CampaignSupervisor

__all__ = [
    "TOURNAMENT_SCHEMA",
    "Entrant",
    "DEFAULT_ENTRANTS",
    "SCENARIOS",
    "TOURNAMENT_WORKLOADS",
    "scenario_config",
    "tournament_points",
    "run_tournament",
    "write_tournament_record",
]

#: Layout version of the tournament document.
TOURNAMENT_SCHEMA = 1

#: Every registered workload — the six APPS figures use plus ``sweep``.
TOURNAMENT_WORKLOADS = (
    "apsi", "astro", "hf", "madbench2", "sar", "sweep", "wupwise",
)


@dataclass(frozen=True)
class Entrant:
    """One competitor: a policy plus how the runtime is configured."""

    name: str
    policy: str
    scheme: bool
    reorder: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("entrant name must be non-empty")
        if self.reorder and not self.scheme:
            raise ValueError(
                f"entrant {self.name!r}: reordering needs scheduler "
                f"threads, which only exist with the scheme on"
            )

    def as_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "policy": self.policy,
            "scheme": self.scheme,
            "reorder": self.reorder,
        }


#: The default field.  Two static compiler entrants (the paper's best
#: spin-down and multi-speed policies under the scheme), the three
#: online policies on their own, and the hybrid with the straggler-aware
#: reorderer stacked on top.
DEFAULT_ENTRANTS = (
    Entrant("compiler-simple", "simple", scheme=True),
    Entrant("compiler-history", "history", scheme=True),
    Entrant("forecast", "forecast", scheme=False),
    Entrant("credit", "credit", scheme=False),
    Entrant("hybrid", "hybrid", scheme=True),
    Entrant("hybrid-reorder", "hybrid", scheme=True, reorder=True),
)

#: Scenario names, in document order.
SCENARIOS = ("clean", "straggler", "degraded")

#: Seeded straggler plan: one I/O node serves 4× slower for a long
#: mid-run window — the exact situation the reorderer and the hybrid's
#: divergence override are built for.
_STRAGGLER_PLAN = FaultPlan(
    events=(
        FaultEvent(
            kind="node.straggle",
            target="node0",
            time=5.0,
            duration=40.0,
            factor=4.0,
        ),
    ),
    seed=11,
)


def scenario_config(base: ExperimentConfig, scenario: str) -> ExperimentConfig:
    """The base config transformed for one scenario.

    ``clean`` is the base as-is; ``straggler`` attaches the seeded
    straggler plan; ``degraded`` reshapes each node into a 3-disk RAID-5
    array with one member dead from t=0 (parity reconstruction on every
    read of the lost chunk).
    """
    if scenario == "clean":
        return base
    if scenario == "straggler":
        return base.scaled(fault_plan=_STRAGGLER_PLAN)
    if scenario == "degraded":
        return base.scaled(
            disks_per_node=3,
            raid_level=5,
            fault_plan=FaultPlan(
                events=(
                    FaultEvent(kind="disk.fail", target="node0.disk1"),
                ),
            ),
        )
    raise ValueError(
        f"unknown scenario {scenario!r}; choose from {list(SCENARIOS)}"
    )


def _entrant_config(scfg: ExperimentConfig, entrant: Entrant) -> ExperimentConfig:
    return scfg.scaled(reorder=True) if entrant.reorder else scfg


def tournament_points(
    base: ExperimentConfig,
    workloads: Iterable[str] = TOURNAMENT_WORKLOADS,
    entrants: Iterable[Entrant] = DEFAULT_ENTRANTS,
    scenarios: Iterable[str] = SCENARIOS,
) -> list["RunPoint"]:
    """Every run point the tournament needs, baselines included.

    One ``default`` (no power management, scheme off) point per
    scenario × workload anchors normalization; entrant points follow in
    (scenario, workload, entrant) order.  Deduplicated, order-stable.
    """
    from ..exec.executor import RunPoint

    points: list[RunPoint] = []
    seen: set[tuple] = set()

    def add(point: "RunPoint") -> None:
        key = (point.workload, point.policy, point.scheme,
               point.config.to_key())
        if key not in seen:
            seen.add(key)
            points.append(point)

    for scenario in scenarios:
        scfg = scenario_config(base, scenario)
        for workload in workloads:
            add(RunPoint(workload, "default", False, scfg))
            for entrant in entrants:
                add(RunPoint(
                    workload,
                    entrant.policy,
                    entrant.scheme,
                    _entrant_config(scfg, entrant),
                ))
    return points


def run_tournament(
    base: ExperimentConfig,
    workloads: Iterable[str] = TOURNAMENT_WORKLOADS,
    entrants: Iterable[Entrant] = DEFAULT_ENTRANTS,
    scenarios: Iterable[str] = SCENARIOS,
    runner: Optional[Runner] = None,
    executor: Optional["ExperimentExecutor"] = None,
    supervisor: Optional["CampaignSupervisor"] = None,
) -> dict:
    """Run the full grid and build the leaderboard document.

    With ``supervisor`` (preferred) or ``executor`` attached the grid
    fans out through the campaign machinery — cache, journal, watchdog —
    and the resolved results are seeded into ``runner``; otherwise every
    point runs in-process on ``runner``'s memo table.  The returned
    document is deterministic for a given (config, grid): it carries no
    timestamps and every float is a simulation output.
    """
    workloads = list(workloads)
    entrants = list(entrants)
    scenarios = list(scenarios)
    names = [e.name for e in entrants]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate entrant names: {names}")

    if runner is None:
        runner = Runner(base)
    points = tournament_points(base, workloads, entrants, scenarios)
    if supervisor is not None:
        supervisor.warm_runner(runner, points)
    elif executor is not None:
        executor.warm_runner(runner, points)

    cells: list[dict] = []
    contained_all = True
    # energy[(scenario, workload)][entrant.name] for the win matrix.
    energy: dict[tuple[str, str], dict[str, float]] = {}
    for scenario in scenarios:
        scfg = scenario_config(base, scenario)
        for workload in workloads:
            baseline = runner.run(workload, "default", False, config=scfg)
            for entrant in entrants:
                ecfg = _entrant_config(scfg, entrant)
                result = runner.run(
                    workload, entrant.policy, entrant.scheme, config=ecfg
                )
                book = (
                    runner.compilation(workload, ecfg).book
                    if entrant.scheme
                    else None
                )
                analysis = analyze_energy(
                    runner.trace(workload, ecfg),
                    ecfg,
                    entrant.policy,
                    entrant.scheme,
                    book=book,
                )
                contained = analysis.envelope.contains(result.energy_joules)
                contained_all = contained_all and contained
                energy.setdefault((scenario, workload), {})[entrant.name] = (
                    result.energy_joules
                )
                cells.append({
                    "scenario": scenario,
                    "workload": workload,
                    "entrant": entrant.name,
                    "policy": entrant.policy,
                    "scheme": entrant.scheme,
                    "reorder": entrant.reorder,
                    "energy_j": result.energy_joules,
                    "execution_s": result.execution_time,
                    "normalized_energy": (
                        result.energy_joules / baseline.energy_joules
                    ),
                    "slowdown": (
                        result.execution_time / baseline.execution_time
                    ),
                    "envelope_lo_j": analysis.envelope.energy_j.lo,
                    "envelope_hi_j": analysis.envelope.energy_j.hi,
                    "contained": contained,
                })

    # Strict-energy win matrix: wins[a][b] = cells where a beat b.
    win_matrix = {a: {b: 0 for b in names if b != a} for a in names}
    for cell_energy in energy.values():
        for a in names:
            for b in names:
                if a != b and cell_energy[a] < cell_energy[b]:
                    win_matrix[a][b] += 1

    n_cells = len(scenarios) * len(workloads)
    leaderboard = []
    for entrant in entrants:
        own = [c for c in cells if c["entrant"] == entrant.name]
        leaderboard.append({
            "entrant": entrant.name,
            "mean_normalized_energy": (
                sum(c["normalized_energy"] for c in own) / len(own)
            ),
            "mean_slowdown": sum(c["slowdown"] for c in own) / len(own),
            "wins": sum(win_matrix[entrant.name].values()),
            "max_wins": n_cells * (len(entrants) - 1),
            "contained": all(c["contained"] for c in own),
        })
    # Rank by energy, then by slowdown; entrant name breaks exact ties
    # deterministically.
    leaderboard.sort(key=lambda row: (
        row["mean_normalized_energy"], row["mean_slowdown"], row["entrant"]
    ))

    return {
        "kind": "tournament",
        "schema": TOURNAMENT_SCHEMA,
        "scale": base.workload_scale,
        "workloads": workloads,
        "scenarios": scenarios,
        "entrants": [e.as_dict() for e in entrants],
        "cells": cells,
        "win_matrix": win_matrix,
        "leaderboard": leaderboard,
        "all_contained": contained_all,
    }


def write_tournament_record(doc: dict, out_dir: Path) -> Path:
    """Write ``doc`` as ``TOURNAMENT_<timestamp>.json``; returns the path.

    Only the *filename* is stamped — the document body stays
    deterministic so re-runs are byte-comparable.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())  # det: filename stamp only; the document body carries no timestamp
    path = out_dir / f"TOURNAMENT_{stamp}.json"
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return path
