"""Tests for the intra-node RAID layouts."""

import pytest

from repro.faults import FaultCounters
from repro.storage import RaidMap

KB = 1024


class TestValidation:
    def test_unknown_level(self):
        with pytest.raises(ValueError):
            RaidMap(1, 2)

    def test_raid5_needs_three_disks(self):
        with pytest.raises(ValueError):
            RaidMap(5, 2)

    def test_raid10_needs_even_disks(self):
        with pytest.raises(ValueError):
            RaidMap(10, 3)

    def test_chunk_size_positive(self):
        with pytest.raises(ValueError):
            RaidMap(0, 2, chunk_size=0)

    def test_negative_extent(self):
        with pytest.raises(ValueError):
            RaidMap(0, 2).map(-1, 10, False)


class TestRaid0:
    def test_single_chunk_single_disk(self):
        raid = RaidMap(0, 4, chunk_size=64 * KB)
        ops = raid.map(0, 64 * KB, False)
        assert len(ops) == 1
        assert ops[0].disk == 0

    def test_chunks_rotate_disks(self):
        raid = RaidMap(0, 4, chunk_size=64 * KB)
        ops = raid.map(0, 256 * KB, False)
        assert [op.disk for op in ops] == [0, 1, 2, 3]

    def test_bytes_preserved(self):
        raid = RaidMap(0, 4, chunk_size=64 * KB)
        ops = raid.map(13 * KB, 200 * KB, False)
        assert sum(op.nbytes for op in ops) == 200 * KB

    def test_row_addressing(self):
        raid = RaidMap(0, 2, chunk_size=64 * KB)
        ops = raid.map(128 * KB, 64 * KB, False)  # chunk 2 -> disk 0 row 1
        assert ops[0].disk == 0
        assert ops[0].lba == 64 * KB

    def test_single_disk_degenerate(self):
        raid = RaidMap(0, 1, chunk_size=64 * KB)
        ops = raid.map(0, 256 * KB, True)
        assert all(op.disk == 0 for op in ops)


class TestRaid5:
    def test_read_touches_single_disk(self):
        raid = RaidMap(5, 4, chunk_size=64 * KB)
        ops = raid.map(0, 64 * KB, False)
        assert len(ops) == 1
        assert not ops[0].is_write

    def test_write_does_read_modify_write(self):
        raid = RaidMap(5, 4, chunk_size=64 * KB)
        ops = raid.map(0, 64 * KB, True)
        writes = [op for op in ops if op.is_write]
        reads = [op for op in ops if not op.is_write]
        assert len(writes) == 2  # data + parity
        assert len(reads) == 2   # old data + old parity

    def test_parity_disk_differs_from_data_disk(self):
        raid = RaidMap(5, 4, chunk_size=64 * KB)
        ops = raid.map(0, 64 * KB, True)
        writes = [op for op in ops if op.is_write]
        assert writes[0].disk != writes[1].disk

    def test_parity_rotates_across_rows(self):
        raid = RaidMap(5, 4, chunk_size=64 * KB)
        parities = set()
        for row in range(4):
            chunk_offset = row * raid.data_disks * 64 * KB
            ops = raid.map(chunk_offset, 64 * KB, True)
            parity = [op for op in ops if op.is_write][1].disk
            parities.add(parity)
        assert len(parities) == 4

    def test_data_disks_count(self):
        assert RaidMap(5, 4).data_disks == 3


class TestRaid10:
    def test_write_hits_both_mirrors(self):
        raid = RaidMap(10, 4, chunk_size=64 * KB)
        ops = raid.map(0, 64 * KB, True)
        assert {op.disk for op in ops} == {0, 1}
        assert all(op.is_write for op in ops)

    def test_read_placement_is_pure(self):
        # Mirror selection is a function of the extent's address only:
        # repeating the same map() call must pick the same disk, with no
        # hidden call-history state (regression for the old round-robin).
        raid = RaidMap(10, 4, chunk_size=64 * KB)
        first = raid.map(0, 64 * KB, False)[0].disk
        second = raid.map(0, 64 * KB, False)[0].disk
        assert first == second

    def test_reads_alternate_mirrors_across_rows(self):
        # Successive stripe rows of the same pair flip between the two
        # mirror members, so load still spreads without mutable state.
        raid = RaidMap(10, 4, chunk_size=64 * KB)
        row_stride = raid.data_disks * 64 * KB
        disks = [
            raid.map(row * row_stride, 64 * KB, False)[0].disk
            for row in range(4)
        ]
        assert disks[0] != disks[1]
        assert disks == [disks[0], disks[1]] * 2
        assert {disks[0], disks[1]} == {0, 1}

    def test_second_pair_used_for_second_chunk(self):
        raid = RaidMap(10, 4, chunk_size=64 * KB)
        ops = raid.map(64 * KB, 64 * KB, True)
        assert {op.disk for op in ops} == {2, 3}

    def test_data_disks_count(self):
        assert RaidMap(10, 4).data_disks == 2


class TestDegradedMode:
    """Translation with a ``dead`` set routes around failed members."""

    def test_raid0_dead_disk_loses_op(self):
        raid = RaidMap(0, 4, chunk_size=64 * KB)
        counters = FaultCounters()
        ops = raid.map(0, 64 * KB, False, dead={0}, counters=counters)
        assert ops == []
        assert counters.raid_lost_ops == 1

    def test_raid5_read_reconstructs_from_survivors(self):
        raid = RaidMap(5, 4, chunk_size=64 * KB)
        clean = raid.map(0, 64 * KB, False)
        assert len(clean) == 1
        counters = FaultCounters()
        ops = raid.map(
            0, 64 * KB, False, dead={clean[0].disk}, counters=counters
        )
        # Parity reconstruction reads every surviving disk of the stripe.
        assert len(ops) == raid.n_disks - 1
        assert all(not op.is_write for op in ops)
        assert clean[0].disk not in {op.disk for op in ops}
        assert counters.raid_degraded_reads == 1
        assert counters.raid_reconstructed == 1
        assert counters.raid_lost_ops == 0

    def test_raid5_double_failure_is_lost(self):
        raid = RaidMap(5, 4, chunk_size=64 * KB)
        data_disk = raid.map(0, 64 * KB, False)[0].disk
        other_dead = next(
            d for d in range(raid.n_disks) if d != data_disk
        )
        counters = FaultCounters()
        ops = raid.map(
            0, 64 * KB, False,
            dead={data_disk, other_dead}, counters=counters,
        )
        assert ops == []
        assert counters.raid_degraded_reads == 1
        assert counters.raid_reconstructed == 0
        assert counters.raid_lost_ops == 1

    def test_raid5_write_with_dead_data_disk(self):
        raid = RaidMap(5, 4, chunk_size=64 * KB)
        writes = [
            op for op in raid.map(0, 64 * KB, True) if op.is_write
        ]
        data_disk, parity_disk = writes[0].disk, writes[1].disk
        counters = FaultCounters()
        ops = raid.map(
            0, 64 * KB, True, dead={data_disk}, counters=counters
        )
        # New parity = XOR(new data, surviving data chunks): read those,
        # then write parity only.
        assert [op for op in ops if op.is_write] == [
            op for op in ops if op.disk == parity_disk
        ]
        assert data_disk not in {op.disk for op in ops}
        assert counters.raid_degraded_writes == 1

    def test_raid5_write_with_dead_parity_disk(self):
        raid = RaidMap(5, 4, chunk_size=64 * KB)
        writes = [
            op for op in raid.map(0, 64 * KB, True) if op.is_write
        ]
        data_disk, parity_disk = writes[0].disk, writes[1].disk
        counters = FaultCounters()
        ops = raid.map(
            0, 64 * KB, True, dead={parity_disk}, counters=counters
        )
        assert ops == [op for op in ops if op.disk == data_disk]
        assert len(ops) == 1 and ops[0].is_write
        assert counters.raid_degraded_writes == 1

    def test_raid10_read_fails_over_to_mirror(self):
        raid = RaidMap(10, 4, chunk_size=64 * KB)
        chosen = raid.map(0, 64 * KB, False)[0].disk
        other = chosen ^ 1
        counters = FaultCounters()
        ops = raid.map(0, 64 * KB, False, dead={chosen}, counters=counters)
        assert [op.disk for op in ops] == [other]
        assert counters.raid_failed_over == 1

    def test_raid10_whole_pair_dead_is_lost(self):
        raid = RaidMap(10, 4, chunk_size=64 * KB)
        counters = FaultCounters()
        ops = raid.map(0, 64 * KB, False, dead={0, 1}, counters=counters)
        assert ops == []
        assert counters.raid_lost_ops == 1

    def test_raid10_write_skips_dead_mirror(self):
        raid = RaidMap(10, 4, chunk_size=64 * KB)
        counters = FaultCounters()
        ops = raid.map(0, 64 * KB, True, dead={1}, counters=counters)
        assert [op.disk for op in ops] == [0]
        assert counters.raid_degraded_writes == 1

    def test_degraded_translation_is_pure(self):
        raid = RaidMap(5, 4, chunk_size=64 * KB)
        first = raid.map(0, 256 * KB, False, dead={1})
        second = raid.map(0, 256 * KB, False, dead={1})
        assert first == second
