"""Disk drive model with detailed power accounting (DiskSim substitute).

Public surface: :class:`DiskSpec` (drive parameters, Table II defaults),
:class:`Drive` (event-driven drive with elevator queueing and power states),
:class:`DiskRequest`, and the power accounting helpers.
"""

from .drive import DiskRequest, Drive, DriveStats
from .mechanics import ServiceComponents, lba_to_cylinder, service_components
from .power import DiskPowerModel, EnergyBreakdown
from .specs import TABLE2_DISK, DiskSpec, table2_multispeed_spec

__all__ = [
    "DiskSpec",
    "TABLE2_DISK",
    "table2_multispeed_spec",
    "Drive",
    "DiskRequest",
    "DriveStats",
    "DiskPowerModel",
    "EnergyBreakdown",
    "ServiceComponents",
    "service_components",
    "lba_to_cylinder",
]
