"""Polyhedral-lite dependence analysis (the Omega-library path, §IV-A).

For affine programs, the producer of a read's block can be found without
executing the program: a write ``W[f, a_w·i + c_w]`` inside a loop nest and
a read ``R[f, a_r·j + c_r]`` depend when the subscripts are equal for some
in-bounds iterations, which for affine forms reduces to a linear
Diophantine condition.  :class:`AffineDependenceAnalyzer` solves the
single-free-variable cases in closed form (lattice-divisibility test +
direct inversion) and falls back to bounded enumeration for
multi-variable subscripts —
exact at our iteration-space sizes, which is all the Omega library's
answer would give us here.

The result deliberately matches :func:`repro.ir.profiling.trace_program`'s
``last_writer_table`` so the two paths are interchangeable (tests assert
their agreement on affine programs).
"""

from __future__ import annotations

from .profiling import AccessTrace, trace_program
from .program import Program

__all__ = [
    "solve_affine_equal",
    "AffineDependenceAnalyzer",
    "certainly_cold_blocks",
    "compute_phases",
]


def compute_phases(
    trace: AccessTrace, min_slots: int = 2
) -> dict[int, list[tuple[int, int]]]:
    """Per-process maximal I/O-free slot runs: ``pid → [(start, stop), …]``.

    A *compute phase* is a maximal half-open slot range ``[start, stop)``
    in which a process performs no I/O whatsoever — its simulated
    behaviour there is a pure chain of compute timeouts, exactly solvable
    in closed form.  This is the analytic kernel's work list: each run
    collapses to a single event.

    Affine programs only: for them the symbolic walk *is* the dynamic
    execution (the same guarantee :class:`AffineDependenceAnalyzer`
    rests on), so a slot the oracle sees as I/O-free is I/O-free in every
    run.  For non-affine programs the trace is merely one profiled
    execution and proves nothing — callers get a ``ValueError`` instead
    of an unsound phase plan.

    Runs shorter than ``min_slots`` are dropped: collapsing a single slot
    replaces one Timeout with one ComputePhase and saves nothing.
    """
    if not trace.program.is_affine:
        raise ValueError(
            f"program {trace.program.name!r} is not affine; compute phases "
            "cannot be certified from a profiled trace"
        )
    phases: dict[int, list[tuple[int, int]]] = {}
    for proc in trace.processes:
        io_slots = {io.slot for io in proc.ios}
        runs: list[tuple[int, int]] = []
        start: int | None = None
        for slot in range(proc.n_slots):
            if slot in io_slots:
                if start is not None and slot - start >= min_slots:
                    runs.append((start, slot))
                start = None
            elif start is None:
                start = slot
        if start is not None and proc.n_slots - start >= min_slots:
            runs.append((start, proc.n_slots))
        if runs:
            phases[proc.process] = runs
    return phases


def certainly_cold_blocks(trace: AccessTrace) -> set[tuple[str, int]]:
    """(file, block) pairs whose *first read in time* provably misses cache.

    A block is certainly disk-sourced when it is read at least once and
    every write ``w`` touching it has, in the *same process*, a read of
    the block at strictly earlier program order (smaller ``seq``).  Then
    whichever read happens first in any legal interleaving precedes every
    write that could have populated the cache, so that read's data must
    transit a disk — even when the scheduler prefetches it, the prefetch
    itself is a disk fetch.  Cross-process writes cannot rescue the block:
    if one could complete before every read, the earlier-read condition
    on that writer's own process would be violated.

    Slot numbers are *not* time (processes drift), so this test uses only
    per-process program order — the one order the IR guarantees — which
    keeps it sound for the energy lower bound (it may under-approximate
    the cold set, never over-approximate it).
    """
    cold: set[tuple[str, int]] = set()
    writers = trace.block_writers()
    for key, readers in trace.block_readers().items():
        first_read_seq: dict[int, int] = {}
        for io in readers:
            seq = first_read_seq.get(io.process)
            if seq is None or io.seq < seq:
                first_read_seq[io.process] = io.seq
        ok = True
        for w in writers.get(key, []):
            seq = first_read_seq.get(w.process)
            if seq is None or seq >= w.seq:
                ok = False
                break
        if ok:
            cold.add(key)
    return cold


def solve_affine_equal(
    coeff: int, constant: int, target: int, lo: int, hi: int, step: int = 1
) -> list[int]:
    """All ``i ∈ {lo, lo+step, …, hi}`` with ``coeff·i + constant == target``.

    The 1-D core of a polyhedral dependence query.  Substituting the
    lattice parameterization ``i = lo + k·step`` turns the subscript
    equation into the one-unknown linear Diophantine equation
    ``(coeff·step)·k == rhs − coeff·lo``, whose gcd feasibility test
    degenerates to plain divisibility by its single coefficient (gcd of
    one number is the number itself) — there is no separate gcd branch to
    take in the 1-D case.
    """
    if step <= 0:
        raise ValueError(f"step must be positive: {step}")
    rhs = target - constant
    if coeff == 0:
        if rhs != 0:
            return []
        return list(range(lo, hi + 1, step))
    lattice_rhs = rhs - coeff * lo
    modulus = coeff * step
    if lattice_rhs % modulus != 0:
        return []
    i = lo + (lattice_rhs // modulus) * step
    if lo <= i <= hi:
        return [i]
    return []


class AffineDependenceAnalyzer:
    """Compute the last-writer table of an affine program statically.

    The public product is identical in shape to
    ``AccessTrace.last_writer_table()``: ``(file, block) → [(slot, proc)]``.
    Internally it walks the loop nests symbolically, using closed-form
    inversion where subscripts have one free induction variable and exact
    bounded enumeration elsewhere.  For the scales this framework targets
    (≤ a few hundred thousand dynamic iterations) the enumeration arm is
    itself exact and fast, so the analyzer is *always* sound — the
    closed-form arm is an optimization and a demonstration of the
    polyhedral reasoning.
    """

    def __init__(self, program: Program):
        if not program.is_affine:
            raise ValueError(
                f"program {program.name!r} is not affine; use the profiling "
                "path (trace_program) instead"
            )
        self.program = program
        self._trace: AccessTrace | None = None

    def _ensure_trace(self) -> AccessTrace:
        # Symbolic walk == profiling walk for affine programs; reuse it as
        # the exact enumeration backend.
        if self._trace is None:
            self._trace = trace_program(self.program)
        return self._trace

    # ------------------------------------------------------------------
    def last_writer_table(self) -> dict[tuple[str, int], list[tuple[int, int]]]:
        """(file, block) → sorted [(slot, process)] over all writes."""
        return self._ensure_trace().last_writer_table()

    def last_writer_before(
        self, file: str, block: int, slot: int
    ) -> tuple[int, int] | None:
        """The latest ``(slot_w, proc)`` write to ``(file, block)`` with
        ``slot_w < slot``, or None when the block is program input."""
        entries = self.last_writer_table().get((file, block))
        if not entries:
            return None
        best: tuple[int, int] | None = None
        for entry in entries:
            if entry[0] < slot:
                best = entry
            else:
                break
        return best

    # ------------------------------------------------------------------
    def certainly_cold_blocks(self) -> set[tuple[str, int]]:
        """Blocks whose first read provably misses cache (see
        :func:`certainly_cold_blocks`), derived from the polyhedral walk.

        For affine programs the symbolic walk and the profiling trace
        coincide, so this agrees exactly with the profiling-path answer —
        the energy analyzer uses whichever path the program admits.
        """
        return certainly_cold_blocks(self._ensure_trace())

    def compute_phases(self, min_slots: int = 2) -> dict[int, list[tuple[int, int]]]:
        """Certified I/O-free slot runs per process (see
        :func:`compute_phases`), derived from the polyhedral walk."""
        return compute_phases(self._ensure_trace(), min_slots=min_slots)

    def writers_of_block(
        self, file: str, block: int
    ) -> list[tuple[int, int]]:
        """Every (slot, process) that writes ``(file, block)``, sorted.

        Exercises the closed-form arm where applicable (single free
        induction variable) and is cross-checked against enumeration in
        the test suite.
        """
        return self.last_writer_table().get((file, block), [])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AffineDependenceAnalyzer({self.program.name!r})"
