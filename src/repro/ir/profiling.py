"""Profiling-based program tracing (the paper's profiling tool, §IV-A).

The tracer symbolically executes a :class:`~repro.ir.program.Program` for
every process and emits an :class:`AccessTrace`: per process, the ordered
slot timeline with compute durations, plus every I/O call tagged with its
slot.  Both the scheduling compiler and the trace-driven simulation consume
this structure, so one tracing pass drives everything downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .program import Compute, Loop, Program, Read, Write

__all__ = ["TracedIO", "ProcessTrace", "AccessTrace", "trace_program"]


@dataclass(frozen=True)
class TracedIO:
    """One dynamic I/O call instance."""

    process: int
    slot: int          # scheduling slot (compute-step index / granularity)
    seq: int           # global per-process issue order
    is_write: bool
    file: str
    block: int
    blocks: int        # contiguous run length in blocks

    def block_keys(self) -> Iterator[tuple[str, int]]:
        """(file, block) identity of every covered block."""
        for b in range(self.block, self.block + self.blocks):
            yield (self.file, b)


@dataclass
class ProcessTrace:
    """One process's timeline: slot compute costs + its I/O calls."""

    process: int
    slot_costs: list[float] = field(default_factory=list)
    ios: list[TracedIO] = field(default_factory=list)

    @property
    def n_slots(self) -> int:
        return len(self.slot_costs)

    @property
    def total_compute(self) -> float:
        return sum(self.slot_costs)


@dataclass
class AccessTrace:
    """The full multi-process trace of one program execution."""

    program: Program
    processes: list[ProcessTrace]

    @property
    def n_slots(self) -> int:
        """Global slot horizon N_t (max over processes)."""
        return max((p.n_slots for p in self.processes), default=0)

    def all_ios(self) -> list[TracedIO]:
        """Every dynamic I/O call, ordered by (slot, process, seq)."""
        out = [io for p in self.processes for io in p.ios]
        out.sort(key=lambda io: (io.slot, io.process, io.seq))
        return out

    def reads(self) -> list[TracedIO]:
        return [io for io in self.all_ios() if not io.is_write]

    def writes(self) -> list[TracedIO]:
        return [io for io in self.all_ios() if io.is_write]

    def last_writer_table(self) -> dict[tuple[str, int], list[tuple[int, int]]]:
        """(file, block) → sorted [(slot, process)] of every write touching
        that block.  The slack pass binary-searches this."""
        table: dict[tuple[str, int], list[tuple[int, int]]] = {}
        for io in self.writes():
            for key in io.block_keys():
                table.setdefault(key, []).append((io.slot, io.process))
        for entries in table.values():
            entries.sort()
        return table

    def block_readers(self) -> dict[tuple[str, int], list[TracedIO]]:
        """(file, block) → every read touching that block, trace-ordered."""
        table: dict[tuple[str, int], list[TracedIO]] = {}
        for io in self.reads():
            for key in io.block_keys():
                table.setdefault(key, []).append(io)
        return table

    def block_writers(self) -> dict[tuple[str, int], list[TracedIO]]:
        """(file, block) → every write touching that block, trace-ordered."""
        table: dict[tuple[str, int], list[TracedIO]] = {}
        for io in self.writes():
            for key in io.block_keys():
                table.setdefault(key, []).append(io)
        return table


def trace_program(program: Program, granularity: int = 1) -> AccessTrace:
    """Execute ``program`` symbolically for every process.

    ``granularity`` is the paper's *d*: *d* compute steps collapse into one
    scheduling slot ("we consider d (d > 1) iterations as one unit to
    measure slacks"), shrinking the scheduler's search space for very large
    loops.  Slot costs are the summed compute seconds per slot.
    """
    if granularity < 1:
        raise ValueError(f"granularity must be >= 1: {granularity}")

    traces: list[ProcessTrace] = []
    for pid in range(program.n_processes):
        env: dict[str, int] = {"p": pid, **program.params}
        trace = ProcessTrace(process=pid)
        state = {"step": 0, "seq": 0, "pending_cost": 0.0}

        def flush_slot() -> None:
            trace.slot_costs.append(state["pending_cost"])
            state["pending_cost"] = 0.0

        def walk(stmts: tuple) -> None:
            for stmt in stmts:
                if isinstance(stmt, Loop):
                    for value in stmt.iter_range(env):
                        env[stmt.index] = value
                        walk(stmt.body)
                    env.pop(stmt.index, None)
                elif isinstance(stmt, Compute):
                    state["pending_cost"] += stmt.cost_at(env)
                    state["step"] += 1
                    if state["step"] % granularity == 0:
                        flush_slot()
                elif isinstance(stmt, (Read, Write)):
                    slot = state["step"] // granularity
                    trace.ios.append(
                        TracedIO(
                            process=pid,
                            slot=slot,
                            seq=state["seq"],
                            is_write=isinstance(stmt, Write),
                            file=stmt.file,
                            block=stmt.block_at(env),
                            blocks=stmt.blocks,
                        )
                    )
                    state["seq"] += 1

        walk(program.body)
        if state["step"] % granularity != 0 or state["pending_cost"] > 0:
            flush_slot()
        # Ensure trailing I/O (after the last compute) has a slot to live in.
        while trace.n_slots <= max((io.slot for io in trace.ios), default=-1):
            trace.slot_costs.append(0.0)
        traces.append(trace)

    return AccessTrace(program=program, processes=traces)
