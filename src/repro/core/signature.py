"""Access signatures and the I/O-node reuse distance metric (§IV-B).

A signature is a bitmask over the *n* I/O nodes: bit *i* is set iff the
access visits node *i*.  The distance between two signatures is

    distance(g1, g2) = n − similarity(g1, g2) + difference(g1, g2)

where *similarity* counts positions where both bits are 1 (active nodes
that get reused) and *difference* counts differing bits (extra nodes that
must be turned on).  Smaller distance ⇒ better reuse, so the reuse factor
uses ``1/distance`` — with the paper's special case ``1/0 := 2``.
"""

from __future__ import annotations

__all__ = [
    "similarity",
    "difference",
    "distance",
    "inverse_distance",
    "group_signature",
    "signature_bits",
    "signature_from_nodes",
    "ZERO_DISTANCE_INVERSE",
]

#: The paper's convention: when two signatures coincide exactly
#: (distance 0), the reuse term 1/d is taken to be 2.
ZERO_DISTANCE_INVERSE = 2.0


def similarity(g1: int, g2: int) -> int:
    """Number of I/O nodes used by *both* accesses."""
    return (g1 & g2).bit_count()


def difference(g1: int, g2: int) -> int:
    """Number of bit positions where the signatures differ."""
    return (g1 ^ g2).bit_count()


def distance(g1: int, g2: int, n_nodes: int) -> int:
    """The paper's signature distance (§IV-B)."""
    return n_nodes - similarity(g1, g2) + difference(g1, g2)


def inverse_distance(g1: int, g2: int, n_nodes: int) -> float:
    """``1/distance`` with the paper's ``1/0 := 2`` convention."""
    d = distance(g1, g2, n_nodes)
    if d == 0:
        return ZERO_DISTANCE_INVERSE
    return 1.0 / d


def group_signature(signatures: list[int]) -> int:
    """Group active signature G = g₁ | g₂ | … (bitwise OR)."""
    g = 0
    for sig in signatures:
        g |= sig
    return g


def signature_bits(signature: int, n_nodes: int) -> list[int]:
    """The η-bit vector [η₀ … η_{n−1}], node 0 first."""
    return [(signature >> i) & 1 for i in range(n_nodes)]


def signature_from_nodes(nodes, n_nodes: int) -> int:
    """Build a signature from an iterable of node indices."""
    sig = 0
    for node in nodes:
        if not 0 <= node < n_nodes:
            raise ValueError(f"node {node} outside [0, {n_nodes})")
        sig |= 1 << node
    return sig
