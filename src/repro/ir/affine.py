"""Affine expressions over loop indices and symbolic parameters.

The compiler front end represents loop bounds and file-block subscripts as
affine forms ``c0 + Σ ci·var_i`` where variables are enclosing loop indices
or program parameters (including the SPMD process id ``p``).  Affine-ness
is what decides whether the polyhedral path (:mod:`repro.ir.dependence`)
or the profiling path (:mod:`repro.ir.profiling`) extracts slacks — the
same dichotomy the paper draws between the Omega library and its profiling
tool (§IV-A).
"""

from __future__ import annotations

from typing import Mapping, Union

__all__ = ["Affine", "var", "const", "as_affine"]

Number = Union[int, "Affine"]


class Affine:
    """An immutable affine form: ``constant + Σ coeffs[v] * v``."""

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: Mapping[str, int] | None = None, constant: int = 0):
        cleaned = {v: c for v, c in (coeffs or {}).items() if c != 0}
        object.__setattr__(self, "coeffs", cleaned)
        object.__setattr__(self, "constant", constant)

    def __setattr__(self, *_args):  # pragma: no cover - immutability guard
        raise AttributeError("Affine expressions are immutable")

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def __add__(self, other: Number) -> "Affine":
        other = as_affine(other)
        coeffs = dict(self.coeffs)
        for v, c in other.coeffs.items():
            coeffs[v] = coeffs.get(v, 0) + c
        return Affine(coeffs, self.constant + other.constant)

    __radd__ = __add__

    def __sub__(self, other: Number) -> "Affine":
        return self + (as_affine(other) * -1)

    def __rsub__(self, other: Number) -> "Affine":
        return as_affine(other) + (self * -1)

    def __mul__(self, k: int) -> "Affine":
        if not isinstance(k, int):
            raise TypeError(f"affine forms only scale by integers, got {k!r}")
        return Affine({v: c * k for v, c in self.coeffs.items()}, self.constant * k)

    __rmul__ = __mul__

    def __neg__(self) -> "Affine":
        return self * -1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate under a variable binding; missing variables raise."""
        total = self.constant
        for v, c in self.coeffs.items():
            if v not in env:
                raise KeyError(f"unbound variable {v!r} in {self}")
            total += c * env[v]
        return total

    @property
    def variables(self) -> frozenset[str]:
        return frozenset(self.coeffs)

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def coefficient(self, variable: str) -> int:
        return self.coeffs.get(variable, 0)

    def substitute(self, env: Mapping[str, int]) -> "Affine":
        """Partially evaluate: bind some variables, keep the rest symbolic."""
        coeffs = {}
        constant = self.constant
        for v, c in self.coeffs.items():
            if v in env:
                constant += c * env[v]
            else:
                coeffs[v] = c
        return Affine(coeffs, constant)

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Affine):
            return NotImplemented
        return self.coeffs == other.coeffs and self.constant == other.constant

    def __hash__(self) -> int:
        return hash((frozenset(self.coeffs.items()), self.constant))

    def __repr__(self) -> str:
        parts = [f"{c}*{v}" if c != 1 else v for v, c in sorted(self.coeffs.items())]
        if self.constant or not parts:
            parts.append(str(self.constant))
        return " + ".join(parts)


def var(name: str) -> Affine:
    """The affine form of a single variable."""
    return Affine({name: 1}, 0)


def const(value: int) -> Affine:
    """The affine form of an integer constant."""
    return Affine({}, value)


def as_affine(value: Number) -> Affine:
    """Coerce ints to constant affine forms."""
    if isinstance(value, Affine):
        return value
    if isinstance(value, int):
        return const(value)
    raise TypeError(f"cannot interpret {value!r} as an affine expression")
