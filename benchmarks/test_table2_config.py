"""Table II — the experimental configuration in force."""

from repro.experiments import table2_rows

from conftest import run_once


def test_table2_config(benchmark):
    result = run_once(benchmark, table2_rows)
    print("\n" + result.text)
    data = dict(result.data)
    # The Table II anchors.
    assert data["Number of Client (Compute) Nodes"] == 32
    assert data["Number of I/O nodes"] == 8
    assert data["Stripe Size"] == "64KB"
    assert data["Idle Power"].startswith("17.1W")
    assert data["Active (R/W) Power"].startswith("36.6W")
    assert data["Seek Power"].startswith("32.1W")
    assert data["Standby Power"] == "7.2W"
    assert data["Spin-up Power"] == "44.8W"
    assert data["Spin-up Time"] == "16secs"
    assert data["Spin-down Time"] == "10secs"
    assert data["Maximum Disk Rotation Speed"] == "12000 RPM"
    assert data["Minimum Disk Rotation Speed"] == "3600 RPM"
    assert data["RPM Step-Size"] == "1200"
    assert data["delta"] == 20
    assert data["theta"] == 4
