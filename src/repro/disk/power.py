"""Power accounting for disk drives.

Maps every state label a :class:`~repro.disk.drive.Drive` can enter to a
power draw (watts) according to its :class:`~repro.disk.specs.DiskSpec`,
and integrates a :class:`~repro.sim.trace.StateTimeline` into joules with a
per-state-family breakdown.  This is the "DiskSim augmented with detailed
power models" half of the paper's methodology.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..sim.trace import StateTimeline
from . import states as st
from .specs import DiskSpec

__all__ = [
    "DiskPowerModel",
    "EnergyBreakdown",
    "reachable_power_states",
    "power_bounds",
    "rest_power_ceiling",
    "serve_power_bounds",
    "burst_power_ceiling",
]

RPM_UP = "rpm_up"
RPM_DOWN = "rpm_down"


@dataclass
class EnergyBreakdown:
    """Joules spent per state family for one disk (or summed over disks)."""

    active: float = 0.0
    seek: float = 0.0
    idle: float = 0.0
    standby: float = 0.0
    spin_up: float = 0.0
    spin_down: float = 0.0
    rpm_change: float = 0.0

    @property
    def total(self) -> float:
        """Exact (correctly rounded) sum of the family buckets.

        ``math.fsum`` makes the value independent of summation order, so
        any consumer that ``fsum``\\ s the per-family numbers — in
        whatever order a JSON snapshot hands them back — reproduces this
        total bit for bit.
        """
        return math.fsum(
            (
                self.active,
                self.seek,
                self.idle,
                self.standby,
                self.spin_up,
                self.spin_down,
                self.rpm_change,
            )
        )

    def add(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        """In-place accumulate another breakdown; returns self."""
        self.active += other.active
        self.seek += other.seek
        self.idle += other.idle
        self.standby += other.standby
        self.spin_up += other.spin_up
        self.spin_down += other.spin_down
        self.rpm_change += other.rpm_change
        return self

    def as_dict(self) -> dict[str, float]:
        return {
            "active": self.active,
            "seek": self.seek,
            "idle": self.idle,
            "standby": self.standby,
            "spin_up": self.spin_up,
            "spin_down": self.spin_down,
            "rpm_change": self.rpm_change,
            "total": self.total,
        }


# ----------------------------------------------------------------------
# Reachable-state power bounds (shared with the static analyzer)
# ----------------------------------------------------------------------
# The static energy analyzer (repro.analysis.energy) needs certified
# per-policy power floors and ceilings.  Rather than re-deriving watts
# from the spec — which would duplicate the physics and drift — the
# bounds below enumerate the exact state labels a Drive can enter under a
# policy's declared capabilities (PowerPolicy.can_spin_down / can_ramp)
# and take min/max of DiskPowerModel.power_of over them.  One definition
# of the physics, two consumers.


def reachable_power_states(
    spec: DiskSpec, can_spin_down: bool, can_ramp: bool
) -> dict[str, list[str]]:
    """State labels a drive can occupy, grouped by role.

    ``rest``  — not serving, drawing at most idle-class power
    (idle at any reachable RPM, standby, spin-down, down-ramps);
    ``serve`` — seeking or transferring at any reachable RPM;
    ``burst`` — transients that can exceed idle power (spin-up,
    up-ramps).  A policy without the matching capability contributes no
    standby/spin/ramp states, which is what makes the bounds per-policy.
    """
    rpms = list(spec.rpm_levels) if can_ramp else [spec.max_rpm]
    rest = [st.idle_at(rpm) for rpm in rpms]
    serve = [
        label
        for rpm in rpms
        for label in (
            st.active_at(rpm),
            st.active_at(rpm, write=True),
            st.seek_at(rpm),
        )
    ]
    burst: list[str] = []
    if can_spin_down:
        rest += [st.STANDBY, st.SPIN_DOWN]
        burst.append(st.SPIN_UP)
    if can_ramp:
        # A ramp passes through every intermediate level; rpm_down coasts
        # (idle-class), rpm_up needs torque above idle (burst-class).
        rest += [f"{RPM_DOWN}@{rpm}" for rpm in rpms]
        burst += [f"{RPM_UP}@{rpm}" for rpm in rpms]
    return {"rest": rest, "serve": serve, "burst": burst}


def power_bounds(
    spec: DiskSpec, can_spin_down: bool, can_ramp: bool
) -> tuple[float, float]:
    """(floor, ceiling) watts over *every* reachable state."""
    model = DiskPowerModel(spec)
    groups = reachable_power_states(spec, can_spin_down, can_ramp)
    watts = [
        model.power_of(label) for labels in groups.values() for label in labels
    ]
    return min(watts), max(watts)


def rest_power_ceiling(
    spec: DiskSpec, can_spin_down: bool, can_ramp: bool
) -> float:
    """Max watts over the non-serving, non-burst states."""
    model = DiskPowerModel(spec)
    groups = reachable_power_states(spec, can_spin_down, can_ramp)
    return max(model.power_of(label) for label in groups["rest"])


def serve_power_bounds(
    spec: DiskSpec, can_spin_down: bool, can_ramp: bool
) -> tuple[float, float]:
    """(floor, ceiling) watts over the serving (seek/transfer) states."""
    model = DiskPowerModel(spec)
    groups = reachable_power_states(spec, can_spin_down, can_ramp)
    watts = [model.power_of(label) for label in groups["serve"]]
    return min(watts), max(watts)


def burst_power_ceiling(
    spec: DiskSpec, can_spin_down: bool, can_ramp: bool
) -> float:
    """Max watts over the burst transients (spin-up, up-ramps); falls back
    to the rest ceiling when the policy has no burst states."""
    model = DiskPowerModel(spec)
    groups = reachable_power_states(spec, can_spin_down, can_ramp)
    if not groups["burst"]:
        return rest_power_ceiling(spec, can_spin_down, can_ramp)
    return max(model.power_of(label) for label in groups["burst"])


class DiskPowerModel:
    """State-label → watts mapping for one :class:`DiskSpec`."""

    def __init__(self, spec: DiskSpec):
        self.spec = spec

    def power_of(self, state: str) -> float:
        """Instantaneous power draw in ``state``."""
        spec = self.spec
        base = st.base_state(state)
        rpm = st.parse_rpm(state, spec.max_rpm)
        if base == st.IDLE:
            return spec.idle_power_at(rpm)
        if base in (st.ACTIVE_READ, st.ACTIVE_WRITE):
            return spec.active_power_at(rpm)
        if base == st.SEEK:
            return spec.seek_power_at(rpm)
        if base == st.STANDBY:
            return spec.standby_power
        if base == st.SPIN_UP:
            return spec.spin_up_power
        if base == st.SPIN_DOWN:
            return spec.spin_down_power
        if base == RPM_UP:
            # Accelerating one step toward `rpm`.
            return spec.rpm_change_power(rpm - spec.rpm_step, rpm)
        if base == RPM_DOWN:
            # Coasting down through `rpm`.
            return spec.rpm_change_power(rpm + spec.rpm_step, rpm)
        raise ValueError(f"unknown disk state {state!r}")

    def energy(self, timeline: StateTimeline) -> float:
        """Total joules for a finalized timeline."""
        return timeline.integrate(self.power_of)

    def breakdown(self, timeline: StateTimeline) -> EnergyBreakdown:
        """Per-family joules for a finalized timeline."""
        result = EnergyBreakdown()
        for iv in timeline.intervals():
            joules = self.power_of(iv.state) * iv.duration
            base = st.base_state(iv.state)
            if base in (st.ACTIVE_READ, st.ACTIVE_WRITE):
                result.active += joules
            elif base == st.SEEK:
                result.seek += joules
            elif base == st.IDLE:
                result.idle += joules
            elif base == st.STANDBY:
                result.standby += joules
            elif base == st.SPIN_UP:
                result.spin_up += joules
            elif base == st.SPIN_DOWN:
                result.spin_down += joules
            elif base in (RPM_UP, RPM_DOWN):
                result.rpm_change += joules
            else:  # pragma: no cover - guarded by power_of
                raise ValueError(f"unknown disk state {iv.state!r}")
        return result
