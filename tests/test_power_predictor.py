"""Tests for the idle-period predictor."""

import pytest

from repro.power import IdlePredictor


class TestValidation:
    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            IdlePredictor(alpha=0.0)
        with pytest.raises(ValueError):
            IdlePredictor(alpha=1.5)

    def test_window_positive(self):
        with pytest.raises(ValueError):
            IdlePredictor(window=0)

    def test_negative_observation_rejected(self):
        with pytest.raises(ValueError):
            IdlePredictor().observe(-1.0)


class TestPrediction:
    def test_initial_prediction_is_initial(self):
        assert IdlePredictor(initial=3.0).predict() == 3.0

    def test_first_observation_overrides_initial(self):
        p = IdlePredictor(initial=100.0)
        p.observe(2.0)
        assert p.predict() == 2.0

    def test_ewma_update(self):
        p = IdlePredictor(alpha=0.5)
        p.observe(10.0)
        p.observe(20.0)
        assert p.predict() == pytest.approx(15.0)

    def test_alpha_one_is_last_value(self):
        p = IdlePredictor(alpha=1.0)
        for v in (5.0, 9.0, 2.0):
            p.observe(v)
        assert p.predict() == 2.0

    def test_constant_sequence_converges_exactly(self):
        p = IdlePredictor(alpha=0.7)
        for _ in range(10):
            p.observe(42.0)
        assert p.predict() == pytest.approx(42.0)

    def test_observation_count(self):
        p = IdlePredictor()
        for _ in range(5):
            p.observe(1.0)
        assert p.observations == 5


class TestUpperEstimate:
    def test_upper_is_window_max(self):
        p = IdlePredictor(window=3)
        for v in (1.0, 50.0, 2.0):
            p.observe(v)
        assert p.predict_upper() == 50.0

    def test_upper_forgets_old_values(self):
        p = IdlePredictor(window=3)
        p.observe(100.0)
        for _ in range(3):
            p.observe(1.0)
        assert p.predict_upper() == 1.0

    def test_upper_before_observations_falls_back_to_ewma(self):
        p = IdlePredictor(initial=7.0)
        assert p.predict_upper() == 7.0

    def test_recent_tuple_order(self):
        p = IdlePredictor(window=4)
        for v in (1.0, 2.0, 3.0):
            p.observe(v)
        assert p.recent == (1.0, 2.0, 3.0)
