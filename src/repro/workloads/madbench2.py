"""``madbench2`` — cosmic-microwave-background likelihood model.

Paper profile (Table III / Fig. 12(a)): 9.8 min, and — like hf —
dominated by very short idle periods; the spin-down policies barely find
anything to use here.

Structure modelled after MADbench's out-of-core phases over large dense
matrices spilled to disk:

* **dSdC** (write-heavy): every process writes one six-block derivative-
  matrix row per step;
* **invD** (read+write): re-reads the dSdC rows — long intra-process
  producer→consumer slacks spanning a whole phase — and writes two
  inverse blocks.  The dSdC working set deliberately exceeds the
  per-I/O-node storage cache, so this phase's sequential re-scan
  LRU-thrashes the caches and genuinely hits the disks (MADbench's
  out-of-core point);
* **W** (read-heavy): re-reads the invD blocks, two per step — those
  *do* still fit in the caches, giving the phase-dependent mix of
  disk-bound and cache-bound traffic.

One short (~28 s) likelihood-evaluation slot separates the phases — far
too short for spin-down, which is what keeps that mechanism ineffective
on this app.  Mild jitter ⇒ smeared request bursts.
"""

from __future__ import annotations

from ..ir.affine import var
from ..ir.program import Compute, FileDecl, Loop, Program, Read, Write
from .base import WorkloadInfo, jitter, register, scaled

__all__ = ["build"]

BLOCK_BYTES = 128 * 1024   # 2 stripes -> 2-node signatures (cf. Fig. 9)
STEPS = 96
ROW_BLOCKS = 6             # dSdC row size; sized to thrash the node caches
STEP_SLOTS = 3             # fine compute slots per half-step
STEP_COST = 0.2
BOUNDARY_COST = 28.0


def build(n_processes: int = 32, scale: float = 1.0) -> Program:
    """Build the madbench2 program.

    ``scale=1.0`` ⇒ ≈10 simulated minutes with 32 processes.
    """
    steps = scaled(STEPS, scale)
    p = var("p")
    s = var("s")

    files = {
        "dsdc": FileDecl("dsdc", ROW_BLOCKS * n_processes * steps, BLOCK_BYTES),
        "invd": FileDecl("invd", 2 * n_processes * steps, BLOCK_BYTES),
    }
    row = (p * steps + s) * ROW_BLOCKS

    body = [
        # Phase 1 — dSdC: write one derivative row per step.
        Loop("s", 0, steps - 1, body=[
            Write("dsdc", row, blocks=ROW_BLOCKS),
        ] + [Compute(jitter(STEP_COST, 0.03, 11))] * STEP_SLOTS),
        Compute(BOUNDARY_COST),
        # Phase 2 — invD: scan the phase-1 rows back, write inverses.
        Loop("s", 0, steps - 1, body=[
            Read("dsdc", row, blocks=ROW_BLOCKS),
        ] + [Compute(jitter(STEP_COST, 0.03, 12))] * STEP_SLOTS + [
            Write("invd", (p * steps + s) * 2, blocks=2),
        ] + [Compute(jitter(STEP_COST, 0.03, 13))] * STEP_SLOTS),
        Compute(BOUNDARY_COST),
        # Phase 3 — W: read-heavy sweep over the (cache-resident) inverses.
        Loop("s", 0, steps - 1, body=[
            Read("invd", (p * steps + s) * 2),
            # The W recursion also touches the (by now cache-evicted)
            # derivative rows, so this phase still reaches the disks.
            Read("dsdc", row),
        ] + [Compute(jitter(STEP_COST, 0.03, 14))] * STEP_SLOTS + [
            Read("invd", ((p + 1) * steps - 1 - s) * 2 + 1),  # reverse sweep
        ] + [Compute(jitter(STEP_COST, 0.03, 15))] * STEP_SLOTS),
    ]
    return Program("madbench2", n_processes, files, body)


register(
    WorkloadInfo(
        name="madbench2",
        description="MADbench-style CMB likelihood: write→read phase "
        "chains, cache-thrashing out-of-core scans, almost no long idles",
        build=build,
        affine=True,
    )
)
