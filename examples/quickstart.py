#!/usr/bin/env python3
"""Quickstart: schedule the I/O of a small out-of-core matrix pipeline.

Builds a Figure-5-style blocked matrix product followed by a per-row
analysis stretch, runs the compiler (slack determination + data access
scheduling), and simulates it on the Table II storage stack with and
without the scheme under the *simple* spin-down policy — printing the
energy and performance effect the paper's framework exists to produce.

Run:  python examples/quickstart.py
"""

from repro import (
    CompilerOptions,
    Compute,
    FileDecl,
    Loop,
    Program,
    Read,
    Session,
    SessionConfig,
    TABLE2_DISK,
    Write,
    compile_schedule,
    make_policy,
    trace_program,
)
from repro.ir import var
from repro.metrics import fleet_energy, idle_cdf, idle_periods_until
from repro.storage import StripedFile, StripeMap

# ----------------------------------------------------------------------
# 1. The application: C = A x B on disk-resident blocked matrices,
#    parallelized over 4 processes (block-rows), followed per row by a
#    long eigenvalue-analysis stretch that re-reads checkpoint blocks.
# ----------------------------------------------------------------------
R = 8             # blocks per matrix dimension
P = 4             # SPMD processes
ROWS = R // P     # block-rows per process
STRETCH = 4       # analysis slots per row
BLOCK = 128 * 1024

files = {
    "A": FileDecl("A", R * R, BLOCK),
    "B": FileDecl("B", R * R, BLOCK),
    "C": FileDecl("C", R * R, BLOCK),
    "spectra": FileDecl("spectra", 5 * P * ROWS * STRETCH, BLOCK),
}
p, m, n, k, a = var("p"), var("m"), var("n"), var("k"), var("a")
program = Program(
    "matmul+analysis",
    n_processes=P,
    files=files,
    body=[
        Loop("m", p * ROWS, (p + 1) * ROWS - 1, body=[
            Loop("n", 0, R - 1, body=[
                Loop("k", 0, R - 1, body=[
                    Read("A", m * R + k),
                    Read("B", k * R + n),
                    Compute(0.2),
                    Compute(0.2),
                ]),
                Write("C", m * R + n),
                Compute(0.4),
            ]),
            # Analysis stretch: long compute slots with one small read
            # between them — exactly the idle periods the compiler can
            # fuse by hoisting the reads into the multiply above.
            Loop("a", 0, STRETCH - 1, body=[
                Read("spectra", (p * ROWS * STRETCH + (m - p * ROWS) * STRETCH + a) * 5),
                Compute(25.0),
            ]),
        ]),
    ],
)
print(f"program: {program.name}, affine={program.is_affine}")

# ----------------------------------------------------------------------
# 2. The compiler: slacks -> schedule -> per-process tables.
# ----------------------------------------------------------------------
N_NODES = 8
STRIPE = 64 * 1024
stripe_map = StripeMap(STRIPE, N_NODES)
striped = {name: StripedFile(name, decl.size_bytes) for name, decl in files.items()}

result = compile_schedule(
    program, stripe_map, striped, CompilerOptions(delta=20, theta=4)
)
stats = result.stats()
print(
    f"compiled: {stats['accesses']:.0f} accesses, {stats['moved']:.0f} moved, "
    f"{stats['early_prefetches']:.0f} early prefetches, "
    f"mean slack {stats['mean_slack']:.1f} slots"
)

# ----------------------------------------------------------------------
# 3. Simulate with and without the scheme under simple spin-down.
# ----------------------------------------------------------------------
def run(with_scheme: bool):
    session = Session(
        result.trace,
        TABLE2_DISK,
        lambda: make_policy("simple", timeout=15.0),
        SessionConfig(n_ionodes=N_NODES, stripe_size=STRIPE),
        compile_result=result if with_scheme else None,
    )
    outcome = session.run()
    horizon = outcome.execution_time
    energy = fleet_energy(outcome.drives, horizon)
    periods = [g for d in outcome.drives for g in idle_periods_until(d, horizon)]
    return horizon, energy, idle_cdf(periods)


t_without, e_without, cdf_without = run(with_scheme=False)
t_with, e_with, cdf_with = run(with_scheme=True)

print("\n                     without scheme      with scheme")
print(f"execution time       {t_without:10.1f} s      {t_with:10.1f} s")
print(f"disk energy          {e_without:10.1f} J      {e_with:10.1f} J")
print(
    f"idle periods <=1s    {cdf_without.fraction_at_most(1000):10.0%}"
    f"        {cdf_with.fraction_at_most(1000):10.0%}"
)
saving = 1 - e_with / e_without
speedup = t_without / t_with - 1
print(f"\nscheme effect: {saving:.1%} less disk energy, {speedup:+.1%} faster")
