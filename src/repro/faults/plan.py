"""Fault plans: the declarative input of the fault-injection subsystem.

A :class:`FaultPlan` is a frozen, hashable value object listing concrete
:class:`FaultEvent`\\ s at simulated times plus the recovery knobs the
degraded-mode paths use (retry limits, backoff bases, the scheduler
thread's fetch watchdog).  Plans are deliberately *data*: loading the
same JSON file always produces an equal plan, equal plans produce
bit-identical simulations, and the plan participates in every cache and
memoization key (see :meth:`FaultPlan.to_key`), so faulted and clean
runs can never collide in the result cache.

Fault taxonomy (``FaultEvent.kind``):

``disk.transient_errors``
    During ``[time, time+duration)`` each read *attempt* on the target
    drive fails with ``probability`` (drawn from the drive's named
    seeded stream).  The drive retries with a bounded per-attempt
    penalty; retries are counted, and an attempt past the retry limit
    is served from the spare-sector reserve (remap semantics).
``disk.bad_sectors``
    From ``time`` on, reads overlapping physical LBAs
    ``[lba_start, lba_end)`` fail deterministically until the drive
    exhausts its retries and remaps the extent; later reads are clean.
``disk.fail``
    The target drive is dead from ``time`` on.  The I/O node routes
    around it through the RAID map's degraded translation (RAID-5
    parity reconstruction, RAID-10 mirror failover); RAID-0 ops are
    counted as lost and completed immediately.
``disk.spinup_fail``
    The next ``count`` spin-up completions at or after ``time`` fail;
    the drive stays in standby and retries with exponential backoff.
``node.straggle``
    During the window, the target I/O node's link serves every transfer
    ``factor`` times slower (service-time inflation — the classic
    straggling-server model).
``node.crash``
    During the window the target node is down: transfers that would
    start inside the window are held until it ends (the node reboots
    and then serves its backlog).  Windows are finite by construction.
``net.loss``
    During the window each transfer on the target node's link suffers
    retransmissions with ``probability`` per attempt (drawn from the
    link's named stream), each adding ``retransmit_delay`` seconds.
``net.latency``
    During the window every transfer on the target link pays
    ``extra_latency`` additional seconds.

Service-layer faults (``server.*``) target the *serving path* of the
scheduling service, not the simulation: they are consumed exclusively by
:class:`repro.serve.chaos.ChaosEngine` (``repro serve --chaos``), fire
with ``probability`` per opportunity (drawn from a named stream per
kind), and ``count`` bounds how many times a given event fires (0 =
unlimited).  The :class:`~repro.faults.injector.FaultInjector` ignores
them, so a plan of only server events injects nothing into a simulation:

``server.conn_reset``
    The connection is reset mid-response (partial bytes, then abort).
``server.slow_loris``
    Request handling stalls ``extra_latency`` seconds before reading
    (the server end of a slow-loris exchange).
``server.truncate_body``
    A response body is cut short of its declared length (or a chunked
    stream loses its terminal chunk) and the connection closes.
``server.oversize_body``
    A response is followed by garbage bytes beyond its declared length.
``server.executor_death``
    The batch executor dies mid-batch; accepted jobs are re-queued.
``server.wal_stall``
    The admission WAL append stalls ``extra_latency`` seconds before
    becoming durable (admissions are delayed, never lost).

Targets: disk events name a drive (``node0.disk1``); node/net events
name an I/O node (``node0`` or plain ``0``); server events use ``*``
(the whole serving path — there is one server).

Determinism contract: faults are *drawn from named seeded streams* —
one stream per component, keyed by ``(plan.seed, component name)`` —
so a component's draw sequence depends only on its own (deterministic)
operation order, never on how events from different components happen
to interleave.  Identical plans therefore replay bit-for-bit, serial
or under ``--jobs N``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Iterable, Optional, Union

__all__ = [
    "FAULT_KINDS",
    "DISK_KINDS",
    "NODE_KINDS",
    "SERVER_KINDS",
    "FaultEvent",
    "FaultPlan",
    "plan_to_dict",
    "plan_from_dict",
    "load_plan",
    "save_plan",
]

DISK_KINDS = frozenset(
    {"disk.transient_errors", "disk.bad_sectors", "disk.fail",
     "disk.spinup_fail"}
)
NODE_KINDS = frozenset(
    {"node.straggle", "node.crash", "net.loss", "net.latency"}
)
#: Serving-path faults, consumed only by ``repro.serve.chaos`` — the
#: simulation-side injector skips them entirely.
SERVER_KINDS = frozenset(
    {"server.conn_reset", "server.slow_loris", "server.truncate_body",
     "server.oversize_body", "server.executor_death", "server.wal_stall"}
)
FAULT_KINDS = DISK_KINDS | NODE_KINDS | SERVER_KINDS

#: Server kinds that fire per opportunity with a probability draw.
_SERVER_PROBABILISTIC = SERVER_KINDS

#: Server kinds that stall for ``extra_latency`` seconds when they fire.
_SERVER_STALLS = frozenset({"server.slow_loris", "server.wal_stall"})

#: Kinds that require a positive-length window.
_WINDOWED = frozenset(
    {"disk.transient_errors", "node.straggle", "node.crash", "net.loss",
     "net.latency"}
)


@dataclass(frozen=True)
class FaultEvent:
    """One concrete fault, scheduled on the simulated timeline."""

    kind: str
    target: str
    time: float = 0.0
    duration: float = 0.0
    probability: float = 0.0
    lba_start: int = -1
    lba_end: int = -1
    count: int = 0
    factor: float = 1.0
    extra_latency: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} "
                f"(expected one of {sorted(FAULT_KINDS)})"
            )
        if not self.target:
            raise ValueError(f"{self.kind}: empty target")
        if self.time < 0:
            raise ValueError(f"{self.kind}: negative time {self.time}")
        if self.kind in _WINDOWED and self.duration <= 0:
            raise ValueError(
                f"{self.kind}: needs a positive duration window "
                f"(got {self.duration})"
            )
        if self.kind in ("disk.transient_errors", "net.loss") or (
            self.kind in _SERVER_PROBABILISTIC
        ):
            if not 0.0 < self.probability <= 1.0:
                raise ValueError(
                    f"{self.kind}: probability must be in (0, 1] "
                    f"(got {self.probability})"
                )
        if self.kind in SERVER_KINDS:
            if self.count < 0:
                raise ValueError(
                    f"{self.kind}: count must be >= 0 (0 = unlimited, "
                    f"got {self.count})"
                )
        if self.kind in _SERVER_STALLS and self.extra_latency <= 0:
            raise ValueError(
                f"{self.kind}: extra_latency must be > 0 "
                f"(got {self.extra_latency})"
            )
        if self.kind == "disk.bad_sectors":
            if self.lba_start < 0 or self.lba_end <= self.lba_start:
                raise ValueError(
                    f"disk.bad_sectors: bad extent "
                    f"[{self.lba_start}, {self.lba_end})"
                )
        if self.kind == "disk.spinup_fail" and self.count < 1:
            raise ValueError(
                f"disk.spinup_fail: count must be >= 1 (got {self.count})"
            )
        if self.kind == "node.straggle" and self.factor <= 1.0:
            raise ValueError(
                f"node.straggle: factor must be > 1 (got {self.factor})"
            )
        if self.kind == "net.latency" and self.extra_latency <= 0:
            raise ValueError(
                f"net.latency: extra_latency must be > 0 "
                f"(got {self.extra_latency})"
            )

    @property
    def end(self) -> float:
        return self.time + self.duration

    def to_key(self) -> tuple:
        """Canonical primitive tuple (participates in cache digests)."""
        return tuple(
            (f.name, getattr(self, f.name)) for f in fields(self)
        )


@dataclass(frozen=True)
class FaultPlan:
    """A complete fault schedule plus the degraded-mode recovery knobs."""

    events: tuple = ()
    #: Root of every named fault stream (see determinism contract above).
    seed: int = 0
    #: Bounded-retry limit for faulted read attempts on a drive.
    read_retry_limit: int = 3
    #: Seconds each read retry attempt costs (re-read after a miss).
    read_retry_penalty: float = 0.015
    #: Base of the exponential backoff between failed spin-up attempts.
    spinup_retry_base: float = 0.5
    #: Scheduler-thread fetch watchdog: a prefetch still in flight after
    #: this many seconds is abandoned and the access falls back to an
    #: on-demand read.  ``None`` disables the watchdog even under faults.
    fetch_timeout: Optional[float] = 5.0
    #: How many times the watchdog re-requests a timed-out fetch (with
    #: exponential backoff) before leaving it to the on-demand path.
    fetch_retries: int = 2
    #: Seconds one retransmission adds under ``net.loss``.
    retransmit_delay: float = 0.02

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise TypeError(f"not a FaultEvent: {event!r}")
        if self.read_retry_limit < 1:
            raise ValueError(
                f"read_retry_limit must be >= 1: {self.read_retry_limit}"
            )
        if self.read_retry_penalty < 0:
            raise ValueError(
                f"negative read_retry_penalty: {self.read_retry_penalty}"
            )
        if self.spinup_retry_base <= 0:
            raise ValueError(
                f"spinup_retry_base must be > 0: {self.spinup_retry_base}"
            )
        if self.fetch_timeout is not None and self.fetch_timeout <= 0:
            raise ValueError(
                f"fetch_timeout must be > 0 or None: {self.fetch_timeout}"
            )
        if self.fetch_retries < 0:
            raise ValueError(
                f"negative fetch_retries: {self.fetch_retries}"
            )
        if self.retransmit_delay < 0:
            raise ValueError(
                f"negative retransmit_delay: {self.retransmit_delay}"
            )

    def __bool__(self) -> bool:
        """A plan is truthy when it actually injects something."""
        return bool(self.events)

    def to_key(self) -> tuple:
        """Canonical primitive tuple — the plan's cache-key contribution.

        Nested tuples of primitives only, so it JSON-encodes inside
        :func:`repro.exec.cache.point_digest` and hashes inside the
        runner's memoization keys.
        """
        scalars = tuple(
            (f.name, getattr(self, f.name))
            for f in fields(self)
            if f.name != "events"
        )
        return ("faultplan",) + scalars + (
            ("events", tuple(e.to_key() for e in self.events)),
        )


# ----------------------------------------------------------------------
# JSON round-trip
# ----------------------------------------------------------------------
_EVENT_FIELDS = tuple(f.name for f in fields(FaultEvent))
_PLAN_FIELDS = tuple(
    f.name for f in fields(FaultPlan) if f.name != "events"
)


def plan_to_dict(plan: FaultPlan) -> dict[str, Any]:
    """JSON-able dict; round-trips exactly through :func:`plan_from_dict`."""
    return {
        **{name: getattr(plan, name) for name in _PLAN_FIELDS},
        "events": [
            {name: getattr(e, name) for name in _EVENT_FIELDS}
            for e in plan.events
        ],
    }


def plan_from_dict(data: dict[str, Any]) -> FaultPlan:
    """Build a validated plan from a JSON-decoded dict."""
    if not isinstance(data, dict):
        raise ValueError(f"fault plan must be a JSON object, got {data!r}")
    unknown = set(data) - set(_PLAN_FIELDS) - {"events"}
    if unknown:
        raise ValueError(f"unknown fault plan field(s): {sorted(unknown)}")
    events: Iterable = data.get("events", ())
    parsed = []
    for i, raw in enumerate(events):
        if not isinstance(raw, dict):
            raise ValueError(f"events[{i}] is not an object: {raw!r}")
        bad = set(raw) - set(_EVENT_FIELDS)
        if bad:
            raise ValueError(
                f"events[{i}]: unknown field(s) {sorted(bad)}"
            )
        parsed.append(FaultEvent(**raw))
    knobs = {k: v for k, v in data.items() if k != "events"}
    return FaultPlan(events=tuple(parsed), **knobs)


def load_plan(path: Union[str, Path]) -> FaultPlan:
    """Load and validate a fault plan from a JSON file."""
    with Path(path).open("r", encoding="utf-8") as fh:
        return plan_from_dict(json.load(fh))


def save_plan(plan: FaultPlan, path: Union[str, Path]) -> Path:
    """Write a plan as JSON; round-trips exactly through ``load_plan``."""
    path = Path(path)
    path.write_text(
        json.dumps(plan_to_dict(plan), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path
