"""Synthetic load harness for the scheduling service.

The harness follows the classic policy-benchmark shape (configure →
warm → timed burst → metrics before/after): it first submits each point
of the workload *mix* once and waits for completion (warming the
tenant's cache so the timed phase measures serving, not simulation),
snapshots the server's ``server.*`` metrics, then drives ``clients``
concurrent clients — each holding one persistent keep-alive connection —
through ``requests`` submissions apiece, long-polling every job to
completion and validating each returned result through
:func:`~repro.exec.serialize.run_result_from_dict` (a torn or
foreign-schema payload counts as a failure, not a silent success).
A final metrics snapshot is diffed against the first so the report can
attribute exactly what the burst did: cache hits vs simulations,
coalesced submissions, peak queue depth.

Backpressure is part of the protocol, not a failure: a ``429`` makes
the client sleep the server's ``Retry-After`` (capped, so tests stay
fast) and resubmit; only exhausted retries, transport errors, failed
jobs, and invalid results count as failed requests.

Resilience is accounted separately from failure: the report's
``retried`` counts transport-level retries the :class:`HttpClient`
absorbed, ``deduplicated`` counts 202s that coalesced onto an
already-admitted job (digest idempotency — what makes those retries
safe), and ``lost`` counts admissions whose terminal state was never
observed.  ``lost`` is the one the kill-recover harness pins to zero:
a crash may delay an accepted job, never lose it.

The mix is sampled deterministically per (client, request) index, so two
runs of the same configuration issue the same request stream.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from ..exec.serialize import run_result_from_dict
from ..experiments.config import ExperimentConfig
from .http import HttpClient
from .server import DEFAULT_TENANT, SchedulingServer, ServerConfig

__all__ = [
    "LoadgenConfig",
    "default_mix",
    "run_loadgen",
    "run_inprocess_loadtest",
]

#: Cap on honoring Retry-After so a saturated queue cannot stall a
#: bounded test run for the server's full (up to 60 s) estimate.
_MAX_RETRY_SLEEP = 2.0

#: Attempts per request before a persistent 429 counts as a failure.
_MAX_SUBMIT_ATTEMPTS = 20


def default_mix(
    apps: tuple[str, ...] = ("sar", "hf"),
    policy: str = "simple",
    schemes: tuple[bool, ...] = (False, True),
) -> list[dict[str, Any]]:
    """The default workload mix: every (app, scheme) combination."""
    return [
        {"workload": app, "policy": policy, "scheme": scheme}
        for app in apps
        for scheme in schemes
    ]


@dataclass(frozen=True)
class LoadgenConfig:
    """One load-test run against a scheduling server."""

    host: str = "127.0.0.1"
    port: int = 8177
    clients: int = 8
    requests: int = 4  # per client
    mix: tuple[dict, ...] = field(
        default_factory=lambda: tuple(default_mix())
    )
    tenant: str = DEFAULT_TENANT
    #: Long-poll ceiling per job-status request (seconds).
    wait: float = 30.0
    #: Warm the cache (submit the mix once, await completion) first.
    warm: bool = True

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError(f"clients must be >= 1: {self.clients}")
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1: {self.requests}")
        if not self.mix:
            raise ValueError("the workload mix must not be empty")


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(1, int(q * len(sorted_values) + 0.999999))
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass
class _ClientTally:
    """One client's outcomes (merged into the report at the end)."""

    ok: int = 0
    failed: int = 0
    rejected_retries: int = 0  # 429s honored and resubmitted
    retried: int = 0  # transport-level retries the HttpClient absorbed
    deduplicated: int = 0  # 202s that coalesced onto an existing job
    #: Admitted (202 received) but terminal state never observed — the
    #: kill-recover harness asserts this stays zero: a crash may delay
    #: an accepted job, never lose it.
    lost: int = 0
    latencies_s: list[float] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)


async def _drive_request(
    client: HttpClient, cfg: LoadgenConfig, doc: dict, tally: _ClientTally
) -> None:
    """Submit one point, ride it to terminal state, validate the result.

    Transport failures that outlive the client's own retries are tallied
    here — as ``failed`` always, and *additionally* as ``lost`` when the
    server had already admitted the job (a 202 is a promise; losing one
    is the failure mode the WAL exists to prevent).
    """
    started = time.monotonic()  # det: load-harness latency clock, not simulated state
    admitted: list = []
    ok_before = tally.ok
    try:
        await _submit_and_await(client, cfg, doc, tally, admitted)
    except (ConnectionError, OSError, asyncio.IncompleteReadError) as exc:
        tally.failed += 1
        if admitted:
            tally.lost += 1
        tally.errors.append(f"transport: {type(exc).__name__}: {exc}")
        return
    if tally.ok > ok_before:
        tally.latencies_s.append(time.monotonic() - started)  # det: load-harness latency clock, not simulated state


async def _submit_and_await(
    client: HttpClient,
    cfg: LoadgenConfig,
    doc: dict,
    tally: _ClientTally,
    admitted: list,
) -> None:
    """The request body of :func:`_drive_request`; appends the job id to
    ``admitted`` the moment a 202 lands so the caller can classify a
    later transport failure as a *lost* admission."""
    headers = {"X-Repro-Tenant": cfg.tenant}
    job_id: Optional[str] = None
    for _attempt in range(_MAX_SUBMIT_ATTEMPTS):
        status, resp_headers, body = await client.request(
            "POST", "/v1/submit", doc=doc, headers=headers
        )
        if status == 202:
            job_id = body["job"]["id"]
            admitted.append(job_id)
            if body["job"].get("coalesced"):
                tally.deduplicated += 1
            break
        if status == 429:
            tally.rejected_retries += 1
            retry_after = float(resp_headers.get("retry-after", "1"))
            await asyncio.sleep(min(retry_after, _MAX_RETRY_SLEEP))
            continue
        tally.failed += 1
        tally.errors.append(f"submit -> {status}: {body}")
        return
    if job_id is None:
        tally.failed += 1
        tally.errors.append("submit: queue stayed full through every retry")
        return

    while True:
        status, _h, body = await client.request(
            "GET", f"/v1/jobs/{job_id}?wait={cfg.wait:g}", headers=headers
        )
        if status != 200:
            tally.failed += 1
            tally.lost += 1  # admitted, but we can no longer see it
            tally.errors.append(f"poll {job_id} -> {status}: {body}")
            return
        state = body["job"]["state"]
        if state == "done":
            break
        if state == "failed":
            tally.failed += 1
            tally.errors.append(
                f"job {job_id} failed: {body['job'].get('error')}"
            )
            return

    try:
        run_result_from_dict(body["job"]["result"])
    except (ValueError, KeyError, TypeError) as exc:
        tally.failed += 1
        tally.errors.append(f"job {job_id} returned invalid result: {exc}")
        return
    tally.ok += 1


async def _client_worker(
    index: int, cfg: LoadgenConfig, tally: _ClientTally
) -> None:
    client = HttpClient(cfg.host, cfg.port)
    try:
        for j in range(cfg.requests):
            # Deterministic mix sampling: the (client, request) index
            # alone picks the point, so reruns issue the same stream.
            doc = cfg.mix[(index + j * cfg.clients) % len(cfg.mix)]
            await _drive_request(client, cfg, dict(doc), tally)
    finally:
        tally.retried += client.transport_retries
        await client.close()


async def _fetch_metrics(cfg: LoadgenConfig) -> dict[str, Any]:
    client = HttpClient(cfg.host, cfg.port)
    try:
        status, _h, body = await client.request("GET", "/v1/metrics")
        if status != 200:
            raise RuntimeError(f"/v1/metrics -> {status}")
        return body
    finally:
        await client.close()


async def _warm(cfg: LoadgenConfig) -> int:
    """Submit every mix point once and await completion; returns the
    number of warm submissions that reached a terminal state cleanly."""
    tally = _ClientTally()
    client = HttpClient(cfg.host, cfg.port)
    try:
        for doc in cfg.mix:
            await _drive_request(client, cfg, dict(doc), tally)
    finally:
        await client.close()
    if tally.failed:
        raise RuntimeError(
            f"warm phase failed for {tally.failed} point(s): "
            f"{'; '.join(tally.errors[:3])}"
        )
    return tally.ok


def _counter_delta(
    before: dict[str, Any], after: dict[str, Any]
) -> dict[str, int]:
    b, a = before.get("counters", {}), after.get("counters", {})
    return {name: a.get(name, 0) - b.get(name, 0) for name in sorted(a)}


async def run_loadgen(cfg: LoadgenConfig) -> dict[str, Any]:
    """Run the full harness against a live server; returns the report.

    The report is JSON-able and schema-stable: every key is present on
    every run (zero/empty on clean ones), so BENCH records can embed it
    directly.
    """
    warmed = await _warm(cfg) if cfg.warm else 0
    before = await _fetch_metrics(cfg)

    tallies = [_ClientTally() for _ in range(cfg.clients)]
    started = time.monotonic()  # det: load-harness wall-clock phase timer, not simulated state
    await asyncio.gather(
        *(
            _client_worker(i, cfg, tallies[i])
            for i in range(cfg.clients)
        )
    )
    elapsed = time.monotonic() - started  # det: load-harness wall-clock phase timer, not simulated state

    after = await _fetch_metrics(cfg)
    delta = _counter_delta(before, after)

    ok = sum(t.ok for t in tallies)
    failed = sum(t.failed for t in tallies)
    latencies = sorted(
        lat for t in tallies for lat in t.latencies_s
    )
    total = cfg.clients * cfg.requests
    hits = delta.get("server.cache_hits", 0)
    sims = delta.get("server.simulated", 0)
    resolved = hits + sims
    return {
        "clients": cfg.clients,
        "requests_per_client": cfg.requests,
        "requests": total,
        "ok": ok,
        "failed": failed,
        "rejected_retries": sum(t.rejected_retries for t in tallies),
        "retried": sum(t.retried for t in tallies),
        "deduplicated": sum(t.deduplicated for t in tallies),
        "lost": sum(t.lost for t in tallies),
        "warmed": warmed,
        "seconds": round(elapsed, 6),
        "rps": round(total / elapsed, 3) if elapsed > 0 else 0.0,
        "latency_ms": {
            "p50": round(_percentile(latencies, 0.50) * 1e3, 3),
            "p99": round(_percentile(latencies, 0.99) * 1e3, 3),
            "mean": round(
                sum(latencies) / len(latencies) * 1e3 if latencies else 0.0,
                3,
            ),
            "max": round(latencies[-1] * 1e3 if latencies else 0.0, 3),
        },
        "cache_hit_rate": round(hits / resolved, 6) if resolved else 0.0,
        "batched": delta.get("server.batched", 0),
        "simulated": sims,
        "cache_hits": hits,
        "queue_depth_peak": after.get("gauges", {}).get(
            "server.queue_depth_peak", 0.0
        ),
        "errors": sorted(
            err for t in tallies for err in t.errors
        )[:10],
    }


async def run_inprocess_loadtest(
    base_config: ExperimentConfig,
    cache_root: Path,
    clients: int = 8,
    requests: int = 4,
    mix: Optional[list[dict[str, Any]]] = None,
    server_config: Optional[ServerConfig] = None,
    warm: bool = True,
) -> dict[str, Any]:
    """Spin up a server on an ephemeral port, load-test it, tear it down.

    This is the path ``repro loadtest`` (without ``--url``) and the BENCH
    ``server`` block use: one process, one event loop, real sockets on
    localhost — the exact wire path of a remote client, minus the
    network.
    """
    srv_cfg = server_config or ServerConfig(
        port=0,
        cache_root=Path(cache_root),
        base_config=base_config,
    )
    server = SchedulingServer(srv_cfg)
    await server.start()
    try:
        cfg = LoadgenConfig(
            host=srv_cfg.host,
            port=server.port,
            clients=clients,
            requests=requests,
            mix=tuple(mix) if mix is not None else tuple(default_mix()),
            warm=warm,
        )
        return await run_loadgen(cfg)
    finally:
        await server.stop()
