"""The disk drive model: request queue, elevator scheduling, power states.

One :class:`Drive` owns an event-driven service loop inside a
:class:`~repro.sim.engine.Simulator`.  A power-management policy (see
:mod:`repro.power`) attaches to the drive and reacts to idle-start /
request-arrival notifications by spinning the disk down, waking it up, or
ramping it through the DRPM speed ladder.

Service discipline
------------------
* Requests queue; the head serves them one at a time picked by an elevator
  (SCAN) sweep over cylinders (Table II: "Disk-Arm Scheduling: Elevator").
* A request arriving while the disk is in standby forces a spin-up; one
  arriving mid-spin-down waits for the spin-down to complete and then for
  the full spin-up (the usual DiskSim semantics).
* Multi-speed operation ramps one RPM step at a time; a pending request
  pauses the ramp at the next step boundary and is served at the current
  stable speed (DRPM disks "can serve requests even under low rotational
  speeds").  Policies may instead demand full speed before service by
  setting ``serve_at_low_rpm=False``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional, TYPE_CHECKING

from ..sim.engine import Simulator
from ..sim.events import Event
from ..sim.trace import StateTimeline
from . import states as st
from .mechanics import lba_to_cylinder, service_components
from .power import RPM_DOWN, RPM_UP, DiskPowerModel, EnergyBreakdown
from .specs import DiskSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.injector import DriveFaultState
    from ..power.policy import PowerPolicy

__all__ = ["DiskRequest", "Drive", "DriveStats"]

_request_ids = itertools.count()


@dataclass(slots=True)
class DiskRequest:
    """One block-level request submitted to a drive."""

    lba: int
    nbytes: int
    is_write: bool = False
    sequential_hint: bool = False
    on_complete: Optional[Callable[["DiskRequest"], None]] = None
    req_id: int = field(default_factory=lambda: next(_request_ids))
    submit_time: float = -1.0
    start_time: float = -1.0
    end_time: float = -1.0
    #: Fault-injection retry tally (media errors re-read in place).
    retries: int = 0

    @property
    def queue_delay(self) -> float:
        return self.start_time - self.submit_time

    @property
    def response_time(self) -> float:
        return self.end_time - self.submit_time


@dataclass
class DriveStats:
    """Aggregate request statistics for one drive."""

    requests: int = 0
    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    total_response_time: float = 0.0
    total_queue_delay: float = 0.0
    max_queue_depth: int = 0
    spin_ups: int = 0
    spin_downs: int = 0
    aborted_spin_downs: int = 0
    rpm_steps: int = 0

    @property
    def mean_response_time(self) -> float:
        return self.total_response_time / self.requests if self.requests else 0.0


class Drive:
    """An event-driven disk drive with power management hooks."""

    __slots__ = (
        "sim",
        "spec",
        "name",
        "serve_at_low_rpm",
        "ramp_restart_delay",
        "arm_scheduling",
        "power_model",
        "timeline",
        "stats",
        "current_rpm",
        "target_rpm",
        "_queue",
        "_busy",
        "_head_cylinder",
        "_sweep_up",
        "_spinning_down",
        "_spin_down_started",
        "_spin_down_event",
        "_spun_down",
        "_spinning_up",
        "_spin_up_remaining",
        "_ramping",
        "_ramp_event",
        "_ramp_from",
        "_ramp_to",
        "_ramp_started",
        "_ramp_aborting",
        "ramp_settle_time",
        "policy",
        "_tracer",
        "_faults",
        "_spinup_attempt",
    )

    def __init__(
        self,
        sim: Simulator,
        spec: DiskSpec,
        name: str = "disk",
        serve_at_low_rpm: bool = True,
        ramp_restart_delay: float = 0.5,
        arm_scheduling: str = "elevator",
        faults: Optional["DriveFaultState"] = None,
    ):
        if arm_scheduling not in ("elevator", "fifo"):
            raise ValueError(f"unknown arm_scheduling {arm_scheduling!r}")
        self.sim = sim
        self.spec = spec
        self.name = name
        self.serve_at_low_rpm = serve_at_low_rpm
        self.ramp_restart_delay = ramp_restart_delay
        self.arm_scheduling = arm_scheduling

        self.power_model = DiskPowerModel(spec)
        self.timeline = StateTimeline(name, st.idle_at(spec.max_rpm), sim.now)
        self.stats = DriveStats()

        self.current_rpm = spec.max_rpm
        self.target_rpm = spec.max_rpm
        self._queue: list[DiskRequest] = []
        self._busy = False
        self._head_cylinder = 0
        self._sweep_up = True

        # Transition bookkeeping.
        self._spinning_down = False
        self._spin_down_started = 0.0
        self._spin_down_event: Optional[Event] = None
        self._spun_down = False       # in standby
        self._spinning_up = False
        self._spin_up_remaining = 0.0
        self._ramping = False
        self._ramp_event: Optional[Event] = None
        self._ramp_from = 0
        self._ramp_to = 0
        self._ramp_started = 0.0
        self._ramp_aborting = False
        #: Settle time when a request interrupts an RPM transition: the
        #: spindle locks onto the nearest ladder speed rather than waiting
        #: out the whole quantized step (real DRPM ramps continuously).
        self.ramp_settle_time = 0.2

        self.policy: Optional["PowerPolicy"] = None
        self._tracer = sim.obs.tracer
        self._faults = faults
        self._spinup_attempt = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_idle(self) -> bool:
        """No request in service and none queued."""
        return not self._busy and not self._queue

    @property
    def is_standby(self) -> bool:
        return self._spun_down

    @property
    def is_transitioning(self) -> bool:
        return self._spinning_down or self._spinning_up or self._ramping

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def fault_state(self) -> Optional["DriveFaultState"]:
        """This drive's fault-injection state, if any event targets it."""
        return self._faults

    @property
    def is_dead(self) -> bool:
        """Whether an injected ``disk.fail`` has taken effect by now.

        A dead drive never receives *new* requests — the I/O node's RAID
        translation routes around it (degraded reads) — but requests
        already in flight at the instant of death complete normally: the
        failure model is fail-stop at the admission boundary.
        """
        fs = self._faults
        return fs is not None and fs.is_dead(self.sim.now)

    def attach_policy(self, policy: "PowerPolicy") -> None:
        """Attach a power-management policy; it starts observing now."""
        self.policy = policy
        policy.bind(self)

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit(self, request: DiskRequest) -> None:
        """Enqueue a request.  Its ``on_complete`` fires when served."""
        request.submit_time = self.sim.now
        was_idle = self.is_idle
        self._queue.append(request)
        self.stats.max_queue_depth = max(self.stats.max_queue_depth, len(self._queue))
        if self._tracer.detail:
            self._tracer.begin(
                "disk.request",
                drive=self.name,
                rid=request.req_id,
                lba=request.lba,
                nbytes=request.nbytes,
                write=request.is_write,
                qdepth=len(self._queue),
            )
        if was_idle and self.policy is not None:
            self.policy.on_request_arrival(self.sim.now)
        self._try_start_service()

    def _pick_next(self) -> DiskRequest:
        """Elevator (SCAN): continue the sweep direction, turn at the end.
        FIFO (the ablation alternative) serves in arrival order."""
        if len(self._queue) == 1 or self.arm_scheduling == "fifo":
            return self._queue.pop(0)
        keyed = [
            (lba_to_cylinder(self.spec, r.lba), i, r)
            for i, r in enumerate(self._queue)
        ]
        ahead = [k for k in keyed if (k[0] >= self._head_cylinder) == self._sweep_up]
        if not ahead:
            self._sweep_up = not self._sweep_up
            ahead = keyed
        chosen = min(
            ahead, key=lambda k: (abs(k[0] - self._head_cylinder), k[1])
        )
        self._queue.pop(chosen[1])
        return chosen[2]

    def _try_start_service(self) -> None:
        if self._busy or not self._queue:
            return
        if self._spun_down:
            self.spin_up()
            return
        if self._spinning_down:
            # Abort the spin-down: re-spin from the current platter speed.
            # The recovery time/energy is proportional to how far the
            # platters had decelerated (DiskSim-style interruptible
            # transition).
            self._abort_spin_down()
            return
        if self._spinning_up:
            return  # transition completion re-invokes us
        if self._ramping:
            # Interrupt the transition: settle at the nearest speed, then
            # serve (the settle completion re-invokes us).
            self._abort_ramp_step()
            return
        if not self.serve_at_low_rpm and self.current_rpm != self.spec.max_rpm:
            self.request_rpm(self.spec.max_rpm)
            return
        self._start_service(self._pick_next())

    def _start_service(self, request: DiskRequest) -> None:
        self._busy = True
        request.start_time = self.sim.now
        parts = service_components(
            self.spec,
            self._head_cylinder,
            request.lba,
            request.nbytes,
            self.current_rpm,
            sequential_hint=request.sequential_hint,
        )
        now = self.sim.now
        if parts.seek > 0:
            self.timeline.transition(now, st.seek_at(self.current_rpm))
        self.sim.schedule(parts.seek, self._begin_transfer, request, parts)

    def _begin_transfer(self, request: DiskRequest, parts) -> None:
        self.timeline.transition(
            self.sim.now, st.active_at(self.current_rpm, write=request.is_write)
        )
        self.sim.schedule(
            parts.rotational_latency + parts.transfer, self._complete, request
        )

    def _complete(self, request: DiskRequest) -> None:
        now = self.sim.now
        fs = self._faults
        if fs is not None and not request.is_write:
            if fs.read_attempt_faulty(
                now, request.lba, request.nbytes, request.retries
            ):
                # Media error: re-read in place after a fixed penalty.
                # The drive stays busy and in its ACTIVE timeline state,
                # so retries cost both time and active-power energy.
                request.retries += 1
                self.sim.schedule(fs.retry_penalty, self._complete, request)
                return
            if request.retries:
                fs.read_recovered(
                    now, request.lba, request.nbytes, request.retries
                )
        request.end_time = now
        self._head_cylinder = lba_to_cylinder(self.spec, request.lba)
        self._busy = False

        stats = self.stats
        stats.requests += 1
        stats.total_response_time += request.response_time
        stats.total_queue_delay += request.queue_delay
        if request.is_write:
            stats.writes += 1
            stats.bytes_written += request.nbytes
        else:
            stats.reads += 1
            stats.bytes_read += request.nbytes

        if self._tracer.detail:
            self._tracer.end(
                "disk.request",
                drive=self.name,
                rid=request.req_id,
                queue_delay=request.queue_delay,
                response_time=request.response_time,
            )

        if request.on_complete is not None:
            request.on_complete(request)

        if self._queue:
            self._try_start_service()
        else:
            self.timeline.transition(now, st.idle_at(self.current_rpm))
            if self.policy is not None:
                self.policy.on_idle_start(now)
            # Resume any interrupted ramp toward the policy's target — but
            # only after a short grace period: committing the spindle to a
            # multi-second step the instant the queue drains would make
            # every trickling arrival wait out a step boundary.
            if self.target_rpm != self.current_rpm:
                self.sim.schedule(
                    self.ramp_restart_delay, self._maybe_resume_ramp
                )

    def _maybe_resume_ramp(self) -> None:
        if (
            self.is_idle
            and not self.is_transitioning
            and not self._spun_down
            and self.target_rpm != self.current_rpm
        ):
            self._begin_ramp_step()

    # ------------------------------------------------------------------
    # Spin-down / spin-up
    # ------------------------------------------------------------------
    def spin_down(self) -> bool:
        """Transition to standby.  Returns False if not currently eligible
        (busy, already down, or mid-transition)."""
        if not self.is_idle or self._spun_down or self.is_transitioning:
            return False
        self._spinning_down = True
        self._spin_down_started = self.sim.now
        self.stats.spin_downs += 1
        self.timeline.transition(self.sim.now, st.SPIN_DOWN)
        self._spin_down_event = self.sim.schedule(
            self.spec.spin_down_time, self._finish_spin_down
        )
        return True

    def _finish_spin_down(self) -> None:
        self._spinning_down = False
        self._spin_down_event = None
        self._spun_down = True
        self.current_rpm = 0
        self.timeline.transition(self.sim.now, st.STANDBY)
        if self._queue:
            # A request arrived in the last instant of the spin-down.
            self.spin_up()

    def _abort_spin_down(self) -> None:
        """A request interrupted the spin-down; re-accelerate from the
        current (partially decelerated) speed.  Recovery time and energy
        scale with the deceleration progress."""
        if not self._spinning_down:
            return
        progress = min(
            (self.sim.now - self._spin_down_started) / self.spec.spin_down_time,
            1.0,
        )
        if self._spin_down_event is not None:
            self._spin_down_event.cancel()
            self._spin_down_event = None
        self._spinning_down = False
        self.stats.aborted_spin_downs += 1
        self._spinning_up = True
        self._spin_up_remaining = progress * self.spec.spin_up_time
        self.timeline.transition(self.sim.now, st.SPIN_UP)
        # An aborted spin-down never hit standby, so its re-acceleration
        # is not a cold spin-up and cannot suffer a spin-up failure.
        self.sim.schedule(self._spin_up_remaining, self._finish_spin_up, False)

    def spin_up(self) -> bool:
        """Wake from standby to full speed.  Returns False if not asleep."""
        if not self._spun_down or self._spinning_up:
            return False
        self._spun_down = False
        self._spinning_up = True
        self.stats.spin_ups += 1
        self.timeline.transition(self.sim.now, st.SPIN_UP)
        self.sim.schedule(self.spec.spin_up_time, self._finish_spin_up, True)
        return True

    def _finish_spin_up(self, cold: bool = True) -> None:
        fs = self._faults
        if cold and fs is not None and fs.spinup_should_fail(self.sim.now):
            # The spindle failed to reach speed: fall back to standby and
            # retry with exponential backoff.  The failed attempt already
            # paid a full SPIN_UP interval of time and energy.
            self._spinning_up = False
            self._spun_down = True
            self.current_rpm = 0
            self.timeline.transition(self.sim.now, st.STANDBY)
            delay = fs.spinup_retry_delay(self._spinup_attempt)
            self._spinup_attempt += 1
            self.sim.schedule(delay, self._retry_spin_up)
            return
        self._spinup_attempt = 0
        self._spinning_up = False
        self.current_rpm = self.spec.max_rpm
        self.target_rpm = self.spec.max_rpm
        self.timeline.transition(self.sim.now, st.idle_at(self.current_rpm))
        self._try_start_service()

    def _retry_spin_up(self) -> None:
        """Backoff expired after a failed spin-up; try again if still
        needed (a request arrival may already have restarted the motor)."""
        if self._spun_down and not self._spinning_up:
            self.spin_up()

    # ------------------------------------------------------------------
    # Multi-speed (DRPM) ramping
    # ------------------------------------------------------------------
    def request_rpm(self, target: int) -> None:
        """Ask the drive to move toward ``target`` RPM (must be a level on
        the spec's ladder).  Takes effect one step at a time; pending
        requests pause the ramp at step boundaries."""
        if target not in self.spec.rpm_levels:
            raise ValueError(
                f"{target} RPM is not on the ladder {self.spec.rpm_levels}"
            )
        self.target_rpm = target
        if (
            not self._busy
            and not self._ramping
            and not self._spun_down
            and not self._spinning_down
            and not self._spinning_up
            and self.current_rpm != target
        ):
            self._begin_ramp_step()

    def _begin_ramp_step(self) -> None:
        if self._ramping or self.current_rpm == self.target_rpm:
            return
        step = self.spec.rpm_step
        if self.target_rpm < self.current_rpm:
            step = -step
        next_rpm = self.current_rpm + step
        self._ramping = True
        self._ramp_from = self.current_rpm
        self._ramp_to = next_rpm
        self._ramp_started = self.sim.now
        label = RPM_UP if step > 0 else RPM_DOWN
        self.timeline.transition(self.sim.now, f"{label}@{next_rpm}")
        self._ramp_event = self.sim.schedule(
            self.spec.rpm_change_time_per_step, self._finish_ramp_step, next_rpm
        )

    def _abort_ramp_step(self) -> None:
        """A request interrupted an RPM step: lock onto the nearest ladder
        speed after a short settle, then serve."""
        if self._ramp_aborting:
            return
        self._ramp_aborting = True
        if self._ramp_event is not None:
            self._ramp_event.cancel()
            self._ramp_event = None
        progress = (self.sim.now - self._ramp_started) / max(
            self.spec.rpm_change_time_per_step, 1e-9
        )
        settled = self._ramp_to if progress >= 0.5 else self._ramp_from
        self.sim.schedule(self.ramp_settle_time, self._finish_ramp_abort, settled)

    def _finish_ramp_abort(self, settled_rpm: int) -> None:
        self._ramp_aborting = False
        self._ramping = False
        self.current_rpm = settled_rpm
        self.timeline.transition(self.sim.now, st.idle_at(self.current_rpm))
        self._try_start_service()

    def _finish_ramp_step(self, new_rpm: int) -> None:
        self._ramping = False
        self._ramp_event = None
        self.current_rpm = new_rpm
        self.stats.rpm_steps += 1
        self.timeline.transition(self.sim.now, st.idle_at(self.current_rpm))
        if self._queue:
            if self.serve_at_low_rpm or self.current_rpm == self.spec.max_rpm:
                self._try_start_service()
            else:
                self._begin_ramp_step()
        elif self.current_rpm != self.target_rpm:
            self._begin_ramp_step()
        elif self.policy is not None:
            self.policy.on_ramp_complete(self.sim.now)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Close the timeline at the current simulation time."""
        self.timeline.finalize(self.sim.now)

    def energy(self) -> float:
        """Total joules consumed (requires :meth:`finalize` first)."""
        return self.power_model.energy(self.timeline)

    def energy_breakdown(self) -> EnergyBreakdown:
        return self.power_model.breakdown(self.timeline)

    def idle_periods(self) -> list[float]:
        """Lengths (seconds) of maximal non-serving periods."""
        return [
            iv.duration
            for iv in self.timeline.merged_periods(st.is_idle_family)
        ]

    def idle_period_intervals(self) -> list[tuple[float, float]]:
        """(start, length) of maximal non-serving periods — the knowledge
        an oracle policy replays."""
        return [
            (iv.start, iv.duration)
            for iv in self.timeline.merged_periods(st.is_idle_family)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Drive({self.name!r}, rpm={self.current_rpm}, "
            f"queue={len(self._queue)}, busy={self._busy})"
        )
