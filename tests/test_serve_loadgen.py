"""Tests for the load harness (``repro.serve.loadgen``)."""

import asyncio

import pytest

from repro.experiments import ExperimentConfig
from repro.serve import LoadgenConfig, default_mix, run_inprocess_loadtest
from repro.serve.loadgen import _percentile

TINY = ExperimentConfig(workload_scale=0.05)

MIX_ONE = [{"workload": "sar", "policy": "simple", "scheme": False}]


class TestPercentile:
    def test_empty_sample(self):
        assert _percentile([], 0.99) == 0.0

    def test_single_sample(self):
        assert _percentile([7.0], 0.50) == 7.0
        assert _percentile([7.0], 0.99) == 7.0

    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]  # 1..100
        assert _percentile(values, 0.50) == 50.0
        assert _percentile(values, 0.99) == 99.0
        assert _percentile(values, 1.0) == 100.0


class TestDefaultMix:
    def test_every_app_scheme_combination(self):
        mix = default_mix(apps=("sar",), schemes=(False, True))
        assert mix == [
            {"workload": "sar", "policy": "simple", "scheme": False},
            {"workload": "sar", "policy": "simple", "scheme": True},
        ]


class TestLoadgenConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [{"clients": 0}, {"requests": 0}, {"mix": ()}],
    )
    def test_bad_knobs_rejected(self, overrides):
        with pytest.raises(ValueError):
            LoadgenConfig(**overrides)


class TestInprocessLoadtest:
    def test_small_warm_burst_is_clean(self, tmp_path):
        report = asyncio.run(
            run_inprocess_loadtest(
                TINY,
                tmp_path / "cache",
                clients=4,
                requests=2,
                mix=MIX_ONE,
            )
        )
        assert report["requests"] == 8
        assert report["ok"] == 8
        assert report["failed"] == 0
        assert report["errors"] == []
        assert report["warmed"] == len(MIX_ONE)
        # The warm pass did the only simulation; the timed burst is all
        # cache hits (and/or coalesced onto in-flight duplicates).
        assert report["simulated"] == 0
        assert report["cache_hits"] + report["batched"] == 8
        assert report["cache_hit_rate"] == 1.0
        assert report["rps"] > 0
        assert report["seconds"] > 0

    def test_report_schema_is_stable(self, tmp_path):
        report = asyncio.run(
            run_inprocess_loadtest(
                TINY, tmp_path / "cache", clients=1, requests=1, mix=MIX_ONE
            )
        )
        expected = {
            "clients", "requests_per_client", "requests", "ok", "failed",
            "rejected_retries", "retried", "deduplicated", "lost",
            "warmed", "seconds", "rps", "latency_ms",
            "cache_hit_rate", "batched", "simulated", "cache_hits",
            "queue_depth_peak", "errors",
        }
        assert set(report) == expected
        assert set(report["latency_ms"]) == {"p50", "p99", "mean", "max"}
        assert report["latency_ms"]["p99"] >= report["latency_ms"]["p50"]
        # A clean single-client run needed no resilience machinery.
        assert report["retried"] == 0
        assert report["deduplicated"] == 0
        assert report["lost"] == 0

    def test_cold_burst_simulates_at_least_once(self, tmp_path):
        report = asyncio.run(
            run_inprocess_loadtest(
                TINY,
                tmp_path / "cache",
                clients=2,
                requests=1,
                mix=MIX_ONE,
                warm=False,
            )
        )
        assert report["warmed"] == 0
        assert report["ok"] == 2
        assert report["failed"] == 0
        # Two identical concurrent submissions, cold cache: exactly one
        # simulation — the second rides the first (coalesce or hit).
        assert report["simulated"] == 1


class TestPercentileEdgeCases:
    """Nearest-rank behaviour on the awkward sample sizes real bursts
    produce — far fewer than 100 samples, down to one."""

    def test_p99_with_fewer_than_100_samples_is_max(self):
        # Nearest rank: ceil(0.99 * n) == n for every n < 100, so p99
        # must be the sample maximum, never an out-of-range index.
        for n in (1, 2, 3, 10, 50, 99):
            values = [float(v) for v in range(1, n + 1)]
            assert _percentile(values, 0.99) == float(n), n

    def test_p50_small_samples(self):
        assert _percentile([1.0, 2.0], 0.50) == 1.0  # ceil(1.0) = rank 1
        assert _percentile([1.0, 2.0, 3.0], 0.50) == 2.0
        assert _percentile([1.0, 2.0, 3.0, 4.0], 0.50) == 2.0

    def test_rank_never_exceeds_sample(self):
        # q > 1 is out-of-contract but must clamp, not raise.
        assert _percentile([1.0, 2.0], 1.5) == 2.0

    def test_percentiles_monotone_in_q(self):
        values = [float(v) for v in range(1, 8)]
        qs = (0.01, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0)
        picks = [_percentile(values, q) for q in qs]
        assert picks == sorted(picks)


class TestDegenerateBursts:
    def test_single_sample_burst_report_is_schema_stable(self, tmp_path):
        """One client, one request: every latency aggregate reduces to
        the single sample without raising."""
        report = asyncio.run(
            run_inprocess_loadtest(
                TINY, tmp_path / "cache", clients=1, requests=1, mix=MIX_ONE
            )
        )
        assert report["requests"] == 1
        assert report["ok"] == 1
        lat = report["latency_ms"]
        assert lat["p50"] == lat["p99"] == lat["max"]
        assert lat["mean"] == pytest.approx(lat["p50"], abs=0.002)

    def test_all_429_burst_reports_instead_of_raising(
        self, tmp_path, monkeypatch
    ):
        """A queue that never admits anything: every submission exhausts
        its retries as 429s.  The harness must come back with a
        schema-stable zeroed report — not a ZeroDivision/IndexError from
        the empty latency sample."""
        from repro.serve import loadgen as lg
        from repro.serve.server import QueueFull, SchedulingServer

        def always_full(self, tenant, point):
            raise QueueFull(1)

        monkeypatch.setattr(SchedulingServer, "submit", always_full)
        monkeypatch.setattr(lg, "_MAX_SUBMIT_ATTEMPTS", 2)
        monkeypatch.setattr(lg, "_MAX_RETRY_SLEEP", 0.01)

        report = asyncio.run(
            run_inprocess_loadtest(
                TINY,
                tmp_path / "cache",
                clients=2,
                requests=2,
                mix=MIX_ONE,
                warm=False,  # the warm phase would (rightly) fail loudly
            )
        )
        assert report["requests"] == 4
        assert report["ok"] == 0
        assert report["failed"] == 4
        assert report["rejected_retries"] == 8  # 2 attempts x 4 requests
        assert report["latency_ms"] == {
            "p50": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0,
        }
        assert report["cache_hit_rate"] == 0.0
        assert report["errors"]  # the queue-stayed-full diagnosis
        assert all("queue stayed full" in e for e in report["errors"])
