"""Run-grid enumeration for the paper figures.

Each figure driver in :mod:`repro.experiments.figures` walks its grid by
calling ``runner.run(...)`` serially; these helpers enumerate exactly the
:class:`~repro.exec.executor.RunPoint`\\ s each figure will ask for, so the
executor can materialize them (in parallel, through the cache) *before*
the driver runs.  The enumerations reuse the figures module's own sweep
constants — if a sweep changes there, the grid follows.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from ..experiments.config import ExperimentConfig
from ..experiments.figures import (
    APPS,
    CACHE_SWEEP_MB,
    DELTA_SWEEP,
    IONODE_SWEEP,
    THETA_SWEEP,
)
from ..experiments.runner import POLICIES
from .executor import RunPoint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.plan import FaultPlan

__all__ = [
    "figure_points",
    "all_figure_points",
    "with_fault_plan",
    "with_kernel",
    "GRID_FIGURES",
]


def _baselines(cfg: ExperimentConfig) -> list[RunPoint]:
    return [RunPoint(app, "default", False, cfg) for app in APPS]


def _policy_grid(cfg: ExperimentConfig, scheme: bool) -> list[RunPoint]:
    # Normalized-energy/degradation figures divide by the default-scheme
    # baseline, so it is part of the grid.
    points = _baselines(cfg)
    points += [
        RunPoint(app, policy, scheme, cfg)
        for app in APPS
        for policy in POLICIES
    ]
    return points


def _benefit_sweep(
    cfg: ExperimentConfig, field: str, values: Sequence
) -> list[RunPoint]:
    # scheme_benefit() compares history with/without the scheme at each
    # swept value.
    points = []
    for value in values:
        swept = cfg.scaled(**{field: value})
        for app in APPS:
            points.append(RunPoint(app, "history", False, swept))
            points.append(RunPoint(app, "history", True, swept))
    return points


def figure_points(
    name: str, cfg: Optional[ExperimentConfig] = None
) -> list[RunPoint]:
    """The run points figure ``name`` consumes (may contain duplicates
    across figures; the executor deduplicates)."""
    from ..experiments.config import default_config

    cfg = cfg or default_config()
    if name == "table2":
        return []
    if name == "table3":
        return _baselines(cfg)
    if name == "fig12a":
        return _baselines(cfg)
    if name == "fig12b":
        return [RunPoint(app, "default", True, cfg) for app in APPS]
    if name in ("fig12c", "fig13a"):
        return _policy_grid(cfg, scheme=False)
    if name in ("fig12d", "fig13b"):
        return _policy_grid(cfg, scheme=True)
    if name == "fig13c":
        return _benefit_sweep(cfg, "n_ionodes", IONODE_SWEEP)
    if name == "fig13d":
        return _benefit_sweep(cfg, "delta", DELTA_SWEEP)
    if name in ("fig14a", "fig14b"):
        return _benefit_sweep(cfg, "theta", THETA_SWEEP)
    if name == "cache":
        return _benefit_sweep(
            cfg, "cache_bytes", [mb * 1024 * 1024 for mb in CACHE_SWEEP_MB]
        )
    raise ValueError(f"unknown figure {name!r}")


def with_fault_plan(
    points: Iterable[RunPoint], plan: Optional["FaultPlan"]
) -> list[RunPoint]:
    """The same grid with ``plan`` installed on every point's config.

    This is how fault plans are enumerated in experiment grids: build
    the clean grid, then derive the faulted variant — the plan rides in
    the config, so cache keys and memo tables separate the two for free.
    """
    return [
        RunPoint(
            p.workload, p.policy, p.scheme,
            p.config.scaled(fault_plan=plan),
        )
        for p in points
    ]


def with_kernel(points: Iterable[RunPoint], kernel: str) -> list[RunPoint]:
    """The same grid re-keyed onto the named simulation kernel.

    Like :func:`with_fault_plan`, the choice rides in the config, so the
    executor, the cache and campaign journals separate kernels for free —
    a differential corpus is just the same grid lifted three ways.
    """
    return [
        RunPoint(
            p.workload, p.policy, p.scheme,
            p.config.scaled(kernel=kernel),
        )
        for p in points
    ]


#: Figures with a non-empty run grid, paper order.
GRID_FIGURES = (
    "table3",
    "fig12a",
    "fig12b",
    "fig12c",
    "fig12d",
    "fig13a",
    "fig13b",
    "fig13c",
    "fig13d",
    "fig14a",
    "fig14b",
    "cache",
)


def all_figure_points(
    cfg: Optional[ExperimentConfig] = None,
    names: Iterable[str] = GRID_FIGURES,
) -> list[RunPoint]:
    """Deduplicated union of every named figure's grid, stable order."""
    points: list[RunPoint] = []
    seen: set[RunPoint] = set()
    for name in names:
        for point in figure_points(name, cfg):
            if point not in seen:
                seen.add(point)
                points.append(point)
    return points
