"""Tests for the idle-period predictor."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.power import IdlePredictor


class TestValidation:
    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            IdlePredictor(alpha=0.0)
        with pytest.raises(ValueError):
            IdlePredictor(alpha=1.5)

    def test_window_positive(self):
        with pytest.raises(ValueError):
            IdlePredictor(window=0)

    def test_negative_observation_rejected(self):
        with pytest.raises(ValueError):
            IdlePredictor().observe(-1.0)


class TestPrediction:
    def test_initial_prediction_is_initial(self):
        assert IdlePredictor(initial=3.0).predict() == 3.0

    def test_first_observation_overrides_initial(self):
        p = IdlePredictor(initial=100.0)
        p.observe(2.0)
        assert p.predict() == 2.0

    def test_ewma_update(self):
        p = IdlePredictor(alpha=0.5)
        p.observe(10.0)
        p.observe(20.0)
        assert p.predict() == pytest.approx(15.0)

    def test_alpha_one_is_last_value(self):
        p = IdlePredictor(alpha=1.0)
        for v in (5.0, 9.0, 2.0):
            p.observe(v)
        assert p.predict() == 2.0

    def test_constant_sequence_converges_exactly(self):
        p = IdlePredictor(alpha=0.7)
        for _ in range(10):
            p.observe(42.0)
        assert p.predict() == pytest.approx(42.0)

    def test_observation_count(self):
        p = IdlePredictor()
        for _ in range(5):
            p.observe(1.0)
        assert p.observations == 5


class TestUpperEstimate:
    def test_upper_is_window_max(self):
        p = IdlePredictor(window=3)
        for v in (1.0, 50.0, 2.0):
            p.observe(v)
        assert p.predict_upper() == 50.0

    def test_upper_forgets_old_values(self):
        p = IdlePredictor(window=3)
        p.observe(100.0)
        for _ in range(3):
            p.observe(1.0)
        assert p.predict_upper() == 1.0

    def test_upper_before_observations_falls_back_to_ewma(self):
        p = IdlePredictor(initial=7.0)
        assert p.predict_upper() == 7.0

    def test_recent_tuple_order(self):
        p = IdlePredictor(window=4)
        for v in (1.0, 2.0, 3.0):
            p.observe(v)
        assert p.recent == (1.0, 2.0, 3.0)


# ----------------------------------------------------------------------
# Property suite: the contracts every predictor-backed policy leans on,
# over arbitrary observation histories.
# ----------------------------------------------------------------------
idle_lengths = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
histories = st.lists(idle_lengths, min_size=1, max_size=32)
alphas = st.floats(min_value=0.01, max_value=1.0)
windows = st.integers(min_value=1, max_value=12)


class TestPredictorProperties:
    @given(values=histories, alpha=alphas, window=windows)
    def test_prediction_bounded_by_window_extrema(self, values, alpha, window):
        """The forecast never leaves the envelope of recent evidence:
        ``min(recent) <= predict() <= max(recent)``."""
        p = IdlePredictor(alpha=alpha, window=window)
        for v in values:
            p.observe(v)
        recent = p.recent
        assert min(recent) <= p.predict() <= max(recent)

    @given(values=histories, alpha=alphas, window=windows)
    def test_upper_dominates_prediction(self, values, alpha, window):
        """Ahead-of-time wake-up timers require
        ``predict_upper() >= predict()`` unconditionally."""
        p = IdlePredictor(alpha=alpha, window=window)
        for v in values:
            p.observe(v)
        assert p.predict_upper() >= p.predict()

    @given(values=histories, window=windows)
    def test_window_eviction_exact(self, values, window):
        """The window holds exactly the last ``window`` observations in
        order — one in, oldest out, nothing lingering."""
        p = IdlePredictor(window=window)
        for v in values:
            p.observe(v)
        assert p.recent == tuple(values[-window:])
        assert p.observations == len(values)

    @given(values=histories, window=windows)
    def test_upper_is_exact_window_max(self, values, window):
        p = IdlePredictor(window=window)
        for v in values:
            p.observe(v)
        assert p.predict_upper() == max(values[-window:])
